//! The model zoo: the five networks the paper evaluates (§IV-C, Fig. 6).
//!
//! * LeNet-300-100 and LeNet-5 (MNIST),
//! * AlexNet, VGG16 and ResNet50 (ImageNet).
//!
//! Layer inventories follow the standard architectures; pooling layers use
//! unpadded windows (ResNet's stem pool becomes 2×2/2 — a shape-preserving
//! simplification documented in DESIGN.md).

use crate::layer::{ConvSpec, Layer, LinearLayer};

/// A sequential network with optional residual skip links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    /// Model name (e.g. `"ResNet50"`).
    pub name: String,
    /// Input shape `(c, h, w)` for CNNs or `(n,)` for MLPs.
    pub input_shape: Vec<usize>,
    /// The layer list.
    pub layers: Vec<Layer>,
}

impl Network {
    /// All HE-evaluated linear layers in execution order (including
    /// residual projection convolutions).
    pub fn linear_layers(&self) -> Vec<LinearLayer> {
        let mut out = Vec::new();
        for layer in &self.layers {
            match layer {
                Layer::Linear(l) => out.push(l.clone()),
                Layer::ResidualAdd {
                    projection: Some(p),
                    ..
                } => out.push(LinearLayer::Conv(p.clone())),
                _ => {}
            }
        }
        out
    }

    /// Total plaintext MACs across linear layers.
    pub fn total_macs(&self) -> u64 {
        self.linear_layers().iter().map(LinearLayer::macs).sum()
    }

    /// Number of linear layers.
    pub fn num_linear(&self) -> usize {
        self.linear_layers().len()
    }
}

/// LeNet-300-100: the 784–300–100–10 MLP of LeCun et al. (MNIST).
pub fn lenet300() -> Network {
    Network {
        name: "LeNet-300-100".into(),
        input_shape: vec![784],
        layers: vec![
            Layer::fc("fc1", 784, 300),
            Layer::Relu,
            Layer::fc("fc2", 300, 100),
            Layer::Relu,
            Layer::fc("fc3", 100, 10),
        ],
    }
}

/// LeNet-5 (Caffe variant, as used by Gazelle): two conv+pool stages then
/// two FC layers (MNIST).
pub fn lenet5() -> Network {
    Network {
        name: "LeNet5".into(),
        input_shape: vec![1, 28, 28],
        layers: vec![
            Layer::conv("conv1", 28, 5, 1, 20, 1, 0), // -> 24x24x20
            Layer::MaxPool { k: 2, stride: 2 },       // -> 12x12x20
            Layer::Relu,
            Layer::conv("conv2", 12, 5, 20, 50, 1, 0), // -> 8x8x50
            Layer::MaxPool { k: 2, stride: 2 },        // -> 4x4x50
            Layer::Relu,
            Layer::Flatten,
            Layer::fc("fc1", 800, 500),
            Layer::Relu,
            Layer::fc("fc2", 500, 10),
        ],
    }
}

/// AlexNet (ImageNet, 227×227 input): five conv layers and three FC layers.
pub fn alexnet() -> Network {
    Network {
        name: "AlexNet".into(),
        input_shape: vec![3, 227, 227],
        layers: vec![
            Layer::conv("conv0", 227, 11, 3, 96, 4, 0), // -> 55
            Layer::Relu,
            Layer::MaxPool { k: 3, stride: 2 },         // -> 27
            Layer::conv("conv1", 27, 5, 96, 256, 1, 2), // -> 27
            Layer::Relu,
            Layer::MaxPool { k: 3, stride: 2 }, // -> 13
            Layer::conv("conv2", 13, 3, 256, 384, 1, 1),
            Layer::Relu,
            Layer::conv("conv3", 13, 3, 384, 384, 1, 1),
            Layer::Relu,
            Layer::conv("conv4", 13, 3, 384, 256, 1, 1),
            Layer::Relu,
            Layer::MaxPool { k: 3, stride: 2 }, // -> 6
            Layer::Flatten,                     // 9216
            Layer::fc("fc5", 9216, 4096),
            Layer::Relu,
            Layer::fc("fc6", 4096, 4096),
            Layer::Relu,
            Layer::fc("fc7", 4096, 1000),
        ],
    }
}

/// VGG16 (ImageNet): thirteen 3×3 conv layers and three FC layers.
pub fn vgg16() -> Network {
    let mut layers = Vec::new();
    let mut w = 224usize;
    let mut ci = 3usize;
    let mut idx = 0usize;
    for (block, (reps, co)) in [(2usize, 64usize), (2, 128), (3, 256), (3, 512), (3, 512)]
        .into_iter()
        .enumerate()
    {
        for r in 0..reps {
            layers.push(Layer::conv(
                &format!("conv{}_{}", block + 1, r + 1),
                w,
                3,
                ci,
                co,
                1,
                1,
            ));
            layers.push(Layer::Relu);
            ci = co;
            idx += 1;
        }
        layers.push(Layer::MaxPool { k: 2, stride: 2 });
        w /= 2;
    }
    let _ = idx;
    layers.push(Layer::Flatten); // 7*7*512 = 25088
    layers.push(Layer::fc("fc6", 25088, 4096));
    layers.push(Layer::Relu);
    layers.push(Layer::fc("fc7", 4096, 4096));
    layers.push(Layer::Relu);
    layers.push(Layer::fc("fc8", 4096, 1000));
    Network {
        name: "VGG16".into(),
        input_shape: vec![3, 224, 224],
        layers,
    }
}

/// ResNet50 (ImageNet): stem + 16 bottleneck blocks (3-4-6-3) + FC,
/// 53 convolutions and one FC in total.
pub fn resnet50() -> Network {
    let mut layers: Vec<Layer> = Vec::new();
    // Stem: 7x7/2 conv then pool to 56x56.
    layers.push(Layer::conv("conv1", 224, 7, 3, 64, 2, 3)); // -> 112
    layers.push(Layer::Relu);
    layers.push(Layer::MaxPool { k: 2, stride: 2 }); // -> 56

    let stages: [(usize, usize, usize, usize); 4] = [
        // (blocks, mid, out, stride of first block)
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    let mut w = 56usize;
    let mut in_c = 64usize;
    for (stage_idx, (blocks, mid, out_c, first_stride)) in stages.into_iter().enumerate() {
        for b in 0..blocks {
            let stride = if b == 0 { first_stride } else { 1 };
            let skip_from = layers.len() - 1; // output of previous layer
            let name = |part: &str| format!("res{}_{}_{}", stage_idx + 2, b + 1, part);
            // 1x1 reduce
            layers.push(Layer::conv(&name("a"), w, 1, in_c, mid, 1, 0));
            layers.push(Layer::Relu);
            // 3x3 (carries the stride, ResNet v1.5)
            layers.push(Layer::conv(&name("b"), w, 3, mid, mid, stride, 1));
            layers.push(Layer::Relu);
            let w_out = if stride == 2 { w / 2 } else { w };
            // 1x1 expand
            layers.push(Layer::conv(&name("c"), w_out, 1, mid, out_c, 1, 0));
            // Skip connection (+ projection on the first block of a stage).
            let projection = if b == 0 {
                Some(ConvSpec {
                    name: name("proj"),
                    w,
                    fw: 1,
                    ci: in_c,
                    co: out_c,
                    stride,
                    pad: 0,
                })
            } else {
                None
            };
            layers.push(Layer::ResidualAdd {
                from: skip_from,
                projection,
            });
            layers.push(Layer::Relu);
            in_c = out_c;
            w = w_out;
        }
    }
    layers.push(Layer::SumPool { k: 7, stride: 1 }); // global avg (sum) pool
    layers.push(Layer::Flatten);
    layers.push(Layer::fc("fc", 2048, 1000));
    Network {
        name: "ResNet50".into(),
        input_shape: vec![3, 224, 224],
        layers,
    }
}

/// A small CNN used by tests and the end-to-end protocol example: shapes are
/// tiny enough to run under real HE quickly but exercise conv, pool, FC and
/// ReLU.
pub fn tiny_cnn() -> Network {
    Network {
        name: "TinyCNN".into(),
        input_shape: vec![1, 8, 8],
        layers: vec![
            Layer::conv("conv1", 8, 3, 1, 2, 1, 1), // -> 8x8x2
            Layer::Relu,
            Layer::MaxPool { k: 2, stride: 2 }, // -> 4x4x2
            Layer::Flatten,
            Layer::fc("fc1", 32, 16),
            Layer::Relu,
            Layer::fc("fc2", 16, 4),
        ],
    }
}

/// All five paper benchmarks, in Fig. 6 order.
pub fn paper_benchmarks() -> Vec<Network> {
    vec![lenet300(), lenet5(), alexnet(), vgg16(), resnet50()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet300_shapes() {
        let net = lenet300();
        assert_eq!(net.num_linear(), 3);
        assert_eq!(net.total_macs(), 784 * 300 + 300 * 100 + 100 * 10);
    }

    #[test]
    fn lenet5_shapes() {
        let net = lenet5();
        let lins = net.linear_layers();
        assert_eq!(lins.len(), 4);
        assert_eq!(lins[0].output_len(), 24 * 24 * 20);
        assert_eq!(lins[1].output_len(), 8 * 8 * 50);
        assert_eq!(lins[2].input_len(), 800);
    }

    #[test]
    fn alexnet_layer_count_and_macs() {
        let net = alexnet();
        assert_eq!(net.num_linear(), 8); // 5 conv + 3 fc
                                         // AlexNet is ~0.7 GMACs at 227 input.
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((0.6..1.2).contains(&gmacs), "gmacs {gmacs}");
    }

    #[test]
    fn vgg16_layer_count_and_macs() {
        let net = vgg16();
        assert_eq!(net.num_linear(), 16); // 13 conv + 3 fc
        let gmacs = net.total_macs() as f64 / 1e9;
        // VGG16 is ~15.5 GMACs.
        assert!((14.0..17.0).contains(&gmacs), "gmacs {gmacs}");
    }

    #[test]
    fn resnet50_layer_count_and_macs() {
        let net = resnet50();
        assert_eq!(net.num_linear(), 54); // 53 conv + 1 fc
        let gmacs = net.total_macs() as f64 / 1e9;
        // ResNet50 is ~4.1 GMACs.
        assert!((3.5..4.7).contains(&gmacs), "gmacs {gmacs}");
    }

    #[test]
    fn resnet50_stage_spatial_sizes() {
        let net = resnet50();
        let lins = net.linear_layers();
        // First stage-2 conv sees 56x56; last stage-5 conv sees 7x7.
        let first_stage = lins.iter().find(|l| l.name() == "res2_1_a").unwrap();
        if let crate::layer::LinearLayer::Conv(c) = first_stage {
            assert_eq!(c.w, 56);
        } else {
            panic!("expected conv");
        }
        let last = lins.iter().find(|l| l.name() == "res5_3_c").unwrap();
        if let crate::layer::LinearLayer::Conv(c) = last {
            assert_eq!(c.w, 7);
        } else {
            panic!("expected conv");
        }
    }

    #[test]
    fn paper_benchmarks_order() {
        let names: Vec<String> = paper_benchmarks().into_iter().map(|n| n.name).collect();
        assert_eq!(
            names,
            ["LeNet-300-100", "LeNet5", "AlexNet", "VGG16", "ResNet50"]
        );
    }
}
