//! # cheetah-nn — DNN workloads for the Cheetah reproduction
//!
//! Layer descriptors with exactly the hyperparameters the paper's models
//! consume (`(w, f_w, c_i, c_o)` for convolutions, `(n_i, n_o)` for FC —
//! Table IV), the five benchmark networks of Fig. 6 (LeNet-300-100,
//! LeNet-5, AlexNet, VGG16, ResNet50), and integer fixed-point plaintext
//! inference used as the correctness reference for every HE result.
//!
//! ```
//! use cheetah_nn::models;
//!
//! let net = models::resnet50();
//! assert_eq!(net.linear_layers().len(), 54); // 53 convs + 1 FC
//! ```

pub mod inference;
pub mod layer;
pub mod models;
pub mod tensor;

pub use inference::{infer, random_input, InferenceTrace, Weights};
pub use layer::{ConvSpec, FcSpec, Layer, LinearLayer};
pub use models::Network;
pub use tensor::Tensor;
