//! Plaintext fixed-point inference — the correctness reference HE results
//! are compared against, and the "plaintext latency" baseline of the
//! profiling study (§VI).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::{ConvSpec, Layer, LinearLayer};
use crate::models::Network;
use crate::tensor::{conv2d, fully_connected, max_pool, relu, sum_pool, Tensor};

/// Weight set for a network: one tensor per linear layer, in
/// [`Network::linear_layers`] order (projection convs included).
#[derive(Debug, Clone)]
pub struct Weights {
    tensors: Vec<Tensor>,
    /// Magnitude bound used at generation time (weights are in
    /// `[-bound, bound]`).
    bound: i64,
}

impl Weights {
    /// Samples uniform integer weights in `[-bound, bound]` for every
    /// linear layer, reproducibly from `seed`.
    pub fn random(net: &Network, bound: i64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors = net
            .linear_layers()
            .iter()
            .map(|l| {
                let shape: Vec<usize> = match l {
                    LinearLayer::Conv(c) => vec![c.co, c.ci, c.fw, c.fw],
                    LinearLayer::Fc(f) => vec![f.no, f.ni],
                };
                let len: usize = shape.iter().product();
                Tensor::from_data(
                    &shape,
                    (0..len).map(|_| rng.random_range(-bound..=bound)).collect(),
                )
            })
            .collect();
        Self { tensors, bound }
    }

    /// The weight tensor for the `i`-th linear layer.
    pub fn layer(&self, i: usize) -> &Tensor {
        &self.tensors[i]
    }

    /// Number of weight tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether there are no weights.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// The magnitude bound the weights were drawn with.
    pub fn bound(&self) -> i64 {
        self.bound
    }

    /// Bits needed to represent a weight (`ceil(log2(bound)) + 1` sign bit).
    pub fn weight_bits(&self) -> u32 {
        64 - (self.bound.unsigned_abs()).leading_zeros() + 1
    }
}

/// Result of a plaintext forward pass.
#[derive(Debug, Clone)]
pub struct InferenceTrace {
    /// Final output activations.
    pub output: Tensor,
    /// Activation after every layer (index-aligned with
    /// [`Network::layers`]).
    pub activations: Vec<Tensor>,
    /// Per-linear-layer output magnitude (`‖·‖_∞`), used to derive the
    /// plaintext-modulus precision HE-PTune must provision.
    pub linear_out_magnitudes: Vec<i64>,
}

/// Runs plaintext fixed-point inference.
///
/// # Panics
///
/// Panics if shapes are inconsistent or a residual link points forward.
pub fn infer(net: &Network, weights: &Weights, input: &Tensor) -> InferenceTrace {
    let mut act = input.clone();
    let mut activations: Vec<Tensor> = Vec::with_capacity(net.layers.len());
    let mut linear_out_magnitudes = Vec::new();
    let mut linear_idx = 0usize;
    for layer in &net.layers {
        act = match layer {
            Layer::Linear(LinearLayer::Conv(c)) => {
                let out = conv2d(&act, weights.layer(linear_idx), c.stride, c.pad);
                linear_idx += 1;
                linear_out_magnitudes.push(out.abs_max());
                out
            }
            Layer::Linear(LinearLayer::Fc(_)) => {
                let out = fully_connected(&act, weights.layer(linear_idx));
                linear_idx += 1;
                linear_out_magnitudes.push(out.abs_max());
                out
            }
            Layer::Relu => relu(&act),
            Layer::MaxPool { k, stride } => max_pool(&act, *k, *stride),
            Layer::SumPool { k, stride } => sum_pool(&act, *k, *stride),
            Layer::Flatten => act.clone().into_flat(),
            Layer::ResidualAdd { from, projection } => {
                assert!(
                    *from < activations.len(),
                    "residual link must point backward"
                );
                let skip = &activations[*from];
                let skip = match projection {
                    Some(p) => {
                        let out = conv2d(skip, weights.layer(linear_idx), p.stride, p.pad);
                        linear_idx += 1;
                        linear_out_magnitudes.push(out.abs_max());
                        out
                    }
                    None => skip.clone(),
                };
                act.add(&skip)
            }
        };
        activations.push(act.clone());
    }
    InferenceTrace {
        output: act,
        activations,
        linear_out_magnitudes,
    }
}

/// Generates a deterministic input tensor with values in `[-bound, bound]`.
pub fn random_input(shape: &[usize], bound: i64, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let len: usize = shape.iter().product();
    Tensor::from_data(
        shape,
        (0..len).map(|_| rng.random_range(-bound..=bound)).collect(),
    )
}

/// A deterministic multi-client workload: `count` input tensors, client
/// `i` drawn from seed `base_seed + i`. Serving suites and throughput
/// benches use this so every client's input is reproducible in isolation
/// (re-running client `i` alone regenerates exactly its tensor).
pub fn client_inputs(shape: &[usize], bound: i64, base_seed: u64, count: usize) -> Vec<Tensor> {
    (0..count)
        .map(|i| random_input(shape, bound, base_seed + i as u64))
        .collect()
}

/// Reference single-layer evaluation for HE cross-checks: applies one
/// linear layer (with the given weight tensor) to an input.
pub fn eval_linear(layer: &LinearLayer, weight: &Tensor, input: &Tensor) -> Tensor {
    match layer {
        LinearLayer::Conv(c) => conv2d(input, weight, c.stride, c.pad),
        LinearLayer::Fc(_) => fully_connected(input, weight),
    }
}

/// Builds an all-ones weight tensor for a conv spec (handy in HE layer
/// tests where slot bookkeeping, not weight variety, is under test).
pub fn ones_conv_weight(c: &ConvSpec) -> Tensor {
    Tensor::from_data(
        &[c.co, c.ci, c.fw, c.fw],
        vec![1; c.co * c.ci * c.fw * c.fw],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{lenet5, resnet50, tiny_cnn};

    #[test]
    fn tiny_cnn_forward_pass_shapes() {
        let net = tiny_cnn();
        let weights = Weights::random(&net, 3, 1);
        let input = random_input(&net.input_shape, 7, 2);
        let trace = infer(&net, &weights, &input);
        assert_eq!(trace.output.shape(), &[4]);
        assert_eq!(trace.activations.len(), net.layers.len());
        assert_eq!(trace.linear_out_magnitudes.len(), 3);
    }

    #[test]
    fn lenet5_forward_pass() {
        let net = lenet5();
        let weights = Weights::random(&net, 2, 3);
        let input = random_input(&net.input_shape, 4, 4);
        let trace = infer(&net, &weights, &input);
        assert_eq!(trace.output.shape(), &[10]);
        // Output magnitudes must be bounded by dot-length * products.
        for (l, &m) in net.linear_layers().iter().zip(&trace.linear_out_magnitudes) {
            assert!(m >= 0);
            let bound = l.dot_length() as i64 * 2 * 4 * 20; // slack for relu'd activations
            assert!(m <= bound.max(1) * 100, "layer {} magnitude {m}", l.name());
        }
    }

    #[test]
    fn resnet50_residual_links_are_backward_and_consistent() {
        let net = resnet50();
        for (i, l) in net.layers.iter().enumerate() {
            if let Layer::ResidualAdd { from, .. } = l {
                assert!(*from < i, "layer {i} links forward to {from}");
            }
        }
    }

    #[test]
    fn resnet50_tiny_slice_runs() {
        // Run just the stem + first bottleneck on a downscaled input to
        // validate residual plumbing without a 4-GMAC pass in debug mode.
        let full = resnet50();
        let mut layers = full.layers[..10].to_vec(); // stem + first block + relu
                                                     // Rescale stem conv to a 16x16 input.
        if let Layer::Linear(LinearLayer::Conv(c)) = &mut layers[0] {
            c.w = 16;
        }
        // Rescale block convs from 56 -> 4.
        for l in layers.iter_mut().skip(1) {
            match l {
                Layer::Linear(LinearLayer::Conv(c)) => c.w = 4,
                Layer::ResidualAdd {
                    projection: Some(p),
                    ..
                } => p.w = 4,
                _ => {}
            }
        }
        let net = Network {
            name: "ResNetStem".into(),
            input_shape: vec![3, 16, 16],
            layers,
        };
        let weights = Weights::random(&net, 2, 5);
        let input = random_input(&net.input_shape, 3, 6);
        let trace = infer(&net, &weights, &input);
        assert_eq!(trace.output.shape(), &[256, 4, 4]);
    }

    #[test]
    fn residual_add_is_sum_of_paths() {
        // A network that is just  x -> conv(1x1, w=1) -> add skip  should
        // produce 2x when the conv weight is 1.
        let net = Network {
            name: "skip".into(),
            input_shape: vec![1, 4, 4],
            layers: vec![
                Layer::conv("c", 4, 1, 1, 1, 1, 0),
                Layer::ResidualAdd {
                    from: 0,
                    projection: None,
                },
            ],
        };
        // ResidualAdd{from: 0} adds the conv output to itself -> 2*conv(x).
        let mut weights = Weights::random(&net, 1, 7);
        weights.tensors[0] = Tensor::from_data(&[1, 1, 1, 1], vec![1]);
        let input = random_input(&[1, 4, 4], 5, 8);
        let trace = infer(&net, &weights, &input);
        let expect: Vec<i64> = input.data().iter().map(|&v| 2 * v).collect();
        assert_eq!(trace.output.data(), &expect[..]);
    }

    #[test]
    fn weight_bits_formula() {
        let net = tiny_cnn();
        let w = Weights::random(&net, 7, 1);
        assert_eq!(w.weight_bits(), 4); // 3 magnitude bits + sign
        let w = Weights::random(&net, 8, 1);
        assert_eq!(w.weight_bits(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let net = tiny_cnn();
        let w1 = Weights::random(&net, 3, 42);
        let w2 = Weights::random(&net, 3, 42);
        let i1 = random_input(&net.input_shape, 5, 43);
        let i2 = random_input(&net.input_shape, 5, 43);
        assert_eq!(infer(&net, &w1, &i1).output, infer(&net, &w2, &i2).output);
    }
}
