//! Plaintext fixed-point inference — the correctness reference HE results
//! are compared against, and the "plaintext latency" baseline of the
//! profiling study (§VI).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::{ConvSpec, Layer, LinearLayer};
use crate::models::Network;
use crate::tensor::{conv2d, fully_connected, max_pool, relu, sum_pool, Tensor};

/// Weight set for a network: one tensor per linear layer, in
/// [`Network::linear_layers`] order (projection convs included).
#[derive(Debug, Clone)]
pub struct Weights {
    tensors: Vec<Tensor>,
    /// Magnitude bound used at generation time (weights are in
    /// `[-bound, bound]`).
    bound: i64,
}

impl Weights {
    /// Samples uniform integer weights in `[-bound, bound]` for every
    /// linear layer, reproducibly from `seed`.
    pub fn random(net: &Network, bound: i64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors = net
            .linear_layers()
            .iter()
            .map(|l| {
                let shape: Vec<usize> = match l {
                    LinearLayer::Conv(c) => vec![c.co, c.ci, c.fw, c.fw],
                    LinearLayer::Fc(f) => vec![f.no, f.ni],
                };
                let len: usize = shape.iter().product();
                Tensor::from_data(
                    &shape,
                    (0..len).map(|_| rng.random_range(-bound..=bound)).collect(),
                )
            })
            .collect();
        Self { tensors, bound }
    }

    /// The weight tensor for the `i`-th linear layer.
    pub fn layer(&self, i: usize) -> &Tensor {
        &self.tensors[i]
    }

    /// Number of weight tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether there are no weights.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// The magnitude bound the weights were drawn with.
    pub fn bound(&self) -> i64 {
        self.bound
    }

    /// Bits needed to represent a weight (`ceil(log2(bound)) + 1` sign bit).
    pub fn weight_bits(&self) -> u32 {
        64 - (self.bound.unsigned_abs()).leading_zeros() + 1
    }

    /// Structured pruning to (at least) a target sparsity fraction,
    /// reproducible from `seed`. Pruning follows the units the
    /// homomorphic layers can actually skip, not scattered scalars:
    ///
    /// * FC tensors (`[no, ni]`) zero whole **generalized diagonals** —
    ///   and because diagonals `k` and `k + a·no` read the same matrix
    ///   cells (they are cyclic shifts of one another), the unit is the
    ///   *alias class* `k mod gcd(no, ni)`: classes die whole, so the
    ///   diagonal structure analyzer sees every member dead.
    /// * Conv tensors (`[co, ci, fw, fw]`) zero whole **taps** per output
    ///   channel (the `(o, tap)` mask across all input channels) — the
    ///   unit one rotation-and-multiply serves.
    ///
    /// `frac` of each tensor's units (rounded down) are chosen by a
    /// seeded Fisher–Yates pass per layer; `frac ≥ 1.0` zeroes the layer
    /// entirely.
    pub fn prune_to_sparsity(&mut self, frac: f64, seed: u64) {
        let frac = frac.clamp(0.0, 1.0);
        for (idx, tensor) in self.tensors.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9e37_79b9));
            match *tensor.shape() {
                [no, ni] => {
                    let g = gcd(no, ni);
                    let dead = pick_units(g, frac, &mut rng);
                    let data = tensor.data_mut();
                    for r in 0..no {
                        for c in 0..ni {
                            // Cell (r, c) lies on exactly the diagonals
                            // k ≡ c − r (mod gcd(no, ni)).
                            let class = ((c % g) + g - (r % g)) % g;
                            if dead[class] {
                                data[r * ni + c] = 0;
                            }
                        }
                    }
                }
                [co, _ci, fw, fh] => {
                    let taps = fw * fh;
                    let dead = pick_units(co * taps, frac, &mut rng);
                    let data = tensor.data_mut();
                    let per_out = data.len() / co;
                    for (i, v) in data.iter_mut().enumerate() {
                        let o = i / per_out;
                        let tap = i % taps;
                        if dead[o * taps + tap] {
                            *v = 0;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Rounds every weight to the nearest signed power of two (ties keep
    /// the smaller magnitude; zero stays zero), clamped to `2^max_exp` —
    /// the shift-add weight regime of pow2 `mul_plain`.
    pub fn round_to_pow2(&mut self, max_exp: u32) {
        for tensor in &mut self.tensors {
            for w in tensor.data_mut() {
                *w = round_weight_to_pow2(*w, max_exp);
            }
        }
        self.bound = self.bound.min(1i64 << max_exp);
    }

    /// Fraction of zero weights across all layers.
    pub fn sparsity(&self) -> f64 {
        let (zeros, total) = self.tensors.iter().fold((0usize, 0usize), |(z, t), w| {
            (
                z + w.data().iter().filter(|&&v| v == 0).count(),
                t + w.data().len(),
            )
        });
        if total == 0 {
            0.0
        } else {
            zeros as f64 / total as f64
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Seeded Fisher–Yates selection of `⌊frac·n⌋` dead units out of `n`.
fn pick_units(n: usize, frac: f64, rng: &mut StdRng) -> Vec<bool> {
    let kill = ((n as f64) * frac).floor() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut dead = vec![false; n];
    for &u in order.iter().take(kill) {
        dead[u] = true;
    }
    dead
}

/// Nearest signed power of two (linear distance, ties toward the smaller
/// magnitude); zero stays zero; magnitude clamped to `2^max_exp`.
pub fn round_weight_to_pow2(w: i64, max_exp: u32) -> i64 {
    if w == 0 {
        return 0;
    }
    let mag = w.unsigned_abs();
    let floor_exp = 63 - mag.leading_zeros();
    let exp = if floor_exp >= max_exp {
        max_exp
    } else {
        let lo = 1u64 << floor_exp;
        let hi = lo << 1;
        if mag - lo <= hi - mag {
            floor_exp
        } else {
            floor_exp + 1
        }
    };
    let q = 1i64 << exp.min(max_exp);
    if w < 0 {
        -q
    } else {
        q
    }
}

/// Accuracy cost of the pow2 weight regime for one model: compares a
/// plaintext forward pass with integer weights against the same weights
/// rounded to signed powers of two, over deterministic inputs.
#[derive(Debug, Clone)]
pub struct Pow2Report {
    /// Model name.
    pub model: String,
    /// Fraction of output entries that match exactly.
    pub exact_match: f64,
    /// Mean relative error of the pow2 outputs (`|Δ| / max(1, |ref|)`).
    pub mean_rel_err: f64,
    /// Worst relative error over all outputs and inputs.
    pub max_rel_err: f64,
    /// Fraction of zero weights after rounding (pow2 keeps zeros).
    pub sparsity: f64,
}

/// Builds the pow2 accuracy-vs-speed report for a network: `count`
/// deterministic inputs, integer weights vs their pow2 rounding.
pub fn pow2_accuracy_report(
    net: &Network,
    weights: &Weights,
    max_exp: u32,
    input_bound: i64,
    seed: u64,
    count: usize,
) -> Pow2Report {
    let mut p2 = weights.clone();
    p2.round_to_pow2(max_exp);
    let mut exact = 0usize;
    let mut total = 0usize;
    let mut err_sum = 0.0f64;
    let mut err_max = 0.0f64;
    for i in 0..count {
        let input = random_input(&net.input_shape, input_bound, seed + i as u64);
        let reference = infer(net, weights, &input).output;
        let rounded = infer(net, &p2, &input).output;
        for (&r, &p) in reference.data().iter().zip(rounded.data()) {
            let rel = (r - p).abs() as f64 / (r.abs().max(1)) as f64;
            if rel == 0.0 {
                exact += 1;
            }
            err_sum += rel;
            err_max = err_max.max(rel);
            total += 1;
        }
    }
    Pow2Report {
        model: net.name.clone(),
        exact_match: exact as f64 / total.max(1) as f64,
        mean_rel_err: err_sum / total.max(1) as f64,
        max_rel_err: err_max,
        sparsity: p2.sparsity(),
    }
}

/// Result of a plaintext forward pass.
#[derive(Debug, Clone)]
pub struct InferenceTrace {
    /// Final output activations.
    pub output: Tensor,
    /// Activation after every layer (index-aligned with
    /// [`Network::layers`]).
    pub activations: Vec<Tensor>,
    /// Per-linear-layer output magnitude (`‖·‖_∞`), used to derive the
    /// plaintext-modulus precision HE-PTune must provision.
    pub linear_out_magnitudes: Vec<i64>,
}

/// Runs plaintext fixed-point inference.
///
/// # Panics
///
/// Panics if shapes are inconsistent or a residual link points forward.
pub fn infer(net: &Network, weights: &Weights, input: &Tensor) -> InferenceTrace {
    let mut act = input.clone();
    let mut activations: Vec<Tensor> = Vec::with_capacity(net.layers.len());
    let mut linear_out_magnitudes = Vec::new();
    let mut linear_idx = 0usize;
    for layer in &net.layers {
        act = match layer {
            Layer::Linear(LinearLayer::Conv(c)) => {
                let out = conv2d(&act, weights.layer(linear_idx), c.stride, c.pad);
                linear_idx += 1;
                linear_out_magnitudes.push(out.abs_max());
                out
            }
            Layer::Linear(LinearLayer::Fc(_)) => {
                let out = fully_connected(&act, weights.layer(linear_idx));
                linear_idx += 1;
                linear_out_magnitudes.push(out.abs_max());
                out
            }
            Layer::Relu => relu(&act),
            Layer::MaxPool { k, stride } => max_pool(&act, *k, *stride),
            Layer::SumPool { k, stride } => sum_pool(&act, *k, *stride),
            Layer::Flatten => act.clone().into_flat(),
            Layer::ResidualAdd { from, projection } => {
                assert!(
                    *from < activations.len(),
                    "residual link must point backward"
                );
                let skip = &activations[*from];
                let skip = match projection {
                    Some(p) => {
                        let out = conv2d(skip, weights.layer(linear_idx), p.stride, p.pad);
                        linear_idx += 1;
                        linear_out_magnitudes.push(out.abs_max());
                        out
                    }
                    None => skip.clone(),
                };
                act.add(&skip)
            }
        };
        activations.push(act.clone());
    }
    InferenceTrace {
        output: act,
        activations,
        linear_out_magnitudes,
    }
}

/// Generates a deterministic input tensor with values in `[-bound, bound]`.
pub fn random_input(shape: &[usize], bound: i64, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let len: usize = shape.iter().product();
    Tensor::from_data(
        shape,
        (0..len).map(|_| rng.random_range(-bound..=bound)).collect(),
    )
}

/// A deterministic multi-client workload: `count` input tensors, client
/// `i` drawn from seed `base_seed + i`. Serving suites and throughput
/// benches use this so every client's input is reproducible in isolation
/// (re-running client `i` alone regenerates exactly its tensor).
pub fn client_inputs(shape: &[usize], bound: i64, base_seed: u64, count: usize) -> Vec<Tensor> {
    (0..count)
        .map(|i| random_input(shape, bound, base_seed + i as u64))
        .collect()
}

/// Reference single-layer evaluation for HE cross-checks: applies one
/// linear layer (with the given weight tensor) to an input.
pub fn eval_linear(layer: &LinearLayer, weight: &Tensor, input: &Tensor) -> Tensor {
    match layer {
        LinearLayer::Conv(c) => conv2d(input, weight, c.stride, c.pad),
        LinearLayer::Fc(_) => fully_connected(input, weight),
    }
}

/// Builds an all-ones weight tensor for a conv spec (handy in HE layer
/// tests where slot bookkeeping, not weight variety, is under test).
pub fn ones_conv_weight(c: &ConvSpec) -> Tensor {
    Tensor::from_data(
        &[c.co, c.ci, c.fw, c.fw],
        vec![1; c.co * c.ci * c.fw * c.fw],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{lenet5, resnet50, tiny_cnn};

    #[test]
    fn tiny_cnn_forward_pass_shapes() {
        let net = tiny_cnn();
        let weights = Weights::random(&net, 3, 1);
        let input = random_input(&net.input_shape, 7, 2);
        let trace = infer(&net, &weights, &input);
        assert_eq!(trace.output.shape(), &[4]);
        assert_eq!(trace.activations.len(), net.layers.len());
        assert_eq!(trace.linear_out_magnitudes.len(), 3);
    }

    #[test]
    fn lenet5_forward_pass() {
        let net = lenet5();
        let weights = Weights::random(&net, 2, 3);
        let input = random_input(&net.input_shape, 4, 4);
        let trace = infer(&net, &weights, &input);
        assert_eq!(trace.output.shape(), &[10]);
        // Output magnitudes must be bounded by dot-length * products.
        for (l, &m) in net.linear_layers().iter().zip(&trace.linear_out_magnitudes) {
            assert!(m >= 0);
            let bound = l.dot_length() as i64 * 2 * 4 * 20; // slack for relu'd activations
            assert!(m <= bound.max(1) * 100, "layer {} magnitude {m}", l.name());
        }
    }

    #[test]
    fn resnet50_residual_links_are_backward_and_consistent() {
        let net = resnet50();
        for (i, l) in net.layers.iter().enumerate() {
            if let Layer::ResidualAdd { from, .. } = l {
                assert!(*from < i, "layer {i} links forward to {from}");
            }
        }
    }

    #[test]
    fn resnet50_tiny_slice_runs() {
        // Run just the stem + first bottleneck on a downscaled input to
        // validate residual plumbing without a 4-GMAC pass in debug mode.
        let full = resnet50();
        let mut layers = full.layers[..10].to_vec(); // stem + first block + relu
                                                     // Rescale stem conv to a 16x16 input.
        if let Layer::Linear(LinearLayer::Conv(c)) = &mut layers[0] {
            c.w = 16;
        }
        // Rescale block convs from 56 -> 4.
        for l in layers.iter_mut().skip(1) {
            match l {
                Layer::Linear(LinearLayer::Conv(c)) => c.w = 4,
                Layer::ResidualAdd {
                    projection: Some(p),
                    ..
                } => p.w = 4,
                _ => {}
            }
        }
        let net = Network {
            name: "ResNetStem".into(),
            input_shape: vec![3, 16, 16],
            layers,
        };
        let weights = Weights::random(&net, 2, 5);
        let input = random_input(&net.input_shape, 3, 6);
        let trace = infer(&net, &weights, &input);
        assert_eq!(trace.output.shape(), &[256, 4, 4]);
    }

    #[test]
    fn residual_add_is_sum_of_paths() {
        // A network that is just  x -> conv(1x1, w=1) -> add skip  should
        // produce 2x when the conv weight is 1.
        let net = Network {
            name: "skip".into(),
            input_shape: vec![1, 4, 4],
            layers: vec![
                Layer::conv("c", 4, 1, 1, 1, 1, 0),
                Layer::ResidualAdd {
                    from: 0,
                    projection: None,
                },
            ],
        };
        // ResidualAdd{from: 0} adds the conv output to itself -> 2*conv(x).
        let mut weights = Weights::random(&net, 1, 7);
        weights.tensors[0] = Tensor::from_data(&[1, 1, 1, 1], vec![1]);
        let input = random_input(&[1, 4, 4], 5, 8);
        let trace = infer(&net, &weights, &input);
        let expect: Vec<i64> = input.data().iter().map(|&v| 2 * v).collect();
        assert_eq!(trace.output.data(), &expect[..]);
    }

    #[test]
    fn weight_bits_formula() {
        let net = tiny_cnn();
        let w = Weights::random(&net, 7, 1);
        assert_eq!(w.weight_bits(), 4); // 3 magnitude bits + sign
        let w = Weights::random(&net, 8, 1);
        assert_eq!(w.weight_bits(), 5);
    }

    #[test]
    fn structured_pruning_kills_whole_units_deterministically() {
        // FC: a square layer's units are its ni generalized diagonals.
        let net = Network {
            name: "fc".into(),
            input_shape: vec![16],
            layers: vec![Layer::fc("f", 16, 16)],
        };
        let mut w = Weights::random(&net, 7, 11);
        let mut w2 = w.clone();
        w.prune_to_sparsity(0.5, 99);
        w2.prune_to_sparsity(0.5, 99);
        assert_eq!(w.layer(0).data(), w2.layer(0).data(), "seeded prune");
        let data = w.layer(0).data();
        let mut dead_diags = 0;
        for k in 0..16 {
            let cells: Vec<i64> = (0..16)
                .map(|j| data[(j % 16) * 16 + (j + k) % 16])
                .collect();
            let zero = cells.iter().all(|&v| v == 0);
            let live = cells.iter().any(|&v| v != 0);
            assert!(zero || live);
            if zero {
                dead_diags += 1;
            }
        }
        assert_eq!(dead_diags, 8, "half the diagonal units die whole");

        // Conv: units are (output, tap) masks across all input channels.
        let cnet = tiny_cnn();
        let mut cw = Weights::random(&cnet, 3, 12);
        cw.prune_to_sparsity(0.9, 7);
        assert!(cw.sparsity() > 0.6, "90% unit pruning shows up in weights");
        let conv = cw.layer(0);
        if let &[co, ci, fw, fh] = conv.shape() {
            let taps = fw * fh;
            for o in 0..co {
                for tap in 0..taps {
                    let vals: Vec<i64> = (0..ci)
                        .map(|c| conv.data()[o * ci * taps + c * taps + tap])
                        .collect();
                    let zero = vals.iter().all(|&v| v == 0);
                    let any = vals.iter().any(|&v| v != 0);
                    assert!(zero || any, "tap units die whole");
                }
            }
        }

        // frac = 1.0 zeroes everything.
        let mut all = Weights::random(&cnet, 3, 13);
        all.prune_to_sparsity(1.0, 1);
        assert_eq!(all.sparsity(), 1.0);
    }

    #[test]
    fn pow2_rounding_and_report() {
        let net = tiny_cnn();
        let mut w = Weights::random(&net, 15, 21);
        w.round_to_pow2(3);
        for i in 0..w.len() {
            for &v in w.layer(i).data() {
                assert!(
                    v == 0 || (v.unsigned_abs().is_power_of_two() && v.abs() <= 8),
                    "rounded weight {v} is not a bounded signed power of two"
                );
            }
        }
        let w = Weights::random(&net, 15, 21);
        let report = pow2_accuracy_report(&net, &w, 3, 5, 33, 4);
        assert_eq!(report.model, net.name);
        assert!(report.mean_rel_err >= 0.0 && report.mean_rel_err <= report.max_rel_err);
        assert!(
            report.max_rel_err < 2.0,
            "pow2 rounding halves a weight at worst; outputs stay the same scale (got {})",
            report.max_rel_err
        );
        assert!((0.0..=1.0).contains(&report.exact_match));
        // Pure pow2 weights round to themselves: a report on already-pow2
        // weights is exact.
        let mut p2 = Weights::random(&net, 15, 22);
        p2.round_to_pow2(3);
        let exact = pow2_accuracy_report(&net, &p2, 3, 5, 34, 2);
        assert_eq!(exact.exact_match, 1.0);
        assert_eq!(exact.max_rel_err, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let net = tiny_cnn();
        let w1 = Weights::random(&net, 3, 42);
        let w2 = Weights::random(&net, 3, 42);
        let i1 = random_input(&net.input_shape, 5, 43);
        let i2 = random_input(&net.input_shape, 5, 43);
        assert_eq!(infer(&net, &w1, &i1).output, infer(&net, &w2, &i2).output);
    }
}
