//! Layer descriptors — the shapes the HE-PTune models consume.
//!
//! The paper parameterizes CNN layers as `(w, f_w, c_i, c_o)` (input image
//! width, filter width, input/output channels) and FC layers as
//! `(n_i, n_o)` (Table IV). [`ConvSpec`] / [`FcSpec`] carry exactly those
//! plus stride/padding for the plaintext reference.

use std::fmt;

/// A convolutional layer `(w, f_w, c_i, c_o)` with stride and padding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Layer name (e.g. `"conv2_1"`).
    pub name: String,
    /// Input spatial width `w` (inputs are `w × w × c_i`).
    pub w: usize,
    /// Filter width `f_w` (filters are `f_w × f_w`).
    pub fw: usize,
    /// Input channels `c_i`.
    pub ci: usize,
    /// Output channels `c_o`.
    pub co: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl ConvSpec {
    /// Output spatial width.
    pub fn w_out(&self) -> usize {
        (self.w + 2 * self.pad - self.fw) / self.stride + 1
    }

    /// Plaintext multiply-accumulates: `w_out²·f_w²·c_i·c_o`.
    pub fn macs(&self) -> u64 {
        let wo = self.w_out() as u64;
        wo * wo * (self.fw * self.fw * self.ci * self.co) as u64
    }

    /// Number of activations entering the layer.
    pub fn input_len(&self) -> usize {
        self.w * self.w * self.ci
    }

    /// Number of activations leaving the layer.
    pub fn output_len(&self) -> usize {
        self.w_out() * self.w_out() * self.co
    }

    /// Length of each output neuron's dot product (`f_w²·c_i`) — drives the
    /// plaintext-modulus precision requirement.
    pub fn dot_length(&self) -> usize {
        self.fw * self.fw * self.ci
    }
}

impl fmt::Display for ConvSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: conv {}x{}x{} -> {} (f={}, s={}, p={})",
            self.name, self.w, self.w, self.ci, self.co, self.fw, self.stride, self.pad
        )
    }
}

/// A fully connected layer `(n_i, n_o)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FcSpec {
    /// Layer name (e.g. `"fc6"`).
    pub name: String,
    /// Input activations `n_i`.
    pub ni: usize,
    /// Output activations `n_o`.
    pub no: usize,
}

impl FcSpec {
    /// Plaintext multiply-accumulates: `n_i·n_o`.
    pub fn macs(&self) -> u64 {
        (self.ni * self.no) as u64
    }

    /// Length of each output neuron's dot product (`n_i`).
    pub fn dot_length(&self) -> usize {
        self.ni
    }
}

impl fmt::Display for FcSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: fc {} -> {}", self.name, self.ni, self.no)
    }
}

/// A linear (HE-evaluated) layer: the unit HE-PTune tunes parameters for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LinearLayer {
    /// Convolution.
    Conv(ConvSpec),
    /// Fully connected.
    Fc(FcSpec),
}

impl LinearLayer {
    /// The layer name.
    pub fn name(&self) -> &str {
        match self {
            LinearLayer::Conv(c) => &c.name,
            LinearLayer::Fc(f) => &f.name,
        }
    }

    /// Plaintext MAC count.
    pub fn macs(&self) -> u64 {
        match self {
            LinearLayer::Conv(c) => c.macs(),
            LinearLayer::Fc(f) => f.macs(),
        }
    }

    /// Dot-product length (accumulation depth) of one output neuron.
    pub fn dot_length(&self) -> usize {
        match self {
            LinearLayer::Conv(c) => c.dot_length(),
            LinearLayer::Fc(f) => f.dot_length(),
        }
    }

    /// Number of output activations.
    pub fn output_len(&self) -> usize {
        match self {
            LinearLayer::Conv(c) => c.output_len(),
            LinearLayer::Fc(f) => f.no,
        }
    }

    /// Number of input activations.
    pub fn input_len(&self) -> usize {
        match self {
            LinearLayer::Conv(c) => c.input_len(),
            LinearLayer::Fc(f) => f.ni,
        }
    }

    /// Minimum plaintext-modulus bits for a correct (overflow-free) output,
    /// given weight/activation magnitudes of `w_bits`/`a_bits`:
    /// the worst-case dot product is `dot_len · 2^(w_bits + a_bits)`, and
    /// signed values need one more bit.
    pub fn required_plain_bits(&self, w_bits: u32, a_bits: u32) -> u32 {
        let dot_bits = (self.dot_length() as f64).log2().ceil() as u32;
        w_bits + a_bits + dot_bits + 1
    }
}

/// A full network layer (linear layers run under HE on the cloud; the rest
/// run in the client's garbled circuit).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Layer {
    /// HE-evaluated linear layer.
    Linear(LinearLayer),
    /// ReLU (client-side GC).
    Relu,
    /// Max pooling (client-side GC).
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Sum pooling (can run under HE; scale handled by quantizer).
    SumPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Flatten to a vector.
    Flatten,
    /// Residual addition with the *output* of an earlier layer index,
    /// optionally passing the skip branch through a projection (downsample)
    /// convolution first — enough to express ResNet bottleneck blocks in a
    /// sequential layer list.
    ResidualAdd {
        /// Index into the network's layer list whose output is added.
        from: usize,
        /// Optional 1×1 projection applied to the skip activation.
        projection: Option<ConvSpec>,
    },
}

impl Layer {
    /// Convenience constructor for a conv layer.
    pub fn conv(
        name: &str,
        w: usize,
        fw: usize,
        ci: usize,
        co: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Layer::Linear(LinearLayer::Conv(ConvSpec {
            name: name.to_owned(),
            w,
            fw,
            ci,
            co,
            stride,
            pad,
        }))
    }

    /// Convenience constructor for an FC layer.
    pub fn fc(name: &str, ni: usize, no: usize) -> Self {
        Layer::Linear(LinearLayer::Fc(FcSpec {
            name: name.to_owned(),
            ni,
            no,
        }))
    }

    /// The linear layer inside, if any.
    pub fn as_linear(&self) -> Option<&LinearLayer> {
        match self {
            Layer::Linear(l) => Some(l),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> ConvSpec {
        ConvSpec {
            name: "c".into(),
            w: 14,
            fw: 3,
            ci: 16,
            co: 32,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn conv_shapes() {
        let c = conv();
        assert_eq!(c.w_out(), 14); // same padding
        assert_eq!(c.macs(), 14 * 14 * 9 * 16 * 32);
        assert_eq!(c.input_len(), 14 * 14 * 16);
        assert_eq!(c.output_len(), 14 * 14 * 32);
        assert_eq!(c.dot_length(), 9 * 16);
    }

    #[test]
    fn strided_conv_shrinks() {
        let c = ConvSpec {
            name: "s".into(),
            w: 224,
            fw: 7,
            ci: 3,
            co: 64,
            stride: 2,
            pad: 3,
        };
        assert_eq!(c.w_out(), 112);
    }

    #[test]
    fn fc_macs() {
        let f = FcSpec {
            name: "f".into(),
            ni: 784,
            no: 300,
        };
        assert_eq!(f.macs(), 784 * 300);
        assert_eq!(f.dot_length(), 784);
    }

    #[test]
    fn required_plain_bits_grows_with_depth() {
        let shallow = LinearLayer::Fc(FcSpec {
            name: "a".into(),
            ni: 16,
            no: 4,
        });
        let deep = LinearLayer::Fc(FcSpec {
            name: "b".into(),
            ni: 4096,
            no: 4,
        });
        let (wb, ab) = (4, 4);
        assert_eq!(shallow.required_plain_bits(wb, ab), 4 + 4 + 4 + 1);
        assert_eq!(deep.required_plain_bits(wb, ab), 4 + 4 + 12 + 1);
    }

    #[test]
    fn layer_constructors() {
        let l = Layer::conv("c1", 28, 5, 1, 20, 1, 0);
        let lin = l.as_linear().unwrap();
        assert_eq!(lin.name(), "c1");
        assert_eq!(lin.output_len(), 24 * 24 * 20);
        assert!(Layer::Relu.as_linear().is_none());
    }
}
