//! A minimal integer tensor for fixed-point plaintext inference.
//!
//! HE inference in the Gazelle/Cheetah setting computes over integers mod
//! `t`, so the plaintext reference works in `i64` fixed point — every HE
//! result can be compared against it exactly (no float tolerance games).

use std::fmt;

/// Dense integer tensor in channel-major (`c`, `h`, `w`) layout.
///
/// # Examples
///
/// ```
/// use cheetah_nn::tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3, 3]);
/// assert_eq!(t.len(), 18);
/// assert_eq!(t.shape(), &[2, 3, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<i64>,
}

impl Tensor {
    /// All-zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "shape must be non-empty");
        assert!(shape.iter().all(|&d| d > 0), "dimensions must be positive");
        Self {
            shape: shape.to_vec(),
            data: vec![0; shape.iter().product()],
        }
    }

    /// Builds a tensor from data (length must match the shape product).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn from_data(shape: &[usize], data: Vec<i64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "data length must match shape product"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element access.
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// Mutable element access.
    pub fn data_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Reinterprets as a flat vector (consumes).
    pub fn into_flat(mut self) -> Tensor {
        let len = self.data.len();
        self.shape = vec![len];
        self
    }

    /// 3-D index `(c, y, x)`; requires a rank-3 tensor.
    #[inline]
    pub fn at3(&self, c: usize, y: usize, x: usize) -> i64 {
        debug_assert_eq!(self.shape.len(), 3);
        let (h, w) = (self.shape[1], self.shape[2]);
        self.data[(c * h + y) * w + x]
    }

    /// Mutable 3-D access.
    #[inline]
    pub fn at3_mut(&mut self, c: usize, y: usize, x: usize) -> &mut i64 {
        debug_assert_eq!(self.shape.len(), 3);
        let (h, w) = (self.shape[1], self.shape[2]);
        &mut self.data[(c * h + y) * w + x]
    }

    /// Largest absolute value (0 for the all-zero tensor).
    pub fn abs_max(&self) -> i64 {
        self.data.iter().map(|v| v.abs()).max().unwrap_or(0)
    }

    /// Element-wise addition; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

/// 2-D convolution with zero padding: input `(ci, h, w)`, weights
/// `(co, ci, fh, fw)`, output `(co, ho, wo)`.
///
/// # Panics
///
/// Panics on rank/shape mismatches or zero stride.
pub fn conv2d(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
    assert_eq!(input.shape().len(), 3, "conv2d input must be (ci,h,w)");
    assert_eq!(
        weight.shape().len(),
        4,
        "conv2d weight must be (co,ci,fh,fw)"
    );
    assert!(stride > 0, "stride must be positive");
    let (ci, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (co, wci, fh, fw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(ci, wci, "channel mismatch");
    let ho = (h + 2 * pad - fh) / stride + 1;
    let wo = (w + 2 * pad - fw) / stride + 1;
    let mut out = Tensor::zeros(&[co, ho, wo]);
    let wdata = weight.data();
    for oc in 0..co {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0i64;
                for icc in 0..ci {
                    for ky in 0..fh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..fw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let wv = wdata[((oc * ci + icc) * fh + ky) * fw + kx];
                            acc += input.at3(icc, iy as usize, ix as usize) * wv;
                        }
                    }
                }
                *out.at3_mut(oc, oy, ox) = acc;
            }
        }
    }
    out
}

/// Fully connected layer: input length `ni`, weights `(no, ni)`,
/// output length `no`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn fully_connected(input: &Tensor, weight: &Tensor) -> Tensor {
    assert_eq!(weight.shape().len(), 2, "fc weight must be (no, ni)");
    let ni = input.len();
    let (no, wni) = (weight.shape()[0], weight.shape()[1]);
    assert_eq!(ni, wni, "fc dimension mismatch: input {ni} vs weight {wni}");
    let mut out = Tensor::zeros(&[no]);
    for o in 0..no {
        let row = &weight.data()[o * ni..(o + 1) * ni];
        out.data_mut()[o] = row.iter().zip(input.data()).map(|(&wv, &xv)| wv * xv).sum();
    }
    out
}

/// Element-wise ReLU.
pub fn relu(input: &Tensor) -> Tensor {
    Tensor {
        shape: input.shape().to_vec(),
        data: input.data().iter().map(|&v| v.max(0)).collect(),
    }
}

/// Max pooling with square window `k`, stride `s` (rank-3 input).
///
/// # Panics
///
/// Panics unless the input is rank 3.
pub fn max_pool(input: &Tensor, k: usize, s: usize) -> Tensor {
    assert_eq!(input.shape().len(), 3);
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let ho = (h - k) / s + 1;
    let wo = (w - k) / s + 1;
    let mut out = Tensor::zeros(&[c, ho, wo]);
    for ch in 0..c {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = i64::MIN;
                for ky in 0..k {
                    for kx in 0..k {
                        best = best.max(input.at3(ch, oy * s + ky, ox * s + kx));
                    }
                }
                *out.at3_mut(ch, oy, ox) = best;
            }
        }
    }
    out
}

/// Sum ("average without division") pooling — division by `k²` would leave
/// the fixed-point domain, so the reference keeps sums; the scale factor is
/// tracked by the quantizer.
///
/// # Panics
///
/// Panics unless the input is rank 3.
pub fn sum_pool(input: &Tensor, k: usize, s: usize) -> Tensor {
    assert_eq!(input.shape().len(), 3);
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let ho = (h - k) / s + 1;
    let wo = (w - k) / s + 1;
    let mut out = Tensor::zeros(&[c, ho, wo]);
    for ch in 0..c {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0i64;
                for ky in 0..k {
                    for kx in 0..k {
                        acc += input.at3(ch, oy * s + ky, ox * s + kx);
                    }
                }
                *out.at3_mut(ch, oy, ox) = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let input = Tensor::from_data(&[1, 3, 3], (1..=9).collect());
        let weight = Tensor::from_data(&[1, 1, 1, 1], vec![1]);
        let out = conv2d(&input, &weight, 1, 0);
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_known_3x3() {
        // All-ones 3x3 kernel, 'same' padding: center = sum of all 9.
        let input = Tensor::from_data(&[1, 3, 3], vec![1; 9]);
        let weight = Tensor::from_data(&[1, 1, 3, 3], vec![1; 9]);
        let out = conv2d(&input, &weight, 1, 1);
        assert_eq!(out.shape(), &[1, 3, 3]);
        assert_eq!(out.at3(0, 1, 1), 9);
        assert_eq!(out.at3(0, 0, 0), 4); // corner sees 2x2
        assert_eq!(out.at3(0, 0, 1), 6); // edge sees 2x3
    }

    #[test]
    fn conv2d_stride_and_channels() {
        // 2 input channels, 3 output channels, stride 2.
        let input = Tensor::from_data(&[2, 4, 4], (0..32).collect());
        let weight = Tensor::from_data(&[3, 2, 2, 2], vec![1; 24]);
        let out = conv2d(&input, &weight, 2, 0);
        assert_eq!(out.shape(), &[3, 2, 2]);
        // Each output = sum over both channels of a 2x2 patch.
        let expect = (1 + 4 + 5) + (16 + 17 + 20 + 21);
        assert_eq!(out.at3(0, 0, 0), expect);
        assert_eq!(out.at3(1, 0, 0), expect); // same kernel weights
    }

    #[test]
    fn fc_known_values() {
        let input = Tensor::from_data(&[3], vec![1, 2, 3]);
        let weight = Tensor::from_data(&[2, 3], vec![1, 0, 0, 1, 1, 1]);
        let out = fully_connected(&input, &weight);
        assert_eq!(out.data(), &[1, 6]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_data(&[4], vec![-5, 0, 3, -1]);
        assert_eq!(relu(&t).data(), &[0, 0, 3, 0]);
    }

    #[test]
    fn max_pool_2x2() {
        let t = Tensor::from_data(&[1, 4, 4], (0..16).collect());
        let p = max_pool(&t, 2, 2);
        assert_eq!(p.shape(), &[1, 2, 2]);
        assert_eq!(p.data(), &[5, 7, 13, 15]);
    }

    #[test]
    fn sum_pool_2x2() {
        let t = Tensor::from_data(&[1, 4, 4], vec![1; 16]);
        let p = sum_pool(&t, 2, 2);
        assert_eq!(p.data(), &[4, 4, 4, 4]);
    }

    #[test]
    fn add_and_abs_max() {
        let a = Tensor::from_data(&[3], vec![-7, 2, 3]);
        let b = Tensor::from_data(&[3], vec![1, 1, 1]);
        assert_eq!(a.add(&b).data(), &[-6, 3, 4]);
        assert_eq!(a.abs_max(), 7);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }
}
