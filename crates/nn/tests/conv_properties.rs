//! Property tests on the plaintext reference ops — the ground truth every
//! HE result is compared against must itself obey the algebra.

use cheetah_nn::tensor::{conv2d, fully_connected, max_pool, relu, sum_pool, Tensor};
use proptest::prelude::*;

fn arb_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-16i64..=16, len).prop_map(move |d| Tensor::from_data(shape, d))
}

proptest! {
    #[test]
    fn conv_is_linear_in_the_input(
        a in arb_tensor(&[2, 6, 6]),
        b in arb_tensor(&[2, 6, 6]),
        w in arb_tensor(&[3, 2, 3, 3]),
    ) {
        // conv(a + b) == conv(a) + conv(b)
        let lhs = conv2d(&a.add(&b), &w, 1, 1);
        let rhs = conv2d(&a, &w, 1, 1).add(&conv2d(&b, &w, 1, 1));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn conv_is_linear_in_the_weights(
        x in arb_tensor(&[1, 5, 5]),
        w1 in arb_tensor(&[2, 1, 3, 3]),
        w2 in arb_tensor(&[2, 1, 3, 3]),
    ) {
        let lhs = conv2d(&x, &w1.add(&w2), 1, 1);
        let rhs = conv2d(&x, &w1, 1, 1).add(&conv2d(&x, &w2, 1, 1));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn fc_matches_explicit_dot_products(
        x in arb_tensor(&[8]),
        w in arb_tensor(&[4, 8]),
    ) {
        let y = fully_connected(&x, &w);
        for o in 0..4 {
            let expect: i64 = (0..8).map(|i| w.data()[o * 8 + i] * x.data()[i]).sum();
            prop_assert_eq!(y.data()[o], expect);
        }
    }

    #[test]
    fn relu_is_idempotent_and_dominates(x in arb_tensor(&[16])) {
        let r = relu(&x);
        prop_assert_eq!(relu(&r).clone(), r.clone());
        for (&orig, &rect) in x.data().iter().zip(r.data()) {
            prop_assert!(rect >= 0);
            prop_assert!(rect >= orig);
        }
    }

    #[test]
    fn max_pool_dominates_sum_pool_mean(x in arb_tensor(&[1, 4, 4])) {
        // max of a window >= mean of the window (sum / k²).
        let mx = max_pool(&x, 2, 2);
        let sm = sum_pool(&x, 2, 2);
        for (&m, &s) in mx.data().iter().zip(sm.data()) {
            prop_assert!(4 * m >= s, "4*{m} < {s}");
        }
    }

    #[test]
    fn strided_conv_subsamples_unit_kernel(x in arb_tensor(&[1, 6, 6])) {
        // A 1x1 identity kernel with stride 2 is exactly subsampling.
        let w = Tensor::from_data(&[1, 1, 1, 1], vec![1]);
        let y = conv2d(&x, &w, 2, 0);
        prop_assert_eq!(y.shape(), &[1, 3, 3]);
        for oy in 0..3 {
            for ox in 0..3 {
                prop_assert_eq!(y.at3(0, oy, ox), x.at3(0, 2 * oy, 2 * ox));
            }
        }
    }
}
