//! Validated wire format for everything that crosses the protocol
//! boundary.
//!
//! Every message is a canonical little-endian encoding with a fixed
//! 24-byte header:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"CHWF"` |
//! | 4      | 2    | format version (`u16`: 1 = full kinds, 2 = seeded kinds) |
//! | 6      | 1    | message kind |
//! | 7      | 1    | reserved (ignored on decode) |
//! | 8      | 8    | parameter-chain fingerprint (`u64`) |
//! | 16     | 4    | level (dropped-limb count, `u32`) |
//! | 20     | 4    | live limb planes per polynomial (`u32`) |
//!
//! followed by the message payload: polynomial words in limb-major
//! little-endian order. A level-`ℓ` ciphertext's payload is exactly the
//! `2·live·n·8` bytes the transcript accounting has always charged —
//! the header is the only framing overhead.
//!
//! **Seeded compression (format version 2).** A *fresh* symmetric
//! ciphertext has `c1 = a` drawn uniformly, and a public key has
//! `pk1 = a` likewise — both are pure PRNG output, so shipping the full
//! polynomial is waste. Version-2 messages (kinds
//! [`Kind::SeededCiphertext`] / [`Kind::SeededPublicKey`]) carry an
//! 8-byte expansion seed followed by `c0` alone; the receiver rebuilds
//! the uniform component with [`crate::sampling::expand_uniform`],
//! nearly halving upload bytes (`8 + live·n·8` payload instead of
//! `2·live·n·8`). Seeded ciphertexts are level-0 by construction (only
//! fresh encryptions have a uniform `c1`; anything key-switched or
//! mod-switched does not). Version negotiation is per message: decoders
//! accept both formats by kind — version 1 for full kinds, version 2 for
//! seeded kinds — so old transcripts still decode unchanged.
//!
//! `decode_*` enforces, in order and **before any arithmetic**: length,
//! magic/version/kind, fingerprint match against the session's
//! [`BfvParams`] ([`crate::Error::ChainMismatch`]), level validity
//! ([`crate::Error::InvalidLevel`]), header self-consistency, and
//! canonical residues (`c < q_i` on every limb plane,
//! [`crate::Error::Malformed`]). What validation cannot see — a payload
//! bit flip that stays canonical, swapped components, a level lie with a
//! matching truncated payload — lands in a structurally valid but
//! *cryptographically dead* ciphertext whose measured noise budget
//! collapses, so [`crate::Decryptor::decrypt_checked`] catches it as
//! [`crate::Error::NoiseBudgetExhausted`]. The fault-injection harness in
//! `cheetah-protocol` pins that two-layer contract: every corruption is
//! either *detected* (typed error) or *provably harmless* (bit-identical
//! decrypt); there is no third outcome.
//!
//! Noise estimates are deliberately **not** serialized: they are model
//! state, and trusting a peer's claimed noise would let a lying client
//! steer the server's level planner. [`decode_ciphertext`] attaches the
//! fresh-encryption estimate — exact for the only thing an honest client
//! sends (fresh encryptions), conservative bookkeeping for everything
//! else (receivers about to decrypt measure the real thing anyway).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::ciphertext::Ciphertext;
use crate::encoder::Plaintext;
use crate::error::{Error, Result};
use crate::keys::{check_galois_element, GaloisKey, GaloisKeys, PublicKey};
use crate::noise::NoiseEstimate;
use crate::params::BfvParams;
use crate::poly::{Poly, Representation};
use crate::rns::RnsPoly;

/// Wire magic: the first four bytes of every message.
pub const MAGIC: [u8; 4] = *b"CHWF";
/// Format version of full (two-polynomial) messages.
pub const VERSION: u16 = 1;
/// Format version of seeded (seed + one polynomial) messages.
pub const SEEDED_VERSION: u16 = 2;
/// Fixed header length in bytes.
pub const HEADER_BYTES: usize = 24;
/// Byte length of the expansion seed a seeded payload leads with.
pub const SEED_BYTES: usize = 8;

/// Byte offset of the version field (fault-injection targets).
pub const OFF_VERSION: usize = 4;
/// Byte offset of the kind field.
pub const OFF_KIND: usize = 6;
/// Byte offset of the reserved byte (ignored on decode — the designed
/// *harmless* corruption target).
pub const OFF_RESERVED: usize = 7;
/// Byte offset of the chain fingerprint.
pub const OFF_FINGERPRINT: usize = 8;
/// Byte offset of the level field.
pub const OFF_LEVEL: usize = 16;
/// Byte offset of the live-limb-count field.
pub const OFF_LIVE_LIMBS: usize = 20;

/// Message kinds carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// A BFV ciphertext (two evaluation-form polynomials).
    Ciphertext = 1,
    /// A public key (two full-width evaluation-form polynomials).
    PublicKey = 2,
    /// A Galois key set.
    GaloisKeys = 3,
    /// A packed plaintext mask (one mod-`t` coefficient polynomial).
    PlaintextMask = 4,
    /// A fresh seeded ciphertext: 8-byte expansion seed + `c0` (v2).
    SeededCiphertext = 5,
    /// A seeded public key: 8-byte expansion seed + `pk0` (v2).
    SeededPublicKey = 6,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        match v {
            1 => Some(Kind::Ciphertext),
            2 => Some(Kind::PublicKey),
            3 => Some(Kind::GaloisKeys),
            4 => Some(Kind::PlaintextMask),
            5 => Some(Kind::SeededCiphertext),
            6 => Some(Kind::SeededPublicKey),
            _ => None,
        }
    }

    /// The format version a kind is defined in: seeded kinds are v2,
    /// everything else v1. Decoders hold each message to its kind's
    /// version — that pairing *is* the version negotiation.
    fn version(self) -> u16 {
        match self {
            Kind::SeededCiphertext | Kind::SeededPublicKey => SEEDED_VERSION,
            _ => VERSION,
        }
    }
}

/// FNV-1a fingerprint of a parameter chain: degree, plaintext modulus,
/// every limb prime in order, both decomposition bases, and the special
/// key-switch prime (0 when absent). Two sessions agree on ciphertext
/// semantics iff their fingerprints match (modulo the 64-bit collision
/// bound) — in particular, a hybrid chain and the digit chain over the
/// same data limbs produce bit-identical ciphertexts but *incompatible*
/// key material, so the special prime must separate them on the wire.
pub fn chain_fingerprint(params: &BfvParams) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |w: u64| {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(params.degree() as u64);
    mix(params.plain_modulus().value());
    mix(params.limbs() as u64);
    for q in params.chain().moduli() {
        mix(q.value());
    }
    mix(params.a_dcmp());
    mix(params.w_dcmp());
    mix(params.special().map_or(0, |p| p.value()));
    h
}

fn malformed(what: &'static str, reason: String) -> Error {
    Error::Malformed { what, reason }
}

// ---------------------------------------------------------------------
// Little-endian writer / validating reader
// ---------------------------------------------------------------------

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_words(out: &mut Vec<u8>, words: &[u64]) {
    out.reserve(words.len() * 8);
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn write_header(out: &mut Vec<u8>, kind: Kind, fingerprint: u64, level: usize, live: usize) {
    out.extend_from_slice(&MAGIC);
    push_u16(out, kind.version());
    out.push(kind as u8);
    out.push(0); // reserved
    push_u64(out, fingerprint);
    push_u32(out, level as u32);
    push_u32(out, live as u32);
}

/// A bounds-checked cursor over a received buffer. Every read returns a
/// typed error on underrun — nothing in this module indexes past a length
/// it has not proven.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        match self.buf.get(self.pos..self.pos + n) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(malformed(
                self.what,
                format!(
                    "truncated: needed {} bytes at offset {}, message has {}",
                    n,
                    self.pos,
                    self.buf.len()
                ),
            )),
        }
    }

    fn u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        let mut w = [0u8; 2];
        w.copy_from_slice(s);
        Ok(u16::from_le_bytes(w))
    }

    fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        let mut w = [0u8; 4];
        w.copy_from_slice(s);
        Ok(u32::from_le_bytes(w))
    }

    fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(s);
        Ok(u64::from_le_bytes(w))
    }

    fn words(&mut self, count: usize) -> Result<Vec<u64>> {
        let s = self.take(count * 8)?;
        let mut out = Vec::with_capacity(count);
        let mut w = [0u8; 8];
        for chunk in s.chunks_exact(8) {
            w.copy_from_slice(chunk);
            out.push(u64::from_le_bytes(w));
        }
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Validated header fields.
struct Header {
    level: usize,
    live: usize,
}

/// Reads and validates the common header: magic, version, kind,
/// fingerprint against `params`, level validity, and live-limb
/// consistency with the level.
fn read_header(r: &mut Reader<'_>, kind: Kind, params: &BfvParams) -> Result<Header> {
    let what = r.what;
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(malformed(what, format!("bad magic {magic:02x?}")));
    }
    let version = r.u16()?;
    if version != VERSION && version != SEEDED_VERSION {
        return Err(malformed(
            what,
            format!(
                "unsupported format version {version} (this engine speaks {VERSION} and {SEEDED_VERSION})"
            ),
        ));
    }
    if version != kind.version() {
        return Err(malformed(
            what,
            format!(
                "format version {version} where {kind:?} is a version-{} kind",
                kind.version()
            ),
        ));
    }
    let kind_byte = r.take(1)?[0];
    match Kind::from_u8(kind_byte) {
        Some(k) if k == kind => {}
        Some(k) => {
            return Err(malformed(
                what,
                format!("message kind {k:?} where {kind:?} was expected"),
            ))
        }
        None => return Err(malformed(what, format!("unknown message kind {kind_byte}"))),
    }
    let _reserved = r.take(1)?; // ignored: compat padding
    let found = r.u64()?;
    let expected = chain_fingerprint(params);
    if found != expected {
        return Err(Error::ChainMismatch { expected, found });
    }
    let level = r.u32()? as usize;
    if level >= params.levels() {
        return Err(Error::InvalidLevel {
            requested: level,
            current: 0,
            max: params.max_level(),
        });
    }
    let live = r.u32()? as usize;
    if live != params.live_limbs_at(level) {
        return Err(malformed(
            what,
            format!(
                "header claims {live} live limbs at level {level}; the chain has {}",
                params.live_limbs_at(level)
            ),
        ));
    }
    Ok(Header { level, live })
}

/// Errors unless every word of every live limb plane is a canonical
/// residue (`< q_i`). Runs before the words reach any arithmetic.
fn check_canonical(
    words: &[u64],
    chain: &crate::rns::ModulusChain,
    live: usize,
    what: &'static str,
) -> Result<()> {
    let n = chain.degree();
    for i in 0..live {
        let q = chain.modulus(i).value();
        let plane = words
            .get(i * n..(i + 1) * n)
            .ok_or_else(|| malformed(what, format!("limb plane {i} missing from payload")))?;
        if let Some(j) = plane.iter().position(|&w| w >= q) {
            return Err(malformed(
                what,
                format!(
                    "non-canonical residue {} >= q_{i} = {q} at coefficient {j}",
                    plane[j]
                ),
            ));
        }
    }
    Ok(())
}

/// Reads one evaluation-form polynomial of `live` planes, canonical-checks
/// it, and assembles the `RnsPoly`.
fn read_poly(
    r: &mut Reader<'_>,
    params: &BfvParams,
    live: usize,
    repr: Representation,
) -> Result<RnsPoly> {
    read_poly_on(r, params.chain(), live, repr)
}

/// [`read_poly`] against an explicit chain — hybrid Galois key pairs live
/// on the `P`-extended key-switch chain, whose last plane is canonical
/// against the special prime, not any data limb.
fn read_poly_on(
    r: &mut Reader<'_>,
    chain: &crate::rns::ModulusChain,
    live: usize,
    repr: Representation,
) -> Result<RnsPoly> {
    let n = chain.degree();
    let words = r.words(live * n)?;
    check_canonical(&words, chain, live, r.what)?;
    Ok(RnsPoly::from_data(words, live, n, repr))
}

/// Errors unless the message has been consumed exactly — trailing bytes
/// are as malformed as missing ones.
fn expect_consumed(r: &Reader<'_>) -> Result<()> {
    if r.remaining() != 0 {
        return Err(malformed(
            r.what,
            format!("{} trailing bytes after payload", r.remaining()),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Ciphertexts
// ---------------------------------------------------------------------

/// Exact encoded size of a level-`level` ciphertext:
/// header + the `2·live·n·8` payload the transcript accounting charges.
pub fn ciphertext_wire_bytes(params: &BfvParams, level: usize) -> usize {
    HEADER_BYTES + 2 * params.live_limbs_at(level) * params.degree() * 8
}

/// Encodes a ciphertext canonically: header, then `c0` and `c1` words in
/// limb-major little-endian order.
pub fn encode_ciphertext(ct: &Ciphertext) -> Vec<u8> {
    let params = ct.params();
    let mut out = Vec::with_capacity(ciphertext_wire_bytes(params, ct.level()));
    write_header(
        &mut out,
        Kind::Ciphertext,
        chain_fingerprint(params),
        ct.level(),
        ct.live_limbs(),
    );
    push_words(&mut out, ct.c0().data());
    push_words(&mut out, ct.c1().data());
    out
}

/// Exact encoded size of a seeded (fresh, level-0) ciphertext:
/// header + 8-byte seed + the single `c0` polynomial.
pub fn seeded_ciphertext_wire_bytes(params: &BfvParams) -> usize {
    HEADER_BYTES + SEED_BYTES + params.limbs() * params.degree() * 8
}

/// Encodes a fresh symmetric ciphertext in the seeded v2 format: header,
/// the 8-byte seed, then `c0` alone — `c1` is implied by the seed. The
/// encoder *proves* the compression is lossless before shipping it:
/// re-expanding `seed` must reproduce `c1` bit-for-bit (the pair comes
/// from [`crate::Encryptor::encrypt_seeded`]).
///
/// # Errors
///
/// [`Error::Malformed`] if the ciphertext is not level-0 (only fresh
/// encryptions have a PRNG-uniform `c1`) or if `seed` does not expand to
/// this ciphertext's `c1`.
pub fn encode_ciphertext_seeded(ct: &Ciphertext, seed: u64) -> Result<Vec<u8>> {
    let what = "seeded ciphertext";
    let params = ct.params();
    if ct.level() != 0 {
        return Err(malformed(
            what,
            format!(
                "only fresh level-0 ciphertexts ship seeded, this one is level {}",
                ct.level()
            ),
        ));
    }
    let a = crate::sampling::expand_uniform(seed, params.chain());
    if ct.c1() != &a {
        return Err(malformed(
            what,
            "seed does not regenerate c1 — refusing a lossy encoding".to_string(),
        ));
    }
    let mut out = Vec::with_capacity(seeded_ciphertext_wire_bytes(params));
    write_header(
        &mut out,
        Kind::SeededCiphertext,
        chain_fingerprint(params),
        0,
        params.limbs(),
    );
    push_u64(&mut out, seed);
    push_words(&mut out, ct.c0().data());
    Ok(out)
}

fn decode_ciphertext_seeded(bytes: &[u8], params: &BfvParams) -> Result<Ciphertext> {
    let what = "seeded ciphertext";
    let mut r = Reader::new(bytes, what);
    let h = read_header(&mut r, Kind::SeededCiphertext, params)?;
    if h.level != 0 {
        return Err(malformed(
            what,
            format!(
                "seeded ciphertexts are fresh level-0 objects, header claims level {}",
                h.level
            ),
        ));
    }
    let expect = seeded_ciphertext_wire_bytes(params);
    if bytes.len() != expect {
        return Err(malformed(
            what,
            format!("needs exactly {expect} bytes, message has {}", bytes.len()),
        ));
    }
    let seed = r.u64()?;
    let c0 = read_poly(&mut r, params, h.live, Representation::Eval)?;
    expect_consumed(&r)?;
    let c1 = crate::sampling::expand_uniform(seed, params.chain());
    Ciphertext::try_new(c0, c1, params.clone(), NoiseEstimate::fresh(params))
}

/// Decodes and fully validates a ciphertext against the session's
/// parameters, accepting both the full v1 format and the seeded v2
/// format (dispatching on the header's kind byte). See the module docs
/// for the check order; nothing is constructed before every check
/// passes.
///
/// The returned ciphertext carries the fresh-encryption noise estimate
/// (estimates are never trusted from the wire).
///
/// # Errors
///
/// [`Error::Malformed`], [`Error::ChainMismatch`], or
/// [`Error::InvalidLevel`].
pub fn decode_ciphertext(bytes: &[u8], params: &BfvParams) -> Result<Ciphertext> {
    if bytes.get(OFF_KIND) == Some(&(Kind::SeededCiphertext as u8)) {
        return decode_ciphertext_seeded(bytes, params);
    }
    let what = "ciphertext";
    let mut r = Reader::new(bytes, what);
    let h = read_header(&mut r, Kind::Ciphertext, params)?;
    let expect = ciphertext_wire_bytes(params, h.level);
    if bytes.len() != expect {
        return Err(malformed(
            what,
            format!(
                "level {} needs exactly {expect} bytes, message has {}",
                h.level,
                bytes.len()
            ),
        ));
    }
    let c0 = read_poly(&mut r, params, h.live, Representation::Eval)?;
    let c1 = read_poly(&mut r, params, h.live, Representation::Eval)?;
    expect_consumed(&r)?;
    Ciphertext::try_new(c0, c1, params.clone(), NoiseEstimate::fresh(params))
}

/// Splits a buffer of back-to-back ciphertext messages into individual
/// message slices, using each header's kind and level fields to compute
/// the exact message length (full v1 messages are sized by level; seeded
/// v2 messages have one fixed level-0 size). Only the *framing* is
/// derived here — every slice must still pass [`decode_ciphertext`]'s
/// full validation, so a corrupted kind or level field either misframes
/// into a slice that fails validation or errors right here.
///
/// # Errors
///
/// [`Error::Malformed`] for a truncated header, payload, or non-ciphertext
/// kind; [`Error::InvalidLevel`] for a level past the chain.
pub fn split_ciphertext_messages<'a>(bytes: &'a [u8], params: &BfvParams) -> Result<Vec<&'a [u8]>> {
    let what = "ciphertext bundle";
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let header = bytes.get(pos..pos + HEADER_BYTES).ok_or_else(|| {
            malformed(
                what,
                format!("truncated header at offset {pos} of {}", bytes.len()),
            )
        })?;
        let len = match Kind::from_u8(header[OFF_KIND]) {
            Some(Kind::SeededCiphertext) => seeded_ciphertext_wire_bytes(params),
            Some(Kind::Ciphertext) => {
                let mut w = [0u8; 4];
                w.copy_from_slice(&header[OFF_LEVEL..OFF_LEVEL + 4]);
                let level = u32::from_le_bytes(w) as usize;
                if level >= params.levels() {
                    return Err(Error::InvalidLevel {
                        requested: level,
                        current: 0,
                        max: params.max_level(),
                    });
                }
                ciphertext_wire_bytes(params, level)
            }
            other => {
                return Err(malformed(
                    what,
                    format!(
                        "bundle holds ciphertexts, message at offset {pos} has kind {:?} (byte {})",
                        other, header[OFF_KIND]
                    ),
                ))
            }
        };
        let msg = bytes.get(pos..pos + len).ok_or_else(|| {
            malformed(
                what,
                format!(
                    "message at offset {pos} claims {len} bytes, {} remain",
                    bytes.len() - pos
                ),
            )
        })?;
        out.push(msg);
        pos += len;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Public keys
// ---------------------------------------------------------------------

/// Exact encoded size of a public key.
pub fn public_key_wire_bytes(params: &BfvParams) -> usize {
    HEADER_BYTES + 2 * params.limbs() * params.degree() * 8
}

/// Encodes a public key (always full-width, level 0).
pub fn encode_public_key(pk: &PublicKey) -> Vec<u8> {
    let params = pk.params();
    let mut out = Vec::with_capacity(public_key_wire_bytes(params));
    write_header(
        &mut out,
        Kind::PublicKey,
        chain_fingerprint(params),
        0,
        params.limbs(),
    );
    push_words(&mut out, pk.pk0().data());
    push_words(&mut out, pk.pk1().data());
    out
}

/// Exact encoded size of a seeded public key: header + 8-byte seed + the
/// single `pk0` polynomial.
pub fn seeded_public_key_wire_bytes(params: &BfvParams) -> usize {
    HEADER_BYTES + SEED_BYTES + params.limbs() * params.degree() * 8
}

/// Encodes a public key in the seeded v2 format: header, the 8-byte
/// seed, then `pk0` alone — `pk1` is implied by the seed. The pair comes
/// from [`crate::KeyGenerator::public_key_seeded`]; the encoder verifies
/// the seed regenerates `pk1` before shipping.
///
/// # Errors
///
/// [`Error::Malformed`] if `seed` does not expand to this key's `pk1`.
pub fn encode_public_key_seeded(pk: &PublicKey, seed: u64) -> Result<Vec<u8>> {
    let what = "seeded public key";
    let params = pk.params();
    let a = crate::sampling::expand_uniform(seed, params.chain());
    if pk.pk1() != &a {
        return Err(malformed(
            what,
            "seed does not regenerate pk1 — refusing a lossy encoding".to_string(),
        ));
    }
    let mut out = Vec::with_capacity(seeded_public_key_wire_bytes(params));
    write_header(
        &mut out,
        Kind::SeededPublicKey,
        chain_fingerprint(params),
        0,
        params.limbs(),
    );
    push_u64(&mut out, seed);
    push_words(&mut out, pk.pk0().data());
    Ok(out)
}

fn decode_public_key_seeded(bytes: &[u8], params: &BfvParams) -> Result<PublicKey> {
    let what = "seeded public key";
    let mut r = Reader::new(bytes, what);
    let h = read_header(&mut r, Kind::SeededPublicKey, params)?;
    if h.level != 0 {
        return Err(malformed(
            what,
            format!(
                "public keys are level-0 objects, header claims level {}",
                h.level
            ),
        ));
    }
    let expect = seeded_public_key_wire_bytes(params);
    if bytes.len() != expect {
        return Err(malformed(
            what,
            format!("needs exactly {expect} bytes, message has {}", bytes.len()),
        ));
    }
    let seed = r.u64()?;
    let pk0 = read_poly(&mut r, params, h.live, Representation::Eval)?;
    expect_consumed(&r)?;
    let pk1 = crate::sampling::expand_uniform(seed, params.chain());
    Ok(PublicKey::from_parts(pk0, pk1, params.clone()))
}

/// Decodes and validates a public key, accepting both the full v1 format
/// and the seeded v2 format (dispatching on the header's kind byte).
///
/// # Errors
///
/// [`Error::Malformed`], [`Error::ChainMismatch`], or
/// [`Error::InvalidLevel`].
pub fn decode_public_key(bytes: &[u8], params: &BfvParams) -> Result<PublicKey> {
    if bytes.get(OFF_KIND) == Some(&(Kind::SeededPublicKey as u8)) {
        return decode_public_key_seeded(bytes, params);
    }
    let what = "public key";
    let mut r = Reader::new(bytes, what);
    let h = read_header(&mut r, Kind::PublicKey, params)?;
    if h.level != 0 {
        return Err(malformed(
            what,
            format!(
                "public keys are level-0 objects, header claims level {}",
                h.level
            ),
        ));
    }
    let expect = public_key_wire_bytes(params);
    if bytes.len() != expect {
        return Err(malformed(
            what,
            format!("needs exactly {expect} bytes, message has {}", bytes.len()),
        ));
    }
    let pk0 = read_poly(&mut r, params, h.live, Representation::Eval)?;
    let pk1 = read_poly(&mut r, params, h.live, Representation::Eval)?;
    expect_consumed(&r)?;
    Ok(PublicKey::from_parts(pk0, pk1, params.clone()))
}

// ---------------------------------------------------------------------
// Galois key sets
// ---------------------------------------------------------------------

/// Exact encoded size of a `count`-key Galois key set: header, key count,
/// one element word per key, plus the key material
/// [`GaloisKeys::byte_size`] charges — `count·l_ct·2·limbs·n·8` for digit
/// chains, `count·limbs·2·(limbs+1)·n·8` for hybrid chains (one pair per
/// data limb, each over the `P`-extended key-switch chain).
pub fn galois_keys_wire_bytes(params: &BfvParams, count: usize) -> usize {
    let (pairs, planes) = if params.has_special() {
        (params.limbs(), params.limbs() + 1)
    } else {
        (params.l_ct(), params.limbs())
    };
    HEADER_BYTES + 4 + count * 8 + count * pairs * 2 * planes * params.degree() * 8
}

/// Encodes a Galois key set canonically: keys are emitted in ascending
/// element order (the `HashMap` iteration order never reaches the wire),
/// each as its element followed by `l_ct` key-switch pairs. Slot
/// permutations are not serialized — they are a pure function of the
/// element and are rebuilt on decode.
pub fn encode_galois_keys(keys: &GaloisKeys, params: &BfvParams) -> Vec<u8> {
    let mut elements: Vec<u64> = keys.elements().collect();
    elements.sort_unstable();
    let mut out = Vec::with_capacity(galois_keys_wire_bytes(params, elements.len()));
    write_header(
        &mut out,
        Kind::GaloisKeys,
        chain_fingerprint(params),
        0,
        params.limbs(),
    );
    push_u32(&mut out, elements.len() as u32);
    for g in elements {
        // The element came from the set itself; a failed lookup cannot
        // happen, but the encoder stays panic-free regardless.
        let Ok(key) = keys.get(g) else { continue };
        push_u64(&mut out, g);
        for (k0, k1) in key.pairs() {
            push_words(&mut out, k0.data());
            push_words(&mut out, k1.data());
        }
    }
    out
}

/// Decodes and validates a Galois key set: every element must be a valid
/// odd automorphism exponent, every pair polynomial canonical. Slot
/// permutations are rebuilt from the validated elements.
///
/// # Errors
///
/// [`Error::Malformed`], [`Error::ChainMismatch`],
/// [`Error::InvalidLevel`], or [`Error::InvalidGaloisElement`].
pub fn decode_galois_keys(bytes: &[u8], params: &BfvParams) -> Result<GaloisKeys> {
    let what = "galois keys";
    let mut r = Reader::new(bytes, what);
    let h = read_header(&mut r, Kind::GaloisKeys, params)?;
    if h.level != 0 {
        return Err(malformed(
            what,
            format!(
                "key sets are level-0 objects, header claims level {}",
                h.level
            ),
        ));
    }
    let count = r.u32()? as usize;
    let expect = galois_keys_wire_bytes(params, count);
    if bytes.len() != expect {
        return Err(malformed(
            what,
            format!(
                "{count} keys need exactly {expect} bytes, message has {}",
                bytes.len()
            ),
        ));
    }
    // Hybrid chains ship one pair per data limb, each over the
    // P-extended key-switch chain (whose last plane canonical-checks
    // against the special prime); digit chains ship l_ct pairs over the
    // data chain.
    let (pair_count, pair_chain) = if params.has_special() {
        (params.limbs(), params.ks_chain_at(0))
    } else {
        (params.l_ct(), params.chain())
    };
    let pair_planes = pair_chain.limbs();
    let mut out = GaloisKeys::default();
    for _ in 0..count {
        let g = r.u64()?;
        check_galois_element(params.degree(), g)?;
        let mut pairs = Vec::with_capacity(pair_count);
        for _ in 0..pair_count {
            let k0 = read_poly_on(&mut r, pair_chain, pair_planes, Representation::Eval)?;
            let k1 = read_poly_on(&mut r, pair_chain, pair_planes, Representation::Eval)?;
            pairs.push((k0, k1));
        }
        let perm = params.chain().table(0).galois_permutation(g);
        out.insert(GaloisKey::from_parts(g, pairs, perm));
    }
    expect_consumed(&r)?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Plaintext masks
// ---------------------------------------------------------------------

/// Exact encoded size of a packed plaintext mask.
pub fn plaintext_mask_wire_bytes(params: &BfvParams) -> usize {
    HEADER_BYTES + params.degree() * 8
}

/// Encodes a packed plaintext mask: one mod-`t` coefficient polynomial.
/// The live-limb header field is 1 — a mask has a single (plaintext)
/// residue plane.
pub fn encode_plaintext_mask(pt: &Plaintext) -> Vec<u8> {
    let params = pt.params();
    let mut out = Vec::with_capacity(plaintext_mask_wire_bytes(params));
    // Masks have one mod-t plane; the header's limb field says so
    // directly rather than echoing the ciphertext chain width.
    out.extend_from_slice(&MAGIC);
    push_u16(&mut out, VERSION);
    out.push(Kind::PlaintextMask as u8);
    out.push(0);
    push_u64(&mut out, chain_fingerprint(params));
    push_u32(&mut out, 0);
    push_u32(&mut out, 1);
    push_words(&mut out, pt.poly().data());
    out
}

/// Decodes and validates a packed plaintext mask: every coefficient must
/// be a canonical mod-`t` residue.
///
/// # Errors
///
/// [`Error::Malformed`], [`Error::ChainMismatch`], or
/// [`Error::InvalidLevel`].
pub fn decode_plaintext_mask(bytes: &[u8], params: &BfvParams) -> Result<Plaintext> {
    let what = "plaintext mask";
    let mut r = Reader::new(bytes, what);
    // The common header reader checks live limbs against the ciphertext
    // chain; masks carry exactly one mod-t plane instead, so the header is
    // read field-by-field here.
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(malformed(what, format!("bad magic {magic:02x?}")));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(malformed(
            what,
            format!("unsupported format version {version} (this engine speaks {VERSION})"),
        ));
    }
    let kind_byte = r.take(1)?[0];
    if Kind::from_u8(kind_byte) != Some(Kind::PlaintextMask) {
        return Err(malformed(
            what,
            format!("message kind {kind_byte} where PlaintextMask was expected"),
        ));
    }
    let _reserved = r.take(1)?;
    let found = r.u64()?;
    let expected = chain_fingerprint(params);
    if found != expected {
        return Err(Error::ChainMismatch { expected, found });
    }
    let level = r.u32()? as usize;
    let planes = r.u32()? as usize;
    if level != 0 || planes != 1 {
        return Err(malformed(
            what,
            format!("masks carry one level-0 plane, header claims level {level} / {planes} planes"),
        ));
    }
    let expect = plaintext_mask_wire_bytes(params);
    if bytes.len() != expect {
        return Err(malformed(
            what,
            format!("needs exactly {expect} bytes, message has {}", bytes.len()),
        ));
    }
    let words = r.words(params.degree())?;
    let t = params.plain_modulus().value();
    if let Some(j) = words.iter().position(|&w| w >= t) {
        return Err(malformed(
            what,
            format!(
                "non-canonical residue {} >= t = {t} at coefficient {j}",
                words[j]
            ),
        ));
    }
    expect_consumed(&r)?;
    Plaintext::from_poly(
        Poly::from_data(words, Representation::Coeff),
        params.clone(),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::encoder::BatchEncoder;
    use crate::encryptor::Encryptor;
    use crate::keys::KeyGenerator;

    fn setup(params: &BfvParams) -> (BatchEncoder, Encryptor, KeyGenerator) {
        let mut kg = KeyGenerator::from_seed(params.clone(), 7);
        let pk = kg.public_key().unwrap();
        (
            BatchEncoder::new(params.clone()),
            Encryptor::from_public_key(pk, 8),
            kg,
        )
    }

    #[test]
    fn fingerprints_separate_the_presets() {
        let fps: Vec<u64> = BfvParams::presets(4096)
            .unwrap()
            .iter()
            .map(|(_, p)| chain_fingerprint(p))
            .collect();
        let mut dedup = fps.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), fps.len(), "presets must fingerprint apart");
        // Rebuilding the same preset reproduces the fingerprint.
        assert_eq!(
            chain_fingerprint(&BfvParams::preset_single_60(4096).unwrap()),
            chain_fingerprint(&BfvParams::preset_single_60(4096).unwrap()),
        );
    }

    #[test]
    fn ciphertext_roundtrip_is_bit_identical() {
        let params = BfvParams::preset_single_60(4096).unwrap();
        let (encoder, mut enc, _) = setup(&params);
        let ct = enc.encrypt(&encoder.encode(&[1, 2, 3]).unwrap()).unwrap();
        let bytes = encode_ciphertext(&ct);
        assert_eq!(bytes.len(), ciphertext_wire_bytes(&params, 0));
        assert_eq!(bytes.len() - HEADER_BYTES, ct.byte_size());
        let back = decode_ciphertext(&bytes, &params).unwrap();
        assert_eq!(back.c0().data(), ct.c0().data());
        assert_eq!(back.c1().data(), ct.c1().data());
        // Canonical: re-encoding reproduces the exact bytes.
        assert_eq!(encode_ciphertext(&back), bytes);
    }

    #[test]
    fn truncation_extension_and_garbage_are_typed_errors() {
        let params = BfvParams::preset_rns_2x30(4096).unwrap();
        let (encoder, mut enc, _) = setup(&params);
        let ct = enc.encrypt(&encoder.encode(&[5]).unwrap()).unwrap();
        let bytes = encode_ciphertext(&ct);

        assert!(matches!(
            decode_ciphertext(&[], &params),
            Err(Error::Malformed { .. })
        ));
        assert!(matches!(
            decode_ciphertext(&bytes[..bytes.len() - 1], &params),
            Err(Error::Malformed { .. })
        ));
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_ciphertext(&extended, &params),
            Err(Error::Malformed { .. })
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            decode_ciphertext(&bad_magic, &params),
            Err(Error::Malformed { .. })
        ));
        let mut bad_version = bytes.clone();
        bad_version[OFF_VERSION] = 99;
        assert!(matches!(
            decode_ciphertext(&bad_version, &params),
            Err(Error::Malformed { .. })
        ));
    }

    #[test]
    fn foreign_fingerprint_is_chain_mismatch() {
        let params = BfvParams::preset_single_60(4096).unwrap();
        let other = BfvParams::preset_rns_2x30(4096).unwrap();
        let (encoder, mut enc, _) = setup(&params);
        let ct = enc.encrypt(&encoder.encode(&[5]).unwrap()).unwrap();
        let bytes = encode_ciphertext(&ct);
        assert!(matches!(
            decode_ciphertext(&bytes, &other),
            Err(Error::ChainMismatch { .. })
        ));
    }

    #[test]
    fn non_canonical_residue_is_rejected() {
        let params = BfvParams::preset_single_60(4096).unwrap();
        let (encoder, mut enc, _) = setup(&params);
        let ct = enc.encrypt(&encoder.encode(&[5]).unwrap()).unwrap();
        let mut bytes = encode_ciphertext(&ct);
        let q = params.chain().modulus(0).value();
        bytes[HEADER_BYTES..HEADER_BYTES + 8].copy_from_slice(&q.to_le_bytes());
        match decode_ciphertext(&bytes, &params) {
            Err(Error::Malformed { reason, .. }) => {
                assert!(reason.contains("non-canonical"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn level_lies_are_rejected() {
        let params = BfvParams::preset_rns_3x36(4096).unwrap();
        let (encoder, mut enc, _) = setup(&params);
        let ct = enc.encrypt(&encoder.encode(&[5]).unwrap()).unwrap();
        let mut bytes = encode_ciphertext(&ct);
        // Past the chain: InvalidLevel.
        bytes[OFF_LEVEL..OFF_LEVEL + 4].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            decode_ciphertext(&bytes, &params),
            Err(Error::InvalidLevel { requested: 9, .. })
        ));
        // Valid level whose payload length no longer matches: Malformed.
        bytes[OFF_LEVEL..OFF_LEVEL + 4].copy_from_slice(&1u32.to_le_bytes());
        bytes[OFF_LIVE_LIMBS..OFF_LIVE_LIMBS + 4].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            decode_ciphertext(&bytes, &params),
            Err(Error::Malformed { .. })
        ));
    }

    #[test]
    fn reserved_byte_is_ignored_by_design() {
        let params = BfvParams::preset_single_60(4096).unwrap();
        let (encoder, mut enc, _) = setup(&params);
        let ct = enc.encrypt(&encoder.encode(&[9]).unwrap()).unwrap();
        let mut bytes = encode_ciphertext(&ct);
        bytes[OFF_RESERVED] = 0xff;
        let back = decode_ciphertext(&bytes, &params).unwrap();
        assert_eq!(back.c0().data(), ct.c0().data());
        assert_eq!(back.c1().data(), ct.c1().data());
    }

    #[test]
    fn seeded_ciphertext_roundtrip_at_half_the_bytes() {
        for params in [
            BfvParams::preset_single_60(4096).unwrap(),
            BfvParams::preset_rns_2x30(4096).unwrap(),
            BfvParams::preset_rns_3x36(4096).unwrap(),
        ] {
            let kg = KeyGenerator::from_seed(params.clone(), 21);
            let encoder = BatchEncoder::new(params.clone());
            let mut enc = Encryptor::from_secret_key(kg.secret_key().clone(), 22);
            let (ct, seed) = enc
                .encrypt_seeded(&encoder.encode(&[1, 2, 3]).unwrap())
                .unwrap();

            let bytes = encode_ciphertext_seeded(&ct, seed).unwrap();
            assert_eq!(bytes.len(), seeded_ciphertext_wire_bytes(&params));
            // Payload is seed + c0: (slightly over) half the full payload.
            assert_eq!(bytes.len() - HEADER_BYTES, SEED_BYTES + ct.byte_size() / 2);
            assert!(bytes.len() < ciphertext_wire_bytes(&params, 0));

            // The generic decoder dispatches on kind and rebuilds c1.
            let back = decode_ciphertext(&bytes, &params).unwrap();
            assert_eq!(back.c0().data(), ct.c0().data());
            assert_eq!(back.c1().data(), ct.c1().data());

            // Old full format still encodes/decodes the same ciphertext.
            let full = encode_ciphertext(&ct);
            let back_full = decode_ciphertext(&full, &params).unwrap();
            assert_eq!(back_full.c1().data(), ct.c1().data());
        }
    }

    #[test]
    fn seeded_encoder_rejects_wrong_seed_and_nonfresh_levels() {
        let params = BfvParams::preset_rns_3x36(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 23);
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_secret_key(kg.secret_key().clone(), 24);
        let (ct, seed) = enc.encrypt_seeded(&encoder.encode(&[4]).unwrap()).unwrap();
        // A wrong seed cannot silently ship a lossy encoding.
        assert!(matches!(
            encode_ciphertext_seeded(&ct, seed ^ 1),
            Err(Error::Malformed { .. })
        ));
        // A public-key encryption has a non-uniform c1: same refusal.
        let pk = kg.public_key().unwrap();
        let mut enc_pk = Encryptor::from_public_key(pk, 25);
        let ct_pk = enc_pk.encrypt(&encoder.encode(&[4]).unwrap()).unwrap();
        assert!(matches!(
            encode_ciphertext_seeded(&ct_pk, seed),
            Err(Error::Malformed { .. })
        ));
    }

    #[test]
    fn seeded_decode_validates_before_expansion() {
        let params = BfvParams::preset_rns_2x30(4096).unwrap();
        let kg = KeyGenerator::from_seed(params.clone(), 26);
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_secret_key(kg.secret_key().clone(), 27);
        let (ct, seed) = enc.encrypt_seeded(&encoder.encode(&[6]).unwrap()).unwrap();
        let bytes = encode_ciphertext_seeded(&ct, seed).unwrap();

        // Version/kind pairing: a seeded kind with a v1 version field.
        let mut bad_version = bytes.clone();
        bad_version[OFF_VERSION..OFF_VERSION + 2].copy_from_slice(&1u16.to_le_bytes());
        assert!(matches!(
            decode_ciphertext(&bad_version, &params),
            Err(Error::Malformed { .. })
        ));
        // And the converse: a full kind claiming v2.
        let full = encode_ciphertext(&ct);
        let mut bad_full = full.clone();
        bad_full[OFF_VERSION..OFF_VERSION + 2].copy_from_slice(&2u16.to_le_bytes());
        assert!(matches!(
            decode_ciphertext(&bad_full, &params),
            Err(Error::Malformed { .. })
        ));
        // Truncation and trailing garbage are typed errors.
        assert!(matches!(
            decode_ciphertext(&bytes[..bytes.len() - 1], &params),
            Err(Error::Malformed { .. })
        ));
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_ciphertext(&extended, &params),
            Err(Error::Malformed { .. })
        ));
        // Non-canonical c0 residue, with the plane offset shifted by the seed.
        let mut bad = bytes.clone();
        let q = params.chain().modulus(0).value();
        let off = HEADER_BYTES + SEED_BYTES;
        bad[off..off + 8].copy_from_slice(&q.to_le_bytes());
        match decode_ciphertext(&bad, &params) {
            Err(Error::Malformed { reason, .. }) => {
                assert!(reason.contains("non-canonical"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // A non-zero level in a seeded header is structurally invalid.
        let mut lvl = bytes.clone();
        lvl[OFF_LEVEL..OFF_LEVEL + 4].copy_from_slice(&1u32.to_le_bytes());
        lvl[OFF_LIVE_LIMBS..OFF_LIVE_LIMBS + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_ciphertext(&lvl, &params),
            Err(Error::Malformed { .. })
        ));
        // A flipped seed decodes structurally but the ciphertext is dead:
        // c1 no longer matches what c0 was built against.
        let mut flipped = bytes.clone();
        flipped[HEADER_BYTES] ^= 1;
        let dead = decode_ciphertext(&flipped, &params).unwrap();
        assert_ne!(dead.c1().data(), ct.c1().data());
    }

    #[test]
    fn seeded_public_key_roundtrip_and_mixed_bundle_split() {
        let params = BfvParams::preset_rns_3x36(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 31);
        let (pk, pk_seed) = kg.public_key_seeded().unwrap();
        let bytes = encode_public_key_seeded(&pk, pk_seed).unwrap();
        assert_eq!(bytes.len(), seeded_public_key_wire_bytes(&params));
        assert!(bytes.len() < public_key_wire_bytes(&params));
        let back = decode_public_key(&bytes, &params).unwrap();
        assert_eq!(back.pk0().data(), pk.pk0().data());
        assert_eq!(back.pk1().data(), pk.pk1().data());
        // Full-format keys still decode through the same entry point.
        let full = encode_public_key(&pk);
        let back_full = decode_public_key(&full, &params).unwrap();
        assert_eq!(back_full.pk1().data(), pk.pk1().data());
        assert!(matches!(
            encode_public_key_seeded(&pk, pk_seed ^ 1),
            Err(Error::Malformed { .. })
        ));

        // A bundle mixing seeded and full ciphertexts splits correctly.
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_secret_key(kg.secret_key().clone(), 32);
        let (ct, seed) = enc.encrypt_seeded(&encoder.encode(&[7]).unwrap()).unwrap();
        let seeded_msg = encode_ciphertext_seeded(&ct, seed).unwrap();
        let full_msg = encode_ciphertext(&ct);
        let mut bundle = seeded_msg.clone();
        bundle.extend_from_slice(&full_msg);
        let parts = split_ciphertext_messages(&bundle, &params).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], &seeded_msg[..]);
        assert_eq!(parts[1], &full_msg[..]);
        // A public key in a ciphertext bundle is a framing error.
        assert!(matches!(
            split_ciphertext_messages(&bytes, &params),
            Err(Error::Malformed { .. })
        ));
    }

    #[test]
    fn public_key_roundtrip() {
        let params = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 3);
        let pk = kg.public_key().unwrap();
        let bytes = encode_public_key(&pk);
        assert_eq!(bytes.len(), public_key_wire_bytes(&params));
        assert_eq!(bytes.len() - HEADER_BYTES, pk.byte_size());
        let back = decode_public_key(&bytes, &params).unwrap();
        assert_eq!(back.pk0().data(), pk.pk0().data());
        assert_eq!(back.pk1().data(), pk.pk1().data());
        assert_eq!(encode_public_key(&back), bytes);
    }

    #[test]
    fn galois_keys_roundtrip_and_reject_bad_elements() {
        let params = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 4);
        let keys = kg.galois_keys_for_steps(&[1, -1, 8]).unwrap();
        let bytes = encode_galois_keys(&keys, &params);
        assert_eq!(bytes.len(), galois_keys_wire_bytes(&params, keys.len()));
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + 4 + keys.len() * 8 + keys.byte_size(&params)
        );
        let back = decode_galois_keys(&bytes, &params).unwrap();
        assert_eq!(back.len(), keys.len());
        for g in keys.elements() {
            let a = keys.get(g).unwrap();
            let b = back.get(g).unwrap();
            assert_eq!(a.permutation(), b.permutation());
            for (pa, pb) in a.pairs().iter().zip(b.pairs()) {
                assert_eq!(pa.0.data(), pb.0.data());
                assert_eq!(pa.1.data(), pb.1.data());
            }
        }
        assert_eq!(encode_galois_keys(&back, &params), bytes);

        // An even element in the stream is structurally invalid.
        let mut bad = bytes.clone();
        bad[HEADER_BYTES + 4..HEADER_BYTES + 12].copy_from_slice(&4u64.to_le_bytes());
        assert!(matches!(
            decode_galois_keys(&bad, &params),
            Err(Error::InvalidGaloisElement(4))
        ));
    }

    #[test]
    fn plaintext_mask_roundtrip_and_canonical_check() {
        let params = BfvParams::preset_single_60(4096).unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let pt = encoder.encode_signed(&[-3, 5, 11]).unwrap();
        let bytes = encode_plaintext_mask(&pt);
        assert_eq!(bytes.len(), plaintext_mask_wire_bytes(&params));
        let back = decode_plaintext_mask(&bytes, &params).unwrap();
        assert_eq!(back.poly().data(), pt.poly().data());
        assert_eq!(encoder.decode_signed(&back)[..3], [-3, 5, 11]);

        let mut bad = bytes.clone();
        let t = params.plain_modulus().value();
        bad[HEADER_BYTES..HEADER_BYTES + 8].copy_from_slice(&t.to_le_bytes());
        assert!(matches!(
            decode_plaintext_mask(&bad, &params),
            Err(Error::Malformed { .. })
        ));
    }
}
