//! Reusable scratch memory for the evaluator hot path.
//!
//! Every allocating seed-era evaluator operation cloned one or two full
//! ciphertext polynomials per call; at Cheetah parameters (`n = 4096`,
//! one 60-bit limb) that is 64 KiB of fresh heap per `HE_Add`, and the
//! cost scales with the limb count of the RNS chain. A [`Scratch`] owns a
//! small pool of `l·n`-word [`RnsPoly`] buffers plus a persistent set of
//! digit polynomials for the key-switch decomposition, so the in-place
//! operation family (`Evaluator::add_assign`, `Evaluator::mul_plain_assign`,
//! `Evaluator::apply_galois_into`, …) performs **zero heap allocations
//! after warmup** — verified by the counting-allocator test in
//! `crates/bfv/tests/zero_alloc.rs`.
//!
//! Threading model: a `Scratch` is deliberately *not* shared. Each worker
//! thread owns one (they are cheap once warm), which is how the parallel
//! linear layers in `cheetah-core` scale without lock contention. The
//! [`crate::Evaluator`] also keeps one internal pool behind a mutex to
//! back the legacy allocating API.

use crate::poly::Representation;
use crate::rns::RnsPoly;

/// A pool of reusable `limbs · n`-word polynomial buffers.
///
/// `take_poly`/`put_poly` lease buffers in LIFO order; `digits_mut` exposes
/// a persistent slice of digit polynomials for base decompositions. All
/// buffers keep their capacity across uses, so steady-state operation
/// never touches the allocator.
#[derive(Debug)]
pub struct Scratch {
    n: usize,
    limbs: usize,
    free: Vec<Vec<u64>>,
    digits: Vec<RnsPoly>,
}

impl Scratch {
    /// Creates an empty pool for `limbs`-limb, degree-`n` polynomials.
    /// Buffers are allocated lazily on first use and reused afterwards.
    pub fn new(n: usize, limbs: usize) -> Self {
        Self {
            n,
            limbs,
            free: Vec::new(),
            digits: Vec::new(),
        }
    }

    /// Polynomial degree this pool serves.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Limb count this pool serves.
    #[inline]
    pub fn limbs(&self) -> usize {
        self.limbs
    }

    /// Leases a polynomial with arbitrary (dirty) contents in the given
    /// representation. Return it with [`Scratch::put_poly`] when done.
    pub fn take_poly(&mut self, repr: Representation) -> RnsPoly {
        let words = self.limbs * self.n;
        let buf = self.free.pop().unwrap_or_else(|| vec![0; words]);
        debug_assert_eq!(buf.len(), words);
        RnsPoly::from_data(buf, self.limbs, self.n, repr)
    }

    /// Returns a leased polynomial's buffer to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial's shape does not match the pool.
    pub fn put_poly(&mut self, poly: RnsPoly) {
        let buf = poly.into_data();
        assert_eq!(
            buf.len(),
            self.limbs * self.n,
            "foreign buffer returned to scratch"
        );
        self.free.push(buf);
    }

    /// A persistent slice of `count` digit polynomials (coefficient form,
    /// contents dirty). Grown on first use, reused afterwards; the borrow
    /// ends before any other pool method is needed again. The key switch
    /// sizes this with `BfvParams::l_ct()` — the per-limb RNS digit count
    /// `Σ_i ceil(log_A q_i)`, each digit spanning every limb plane.
    pub fn digits_mut(&mut self, count: usize) -> &mut [RnsPoly] {
        while self.digits.len() < count {
            self.digits.push(RnsPoly::zero_with(
                self.limbs,
                self.n,
                Representation::Coeff,
            ));
        }
        &mut self.digits[..count]
    }

    /// Number of pooled free buffers (diagnostic).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_return_reuses_buffers() {
        let mut s = Scratch::new(16, 2);
        let a = s.take_poly(Representation::Coeff);
        assert_eq!(a.limbs(), 2);
        assert_eq!(a.degree(), 16);
        let ptr = a.data().as_ptr();
        s.put_poly(a);
        assert_eq!(s.pooled(), 1);
        let b = s.take_poly(Representation::Eval);
        assert_eq!(b.data().as_ptr(), ptr, "buffer must be recycled");
        assert_eq!(b.representation(), Representation::Eval);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn digits_grow_once_and_persist() {
        let mut s = Scratch::new(8, 1);
        let d = s.digits_mut(3);
        assert_eq!(d.len(), 3);
        d[0].data_mut()[0] = 7;
        let d2 = s.digits_mut(2);
        assert_eq!(d2[0].data()[0], 7, "digit storage persists");
        assert_eq!(s.digits_mut(3).len(), 3);
    }

    #[test]
    #[should_panic(expected = "foreign buffer")]
    fn rejects_foreign_buffer() {
        let mut s = Scratch::new(8, 2);
        s.put_poly(RnsPoly::zero_with(1, 8, Representation::Coeff));
    }
}
