//! Reusable scratch memory for the evaluator hot path.
//!
//! Every allocating seed-era evaluator operation cloned one or two full
//! ciphertext polynomials per call; at Cheetah parameters (`n = 4096`,
//! one 60-bit limb) that is 64 KiB of fresh heap per `HE_Add`, and the
//! cost scales with the limb count of the RNS chain. A [`Scratch`] owns a
//! small pool of [`RnsPoly`] buffers plus a persistent set of digit
//! polynomials for the key-switch decomposition, so the in-place
//! operation family (`Evaluator::add_assign`, `Evaluator::mul_plain_assign`,
//! `Evaluator::apply_galois_into`, …) performs **zero heap allocations
//! after warmup** — verified by the counting-allocator test in
//! `crates/bfv/tests/zero_alloc.rs`.
//!
//! The pool is **level-aware**: modulus-switched ciphertexts carry fewer
//! live limb planes, so buffers are pooled per live-limb count
//! ([`Scratch::take_poly_limbs`]) and the digit store reshapes when the
//! working level changes. Steady state within one level — the common case,
//! since a linear layer runs entirely at the level its input was switched
//! to — still never touches the allocator.
//!
//! Threading model: a `Scratch` is deliberately *not* shared. Each worker
//! thread owns one (they are cheap once warm), which is how the parallel
//! linear layers in `cheetah-core` scale without lock contention. The
//! [`crate::Evaluator`] also keeps one internal pool behind a mutex to
//! back the legacy allocating API.

use crate::ciphertext::Ciphertext;
use crate::noise::NoiseEstimate;
use crate::params::BfvParams;
use crate::poly::Representation;
use crate::rns::RnsPoly;

/// A pool of reusable polynomial buffers for degree-`n` chains of up to
/// `limbs` planes.
///
/// `take_poly`/`take_poly_limbs`/`put_poly` lease buffers in LIFO order
/// per live-limb count; `digits_mut`/`digits_mut_limbs` expose a
/// persistent slice of digit polynomials for base decompositions. All
/// buffers keep their capacity across uses, so steady-state operation
/// never touches the allocator.
#[derive(Debug)]
pub struct Scratch {
    n: usize,
    limbs: usize,
    /// `free[k-1]`: pooled buffers of `k · n` words (live-limb count `k`).
    free: Vec<Vec<Vec<u64>>>,
    digits: Vec<RnsPoly>,
    /// Live-limb count the digit store is currently shaped for.
    digit_limbs: usize,
}

impl Scratch {
    /// Creates an empty pool for up-to-`limbs`-limb, degree-`n`
    /// polynomials. Buffers are allocated lazily on first use and reused
    /// afterwards.
    pub fn new(n: usize, limbs: usize) -> Self {
        assert!(limbs >= 1, "a chain has at least one limb");
        Self {
            n,
            limbs,
            free: vec![Vec::new(); limbs],
            digits: Vec::new(),
            digit_limbs: limbs,
        }
    }

    /// Polynomial degree this pool serves.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Maximum limb count this pool serves (the chain's level-0 width).
    #[inline]
    pub fn limbs(&self) -> usize {
        self.limbs
    }

    /// Leases a full-width (level-0) polynomial with arbitrary (dirty)
    /// contents in the given representation. Return it with
    /// [`Scratch::put_poly`] when done.
    pub fn take_poly(&mut self, repr: Representation) -> RnsPoly {
        self.take_poly_limbs(self.limbs, repr)
    }

    /// Leases a polynomial with `limbs` live planes (a reduced level's
    /// shape), dirty contents, in the given representation.
    ///
    /// # Panics
    ///
    /// Panics when `limbs` is outside `1..=self.limbs()`.
    pub fn take_poly_limbs(&mut self, limbs: usize, repr: Representation) -> RnsPoly {
        assert!(
            limbs >= 1 && limbs <= self.limbs,
            "live limb count {limbs} outside this pool's 1..={}",
            self.limbs
        );
        let words = limbs * self.n;
        let buf = self.free[limbs - 1].pop().unwrap_or_else(|| vec![0; words]);
        debug_assert_eq!(buf.len(), words);
        RnsPoly::from_data(buf, limbs, self.n, repr)
    }

    /// Returns a leased polynomial's buffer to the pool (any live-limb
    /// count this pool serves).
    ///
    /// # Panics
    ///
    /// Panics if the polynomial's shape does not match the pool.
    pub fn put_poly(&mut self, poly: RnsPoly) {
        let limbs = poly.limbs();
        assert!(
            poly.degree() == self.n && limbs >= 1 && limbs <= self.limbs,
            "foreign buffer returned to scratch"
        );
        let buf = poly.into_data();
        debug_assert_eq!(buf.len(), limbs * self.n);
        self.free[limbs - 1].push(buf);
    }

    /// A persistent slice of `count` full-width digit polynomials
    /// (coefficient form, contents dirty). See
    /// [`Scratch::digits_mut_limbs`].
    pub fn digits_mut(&mut self, count: usize) -> &mut [RnsPoly] {
        self.digits_mut_limbs(count, self.limbs)
    }

    /// A persistent slice of `count` digit polynomials of `limbs` live
    /// planes (coefficient form, contents dirty). Grown on first use and
    /// reused afterwards; changing the live-limb count reshapes the store
    /// (one allocation per level change, not per operation). The key
    /// switch sizes this with `BfvParams::l_ct_at(level)` — the live
    /// per-limb RNS digit count `Σ_i ceil(log_A q_i)`.
    ///
    /// # Panics
    ///
    /// Panics when `limbs` is outside `1..=self.limbs()`.
    pub fn digits_mut_limbs(&mut self, count: usize, limbs: usize) -> &mut [RnsPoly] {
        assert!(
            limbs >= 1 && limbs <= self.limbs,
            "live limb count {limbs} outside this pool's 1..={}",
            self.limbs
        );
        if self.digit_limbs != limbs {
            self.digits.clear();
            self.digit_limbs = limbs;
        }
        while self.digits.len() < count {
            self.digits
                .push(RnsPoly::zero_with(limbs, self.n, Representation::Coeff));
        }
        &mut self.digits[..count]
    }

    /// Leases a transparent-zero ciphertext at `level` (both components
    /// zeroed, evaluation form) — the group-accumulator shape of BSGS
    /// layers, drawn from the same per-live-limb-count pools as
    /// [`Scratch::take_poly_limbs`]. Return it with [`Scratch::put_ct`].
    ///
    /// # Panics
    ///
    /// Panics when the level's live-limb count is outside this pool's
    /// range, or for a foreign parameter degree.
    pub fn take_ct(&mut self, params: &BfvParams, level: usize) -> Ciphertext {
        assert_eq!(params.degree(), self.n, "foreign parameter set");
        let live = params.live_limbs_at(level);
        let mut c0 = self.take_poly_limbs(live, Representation::Eval);
        let mut c1 = self.take_poly_limbs(live, Representation::Eval);
        c0.fill_zero();
        c1.fill_zero();
        Ciphertext::new(c0, c1, params.clone(), NoiseEstimate::zero())
    }

    /// Returns a leased ciphertext's buffers to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext's shape does not match the pool.
    pub fn put_ct(&mut self, ct: Ciphertext) {
        let (c0, c1) = ct.into_parts();
        self.put_poly(c0);
        self.put_poly(c1);
    }

    /// Number of pooled free buffers across all sizes (diagnostic).
    pub fn pooled(&self) -> usize {
        self.free.iter().map(Vec::len).sum()
    }
}

/// A server-level pool of warm [`Scratch`] instances, shared across
/// worker threads.
///
/// A `Scratch` is deliberately single-owner (see the module docs), but a
/// *server* running many concurrent sessions wants its warmed buffers to
/// outlive any one session: allocating a fresh pool per session
/// construction throws the warmup away every time. A `ScratchPool` keeps
/// returned instances — buffers, digit store, and all — in a LIFO free
/// list behind a mutex; [`ScratchPool::lease`] hands a whole warm
/// `Scratch` to a worker as an RAII [`ScratchLease`] that returns it on
/// drop. The lock is only touched at lease/return, never inside evaluator
/// operations.
///
/// `Scratch` owns all of its data, so leases are `Send`: a worker can
/// carry one across a `crossbeam`/`std::thread` scope boundary.
#[derive(Debug)]
pub struct ScratchPool {
    n: usize,
    limbs: usize,
    free: std::sync::Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    /// Creates an empty pool of `Scratch` instances for up-to-`limbs`-limb,
    /// degree-`n` chains. Instances are created lazily at first lease.
    pub fn new(n: usize, limbs: usize) -> Self {
        Self {
            n,
            limbs,
            free: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// A pool shaped for a parameter set's degree and level-0 limb count
    /// (plus the special-prime plane of hybrid chains, when present).
    pub fn for_params(params: &BfvParams) -> Self {
        Self::new(params.degree(), params.scratch_limbs())
    }

    fn free_list(&self) -> std::sync::MutexGuard<'_, Vec<Scratch>> {
        // A poisoned lock only means another worker panicked mid-return;
        // the free list itself (owned buffers) is still structurally
        // sound, so recover rather than propagate.
        match self.free.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Leases a warm `Scratch` (or creates a cold one when the free list
    /// is empty). The lease returns it on drop.
    pub fn lease(self: &std::sync::Arc<Self>) -> ScratchLease {
        let scratch = self
            .free_list()
            .pop()
            .unwrap_or_else(|| Scratch::new(self.n, self.limbs));
        ScratchLease {
            pool: std::sync::Arc::clone(self),
            scratch: Some(scratch),
        }
    }

    /// Number of idle `Scratch` instances currently pooled (diagnostic).
    pub fn idle(&self) -> usize {
        self.free_list().len()
    }
}

/// RAII lease of a pooled [`Scratch`]: derefs to the instance, returns it
/// to its [`ScratchPool`] — warm buffers intact — on drop.
#[derive(Debug)]
pub struct ScratchLease {
    pool: std::sync::Arc<ScratchPool>,
    scratch: Option<Scratch>,
}

impl std::ops::Deref for ScratchLease {
    type Target = Scratch;

    fn deref(&self) -> &Scratch {
        // Invariant: `scratch` is only `None` inside `drop`.
        self.scratch.as_ref().expect("leased scratch present")
    }
}

impl std::ops::DerefMut for ScratchLease {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.scratch.as_mut().expect("leased scratch present")
    }
}

impl Drop for ScratchLease {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.free_list().push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_return_reuses_buffers() {
        let mut s = Scratch::new(16, 2);
        let a = s.take_poly(Representation::Coeff);
        assert_eq!(a.limbs(), 2);
        assert_eq!(a.degree(), 16);
        let ptr = a.data().as_ptr();
        s.put_poly(a);
        assert_eq!(s.pooled(), 1);
        let b = s.take_poly(Representation::Eval);
        assert_eq!(b.data().as_ptr(), ptr, "buffer must be recycled");
        assert_eq!(b.representation(), Representation::Eval);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn pools_are_per_live_limb_count() {
        let mut s = Scratch::new(8, 3);
        let full = s.take_poly(Representation::Coeff);
        let reduced = s.take_poly_limbs(2, Representation::Coeff);
        assert_eq!(full.limbs(), 3);
        assert_eq!(reduced.limbs(), 2);
        let reduced_ptr = reduced.data().as_ptr();
        s.put_poly(full);
        s.put_poly(reduced);
        assert_eq!(s.pooled(), 2);
        // Re-leasing at 2 limbs must recycle the 2-limb buffer, not slice
        // the 3-limb one.
        let again = s.take_poly_limbs(2, Representation::Eval);
        assert_eq!(again.data().as_ptr(), reduced_ptr);
        assert_eq!(s.pooled(), 1);
    }

    #[test]
    fn digits_grow_once_and_persist() {
        let mut s = Scratch::new(8, 1);
        let d = s.digits_mut(3);
        assert_eq!(d.len(), 3);
        d[0].data_mut()[0] = 7;
        let d2 = s.digits_mut(2);
        assert_eq!(d2[0].data()[0], 7, "digit storage persists");
        assert_eq!(s.digits_mut(3).len(), 3);
    }

    #[test]
    fn digit_store_reshapes_on_level_change() {
        let mut s = Scratch::new(8, 2);
        let d = s.digits_mut_limbs(2, 2);
        assert_eq!(d[0].limbs(), 2);
        let d = s.digits_mut_limbs(2, 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].limbs(), 1, "digits reshape to the live level");
    }

    #[test]
    #[should_panic(expected = "foreign buffer")]
    fn rejects_foreign_buffer() {
        let mut s = Scratch::new(8, 2);
        s.put_poly(RnsPoly::zero_with(3, 8, Representation::Coeff));
    }

    #[test]
    fn scratch_pool_recycles_warm_instances_across_leases() {
        let pool = std::sync::Arc::new(ScratchPool::new(16, 2));
        assert_eq!(pool.idle(), 0);
        let mut lease = pool.lease();
        // Warm the instance: one full-width buffer enters its LIFO pool.
        let p = lease.take_poly(Representation::Coeff);
        let ptr = p.data().as_ptr();
        lease.put_poly(p);
        assert_eq!(lease.pooled(), 1);
        drop(lease);
        assert_eq!(pool.idle(), 1);
        // The next lease gets the *same* warm instance back.
        let mut again = pool.lease();
        assert_eq!(again.pooled(), 1);
        let q = again.take_poly(Representation::Eval);
        assert_eq!(q.data().as_ptr(), ptr, "warm buffer must survive the pool");
        again.put_poly(q);
    }

    #[test]
    fn scratch_pool_leases_are_send_and_concurrent() {
        fn assert_send<T: Send>(_: &T) {}
        let pool = std::sync::Arc::new(ScratchPool::new(16, 2));
        let lease = pool.lease();
        assert_send(&lease);
        drop(lease);
        // Two simultaneous leases are distinct instances; both return.
        let a = pool.lease();
        let b = pool.lease();
        std::thread::scope(|s| {
            s.spawn(move || drop(a));
            s.spawn(move || drop(b));
        });
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn ciphertext_lease_recycles_polynomial_buffers() {
        let params = BfvParams::builder()
            .degree(2048)
            .plain_bits(16)
            .cipher_bits(54)
            .build()
            .unwrap();
        let mut s = Scratch::new(params.degree(), params.limbs());
        let ct = s.take_ct(&params, 0);
        assert_eq!(ct.live_limbs(), params.limbs());
        assert!(ct.c0().data().iter().all(|&w| w == 0));
        let ptr = ct.c0().data().as_ptr();
        s.put_ct(ct);
        assert_eq!(s.pooled(), 2);
        let again = s.take_ct(&params, 0);
        // One of the two pooled buffers backs the new c0 (LIFO order).
        assert!(std::ptr::eq(again.c0().data().as_ptr(), ptr) || s.pooled() == 0);
        s.put_ct(again);
    }
}
