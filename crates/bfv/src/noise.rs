//! Noise bookkeeping: the Table III operator noise model, carried live on
//! every ciphertext.
//!
//! Two parallel estimates are tracked:
//!
//! * **worst-case bound** — the Table III expressions
//!   (`v0 ≤ 2nB²`, add: `v0+v1`, pt-mult: `n·l_pt·W·v/2`,
//!   rotate: `v + l_ct·A·B·n/2`);
//! * **variance** — the statistical (IBDG) model of §IV-B: encryption noise
//!   coefficients are independent bounded sub-Gaussians, and every HE
//!   operator is a linear map with known coefficients, so variances
//!   propagate exactly. The statistical estimate, scaled by
//!   [`FAILURE_SCALE`], is what HE-PTune uses to provision parameters with
//!   decryption-failure probability below 1e-10 instead of the (rare)
//!   worst case.
//!
//! The measured ground truth lives in
//! [`crate::encryptor::Decryptor::invariant_noise`], which computes the
//! actual noise polynomial against the secret key; tests reconcile the two.

use crate::params::BfvParams;

/// Scaling factor `c` such that `Pr(|Y| ≥ c·σ_Y) ≤ 1e-10` for sub-Gaussian
/// noise: from the paper's tail bound `Pr(|Y| ≥ q/2t) ≤ 2·exp(−q²/(4t²σ_Y²))`
/// we need `q/(2t) ≥ σ_Y·sqrt(ln(2·10^10))`, i.e. `c = sqrt(ln 2e10) ≈ 4.87`.
pub const FAILURE_SCALE: f64 = 4.870_215_406_991_81;

/// Decryption-failure probability the statistical model provisions for.
pub const TARGET_FAILURE_RATE: f64 = 1e-10;

/// Running noise estimate attached to a ciphertext.
///
/// All quantities are stored in log2 space to survive deep networks without
/// overflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEstimate {
    /// log2 of the worst-case noise magnitude bound (Table III).
    pub bound_log2: f64,
    /// log2 of the noise *variance* under the IBDG model.
    pub variance_log2: f64,
}

impl NoiseEstimate {
    /// Noise of a freshly encrypted ciphertext.
    ///
    /// Worst case (Table III): `v0 = 2nB²` with `B = 6σ`.
    /// Variance: `σ_v² = σ²·(2n·k_var + 1)`-ish; we use the dominant RLWE
    /// term `2n·σ⁴`-free form — encryption noise is
    /// `e1 + u·e0 + s·e2`-shaped, a sum of `2n+1` products of two
    /// independent samples with variances `σ²` and `2/3` (ternary), so
    /// `σ_v² ≈ σ²·(1 + 4n/3)`.
    pub fn fresh(params: &BfvParams) -> Self {
        let n = params.degree() as f64;
        let sigma2 = params.sigma() * params.sigma();
        let bound = params.fresh_noise_bound();
        let variance = sigma2 * (1.0 + 4.0 * n / 3.0);
        Self {
            bound_log2: bound.log2(),
            variance_log2: variance.log2(),
        }
    }

    /// A ciphertext that is exactly zero (e.g. a transparent accumulator).
    pub fn zero() -> Self {
        Self {
            bound_log2: f64::NEG_INFINITY,
            variance_log2: f64::NEG_INFINITY,
        }
    }

    /// Noise after `HE_Add`: bounds add; variances add (independence).
    pub fn add(&self, other: &NoiseEstimate) -> Self {
        Self {
            bound_log2: log2_sum(self.bound_log2, other.bound_log2),
            variance_log2: log2_sum(self.variance_log2, other.variance_log2),
        }
    }

    /// Noise after adding a plaintext (absorbed into the message; adds the
    /// rounding term `||pt||·(q mod t)/t ≤ ||pt||`, negligible but tracked).
    pub fn add_plain(&self, pt_norm: u64) -> Self {
        let extra = (pt_norm.max(1)) as f64;
        Self {
            bound_log2: log2_sum(self.bound_log2, extra.log2()),
            variance_log2: self.variance_log2,
        }
    }

    /// Noise after plaintext multiplication with decomposition
    /// (Table III: `n·l_pt·W_dcmp·v/2`), plus the scaling-rounding term,
    /// at level 0.
    pub fn mul_plain(&self, params: &BfvParams, l_pt: usize, w_base: u64) -> Self {
        self.mul_plain_at(params, 0, l_pt, w_base)
    }

    /// Noise after plaintext multiplication at a level.
    ///
    /// `l_pt = 1` and `W = 2·||pt||` models the undecomposed case.
    ///
    /// Because `Δ_ℓ·t = Q_ℓ − (Q_ℓ mod t)`, multiplying `Δ_ℓ·m + v` by a
    /// lifted plaintext also injects `−(Q_ℓ mod t)·⌊mw/t⌋`: effectively
    /// the factor acts on `v + (Q_ℓ mod t)` rather than `v` alone. The
    /// congruent generators drive `Q_ℓ mod t` to 1 where a prime of the
    /// right shape exists; otherwise the model charges the live residue of
    /// the ciphertext's level (`r` below).
    pub fn mul_plain_at(&self, params: &BfvParams, level: usize, l_pt: usize, w_base: u64) -> Self {
        let n = params.degree() as f64;
        let r = params.q_mod_t_at(level).max(1) as f64;
        let factor = n * l_pt as f64 * w_base as f64 / 2.0;
        // Variance: each output coefficient is a sum of n products of noise
        // with plaintext digits uniform in [0, W): E[w²] ≈ W²/3. The
        // rounding digits are ~uniform in [0, r): variance r²/12.
        let var_factor = n * l_pt as f64 * (w_base as f64 * w_base as f64) / 3.0;
        Self {
            bound_log2: log2_sum(self.bound_log2, r.log2()) + factor.log2(),
            variance_log2: log2_sum(self.variance_log2, (r * r / 12.0).log2()) + var_factor.log2(),
        }
    }

    /// Noise after a level-0 `HE_Rotate` (Table III:
    /// `v + l_ct·A_dcmp·B·n/2`).
    pub fn rotate(&self, params: &BfvParams) -> Self {
        self.rotate_at(params, 0)
    }

    /// Noise after `HE_Rotate` at a level.
    ///
    /// Under the RNS-native key switch `l_ct(ℓ) = Σ_{live i} ceil(log_A q_i)`
    /// counts the *per-live-limb* digits: each digit `< A` multiplies one
    /// fresh key error polynomial, so the additive term is the live digit
    /// count times `A·B·n/2` exactly as in the composed-base analysis.
    /// Dropped limbs contribute neither digits nor error terms — rotation
    /// noise shrinks together with its cost. The same bound covers hoisted
    /// rotations: permuting digits after extraction leaves every
    /// `|digit| < A` and the per-digit error fresh.
    pub fn rotate_at(&self, params: &BfvParams, level: usize) -> Self {
        if params.has_special() {
            return self.rotate_hybrid_at(params, level);
        }
        let n = params.degree() as f64;
        let b = 6.0 * params.sigma();
        let l_ct = params.l_ct_at(level) as f64;
        let a = params.a_dcmp() as f64;
        let additive = l_ct * a * b * n / 2.0;
        // Variance of the key-switch term: l_ct·n digits, each a product of
        // a uniform digit (var A²/12) and fresh noise (var σ²).
        let add_var = l_ct * n * (a * a / 12.0) * params.sigma() * params.sigma();
        Self {
            bound_log2: log2_sum(self.bound_log2, additive.log2()),
            variance_log2: log2_sum(self.variance_log2, add_var.log2()),
        }
    }

    /// Noise after a hybrid `P·Q_ℓ` `HE_Rotate` at a level (special-prime
    /// key switching).
    ///
    /// The decomposition carries one *centered* digit per live limb
    /// (`|v_i| ≤ q_i/2`, no base split), each multiplying a fresh key
    /// error; the accumulated key-noise bill `Σ_i v_i·e_i` is then divided
    /// by `P` in the exact rescale, leaving
    /// `live·(q_max/P)·n·B/2` plus the rescale's own rounding term
    /// `(n + 1)/2` (ternary secret, same shape as
    /// [`NoiseEstimate::mod_switch`]'s coefficient rounding). With `P` as
    /// large as the largest data limb the key-switch term stays O(n·B) —
    /// the reason one digit per limb suffices where the digit path needs
    /// `ceil(log_A q_i)` of them.
    ///
    /// [`NoiseEstimate::rotate_at`] dispatches here automatically for
    /// special-prime parameter sets, so layer/tuner models price the
    /// hybrid path without call-site changes. Falls back to the
    /// digit-decomposition expression when `params` has no special prime.
    pub fn rotate_hybrid_at(&self, params: &BfvParams, level: usize) -> Self {
        let Some(p_special) = params.special() else {
            return self.rotate_at(params, level);
        };
        let n = params.degree() as f64;
        let b = 6.0 * params.sigma();
        let live = params.live_limbs_at(level);
        let p = p_special.value() as f64;
        let q_max = (0..live)
            .map(|i| params.chain().modulus(i).value())
            .max()
            .unwrap_or(1) as f64;
        let ks_term = live as f64 * (q_max / p) * n * b / 2.0;
        let rounding = 1.0 + (n + 1.0) / 2.0;
        let additive = ks_term + rounding;
        // Variance: live·n products of a centered ~uniform digit
        // (var q_max²/12) with fresh key noise (var σ²), divided by P²
        // after the rescale; plus the rescale rounding (e₀ + e₁·s with
        // ~2n/3 ternary terms of var 1/12 each).
        let sigma2 = params.sigma() * params.sigma();
        let ks_var = live as f64 * n * (q_max * q_max / 12.0) * sigma2 / (p * p);
        let round_var = (1.0 + 2.0 * n / 3.0) / 12.0;
        let add_var = ks_var + round_var;
        Self {
            bound_log2: log2_sum(self.bound_log2, additive.log2()),
            variance_log2: log2_sum(self.variance_log2, add_var.log2()),
        }
    }

    /// Noise after a Baby-Step-Giant-Step matrix–vector product at a
    /// level: `groups` inner sums of `baby` rotate-then-multiply terms
    /// (every baby step reads the *input*, so each term is one rotation of
    /// `self` times a plaintext of norm `w_base/2`), each inner sum rotated
    /// once by its giant step, then the groups added.
    ///
    /// This replaces the `d`-term sequential rotate-add accumulation of the
    /// diagonal method (`d = baby·giant` diagonals): the transition is
    /// `g·rot(Σ_b rot(v)·W) `, not `Σ_d rot(·)` chained through the fresh
    /// accumulator. Unrotated terms (baby step 0, giant group 0) and padded
    /// short groups are bounded by their rotated/full-width counterparts,
    /// keeping the estimate a true upper bound on the engine-tracked noise
    /// of a BSGS layer evaluation.
    pub fn bsgs_matvec_at(
        &self,
        params: &BfvParams,
        level: usize,
        baby: usize,
        groups: usize,
        w_base: u64,
    ) -> Self {
        let term = self
            .rotate_at(params, level)
            .mul_plain_at(params, level, 1, w_base);
        let mut inner = term;
        for _ in 1..baby.max(1) {
            inner = inner.add(&term);
        }
        let rotated_group = inner.rotate_at(params, level);
        let mut acc = rotated_group;
        for _ in 1..groups.max(1) {
            acc = acc.add(&rotated_group);
        }
        acc
    }

    /// Noise after modulus-switching from `from_level` to `from_level + 1`
    /// (dropping live limb `q_drop`).
    ///
    /// The switch divides the invariant noise by `q_drop` and injects two
    /// rounding terms:
    ///
    /// * coefficient rounding `e₀ + e₁·s` with `|·| ≤ (n + 1)/2` for a
    ///   ternary secret;
    /// * the Δ-drift `(ρ/q_drop)·m` with
    ///   `ρ = (q_drop·Δ' − Δ)·t/…`, bounded by `(Q' mod t) + 1`: switching
    ///   rescales `Δ_ℓ` to `q_drop·Δ_{ℓ+1} + ρ` and the remainder rides on
    ///   the message. Fully congruent chains (`Q_ℓ ≡ 1 (mod t)` at every
    ///   level) reduce the drift to ~1; incongruent ones pay up to the
    ///   live residue — which is why a 30-bit limb over a 16-bit `t`
    ///   cannot drop to one limb, while 36-bit limbs over a 17-bit `t`
    ///   can.
    ///
    /// The bound is `v/q_drop + (Q' mod t) + 1 + (n + 1)/2`; tests pin
    /// measured noise under it for every preset.
    pub fn mod_switch(&self, params: &BfvParams, from_level: usize) -> Self {
        let live = params.live_limbs_at(from_level);
        assert!(live >= 2, "no limb left to drop below level {from_level}");
        let q_drop = params.chain().modulus(live - 1).value() as f64;
        let n = params.degree() as f64;
        let drift = params.q_mod_t_at(from_level + 1).max(1) as f64;
        let additive = drift + 1.0 + (n + 1.0) / 2.0;
        // Variance: rounding errors are ~uniform(±1/2) per coefficient
        // (var 1/12), e₁·s sums ~2n/3 of them; the drift digit is
        // ~uniform in [0, drift) (var drift²/12).
        let add_var = drift * drift / 12.0 + (1.0 + 2.0 * n / 3.0) / 12.0;
        Self {
            bound_log2: log2_sum(self.bound_log2 - q_drop.log2(), additive.log2()),
            variance_log2: log2_sum(self.variance_log2 - 2.0 * q_drop.log2(), add_var.log2()),
        }
    }

    /// Remaining noise budget in bits under the worst-case model at level
    /// 0: `log2(Q/2t) − log2(bound)`. Negative means decryption may fail.
    pub fn budget_bits_worst(&self, params: &BfvParams) -> f64 {
        self.budget_bits_worst_at(params, 0)
    }

    /// Worst-case budget against a level's ceiling `Q_ℓ/(2t)` — the bound
    /// must describe a ciphertext *at that level* for the comparison to
    /// mean anything.
    pub fn budget_bits_worst_at(&self, params: &BfvParams, level: usize) -> f64 {
        params.noise_ceiling_at(level).log2() - self.bound_log2
    }

    /// Remaining noise budget in bits under the statistical model with the
    /// 1e-10 failure target at level 0: `log2(Q/2t) − log2(c·σ_Y)`.
    pub fn budget_bits_statistical(&self, params: &BfvParams) -> f64 {
        self.budget_bits_statistical_at(params, 0)
    }

    /// Statistical budget against a level's ceiling.
    pub fn budget_bits_statistical_at(&self, params: &BfvParams, level: usize) -> f64 {
        let sigma_log2 = self.variance_log2 / 2.0;
        params.noise_ceiling_at(level).log2() - (sigma_log2 + FAILURE_SCALE.log2())
    }

    /// The deepest level this estimate can be modulus-switched to while
    /// keeping at least `margin_bits` of worst-case budget: walks
    /// [`NoiseEstimate::mod_switch`] transitions from `from_level` down
    /// the chain and stops before the first level that would dip under the
    /// margin. Returns `from_level` itself when no switch is safe — the
    /// caller can always use the answer directly as a
    /// [`crate::Evaluator::mod_switch_to`] target.
    pub fn recommended_level(
        &self,
        params: &BfvParams,
        from_level: usize,
        margin_bits: f64,
    ) -> usize {
        let mut est = *self;
        let mut level = from_level;
        while level < params.max_level() {
            let next = est.mod_switch(params, level);
            if next.budget_bits_worst_at(params, level + 1) < margin_bits {
                break;
            }
            est = next;
            level += 1;
        }
        level
    }
}

/// `log2(2^a + 2^b)` computed stably.
fn log2_sum(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + (lo - hi).exp2()).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BfvParams {
        BfvParams::builder()
            .degree(4096)
            .cipher_bits(60)
            .plain_bits(17)
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_matches_table_iii() {
        let p = params();
        let e = NoiseEstimate::fresh(&p);
        let b = 6.0 * p.sigma();
        let expect = (2.0 * 4096.0 * b * b).log2();
        assert!((e.bound_log2 - expect).abs() < 1e-9);
    }

    #[test]
    fn add_doubles_equal_noise() {
        let p = params();
        let e = NoiseEstimate::fresh(&p);
        let s = e.add(&e);
        assert!((s.bound_log2 - (e.bound_log2 + 1.0)).abs() < 1e-9);
        assert!((s.variance_log2 - (e.variance_log2 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn mul_is_multiplicative_rotate_is_additive() {
        let p = params();
        let fresh = NoiseEstimate::fresh(&p);
        let after_mul = fresh.mul_plain(&p, 1, p.plain_modulus().value());
        // Multiplicative growth: bound increases by log2(n*t/2) ≈ 12+17-1.
        assert!(after_mul.bound_log2 - fresh.bound_log2 > 25.0);
        let after_rot = fresh.rotate(&p);
        // Additive growth: small compared to multiplication.
        assert!(after_rot.bound_log2 - fresh.bound_log2 < 25.0);
        assert!(after_rot.bound_log2 >= fresh.bound_log2);
    }

    #[test]
    fn sched_pa_beats_sched_ia_in_model() {
        // The §V insight: mult-then-rotate (PA) = ηM·v0 + ηA, while
        // rotate-then-mult (IA) = ηM·(v0 + ηA). IA must be strictly noisier.
        let p = params();
        let fresh = NoiseEstimate::fresh(&p);
        let w = p.plain_modulus().value();
        let pa = fresh.mul_plain(&p, 1, w).rotate(&p);
        let ia = fresh.rotate(&p).mul_plain(&p, 1, w);
        assert!(ia.bound_log2 > pa.bound_log2);
        assert!(ia.variance_log2 > pa.variance_log2);
    }

    #[test]
    fn bsgs_transition_beats_sequential_rotate_mul_chain() {
        // d = b·g diagonals: the BSGS transition (b inner rotate-mul terms
        // then ONE rotation per group) must bound strictly less noise than
        // the schedule-ordered d-term accumulation it replaces only when
        // the per-term costs compound — at minimum it must stay a valid
        // bound ≥ the per-term floor and scale with b·g like the flat sum.
        let p = params();
        let fresh = NoiseEstimate::fresh(&p);
        let w = 2 * 5;
        let bsgs = fresh.bsgs_matvec_at(&p, 0, 4, 4, w);
        // Flat IA model: 16 terms of rotate-then-mul.
        let term = fresh.rotate(&p).mul_plain(&p, 1, w);
        let mut flat = term;
        for _ in 1..16 {
            flat = flat.add(&term);
        }
        // The BSGS bound adds one extra giant rotation per group on top of
        // the same 16 inner terms: within a bit of the flat model, never
        // materially below it (it must still bound the engine).
        assert!(bsgs.bound_log2 >= flat.bound_log2);
        assert!(bsgs.bound_log2 <= flat.bound_log2 + 1.0);
        // Degenerate shapes reduce to their flat equivalents.
        let all_baby = fresh.bsgs_matvec_at(&p, 0, 16, 1, w);
        assert!(all_baby.bound_log2 >= flat.bound_log2);
        assert!(all_baby.bound_log2 <= flat.bound_log2 + 1.0);
    }

    #[test]
    fn statistical_budget_exceeds_worst_case_budget() {
        let p = params();
        let e = NoiseEstimate::fresh(&p).mul_plain(&p, 1, p.plain_modulus().value());
        assert!(e.budget_bits_statistical(&p) > e.budget_bits_worst(&p));
    }

    #[test]
    fn zero_is_identity_for_add() {
        let p = params();
        let e = NoiseEstimate::fresh(&p);
        let z = NoiseEstimate::zero();
        let s = e.add(&z);
        assert!((s.bound_log2 - e.bound_log2).abs() < 1e-12);
    }

    #[test]
    fn failure_scale_value() {
        // c = sqrt(ln(2/1e-10))
        let c = (2.0f64 / TARGET_FAILURE_RATE).ln().sqrt();
        assert!((c - FAILURE_SCALE).abs() < 1e-9);
    }

    #[test]
    fn log2_sum_stability() {
        assert!((log2_sum(10.0, 10.0) - 11.0).abs() < 1e-12);
        assert!((log2_sum(100.0, 0.0) - 100.0).abs() < 1e-6);
        assert_eq!(log2_sum(f64::NEG_INFINITY, 5.0), 5.0);
    }
}
