//! BFV encryption parameters (Table II of the paper).
//!
//! | Parameter | Meaning |
//! |-----------|---------|
//! | `n`       | polynomial degree (slot vector length) |
//! | `t`       | plaintext modulus |
//! | `q`       | ciphertext modulus |
//! | `W_dcmp`  | plaintext (weight) decomposition base |
//! | `A_dcmp`  | ciphertext (activation) decomposition base |
//! | `σ`       | std-dev of the encryption noise (fixed) |
//!
//! Parameters are built with [`BfvParamsBuilder`], which generates matching
//! NTT-friendly primes, checks the 128-bit RLWE security table, and
//! precomputes the NTT tables shared by every object in a session.

use std::fmt;
use std::sync::Arc;

use crate::arith::{generate_ntt_prime, generate_prime_congruent, Modulus};
use crate::error::{Error, Result};
use crate::ntt::NttTable;
use crate::poly::decomposition_levels;

/// Default encryption-noise standard deviation (SEAL's default).
pub const DEFAULT_SIGMA: f64 = 3.2;

/// Maximum `log2(q)` for 128-bit classical security with ternary secrets,
/// per the Homomorphic Encryption Standard. Returns `None` for unsupported
/// degrees.
pub fn max_log_q_128(n: usize) -> Option<u32> {
    match n {
        1024 => Some(27),
        2048 => Some(54),
        4096 => Some(109),
        8192 => Some(218),
        16384 => Some(438),
        32768 => Some(881),
        _ => None,
    }
}

/// Security enforcement policy for parameter construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecurityLevel {
    /// Enforce the 128-bit table; construction fails otherwise.
    #[default]
    Bits128,
    /// Skip the check (used for model sweeps over insecure corners, which
    /// HE-PTune must still be able to *cost*, and for legacy baselines).
    None,
}

/// Immutable, validated BFV parameter set plus precomputed NTT tables.
///
/// Cheap to clone (internally reference-counted); every ciphertext, key and
/// evaluator in a session shares one instance.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::params::BfvParams;
///
/// # fn main() -> Result<(), cheetah_bfv::Error> {
/// let params = BfvParams::builder()
///     .degree(4096)
///     .plain_bits(17)
///     .cipher_bits(60)
///     .build()?;
/// assert_eq!(params.degree(), 4096);
/// assert!(params.plain_modulus().value() % (2 * 4096) == 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct BfvParams {
    inner: Arc<ParamsInner>,
}

struct ParamsInner {
    n: usize,
    t: Modulus,
    q: Modulus,
    w_dcmp: u64,
    a_dcmp: u64,
    sigma: f64,
    delta: u64,
    q_table: NttTable,
    t_table: NttTable,
    security: SecurityLevel,
}

impl fmt::Debug for BfvParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BfvParams")
            .field("n", &self.inner.n)
            .field("t", &self.inner.t.value())
            .field("q", &self.inner.q.value())
            .field("w_dcmp", &self.inner.w_dcmp)
            .field("a_dcmp", &self.inner.a_dcmp)
            .field("sigma", &self.inner.sigma)
            .finish()
    }
}

impl PartialEq for BfvParams {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.n == other.inner.n
                && self.inner.t.value() == other.inner.t.value()
                && self.inner.q.value() == other.inner.q.value()
                && self.inner.w_dcmp == other.inner.w_dcmp
                && self.inner.a_dcmp == other.inner.a_dcmp)
    }
}
impl Eq for BfvParams {}

impl BfvParams {
    /// Starts building a parameter set.
    pub fn builder() -> BfvParamsBuilder {
        BfvParamsBuilder::new()
    }

    /// Polynomial degree `n`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inner.n
    }

    /// Plaintext modulus `t`.
    #[inline]
    pub fn plain_modulus(&self) -> &Modulus {
        &self.inner.t
    }

    /// Ciphertext modulus `q`.
    #[inline]
    pub fn cipher_modulus(&self) -> &Modulus {
        &self.inner.q
    }

    /// Plaintext (weight) decomposition base `W_dcmp`.
    #[inline]
    pub fn w_dcmp(&self) -> u64 {
        self.inner.w_dcmp
    }

    /// Ciphertext (activation) decomposition base `A_dcmp`.
    #[inline]
    pub fn a_dcmp(&self) -> u64 {
        self.inner.a_dcmp
    }

    /// Encryption-noise standard deviation `σ`.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.inner.sigma
    }

    /// `Δ = floor(q / t)`, the plaintext scaling factor.
    #[inline]
    pub fn delta(&self) -> u64 {
        self.inner.delta
    }

    /// NTT tables for the ciphertext modulus.
    #[inline]
    pub fn q_table(&self) -> &NttTable {
        &self.inner.q_table
    }

    /// NTT tables for the plaintext modulus (used by the batch encoder).
    #[inline]
    pub fn t_table(&self) -> &NttTable {
        &self.inner.t_table
    }

    /// Security policy the parameters were validated under.
    #[inline]
    pub fn security(&self) -> SecurityLevel {
        self.inner.security
    }

    /// `l_ct = ceil(log_{A_dcmp}(q))` — ciphertext decomposition levels.
    pub fn l_ct(&self) -> usize {
        decomposition_levels(self.inner.q.value(), self.inner.a_dcmp)
    }

    /// `l_pt = ceil(log_{W_dcmp}(t))` — plaintext decomposition levels.
    /// Equals 1 when `W_dcmp >= t` (no decomposition, the Sched-PA default).
    pub fn l_pt(&self) -> usize {
        if self.inner.w_dcmp >= self.inner.t.value() {
            1
        } else {
            decomposition_levels(self.inner.t.value(), self.inner.w_dcmp)
        }
    }

    /// Number of plaintext slots (equals the degree `n`; arranged as a
    /// `2 × n/2` matrix for rotation purposes).
    #[inline]
    pub fn slots(&self) -> usize {
        self.inner.n
    }

    /// Slots per rotation row (`n / 2`).
    #[inline]
    pub fn row_size(&self) -> usize {
        self.inner.n / 2
    }

    /// Fresh-ciphertext noise bound `2nB²` with `B = 6σ` (Table III).
    pub fn fresh_noise_bound(&self) -> f64 {
        let b = 6.0 * self.inner.sigma;
        2.0 * self.inner.n as f64 * b * b
    }

    /// The noise ceiling `q / (2t)`: decryption succeeds while the noise
    /// magnitude stays below this.
    pub fn noise_ceiling(&self) -> f64 {
        self.inner.q.value() as f64 / (2.0 * self.inner.t.value() as f64)
    }

    /// Errors unless `other` is the same parameter set.
    pub fn check_same(&self, other: &BfvParams) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(Error::ParameterMismatch)
        }
    }
}

/// Builder for [`BfvParams`].
///
/// Prime moduli are generated from bit sizes (`plain_bits`, `cipher_bits`)
/// unless exact values are supplied with [`BfvParamsBuilder::plain_modulus`] /
/// [`BfvParamsBuilder::cipher_modulus`].
#[derive(Debug, Clone)]
pub struct BfvParamsBuilder {
    n: usize,
    plain_bits: u32,
    cipher_bits: u32,
    plain_modulus: Option<u64>,
    cipher_modulus: Option<u64>,
    w_dcmp: Option<u64>,
    a_dcmp: u64,
    sigma: f64,
    security: SecurityLevel,
}

impl Default for BfvParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BfvParamsBuilder {
    /// Creates a builder with Cheetah-flavored defaults
    /// (`n = 4096`, 17-bit `t`, 60-bit `q`, `A_dcmp = 2^20`, no plaintext
    /// decomposition, `σ = 3.2`).
    pub fn new() -> Self {
        Self {
            n: 4096,
            plain_bits: 17,
            cipher_bits: 60,
            plain_modulus: None,
            cipher_modulus: None,
            w_dcmp: None,
            a_dcmp: 1 << 20,
            sigma: DEFAULT_SIGMA,
            security: SecurityLevel::default(),
        }
    }

    /// Sets the polynomial degree `n` (power of two ≥ 8).
    pub fn degree(&mut self, n: usize) -> &mut Self {
        self.n = n;
        self
    }

    /// Sets the plaintext modulus size in bits (a matching NTT prime is
    /// generated).
    pub fn plain_bits(&mut self, bits: u32) -> &mut Self {
        self.plain_bits = bits;
        self.plain_modulus = None;
        self
    }

    /// Sets the ciphertext modulus size in bits (a matching NTT prime is
    /// generated).
    pub fn cipher_bits(&mut self, bits: u32) -> &mut Self {
        self.cipher_bits = bits;
        self.cipher_modulus = None;
        self
    }

    /// Uses an exact plaintext modulus (must be an NTT prime for `n`).
    pub fn plain_modulus(&mut self, t: u64) -> &mut Self {
        self.plain_modulus = Some(t);
        self
    }

    /// Uses an exact ciphertext modulus (must be an NTT prime for `n`).
    pub fn cipher_modulus(&mut self, q: u64) -> &mut Self {
        self.cipher_modulus = Some(q);
        self
    }

    /// Sets the plaintext decomposition base `W_dcmp`. Values `>= t`
    /// disable plaintext decomposition (`l_pt = 1`).
    pub fn w_dcmp(&mut self, base: u64) -> &mut Self {
        self.w_dcmp = Some(base);
        self
    }

    /// Sets the ciphertext decomposition base `A_dcmp`.
    pub fn a_dcmp(&mut self, base: u64) -> &mut Self {
        self.a_dcmp = base;
        self
    }

    /// Sets the encryption-noise standard deviation.
    pub fn sigma(&mut self, sigma: f64) -> &mut Self {
        self.sigma = sigma;
        self
    }

    /// Sets the security enforcement policy.
    pub fn security(&mut self, level: SecurityLevel) -> &mut Self {
        self.security = level;
        self
    }

    /// Validates everything and builds the parameter set.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidDegree`] for a bad `n`;
    /// * [`Error::InsecureParameters`] when the 128-bit check fails;
    /// * [`Error::NoNttPrime`] when prime generation fails;
    /// * [`Error::InvalidDecompositionBase`] for bad bases.
    pub fn build(&self) -> Result<BfvParams> {
        if !self.n.is_power_of_two() || self.n < 8 {
            return Err(Error::InvalidDegree(self.n));
        }
        let t_val = match self.plain_modulus {
            Some(t) => t,
            None => generate_ntt_prime(self.plain_bits, self.n)?,
        };
        let q_val = match self.cipher_modulus {
            Some(q) => q,
            None => {
                // Prefer q ≡ 1 (mod 2n·t): with q mod t = 1 the BFV
                // plaintext-multiplication rounding term (q mod t)·⌊mp/t⌋
                // vanishes (Gazelle's modulus structure, which Table III's
                // noise model assumes). Fall back to a plain NTT prime when
                // the progression is too sparse for the requested size.
                let step = (2 * self.n as u64).checked_mul(t_val);
                match step {
                    Some(s) => generate_prime_congruent(self.cipher_bits, s)
                        .or_else(|_| generate_ntt_prime(self.cipher_bits, self.n))?,
                    None => generate_ntt_prime(self.cipher_bits, self.n)?,
                }
            }
        };
        let q = Modulus::new(q_val)?;
        let t = Modulus::new(t_val)?;
        if self.security == SecurityLevel::Bits128 {
            let max = max_log_q_128(self.n).ok_or(Error::InvalidDegree(self.n))?;
            if q.bits() > max {
                return Err(Error::InsecureParameters {
                    n: self.n,
                    log_q: q.bits(),
                    max_log_q: max,
                });
            }
        }
        if !self.a_dcmp.is_power_of_two() || self.a_dcmp < 2 {
            return Err(Error::InvalidDecompositionBase(self.a_dcmp));
        }
        let w_dcmp = self.w_dcmp.unwrap_or(t_val.next_power_of_two());
        if !w_dcmp.is_power_of_two() || w_dcmp < 2 {
            return Err(Error::InvalidDecompositionBase(w_dcmp));
        }
        let q_table = NttTable::new(self.n, q)?;
        let t_table = NttTable::new(self.n, t)?;
        Ok(BfvParams {
            inner: Arc::new(ParamsInner {
                n: self.n,
                t,
                q,
                w_dcmp,
                a_dcmp: self.a_dcmp,
                sigma: self.sigma,
                delta: q_val / t_val,
                q_table,
                t_table,
                security: self.security,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_produce_valid_params() {
        let p = BfvParams::builder().build().unwrap();
        assert_eq!(p.degree(), 4096);
        assert_eq!(p.cipher_modulus().bits(), 60);
        assert_eq!(p.plain_modulus().bits(), 17);
        assert_eq!(p.plain_modulus().value() % (2 * 4096), 1);
        assert_eq!(p.cipher_modulus().value() % (2 * 4096), 1);
        assert_eq!(
            p.delta(),
            p.cipher_modulus().value() / p.plain_modulus().value()
        );
    }

    #[test]
    fn security_check_enforced() {
        // 60-bit q at n=2048 exceeds the 54-bit limit.
        let err = BfvParams::builder()
            .degree(2048)
            .cipher_bits(60)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InsecureParameters { .. }));
        // …but is allowed with enforcement off.
        let p = BfvParams::builder()
            .degree(2048)
            .cipher_bits(60)
            .security(SecurityLevel::None)
            .build()
            .unwrap();
        assert_eq!(p.cipher_modulus().bits(), 60);
    }

    #[test]
    fn decomposition_levels_exposed() {
        let p = BfvParams::builder()
            .degree(4096)
            .cipher_bits(60)
            .a_dcmp(1 << 20)
            .build()
            .unwrap();
        assert_eq!(p.l_ct(), 3);
        // default w_dcmp >= t disables plaintext decomposition
        assert_eq!(p.l_pt(), 1);
        let p2 = BfvParams::builder()
            .degree(4096)
            .plain_bits(17)
            .w_dcmp(1 << 6)
            .build()
            .unwrap();
        assert_eq!(p2.l_pt(), 3); // ceil(17/6)
    }

    #[test]
    fn invalid_degree_rejected() {
        assert!(matches!(
            BfvParams::builder().degree(100).build(),
            Err(Error::InvalidDegree(100))
        ));
        assert!(matches!(
            BfvParams::builder().degree(4).build(),
            Err(Error::InvalidDegree(4))
        ));
    }

    #[test]
    fn invalid_bases_rejected() {
        assert!(matches!(
            BfvParams::builder().a_dcmp(3).build(),
            Err(Error::InvalidDecompositionBase(3))
        ));
        assert!(matches!(
            BfvParams::builder().w_dcmp(6).build(),
            Err(Error::InvalidDecompositionBase(6))
        ));
    }

    #[test]
    fn equality_is_structural() {
        let a = BfvParams::builder().build().unwrap();
        let b = BfvParams::builder().build().unwrap();
        assert_eq!(a, b);
        let c = BfvParams::builder()
            .degree(8192)
            .cipher_bits(60)
            .build()
            .unwrap();
        assert_ne!(a, c);
        assert!(a.check_same(&b).is_ok());
        assert!(a.check_same(&c).is_err());
    }

    #[test]
    fn fresh_noise_and_ceiling_formulas() {
        let p = BfvParams::builder().build().unwrap();
        let b = 6.0 * p.sigma();
        assert!((p.fresh_noise_bound() - 2.0 * 4096.0 * b * b).abs() < 1e-6);
        assert!(p.noise_ceiling() > 0.0);
    }

    #[test]
    fn max_log_q_table() {
        assert_eq!(max_log_q_128(2048), Some(54));
        assert_eq!(max_log_q_128(4096), Some(109));
        assert_eq!(max_log_q_128(1000), None);
    }
}
