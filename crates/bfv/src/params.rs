//! BFV encryption parameters over an RNS modulus chain.
//!
//! | Parameter | Meaning |
//! |-----------|---------|
//! | `n`       | polynomial degree (slot vector length) |
//! | `t`       | plaintext modulus |
//! | `q_0…q_{l-1}` | the ciphertext modulus chain, `Q = Π q_i` |
//! | `W_dcmp`  | plaintext (weight) decomposition base |
//! | `A_dcmp`  | ciphertext (activation) decomposition base |
//! | `σ`       | std-dev of the encryption noise (fixed) |
//!
//! The ciphertext modulus is a [`ModulusChain`] of word-sized CRT primes:
//! every ciphertext polynomial stores one residue plane per limb
//! ([`crate::rns::RnsPoly`]) and all hot kernels run limb-parallel in
//! machine words. A chain of length 1 reproduces the historical
//! single-modulus engine bit-for-bit; longer chains unlock `log2(Q)` far
//! past one word (the paper's deep-network noise budgets) while keeping
//! every multiplication a 64-bit Barrett op.
//!
//! Parameters are built with [`BfvParamsBuilder`]:
//!
//! ```
//! use cheetah_bfv::params::BfvParams;
//!
//! # fn main() -> Result<(), cheetah_bfv::Error> {
//! // Single limb (the classic Cheetah point): one generated 60-bit prime.
//! let single = BfvParams::builder().degree(4096).cipher_bits(60).build()?;
//! assert_eq!(single.limbs(), 1);
//!
//! // Multi-limb: exact primes via `.moduli([...])`, or generated sizes
//! // via `.moduli_bits(&[30, 30])`.
//! let two = BfvParams::builder()
//!     .degree(4096)
//!     .plain_bits(17)
//!     .moduli_bits(&[30, 30])
//!     .build()?;
//! assert_eq!(two.limbs(), 2);
//! assert_eq!(two.chain().total_bits(), 60);
//!
//! let explicit = BfvParams::builder()
//!     .degree(4096)
//!     .moduli(two.chain().moduli().iter().map(|m| m.value()).collect::<Vec<_>>())
//!     .build()?;
//! assert_eq!(explicit.chain(), two.chain());
//! # Ok(())
//! # }
//! ```
//!
//! The builder generates matching NTT-friendly primes, checks the 128-bit
//! RLWE security table against the *total* `log2(Q)`, and shares memoized
//! NTT tables per `(prime, n)` across every parameter set in the process.
//!
//! Ready-made presets for the limb counts the benches track:
//! [`BfvParams::preset_single_60`], [`BfvParams::preset_rns_2x30`],
//! [`BfvParams::preset_rns_3x36`] (see [`BfvParams::presets`]).

use std::fmt;
use std::sync::Arc;

use crate::arith::{
    generate_ntt_prime, generate_ntt_primes, generate_prime_congruent, generate_primes_congruent,
    Modulus, MAX_NTT_MODULUS_BITS,
};
use crate::error::{Error, Result};
use crate::ntt::NttTable;
use crate::poly::decomposition_levels;
use crate::rns::{ModulusChain, RnsPoly};

/// Default encryption-noise standard deviation (SEAL's default).
pub const DEFAULT_SIGMA: f64 = 3.2;

/// Maximum `log2(q)` for 128-bit classical security with ternary secrets,
/// per the Homomorphic Encryption Standard. Returns `None` for unsupported
/// degrees.
pub fn max_log_q_128(n: usize) -> Option<u32> {
    match n {
        1024 => Some(27),
        2048 => Some(54),
        4096 => Some(109),
        8192 => Some(218),
        16384 => Some(438),
        32768 => Some(881),
        _ => None,
    }
}

/// Security enforcement policy for parameter construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecurityLevel {
    /// Enforce the 128-bit table; construction fails otherwise.
    #[default]
    Bits128,
    /// Skip the check (used for model sweeps over insecure corners, which
    /// HE-PTune must still be able to *cost*, and for legacy baselines).
    None,
}

/// Immutable, validated BFV parameter set plus precomputed NTT tables.
///
/// Cheap to clone (internally reference-counted); every ciphertext, key and
/// evaluator in a session shares one instance.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::params::BfvParams;
///
/// # fn main() -> Result<(), cheetah_bfv::Error> {
/// let params = BfvParams::builder()
///     .degree(4096)
///     .plain_bits(17)
///     .cipher_bits(60)
///     .build()?;
/// assert_eq!(params.degree(), 4096);
/// assert!(params.plain_modulus().value() % (2 * 4096) == 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct BfvParams {
    inner: Arc<ParamsInner>,
}

struct ParamsInner {
    n: usize,
    t: Modulus,
    /// Per-level scaling data, indexed by *level* (= dropped-limb count):
    /// `levels[0]` is the full chain, `levels[l]` the prefix with the last
    /// `l` limbs dropped. A chain of `k` limbs has `k` levels, `0..=k-1`.
    levels: Vec<LevelData>,
    /// The special key-switch prime `P` (hybrid `P·Q` key switching).
    /// Never live for ciphertext data: the data chain above excludes it.
    special: Option<Modulus>,
    /// Per-level key-switch chains `[q_0 … q_{live-1}, P]`, indexed by
    /// level. Empty unless `special` is set. The special prime is always
    /// the *last* limb, so the exact-rescale by `P` is the ordinary
    /// drop-last-limb modulus switch on this chain.
    ks_levels: Vec<ModulusChain>,
    w_dcmp: u64,
    a_dcmp: u64,
    sigma: f64,
    t_table: Arc<NttTable>,
    security: SecurityLevel,
}

/// The per-level view of the modulus chain: the live prefix
/// `Q_ℓ = q_0 ⋯ q_{k-1-ℓ}` with its plaintext-scaling constants. Everything
/// a ciphertext at level `ℓ` (with `ℓ` limbs dropped) operates against.
struct LevelData {
    /// The live prefix as a chain of its own (tables shared with the full
    /// chain through the process-wide cache).
    chain: ModulusChain,
    /// `Δ_ℓ = floor(Q_ℓ / t)`, exact.
    delta: u128,
    /// `Δ_ℓ mod q_i` per live limb — the per-plane scaling factor.
    delta_mod: Vec<u64>,
    /// `Q_ℓ mod t` — the plaintext-multiplication rounding residue at this
    /// level, and (for level `ℓ+1`) the dominant modulus-switch rounding
    /// drift. The congruent generator drives it to 1 whenever a prime of
    /// the right shape exists.
    q_mod_t: u64,
}

impl fmt::Debug for BfvParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BfvParams")
            .field("n", &self.inner.n)
            .field("t", &self.inner.t.value())
            .field(
                "moduli",
                &self
                    .chain()
                    .moduli()
                    .iter()
                    .map(Modulus::value)
                    .collect::<Vec<_>>(),
            )
            .field("special", &self.inner.special.as_ref().map(Modulus::value))
            .field("w_dcmp", &self.inner.w_dcmp)
            .field("a_dcmp", &self.inner.a_dcmp)
            .field("sigma", &self.inner.sigma)
            .finish()
    }
}

impl PartialEq for BfvParams {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.n == other.inner.n
                && self.inner.t.value() == other.inner.t.value()
                && self.chain() == other.chain()
                && self.inner.special.as_ref().map(Modulus::value)
                    == other.inner.special.as_ref().map(Modulus::value)
                && self.inner.w_dcmp == other.inner.w_dcmp
                && self.inner.a_dcmp == other.inner.a_dcmp)
    }
}
impl Eq for BfvParams {}

impl BfvParams {
    /// Starts building a parameter set.
    pub fn builder() -> BfvParamsBuilder {
        BfvParamsBuilder::new()
    }

    /// The classic single-limb Cheetah point: one 60-bit prime, 17-bit `t`.
    ///
    /// # Errors
    ///
    /// Propagates builder errors (e.g. insecure degree).
    pub fn preset_single_60(n: usize) -> Result<BfvParams> {
        Self::builder()
            .degree(n)
            .plain_bits(17)
            .cipher_bits(60)
            .build()
    }

    /// Two-limb chain of distinct 30-bit primes (`log2 Q = 60`) — the
    /// single-60 noise ceiling exercised through genuine multi-limb CRT
    /// arithmetic. Uses a 16-bit `t`: a 30-bit limb cannot satisfy the
    /// Gazelle congruence `q ≡ 1 (mod 2n·t)`, so the multiplication
    /// rounding term `(Q mod t)·⌊mw/t⌋` is live and the smaller plaintext
    /// modulus keeps its headroom.
    ///
    /// # Errors
    ///
    /// Propagates builder errors.
    pub fn preset_rns_2x30(n: usize) -> Result<BfvParams> {
        // Smallest t with an NTT prime for the degree: 16 bits up to
        // n = 4096; n = 8192 needs t ≡ 1 (mod 16384), first hit 65537.
        let plain_bits = if n >= 8192 { 17 } else { 16 };
        Self::builder()
            .degree(n)
            .plain_bits(plain_bits)
            .moduli_bits(&[30, 30])
            .build()
    }

    /// Three-limb chain of distinct 36-bit primes (`log2 Q = 108`) — a
    /// deep noise budget out of reach of any single machine word, still
    /// 128-bit secure at `n = 4096`.
    ///
    /// # Errors
    ///
    /// Propagates builder errors.
    pub fn preset_rns_3x36(n: usize) -> Result<BfvParams> {
        Self::builder()
            .degree(n)
            .plain_bits(17)
            .moduli_bits(&[36, 36, 36])
            .build()
    }

    /// All named presets at degree `n`, as `(name, params)` pairs — the
    /// grid the per-limb benches and CRT proptests iterate.
    ///
    /// # Errors
    ///
    /// Propagates builder errors from any preset.
    pub fn presets(n: usize) -> Result<Vec<(&'static str, BfvParams)>> {
        Ok(vec![
            ("single_60", Self::preset_single_60(n)?),
            ("rns_2x30", Self::preset_rns_2x30(n)?),
            ("rns_3x36", Self::preset_rns_3x36(n)?),
        ])
    }

    /// Hybrid preset: one 54-bit data limb plus a congruent 54-bit special
    /// prime `P` (108 bits of RLWE modulus — the `n = 4096` security
    /// ceiling). Every limb including `P` satisfies `q ≡ 1 (mod 2n·t)`,
    /// so `Q_ℓ ≡ 1 (mod t)` at every level *and* the `P`-rescale drift is
    /// congruence-free. The search comes from
    /// [`search_congruent_chain`] — solver output, not a hand pick.
    ///
    /// # Errors
    ///
    /// Propagates search/builder errors.
    pub fn preset_hybrid_1x54(n: usize) -> Result<BfvParams> {
        let plain_bits = if n >= 8192 { 17 } else { 16 };
        let c = search_congruent_chain(n, plain_bits, &[54], 54)?;
        Self::builder()
            .degree(n)
            .plain_modulus(c.t)
            .moduli(c.data)
            .special_modulus(c.special)
            .build()
    }

    /// Hybrid preset: two 36-bit data limbs plus a congruent 36-bit `P`
    /// (108-bit RLWE modulus, two usable levels). The digit-decomposition
    /// twin is [`BfvParams::preset_rns_3x36`]: same total plane count, but
    /// rotations here pay one digit per live limb instead of
    /// `Σ ceil(log_A q_i)`.
    ///
    /// # Errors
    ///
    /// Propagates search/builder errors.
    pub fn preset_hybrid_2x36(n: usize) -> Result<BfvParams> {
        let plain_bits = if n >= 8192 { 17 } else { 16 };
        let c = search_congruent_chain(n, plain_bits, &[36, 36], 36)?;
        Self::builder()
            .degree(n)
            .plain_modulus(c.t)
            .moduli(c.data)
            .special_modulus(c.special)
            .build()
    }

    /// Hybrid preset for `n = 8192`: two 40-bit data limbs plus a
    /// congruent 40-bit `P`. Deeper degrees need wider congruent primes
    /// (`q ≡ 1 (mod 2n·t)` forces `q > 2n·t ≈ 2^31` at `n = 8192`), and
    /// the composed key-switch chain must stay under the exact-CRT 127-bit
    /// cap — 3×40 is the sweet spot the search lands on.
    ///
    /// # Errors
    ///
    /// Propagates search/builder errors.
    pub fn preset_hybrid_2x40(n: usize) -> Result<BfvParams> {
        let plain_bits = if n >= 8192 { 17 } else { 16 };
        let c = search_congruent_chain(n, plain_bits, &[40, 40], 40)?;
        Self::builder()
            .degree(n)
            .plain_modulus(c.t)
            .moduli(c.data)
            .special_modulus(c.special)
            .build()
    }

    /// All hybrid (special-prime) presets valid at degree `n`, as
    /// `(name, params)` pairs — the grid the hybrid benches and congruence
    /// proptests iterate. `2x36` needs the dense `n = 4096` congruent
    /// progression; `2x40` needs the `n = 8192` security budget.
    ///
    /// # Errors
    ///
    /// Propagates builder errors from any preset.
    pub fn hybrid_presets(n: usize) -> Result<Vec<(&'static str, BfvParams)>> {
        let mut out = vec![("hybrid_1x54", Self::preset_hybrid_1x54(n)?)];
        if n == 4096 {
            out.push(("hybrid_2x36", Self::preset_hybrid_2x36(n)?));
        }
        if n >= 8192 {
            out.push(("hybrid_2x40", Self::preset_hybrid_2x40(n)?));
        }
        Ok(out)
    }

    /// Polynomial degree `n`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inner.n
    }

    /// Plaintext modulus `t`.
    #[inline]
    pub fn plain_modulus(&self) -> &Modulus {
        &self.inner.t
    }

    /// The full (level-0) ciphertext modulus chain.
    #[inline]
    pub fn chain(&self) -> &ModulusChain {
        &self.inner.levels[0].chain
    }

    /// Number of RNS limbs `l` in the full ciphertext modulus.
    #[inline]
    pub fn limbs(&self) -> usize {
        self.chain().limbs()
    }

    /// Number of levels the chain supports (= its limb count): a
    /// ciphertext can live at levels `0..levels()`, level `ℓ` having
    /// dropped the last `ℓ` limbs.
    #[inline]
    pub fn levels(&self) -> usize {
        self.inner.levels.len()
    }

    /// The deepest level (`limbs - 1`): one live limb. A 1-limb chain is
    /// level-0-only.
    #[inline]
    pub fn max_level(&self) -> usize {
        self.inner.levels.len() - 1
    }

    /// Live limbs at a level: `limbs - level`.
    ///
    /// # Panics
    ///
    /// Panics for a level past [`BfvParams::max_level`].
    #[inline]
    pub fn live_limbs_at(&self, level: usize) -> usize {
        assert!(level < self.levels(), "level {level} out of range");
        self.limbs() - level
    }

    /// The live prefix chain at a level (`chain_at(0)` is the full chain).
    ///
    /// # Panics
    ///
    /// Panics for a level past [`BfvParams::max_level`].
    #[inline]
    pub fn chain_at(&self, level: usize) -> &ModulusChain {
        &self.inner.levels[level].chain
    }

    /// The composed live modulus `Q_ℓ` at a level.
    #[inline]
    pub fn big_q_at(&self, level: usize) -> u128 {
        self.inner.levels[level].chain.big_q()
    }

    /// Whether the chain reserves a special key-switch prime `P` (hybrid
    /// `P·Q` key switching). Hybrid parameter sets rotate through
    /// [`crate::Evaluator`]'s special-prime path: one digit per live limb
    /// instead of `Σ ceil(log_A q_i)`.
    #[inline]
    pub fn has_special(&self) -> bool {
        self.inner.special.is_some()
    }

    /// The special key-switch prime `P`, if the chain reserves one. `P`
    /// never carries ciphertext data — it exists only inside key-switch
    /// accumulators, which are exact-rescaled by `P` before they rejoin
    /// the data chain.
    #[inline]
    pub fn special(&self) -> Option<&Modulus> {
        self.inner.special.as_ref()
    }

    /// The key-switch chain `[q_0 … q_{live-1}, P]` at a level: the live
    /// data prefix extended by the special prime. Key-switch digits and
    /// accumulators live on this chain; dropping its last limb (`P`) is
    /// the exact rescale back to `Q_ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the chain has no special prime or the level is out of
    /// range — callers dispatch on [`BfvParams::has_special`] first.
    #[inline]
    pub fn ks_chain_at(&self, level: usize) -> &ModulusChain {
        assert!(
            self.has_special(),
            "ks_chain_at on a chain without a special prime"
        );
        &self.inner.ks_levels[level]
    }

    /// Limb planes scratch buffers must hold: the data limbs plus one
    /// extra plane for the special prime when the chain is hybrid.
    #[inline]
    pub fn scratch_limbs(&self) -> usize {
        self.limbs() + usize::from(self.has_special())
    }

    /// Digit count of a *hybrid* key switch at a level: exactly one digit
    /// per live limb (`q̂_i`-CRT decomposition, no base-`A` splitting —
    /// the special prime absorbs the noise the base split used to
    /// control). Compare [`BfvParams::l_ct_at`], the digit-decomposition
    /// bill.
    #[inline]
    pub fn ks_digits_at(&self, level: usize) -> usize {
        self.live_limbs_at(level)
    }

    /// Plaintext (weight) decomposition base `W_dcmp`.
    #[inline]
    pub fn w_dcmp(&self) -> u64 {
        self.inner.w_dcmp
    }

    /// Ciphertext (activation) decomposition base `A_dcmp`.
    #[inline]
    pub fn a_dcmp(&self) -> u64 {
        self.inner.a_dcmp
    }

    /// Encryption-noise standard deviation `σ`.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.inner.sigma
    }

    /// `Δ = floor(Q / t)`, the level-0 plaintext scaling factor (exact).
    #[inline]
    pub fn delta(&self) -> u128 {
        self.inner.levels[0].delta
    }

    /// `Δ_ℓ = floor(Q_ℓ / t)` — the scaling factor at a level. Modulus
    /// switching rescales ciphertexts from `Δ_ℓ` to `Δ_{ℓ+1}` exactly, so
    /// decryption at level `ℓ` divides by `Q_ℓ`, not `Q`.
    #[inline]
    pub fn delta_at(&self, level: usize) -> u128 {
        self.inner.levels[level].delta
    }

    /// `Δ mod q_i` — the per-limb image of the level-0 scaling factor.
    #[inline]
    pub fn delta_mod(&self, limb: usize) -> u64 {
        self.inner.levels[0].delta_mod[limb]
    }

    /// `Δ_ℓ mod q_i` for a live limb at a level.
    #[inline]
    pub fn delta_mod_at(&self, level: usize, limb: usize) -> u64 {
        self.inner.levels[level].delta_mod[limb]
    }

    /// `Q mod t` — the residue driving the plaintext-multiplication
    /// rounding term `(Q mod t)·⌊mw/t⌋`. Equals 1 whenever the chain
    /// satisfies the Gazelle congruence `Q ≡ 1 (mod t)` (always true for
    /// the default generated single limb; multi-limb generated chains get
    /// it when congruent primes of the requested sizes exist).
    #[inline]
    pub fn q_mod_t(&self) -> u64 {
        self.inner.levels[0].q_mod_t
    }

    /// `Q_ℓ mod t` at a level: the multiplication rounding residue there,
    /// and the dominant rounding drift a switch *onto* level `ℓ` injects
    /// (the `(ρ/q_drop)·m` term with `|ρ/q_drop| ≲ (Q_ℓ mod t)/t`).
    #[inline]
    pub fn q_mod_t_at(&self, level: usize) -> u64 {
        self.inner.levels[level].q_mod_t
    }

    /// Writes `Δ_ℓ·m` lifted into every *live* limb plane of `out`
    /// (coefficient form): `out[i][j] = (Δ_ℓ mod q_i)·m_j mod q_i`, exact
    /// because `Δ_ℓ·m < Q_ℓ`. The level is inferred from `out`'s limb
    /// count, so one implementation serves encryption (level 0), plaintext
    /// addition at any level, and noise measurement.
    ///
    /// # Panics
    ///
    /// Panics if `msg.len() != n` or `out` has a foreign shape (wrong
    /// degree, or more limbs than the chain).
    pub fn lift_scaled_into(&self, msg: &[u64], out: &mut RnsPoly) {
        assert_eq!(msg.len(), self.inner.n);
        assert_eq!(out.degree(), self.inner.n);
        let live = out.limbs();
        assert!(
            live >= 1 && live <= self.limbs(),
            "foreign limb count {live}"
        );
        let level = self.limbs() - live;
        out.set_representation(crate::poly::Representation::Coeff);
        for i in 0..live {
            let q_i = *self.chain().modulus(i);
            let delta_i = self.delta_mod_at(level, i);
            for (dst, &m) in out.limb_mut(i).iter_mut().zip(msg) {
                *dst = q_i.mul_mod(delta_i, m);
            }
        }
    }

    /// Allocating variant of [`BfvParams::lift_scaled_into`] (level 0).
    pub fn lift_scaled(&self, msg: &[u64]) -> RnsPoly {
        self.lift_scaled_at(msg, 0)
    }

    /// Allocating [`BfvParams::lift_scaled_into`] at an explicit level.
    pub fn lift_scaled_at(&self, msg: &[u64], level: usize) -> RnsPoly {
        let mut out = RnsPoly::zero(self.chain_at(level), crate::poly::Representation::Coeff);
        self.lift_scaled_into(msg, &mut out);
        out
    }

    /// NTT tables for the plaintext modulus (used by the batch encoder).
    #[inline]
    pub fn t_table(&self) -> &NttTable {
        &self.inner.t_table
    }

    /// Security policy the parameters were validated under.
    #[inline]
    pub fn security(&self) -> SecurityLevel {
        self.inner.security
    }

    /// `l_ct = Σ_i ceil(log_{A_dcmp}(q_i))` — ciphertext decomposition
    /// digits of the RNS-native (per-limb `q̂_i`) key switch: the number of
    /// key-switch pairs each Galois key carries and of digit polynomials
    /// one level-0 `HE_Rotate` processes. For a single limb this equals
    /// the historical composed `ceil(log_A Q)`.
    pub fn l_ct(&self) -> usize {
        self.l_ct_at(0)
    }

    /// Digit count of a key switch at a level: the sum over *live* limbs
    /// only, `Σ_{i<limbs-ℓ} ceil(log_A q_i)`. Dropped limbs contribute no
    /// digits, which is why rotations get cheaper as the circuit burns
    /// budget — the Galois key's limb-major pair list is simply consumed
    /// as a prefix.
    pub fn l_ct_at(&self, level: usize) -> usize {
        self.chain_at(level)
            .rns_decomposition_levels(self.inner.a_dcmp)
    }

    /// `l_pt = ceil(log_{W_dcmp}(t))` — plaintext decomposition levels.
    /// Equals 1 when `W_dcmp >= t` (no decomposition, the Sched-PA default).
    pub fn l_pt(&self) -> usize {
        if self.inner.w_dcmp >= self.inner.t.value() {
            1
        } else {
            decomposition_levels(self.inner.t.value(), self.inner.w_dcmp)
        }
    }

    /// Number of plaintext slots (equals the degree `n`; arranged as a
    /// `2 × n/2` matrix for rotation purposes).
    #[inline]
    pub fn slots(&self) -> usize {
        self.inner.n
    }

    /// Slots per rotation row (`n / 2`).
    #[inline]
    pub fn row_size(&self) -> usize {
        self.inner.n / 2
    }

    /// Fresh-ciphertext noise bound `2nB²` with `B = 6σ` (Table III).
    pub fn fresh_noise_bound(&self) -> f64 {
        let b = 6.0 * self.inner.sigma;
        2.0 * self.inner.n as f64 * b * b
    }

    /// The level-0 noise ceiling `Q / (2t)`: decryption succeeds while the
    /// noise magnitude stays below this.
    pub fn noise_ceiling(&self) -> f64 {
        self.noise_ceiling_at(0)
    }

    /// The noise ceiling `Q_ℓ / (2t)` at a level. Switching divides noise
    /// by the dropped limb but also lowers this ceiling by the same
    /// factor, so the budget is (nearly) preserved — what shrinks is every
    /// subsequent operation's cost.
    pub fn noise_ceiling_at(&self, level: usize) -> f64 {
        self.big_q_at(level) as f64 / (2.0 * self.inner.t.value() as f64)
    }

    /// Errors unless `other` is the same parameter set (degree, plaintext
    /// modulus, modulus chain, and decomposition bases all match) —
    /// ciphertexts from a foreign chain are rejected here.
    pub fn check_same(&self, other: &BfvParams) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(Error::ParameterMismatch)
        }
    }
}

/// A fully congruent chain found by [`search_congruent_chain`]: a
/// plaintext prime `t` and pairwise-distinct limb primes — data limbs and
/// the special key-switch prime — every one satisfying
/// `q ≡ 1 (mod 2n·t)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongruentChain {
    /// Polynomial degree the chain was searched for.
    pub n: usize,
    /// The plaintext modulus (an NTT prime for `n`).
    pub t: u64,
    /// Data limb primes, in request order.
    pub data: Vec<u64>,
    /// The special key-switch prime `P`.
    pub special: u64,
}

/// Co-optimizes `t` and the whole limb chain: finds an NTT-friendly
/// plaintext prime `t` of `t_bits` bits, then draws pairwise-distinct
/// primes `≡ 1 (mod 2n·t)` for every requested data-limb size *and* the
/// special prime — so `Q_ℓ ≡ 1 (mod t)` holds at every level, the
/// multiplication rounding term `(Q mod t)·⌊mw/t⌋` vanishes, and the
/// modulus-switch / `P`-rescale drift is congruence-free down the whole
/// chain. This is the prime search behind the `hybrid_*` presets and the
/// [`crate`]-external chain solver (HE-PTune v2).
///
/// Congruent primes must exceed `2n·t`, so small limb sizes at deep
/// degrees have no solution — the search reports that as a typed error
/// instead of silently degrading to non-congruent primes (the builder's
/// fallback behavior, which presets deliberately avoid).
///
/// # Errors
///
/// * [`Error::InvalidDegree`] for a bad `n`;
/// * [`Error::InvalidLimbCount`] for an empty data request;
/// * [`Error::NoNttPrime`] when a size class has too few congruent
///   primes (or no `t_bits` NTT prime exists).
pub fn search_congruent_chain(
    n: usize,
    t_bits: u32,
    data_bits: &[u32],
    special_bits: u32,
) -> Result<CongruentChain> {
    if !n.is_power_of_two() || n < 8 {
        return Err(Error::InvalidDegree(n));
    }
    if data_bits.is_empty() {
        return Err(Error::InvalidLimbCount { limbs: 0 });
    }
    let t = generate_ntt_prime(t_bits, n)?;
    let step = (2 * n as u64)
        .checked_mul(t)
        .ok_or(Error::NoNttPrime { bits: t_bits, n })?;
    // One pooled draw per distinct size class (special included) keeps
    // equal-sized limbs distinct; distinct sizes cannot collide.
    let mut all: Vec<u32> = data_bits.to_vec();
    all.push(special_bits);
    let mut sizes = all.clone();
    sizes.sort_unstable();
    sizes.dedup();
    let mut values = vec![0u64; all.len()];
    for b in sizes {
        let count = all.iter().filter(|&&x| x == b).count();
        let mut pool = generate_primes_congruent(b, step, count)?.into_iter();
        for (slot, &bit) in values.iter_mut().zip(all.iter()) {
            if bit == b {
                *slot = pool.next().unwrap_or(0);
            }
        }
    }
    let special = values.pop().unwrap_or(0);
    debug_assert!(values.iter().all(|&v| v != 0) && special != 0);
    Ok(CongruentChain {
        n,
        t,
        data: values,
        special,
    })
}

/// Builder for [`BfvParams`].
///
/// The ciphertext modulus chain comes from, in order of precedence:
/// exact limb values ([`BfvParamsBuilder::moduli`]), generated per-limb
/// bit sizes ([`BfvParamsBuilder::moduli_bits`]), an exact single modulus
/// ([`BfvParamsBuilder::cipher_modulus`]), or a generated single prime of
/// [`BfvParamsBuilder::cipher_bits`] bits (the default, preferring the
/// Gazelle congruence `q ≡ 1 (mod 2n·t)`).
#[derive(Debug, Clone)]
pub struct BfvParamsBuilder {
    n: usize,
    plain_bits: u32,
    cipher_bits: u32,
    plain_modulus: Option<u64>,
    moduli: Option<Vec<u64>>,
    moduli_bits: Option<Vec<u32>>,
    special_modulus: Option<u64>,
    special_bits: Option<u32>,
    w_dcmp: Option<u64>,
    a_dcmp: u64,
    sigma: f64,
    security: SecurityLevel,
}

impl Default for BfvParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BfvParamsBuilder {
    /// Creates a builder with Cheetah-flavored defaults
    /// (`n = 4096`, 17-bit `t`, one 60-bit limb, `A_dcmp = 2^20`, no
    /// plaintext decomposition, `σ = 3.2`).
    pub fn new() -> Self {
        Self {
            n: 4096,
            plain_bits: 17,
            cipher_bits: 60,
            plain_modulus: None,
            moduli: None,
            moduli_bits: None,
            special_modulus: None,
            special_bits: None,
            w_dcmp: None,
            a_dcmp: 1 << 20,
            sigma: DEFAULT_SIGMA,
            security: SecurityLevel::default(),
        }
    }

    /// Sets the polynomial degree `n` (power of two ≥ 8).
    pub fn degree(&mut self, n: usize) -> &mut Self {
        self.n = n;
        self
    }

    /// Sets the plaintext modulus size in bits (a matching NTT prime is
    /// generated).
    pub fn plain_bits(&mut self, bits: u32) -> &mut Self {
        self.plain_bits = bits;
        self.plain_modulus = None;
        self
    }

    /// Single-limb chain of a generated prime with this many bits
    /// (clears any previously set multi-limb configuration).
    pub fn cipher_bits(&mut self, bits: u32) -> &mut Self {
        self.cipher_bits = bits;
        self.moduli = None;
        self.moduli_bits = None;
        self
    }

    /// Uses an exact plaintext modulus (must be an NTT prime for `n`).
    pub fn plain_modulus(&mut self, t: u64) -> &mut Self {
        self.plain_modulus = Some(t);
        self
    }

    /// Single-limb chain with an exact modulus (must be an NTT prime for
    /// `n`). Equivalent to `.moduli([q])`.
    pub fn cipher_modulus(&mut self, q: u64) -> &mut Self {
        self.moduli(vec![q])
    }

    /// Exact modulus chain: pairwise-distinct NTT primes for `n`, in
    /// order.
    pub fn moduli(&mut self, values: impl Into<Vec<u64>>) -> &mut Self {
        self.moduli = Some(values.into());
        self.moduli_bits = None;
        self
    }

    /// Generated modulus chain: one distinct NTT prime per requested bit
    /// size (equal sizes yield distinct primes).
    pub fn moduli_bits(&mut self, bits: &[u32]) -> &mut Self {
        self.moduli_bits = Some(bits.to_vec());
        self.moduli = None;
        self
    }

    /// Reserves an exact special key-switch prime `P` (must be an NTT
    /// prime for `n`, distinct from every data limb). Parameter sets with
    /// a special prime key-switch hybrid: digits are raised to `P·Q_ℓ`,
    /// switched, then exact-rescaled by `P`.
    pub fn special_modulus(&mut self, p: u64) -> &mut Self {
        self.special_modulus = Some(p);
        self.special_bits = None;
        self
    }

    /// Reserves a generated special key-switch prime of this many bits
    /// (preferring the Gazelle congruence `P ≡ 1 (mod 2n·t)`, falling
    /// back to a plain NTT prime; always distinct from the data limbs).
    pub fn special_bits(&mut self, bits: u32) -> &mut Self {
        self.special_bits = Some(bits);
        self.special_modulus = None;
        self
    }

    /// Sets the plaintext decomposition base `W_dcmp`. Values `>= t`
    /// disable plaintext decomposition (`l_pt = 1`).
    pub fn w_dcmp(&mut self, base: u64) -> &mut Self {
        self.w_dcmp = Some(base);
        self
    }

    /// Sets the ciphertext decomposition base `A_dcmp`.
    pub fn a_dcmp(&mut self, base: u64) -> &mut Self {
        self.a_dcmp = base;
        self
    }

    /// Sets the encryption-noise standard deviation.
    pub fn sigma(&mut self, sigma: f64) -> &mut Self {
        self.sigma = sigma;
        self
    }

    /// Sets the security enforcement policy.
    pub fn security(&mut self, level: SecurityLevel) -> &mut Self {
        self.security = level;
        self
    }

    /// Resolves the limb values for the chain.
    fn resolve_moduli(&self, t_val: u64) -> Result<Vec<u64>> {
        if let Some(values) = &self.moduli {
            // Enforce the lazy-butterfly headroom bound (q < 2^61) here
            // rather than deep in chain construction, so an explicit
            // overwide limb fails with clear builder provenance. Generated
            // limbs inherit the same bound from the prime generators.
            if let Some(&bad) = values.iter().find(|v| *v >> MAX_NTT_MODULUS_BITS != 0) {
                return Err(Error::InvalidModulus(bad));
            }
            return Ok(values.clone());
        }
        if let Some(bits) = &self.moduli_bits {
            if bits.is_empty() {
                return Err(Error::InvalidLimbCount { limbs: 0 });
            }
            // Equal bit sizes must still yield distinct primes: generate a
            // pool per distinct size and hand primes out in request order.
            // Each size class prefers primes ≡ 1 (mod 2n·t): a fully
            // congruent chain keeps Q_ℓ ≡ 1 (mod t) at *every* level, which
            // kills both the multiplication rounding term and the dominant
            // modulus-switch drift. Sizes whose congruent progression is
            // too sparse fall back to plain NTT primes (e.g. 30-bit limbs
            // at n = 4096 — the 2x30 preset's documented regime).
            let mut values = vec![0u64; bits.len()];
            let mut sizes: Vec<u32> = bits.clone();
            sizes.sort_unstable();
            sizes.dedup();
            let congruent_step = (2 * self.n as u64).checked_mul(t_val);
            for b in sizes {
                let count = bits.iter().filter(|&&x| x == b).count();
                let congruent = congruent_step
                    .map(|s| generate_primes_congruent(b, s, count))
                    .and_then(std::result::Result::ok);
                let pool = match congruent {
                    Some(pool) => pool,
                    None => generate_ntt_primes(b, self.n, count)?,
                };
                let mut pool = pool.into_iter();
                for (slot, &bit) in values.iter_mut().zip(bits.iter()) {
                    if bit == b {
                        *slot = pool.next().expect("pool sized to request count");
                    }
                }
            }
            return Ok(values);
        }
        // Single generated limb: prefer q ≡ 1 (mod 2n·t) — with
        // q mod t = 1 the BFV plaintext-multiplication rounding term
        // (q mod t)·⌊mp/t⌋ vanishes (Gazelle's modulus structure, which
        // Table III's noise model assumes). Fall back to a plain NTT prime
        // when the progression is too sparse for the requested size.
        let step = (2 * self.n as u64).checked_mul(t_val);
        let q = match step {
            Some(s) => generate_prime_congruent(self.cipher_bits, s)
                .or_else(|_| generate_ntt_prime(self.cipher_bits, self.n))?,
            None => generate_ntt_prime(self.cipher_bits, self.n)?,
        };
        Ok(vec![q])
    }

    /// Resolves the special key-switch prime, if one was requested.
    fn resolve_special(&self, t_val: u64, limb_values: &[u64]) -> Result<Option<u64>> {
        if let Some(p) = self.special_modulus {
            // The special prime rides the same NTT tables as the data
            // limbs, so it gets the same q < 2^61 headroom bound.
            if p >> MAX_NTT_MODULUS_BITS != 0 || limb_values.contains(&p) || p <= t_val {
                return Err(Error::InvalidModulus(p));
            }
            return Ok(Some(p));
        }
        let Some(bits) = self.special_bits else {
            return Ok(None);
        };
        // Draw one more candidate than there are data limbs so at least
        // one survives the distinctness filter; prefer the congruent
        // progression like the data limbs do, with the same fallback.
        let pool_len = limb_values.len() + 1;
        let step = (2 * self.n as u64).checked_mul(t_val);
        let pick = |pool: Vec<u64>| {
            pool.into_iter()
                .find(|p| !limb_values.contains(p) && *p > t_val)
        };
        let congruent = step
            .map(|s| generate_primes_congruent(bits, s, pool_len))
            .and_then(std::result::Result::ok)
            .and_then(&pick);
        let p = match congruent {
            Some(p) => p,
            None => pick(generate_ntt_primes(bits, self.n, pool_len)?)
                .ok_or(Error::NoNttPrime { bits, n: self.n })?,
        };
        Ok(Some(p))
    }

    /// Validates everything and builds the parameter set.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidDegree`] for a bad `n`;
    /// * [`Error::InsecureParameters`] when the 128-bit check fails for the
    ///   total `log2(Q)`;
    /// * [`Error::NoNttPrime`] when prime generation fails;
    /// * [`Error::InvalidDecompositionBase`] for bad bases (including an
    ///   `A_dcmp` at least as large as a limb);
    /// * [`Error::InvalidLimbCount`] / [`Error::ModulusChainTooLarge`] /
    ///   [`Error::NotInvertible`] for malformed chains.
    pub fn build(&self) -> Result<BfvParams> {
        if !self.n.is_power_of_two() || self.n < 8 {
            return Err(Error::InvalidDegree(self.n));
        }
        let t_val = match self.plain_modulus {
            Some(t) => t,
            None => generate_ntt_prime(self.plain_bits, self.n)?,
        };
        let t = Modulus::new(t_val)?;
        let limb_values = self.resolve_moduli(t_val)?;
        let chain = ModulusChain::new(self.n, &limb_values)?;
        let special_val = self.resolve_special(t_val, &limb_values)?;
        // The plaintext modulus must fit inside every limb (plaintexts and
        // digits are lifted limb-wise), and exact CRT decryption needs
        // t·Q + Q/2 to fit u128.
        if chain.moduli().iter().any(|q| q.value() <= t_val) {
            return Err(Error::InvalidModulus(t_val));
        }
        if chain.total_bits() + t.bits() + 1 > 127 {
            return Err(Error::ModulusChainTooLarge {
                total_bits: chain.total_bits() + t.bits() + 1,
                max_bits: 127,
            });
        }
        if self.security == SecurityLevel::Bits128 {
            let max = max_log_q_128(self.n).ok_or(Error::InvalidDegree(self.n))?;
            // The RLWE samples in hybrid key-switch keys live mod P·Q, so
            // security is judged on the *total* modulus including the
            // special prime — P is free noise headroom, not free security.
            let special_bits = special_val.map_or(0, |p| 64 - p.leading_zeros());
            if chain.total_bits() + special_bits > max {
                return Err(Error::InsecureParameters {
                    n: self.n,
                    log_q: chain.total_bits() + special_bits,
                    max_log_q: max,
                });
            }
        }
        chain.check_decomposition_base(self.a_dcmp)?;
        // The plaintext window base is decomposed limb-wise too (windowed
        // multiplication lifts its digits into every plane), so it gets the
        // same per-limb bound — rejecting here turns a mid-inference
        // runtime error into a build-time one.
        let w_dcmp = self.w_dcmp.unwrap_or(t_val.next_power_of_two());
        chain.check_decomposition_base(w_dcmp)?;
        let t_table = NttTable::cached(self.n, t)?;
        // One LevelData per level: level ℓ keeps the first `limbs - ℓ`
        // limbs. Level 0 reuses the already-built full chain; the prefix
        // chains share NTT tables through the process-wide cache, so the
        // extra cost is the (tiny) per-prefix CRT constant set.
        let mut levels = Vec::with_capacity(chain.limbs());
        // The per-level key-switch chains [q_0 … q_{live-1}, P]: extending
        // each live prefix by the special prime also validates P (an NTT
        // prime for n, distinct from every live limb — a duplicate fails
        // the CRT inverse) and precomputes the P-rescale drop constants.
        let mut ks_levels = Vec::new();
        for level in 0..chain.limbs() {
            let live = chain.limbs() - level;
            let sub = if level == 0 {
                chain.clone()
            } else {
                ModulusChain::new(self.n, &limb_values[..live])?
            };
            if let Some(p) = special_val {
                let mut ks_values = limb_values[..live].to_vec();
                ks_values.push(p);
                ks_levels.push(ModulusChain::new(self.n, &ks_values)?);
            }
            let delta = sub.big_q() / t_val as u128;
            let delta_mod = sub.moduli().iter().map(|q| q.reduce_u128(delta)).collect();
            let q_mod_t = (sub.big_q() % t_val as u128) as u64;
            levels.push(LevelData {
                chain: sub,
                delta,
                delta_mod,
                q_mod_t,
            });
        }
        let special = match special_val {
            Some(p) => Some(Modulus::new(p)?),
            None => None,
        };
        Ok(BfvParams {
            inner: Arc::new(ParamsInner {
                n: self.n,
                t,
                levels,
                special,
                ks_levels,
                w_dcmp,
                a_dcmp: self.a_dcmp,
                sigma: self.sigma,
                t_table,
                security: self.security,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_produce_valid_params() {
        let p = BfvParams::builder().build().unwrap();
        assert_eq!(p.degree(), 4096);
        assert_eq!(p.limbs(), 1);
        assert_eq!(p.chain().total_bits(), 60);
        assert_eq!(p.plain_modulus().bits(), 17);
        assert_eq!(p.plain_modulus().value() % (2 * 4096), 1);
        assert_eq!(p.chain().modulus(0).value() % (2 * 4096), 1);
        assert_eq!(
            p.delta(),
            p.chain().big_q() / p.plain_modulus().value() as u128
        );
        assert_eq!(
            p.delta_mod(0),
            (p.delta() % p.chain().modulus(0).value() as u128) as u64
        );
    }

    #[test]
    fn builder_rejects_overwide_limbs_typed() {
        // Per-limb width is capped at 61 bits (q < 2^61): Harvey's lazy
        // butterfly accumulates x + 2q - u < 4q in a u64 and the lane
        // kernels keep one extra headroom bit. Every request path — bit
        // widths, explicit values, and the special prime — must fail with
        // a typed InvalidModulus, never a panic or a silent overflow.
        for bits in [62u32, 63, 64] {
            let err = BfvParams::builder()
                .degree(4096)
                .security(SecurityLevel::None)
                .moduli_bits(&[bits])
                .build()
                .unwrap_err();
            assert!(
                matches!(err, Error::InvalidModulus(_)),
                "moduli_bits {bits}"
            );
            let err = BfvParams::builder()
                .degree(4096)
                .security(SecurityLevel::None)
                .cipher_bits(bits)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, Error::InvalidModulus(_)),
                "cipher_bits {bits}"
            );
            let err = BfvParams::builder()
                .degree(4096)
                .security(SecurityLevel::None)
                .moduli_bits(&[36])
                .special_bits(bits)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, Error::InvalidModulus(_)),
                "special_bits {bits}"
            );
        }
        // Explicit values: a 62-bit number is a valid raw Barrett modulus
        // but not a valid NTT limb.
        let wide = 0x3fff_ffff_e800_0001u64;
        assert!(Modulus::new(wide).is_ok());
        let err = BfvParams::builder()
            .degree(4096)
            .security(SecurityLevel::None)
            .moduli(vec![wide])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidModulus(v) if v == wide));
        let err = BfvParams::builder()
            .degree(4096)
            .security(SecurityLevel::None)
            .moduli_bits(&[36])
            .special_modulus(wide)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidModulus(v) if v == wide));
        // One bit narrower is accepted end-to-end (61-bit limb, no security
        // cap so the width itself is what's under test).
        let p = BfvParams::builder()
            .degree(4096)
            .security(SecurityLevel::None)
            .moduli_bits(&[61])
            .build()
            .unwrap();
        assert_eq!(p.chain().modulus(0).bits(), 61);
    }

    #[test]
    fn security_check_enforced_on_total_bits() {
        // 60-bit q at n=2048 exceeds the 54-bit limit.
        let err = BfvParams::builder()
            .degree(2048)
            .cipher_bits(60)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InsecureParameters { .. }));
        // Two 30-bit limbs also total 60 bits: same rejection.
        let err = BfvParams::builder()
            .degree(2048)
            .plain_bits(16)
            .moduli_bits(&[30, 30])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InsecureParameters { .. }));
        // …but is allowed with enforcement off.
        let p = BfvParams::builder()
            .degree(2048)
            .cipher_bits(60)
            .security(SecurityLevel::None)
            .build()
            .unwrap();
        assert_eq!(p.chain().total_bits(), 60);
    }

    #[test]
    fn multi_limb_chains_build_with_distinct_primes() {
        for n in [4096usize, 8192] {
            let p = BfvParams::preset_rns_2x30(n).unwrap();
            assert_eq!(p.limbs(), 2);
            let q0 = p.chain().modulus(0).value();
            let q1 = p.chain().modulus(1).value();
            assert_ne!(q0, q1);
            assert_eq!(q0 % (2 * n as u64), 1);
            assert_eq!(q1 % (2 * n as u64), 1);
            assert_eq!(p.chain().total_bits(), 60);

            let p3 = BfvParams::preset_rns_3x36(n).unwrap();
            assert_eq!(p3.limbs(), 3);
            assert_eq!(p3.chain().total_bits(), 108);
            let values: Vec<u64> = p3.chain().moduli().iter().map(Modulus::value).collect();
            let mut dedup = values.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "limbs must be distinct: {values:?}");
        }
    }

    #[test]
    fn presets_enumerate_limb_counts() {
        let presets = BfvParams::presets(4096).unwrap();
        let limb_counts: Vec<usize> = presets.iter().map(|(_, p)| p.limbs()).collect();
        assert_eq!(limb_counts, vec![1, 2, 3]);
    }

    #[test]
    fn decomposition_levels_exposed() {
        let p = BfvParams::builder()
            .degree(4096)
            .cipher_bits(60)
            .a_dcmp(1 << 20)
            .build()
            .unwrap();
        assert_eq!(p.l_ct(), 3);
        // default w_dcmp >= t disables plaintext decomposition
        assert_eq!(p.l_pt(), 1);
        let p2 = BfvParams::builder()
            .degree(4096)
            .plain_bits(17)
            .w_dcmp(1 << 6)
            .build()
            .unwrap();
        assert_eq!(p2.l_pt(), 3); // ceil(17/6)

        // Multi-limb: l_ct sums the per-limb digit counts of the
        // RNS-native decomposition (3 limbs × ceil(36/20) digits).
        let p3 = BfvParams::preset_rns_3x36(4096).unwrap();
        assert_eq!(p3.l_ct(), 3 * 36usize.div_ceil(20));
        let p2 = BfvParams::preset_rns_2x30(4096).unwrap();
        assert_eq!(p2.l_ct(), 2 * 30usize.div_ceil(20));
    }

    #[test]
    fn invalid_degree_rejected() {
        assert!(matches!(
            BfvParams::builder().degree(100).build(),
            Err(Error::InvalidDegree(100))
        ));
        assert!(matches!(
            BfvParams::builder().degree(4).build(),
            Err(Error::InvalidDegree(4))
        ));
    }

    #[test]
    fn invalid_bases_rejected() {
        assert!(matches!(
            BfvParams::builder().a_dcmp(3).build(),
            Err(Error::InvalidDecompositionBase(3))
        ));
        assert!(matches!(
            BfvParams::builder().w_dcmp(6).build(),
            Err(Error::InvalidDecompositionBase(6))
        ));
        // A_dcmp must stay below every limb: 2^20 >= a 30-bit limb is fine,
        // but 2^30 is not.
        assert!(matches!(
            BfvParams::builder()
                .degree(4096)
                .plain_bits(17)
                .moduli_bits(&[30, 30])
                .a_dcmp(1 << 30)
                .build(),
            Err(Error::InvalidDecompositionBase(_))
        ));
    }

    #[test]
    fn equality_is_structural_and_chain_aware() {
        let a = BfvParams::builder().build().unwrap();
        let b = BfvParams::builder().build().unwrap();
        assert_eq!(a, b);
        let c = BfvParams::builder()
            .degree(8192)
            .cipher_bits(60)
            .build()
            .unwrap();
        assert_ne!(a, c);
        assert!(a.check_same(&b).is_ok());
        assert!(a.check_same(&c).is_err());
        // Same total bits, different limb structure: still foreign.
        let d = BfvParams::preset_rns_2x30(4096).unwrap();
        let e = BfvParams::preset_single_60(4096).unwrap();
        assert_ne!(d, e);
        assert!(d.check_same(&e).is_err());
    }

    #[test]
    fn fresh_noise_and_ceiling_formulas() {
        let p = BfvParams::builder().build().unwrap();
        let b = 6.0 * p.sigma();
        assert!((p.fresh_noise_bound() - 2.0 * 4096.0 * b * b).abs() < 1e-6);
        assert!(p.noise_ceiling() > 0.0);
        // Multi-limb ceiling reflects the composed modulus.
        let p3 = BfvParams::preset_rns_3x36(4096).unwrap();
        assert!(p3.noise_ceiling().log2() > 85.0);
    }

    #[test]
    fn ntt_tables_are_memoized_across_builds() {
        let a = BfvParams::preset_rns_2x30(4096).unwrap();
        let b = BfvParams::preset_rns_2x30(4096).unwrap();
        for i in 0..2 {
            assert!(
                Arc::ptr_eq(&a.chain().tables()[i], &b.chain().tables()[i]),
                "limb {i} table must come from the process-wide cache"
            );
        }
    }

    #[test]
    fn hybrid_presets_are_congruent_down_the_whole_chain() {
        for (n, presets) in [
            (4096usize, BfvParams::hybrid_presets(4096).unwrap()),
            (8192, BfvParams::hybrid_presets(8192).unwrap()),
        ] {
            assert!(!presets.is_empty());
            for (name, p) in presets {
                assert!(p.has_special(), "{name}");
                let t = p.plain_modulus().value();
                let step = 2 * n as u64 * t;
                let special = p.special().unwrap().value();
                let mut all: Vec<u64> = p.chain().moduli().iter().map(Modulus::value).collect();
                all.push(special);
                let mut dedup = all.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), all.len(), "{name}: limbs must be distinct");
                for q in all {
                    assert_eq!(q % step, 1, "{name}: {q} not ≡ 1 mod 2n·t");
                }
                // Congruence collapses the rounding residue at every level.
                for level in 0..p.levels() {
                    assert_eq!(p.q_mod_t_at(level), 1, "{name} level {level}");
                }
            }
        }
    }

    #[test]
    fn ks_chains_extend_each_live_prefix_by_the_special_prime() {
        let p = BfvParams::preset_hybrid_2x36(4096).unwrap();
        assert_eq!(p.limbs(), 2);
        assert_eq!(p.scratch_limbs(), 3);
        let special = p.special().unwrap().value();
        for level in 0..p.levels() {
            let live = p.live_limbs_at(level);
            let ks = p.ks_chain_at(level);
            assert_eq!(ks.limbs(), live + 1);
            for i in 0..live {
                assert_eq!(
                    ks.modulus(i).value(),
                    p.chain().modulus(i).value(),
                    "level {level} limb {i}"
                );
            }
            assert_eq!(ks.modulus(live).value(), special);
            assert_eq!(p.ks_digits_at(level), live);
        }
        // Non-hybrid chains have no special machinery.
        let d = BfvParams::preset_rns_2x30(4096).unwrap();
        assert!(!d.has_special());
        assert_eq!(d.scratch_limbs(), d.limbs());
    }

    #[test]
    fn special_prime_separates_equality_and_counts_toward_security() {
        // Same data chain with and without a special prime: foreign.
        let c = search_congruent_chain(4096, 16, &[36, 36], 36).unwrap();
        let digit = BfvParams::builder()
            .degree(4096)
            .plain_modulus(c.t)
            .moduli(c.data.clone())
            .build()
            .unwrap();
        let hybrid = BfvParams::builder()
            .degree(4096)
            .plain_modulus(c.t)
            .moduli(c.data.clone())
            .special_modulus(c.special)
            .build()
            .unwrap();
        assert_eq!(digit.chain(), hybrid.chain());
        assert_ne!(digit, hybrid);
        assert!(digit.check_same(&hybrid).is_err());

        // P counts toward the 128-bit budget: 3x36 data + 36-bit P = 144
        // bits at n = 4096 is rejected.
        let err = BfvParams::builder()
            .degree(4096)
            .plain_bits(17)
            .moduli_bits(&[36, 36, 36])
            .special_bits(36)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InsecureParameters { log_q: 144, .. }));

        // A special prime duplicating a data limb is rejected.
        let err = BfvParams::builder()
            .degree(4096)
            .plain_modulus(c.t)
            .moduli(c.data.clone())
            .special_modulus(c.data[0])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidModulus(_)));
    }

    #[test]
    fn search_congruent_chain_reports_impossible_regimes() {
        // 30-bit congruent limbs cannot exist at n = 4096 with a 16-bit t
        // (the progression step 2n·t already exceeds 2^30).
        assert!(search_congruent_chain(4096, 16, &[30, 30], 30).is_err());
        assert!(search_congruent_chain(100, 16, &[36], 36).is_err());
        assert!(search_congruent_chain(4096, 16, &[], 36).is_err());
    }

    #[test]
    fn max_log_q_table() {
        assert_eq!(max_log_q_128(2048), Some(54));
        assert_eq!(max_log_q_128(4096), Some(109));
        assert_eq!(max_log_q_128(1000), None);
    }
}
