//! Vectorized kernel dispatch: scalar reference, portable lanes, and AVX2.
//!
//! Every element-wise loop in the engine — the Harvey NTT butterflies in
//! [`crate::ntt::NttTable`] and the Barrett/Shoup pointwise kernels in
//! [`crate::poly`] — funnels through this module. Three backends exist:
//!
//! * [`SimdBackend::Scalar`] — the original loops, verbatim. This is the
//!   pinned reference: the other backends are *defined* as bit-identical
//!   to it, and the default whenever the `simd` cargo feature is off.
//! * [`SimdBackend::Portable`] — branch-free, lane-chunked rewrites of the
//!   same arithmetic, shaped so LLVM auto-vectorizes them for whatever the
//!   target baseline offers (NEON on aarch64, SSE2 on x86_64).
//! * [`SimdBackend::Avx2`] — the identical lane bodies monomorphized under
//!   `#[target_feature(enable = "avx2")]`, selected at runtime via
//!   `is_x86_feature_detected!`. (`std::simd` is nightly-only; cloning
//!   `#[inline(always)]` bodies into a `target_feature` wrapper is the
//!   stable equivalent of multiversioning.)
//!
//! ## Bit-identity contract
//!
//! All three backends produce **identical bytes** on identical inputs, for
//! every modulus the engine admits. This holds by construction, not by
//! rounding luck: the kernels are pure integer arithmetic, and the lane
//! variants only replace `if x >= m { x -= m }` with the branch-free
//! `x - m·(x ≥ m)` (same value) and the Barrett `while`-correction with
//! two masked subtractions (the quotient estimate is off by at most 2, so
//! the loop never runs more than twice). Lazy `[0, 2q)`/`[0, 4q)`
//! intermediates never escape a kernel; every output is canonical in
//! `[0, q)`. The `simd_equivalence` proptests pin the contract across all
//! presets and levels.
//!
//! ## Headroom
//!
//! The lane butterflies accumulate `x + 2q - u < 4q` in a `u64`, which is
//! why NTT limbs are capped at `q < 2^61`
//! ([`crate::arith::MAX_NTT_MODULUS_BITS`]): `4q < 2^63` leaves one spare
//! bit over the Harvey minimum (`q < 2^62`) for deferred-reduction
//! experiments without changing the tables.
//!
//! ## Overriding the backend (tests/benches)
//!
//! [`force_backend`] pins the calling **thread** to a backend; worker
//! threads spawned by batched transforms keep the process default, so a
//! test forcing `Scalar` cannot race a concurrent test forcing `Avx2`.
//! Without the `simd` feature every request clamps to `Scalar`, so the
//! same test suite runs unchanged in both feature configurations.

use std::cell::Cell;
use std::sync::OnceLock;

use crate::arith::Modulus;

/// Which kernel implementation services this thread's element-wise loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// The original scalar loops — the pinned bit-exact reference.
    Scalar,
    /// Branch-free lane-chunked loops compiled for the target baseline.
    Portable,
    /// The lane loops monomorphized under AVX2 (x86_64, runtime-detected).
    Avx2,
}

impl SimdBackend {
    /// Human-readable backend name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Portable => "portable",
            SimdBackend::Avx2 => "avx2",
        }
    }
}

/// Clamps a requested backend to what this build and CPU can actually run:
/// without the `simd` feature everything is `Scalar`; `Avx2` falls back to
/// `Portable` off x86_64 or when the CPU lacks the feature.
fn clamp(requested: SimdBackend) -> SimdBackend {
    #[cfg(not(feature = "simd"))]
    {
        let _ = requested;
        SimdBackend::Scalar
    }
    #[cfg(feature = "simd")]
    {
        match requested {
            SimdBackend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                if std::arch::is_x86_feature_detected!("avx2") {
                    return SimdBackend::Avx2;
                }
                SimdBackend::Portable
            }
            other => other,
        }
    }
}

/// The best backend this build and CPU support: `Avx2` when the `simd`
/// feature is on and the CPU has it, else `Portable` (feature on) or
/// `Scalar` (feature off).
pub fn detect() -> SimdBackend {
    clamp(SimdBackend::Avx2)
}

static DETECTED: OnceLock<SimdBackend> = OnceLock::new();

thread_local! {
    static FORCED: Cell<Option<SimdBackend>> = const { Cell::new(None) };
}

/// The backend the *calling thread* will dispatch to: its
/// [`force_backend`] override if set, else the process-wide [`detect`]
/// result (computed once).
pub fn current_backend() -> SimdBackend {
    FORCED
        .with(Cell::get)
        .unwrap_or_else(|| *DETECTED.get_or_init(detect))
}

/// Pins the calling thread to a backend (`None` restores auto-detection)
/// and returns the backend now in effect. Requests are clamped to what the
/// build supports — see [`clamp`]'s rules — so forcing `Avx2` in a
/// non-`simd` build is a no-op that leaves the thread on `Scalar`.
///
/// The override is **per thread**: worker threads spawned by
/// [`crate::PolyBatch`] transforms or the serving pool keep the detected
/// default. Intended for benches and equivalence tests.
pub fn force_backend(backend: Option<SimdBackend>) -> SimdBackend {
    FORCED.with(|f| f.set(backend.map(clamp)));
    current_backend()
}

// ---------------------------------------------------------------------
// Dispatch: one `match` per kernel invocation (a whole slice, not an
// element), so steady-state cost is a predicted branch. `Avx2` is only
// ever reported by `clamp` after `is_x86_feature_detected!` succeeded,
// which is what makes the `unsafe` call sound.
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($name:ident($($arg:expr),* $(,)?)) => {
        match current_backend() {
            #[cfg(feature = "simd")]
            SimdBackend::Portable => lanes::portable::$name($($arg),*),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: `clamp` only yields `Avx2` after
            // `is_x86_feature_detected!("avx2")` returned true.
            SimdBackend::Avx2 => unsafe { lanes::avx2::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    };
}

/// In-place forward negacyclic NTT over SoA twiddles (natural →
/// bit-reversed). Caller guarantees `a.len()` is the table degree and
/// `op`/`quo` are the bit-reverse-scrambled `ψ` powers with their Shoup
/// quotients. Inputs canonical in `[0, q)`; outputs canonical.
pub(crate) fn ntt_forward(a: &mut [u64], op: &[u64], quo: &[u64], q: u64) {
    dispatch!(ntt_forward(a, op, quo, q))
}

/// In-place inverse negacyclic NTT (bit-reversed → natural), including the
/// `n^{-1}` scaling given as a Shoup pair. Same shape contract as
/// [`ntt_forward`].
pub(crate) fn ntt_inverse(
    a: &mut [u64],
    op: &[u64],
    quo: &[u64],
    q: u64,
    n_inv_op: u64,
    n_inv_quo: u64,
) {
    dispatch!(ntt_inverse(a, op, quo, q, n_inv_op, n_inv_quo))
}

/// `a[i] ← a[i] + b[i] mod q`, element-wise.
pub(crate) fn add_assign(a: &mut [u64], b: &[u64], q: &Modulus) {
    dispatch!(add_assign(a, b, q))
}

/// `a[i] ← a[i] - b[i] mod q`, element-wise.
pub(crate) fn sub_assign(a: &mut [u64], b: &[u64], q: &Modulus) {
    dispatch!(sub_assign(a, b, q))
}

/// `a[i] ← -a[i] mod q`, element-wise.
pub(crate) fn negate(a: &mut [u64], q: &Modulus) {
    dispatch!(negate(a, q))
}

/// `a[i] ← a[i]·b[i] mod q` (Barrett), element-wise.
pub(crate) fn mul_pointwise(a: &mut [u64], b: &[u64], q: &Modulus) {
    dispatch!(mul_pointwise(a, b, q))
}

/// `a[i] ← a[i]·c mod q` (Barrett; `c` reduced once up front).
pub(crate) fn mul_scalar(a: &mut [u64], c: u64, q: &Modulus) {
    dispatch!(mul_scalar(a, c, q))
}

/// `r[i] ← r[i] + a[i]·b[i] mod q` (the key-switch inner loop).
pub(crate) fn fma_pointwise(r: &mut [u64], a: &[u64], b: &[u64], q: &Modulus) {
    dispatch!(fma_pointwise(r, a, b, q))
}

/// `a[i] ← (±2^exp)·a[i] mod q` via a conditional-subtract doubling chain.
pub(crate) fn mul_pow2(a: &mut [u64], exp: u32, negative: bool, q: &Modulus) {
    dispatch!(mul_pow2(a, exp, negative, q))
}

/// `r[i] ← r[i] + (±2^exp)·a[i] mod q` (fused pow2 accumulate).
pub(crate) fn fma_pow2(r: &mut [u64], a: &[u64], exp: u32, negative: bool, q: &Modulus) {
    dispatch!(fma_pow2(r, a, exp, negative, q))
}

// ---------------------------------------------------------------------
// Scalar backend: the engine's original loops, moved here verbatim. Do
// not "improve" these — they are the reference the lane backends (and
// the committed bench baselines) are measured and verified against.
// ---------------------------------------------------------------------

mod scalar {
    use crate::arith::Modulus;

    /// `x·w mod q` lazily reduced to `[0, 2q)` — `ShoupPrecomp::mul_lazy`
    /// over the SoA `(operand, quotient)` pair.
    #[inline(always)]
    fn mul_lazy(x: u64, w: u64, w_quo: u64, q: u64) -> u64 {
        let approx = ((x as u128 * w_quo as u128) >> 64) as u64;
        x.wrapping_mul(w).wrapping_sub(approx.wrapping_mul(q))
    }

    pub(super) fn ntt_forward(a: &mut [u64], op: &[u64], quo: &[u64], q: u64) {
        let n = a.len();
        let two_q = 2 * q;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let w = op[m + i];
                let wq = quo[m + i];
                for j in j1..j1 + t {
                    // Harvey forward butterfly, inputs < 4q, outputs < 4q.
                    let mut x = a[j];
                    if x >= two_q {
                        x -= two_q;
                    }
                    let u = mul_lazy(a[j + t], w, wq, q); // < 2q
                    a[j] = x + u;
                    a[j + t] = x + two_q - u;
                }
            }
            m <<= 1;
        }
        // Final full reduction to [0, q).
        for x in a.iter_mut() {
            if *x >= two_q {
                *x -= two_q;
            }
            if *x >= q {
                *x -= q;
            }
        }
    }

    pub(super) fn ntt_inverse(
        a: &mut [u64],
        op: &[u64],
        quo: &[u64],
        q: u64,
        n_inv_op: u64,
        n_inv_quo: u64,
    ) {
        let n = a.len();
        let two_q = 2 * q;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let w = op[h + i];
                let wq = quo[h + i];
                for j in j1..j1 + t {
                    // Gentleman–Sande butterfly, lazy.
                    let x = a[j];
                    let y = a[j + t];
                    let mut s = x + y;
                    if s >= two_q {
                        s -= two_q;
                    }
                    a[j] = s;
                    a[j + t] = mul_lazy(x + two_q - y, w, wq, q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            // Lazy butterflies leave values < 2q; two conditional
            // subtractions replace the old hardware division (`% q`).
            let mut v = *x;
            if v >= two_q {
                v -= two_q;
            }
            if v >= q {
                v -= q;
            }
            let r = mul_lazy(v, n_inv_op, n_inv_quo, q);
            *x = if r >= q { r - q } else { r };
        }
    }

    pub(super) fn add_assign(a: &mut [u64], b: &[u64], q: &Modulus) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = q.add_mod(*x, y);
        }
    }

    pub(super) fn sub_assign(a: &mut [u64], b: &[u64], q: &Modulus) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = q.sub_mod(*x, y);
        }
    }

    pub(super) fn negate(a: &mut [u64], q: &Modulus) {
        for x in a.iter_mut() {
            *x = q.neg_mod(*x);
        }
    }

    pub(super) fn mul_pointwise(a: &mut [u64], b: &[u64], q: &Modulus) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = q.mul_mod(*x, y);
        }
    }

    pub(super) fn mul_scalar(a: &mut [u64], c: u64, q: &Modulus) {
        let c = q.reduce(c);
        for x in a.iter_mut() {
            *x = q.mul_mod(*x, c);
        }
    }

    pub(super) fn fma_pointwise(r: &mut [u64], a: &[u64], b: &[u64], q: &Modulus) {
        for ((x, &y), &z) in r.iter_mut().zip(a).zip(b) {
            *x = q.add_mod(*x, q.mul_mod(y, z));
        }
    }

    pub(super) fn mul_pow2(a: &mut [u64], exp: u32, negative: bool, q: &Modulus) {
        for x in a.iter_mut() {
            let mut v = *x;
            for _ in 0..exp {
                v = q.add_mod(v, v);
            }
            *x = if negative { q.neg_mod(v) } else { v };
        }
    }

    pub(super) fn fma_pow2(r: &mut [u64], a: &[u64], exp: u32, negative: bool, q: &Modulus) {
        for (x, &y) in r.iter_mut().zip(a) {
            let mut v = y;
            for _ in 0..exp {
                v = q.add_mod(v, v);
            }
            if negative {
                v = q.neg_mod(v);
            }
            *x = q.add_mod(*x, v);
        }
    }
}

// ---------------------------------------------------------------------
// Lane backends: branch-free bodies chunked to LANES so LLVM vectorizes
// with no scalar epilogue (plane lengths are powers of two ≥ 8, hence
// multiples of LANES). The same `#[inline(always)]` bodies are exposed
// twice — once plain (`portable`), once under
// `#[target_feature(enable = "avx2")]` (`avx2`), which re-codegens every
// inlined body with AVX2 enabled.
// ---------------------------------------------------------------------

#[cfg(feature = "simd")]
mod lanes {
    mod body {
        use crate::arith::{mulhi_u128, Modulus};

        /// Lane width the kernels chunk by: 4 × u64 is one 256-bit AVX2
        /// vector, and two 128-bit NEON/SSE2 vectors. NTT stages with
        /// `t < LANES` (the last two) run the same body unchunked.
        pub(super) const LANES: usize = 4;

        /// Branch-free `if x >= m { x - m } else { x }` — identical value,
        /// no data-dependent branch (the NTT's conditional subtraction is
        /// taken ~50% of the time, the worst case for a predictor).
        #[inline(always)]
        fn csub(x: u64, m: u64) -> u64 {
            x - m * ((x >= m) as u64)
        }

        /// Shoup `x·w mod q` lazily reduced to `[0, 2q)` — bit-identical
        /// to the scalar `mul_lazy` (same three multiplications).
        #[inline(always)]
        fn mul_lazy(x: u64, w: u64, w_quo: u64, q: u64) -> u64 {
            let approx = ((x as u128 * w_quo as u128) >> 64) as u64;
            x.wrapping_mul(w).wrapping_sub(approx.wrapping_mul(q))
        }

        /// Branch-free Barrett `a·b mod q`. The quotient estimate is off
        /// by at most 2 (see `Modulus::reduce_u128`), so two masked
        /// subtractions reproduce the scalar `while` loop exactly.
        #[inline(always)]
        fn mul_mod_bf(a: u64, b: u64, q: u64, ratio: u128) -> u64 {
            let x = a as u128 * b as u128;
            let t = mulhi_u128(x, ratio);
            let r = (x - t * q as u128) as u64;
            csub(csub(r, q), q)
        }

        /// One span of forward Harvey butterflies (shared by the chunked
        /// and the small-`t` paths; `lo`/`hi` are the two block halves).
        #[inline(always)]
        fn fwd_pairs(lo: &mut [u64], hi: &mut [u64], w: u64, wq: u64, q: u64, two_q: u64) {
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let xv = csub(*x, two_q);
                let u = mul_lazy(*y, w, wq, q);
                *x = xv + u;
                *y = xv + two_q - u;
            }
        }

        /// One span of inverse Gentleman–Sande butterflies.
        #[inline(always)]
        fn inv_pairs(lo: &mut [u64], hi: &mut [u64], w: u64, wq: u64, q: u64, two_q: u64) {
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let xv = *x;
                let yv = *y;
                *x = csub(xv + yv, two_q);
                *y = mul_lazy(xv + two_q - yv, w, wq, q);
            }
        }

        pub(super) fn ntt_forward(a: &mut [u64], op: &[u64], quo: &[u64], q: u64) {
            let n = a.len();
            let two_q = 2 * q;
            let mut t = n;
            let mut m = 1usize;
            while m < n {
                t >>= 1;
                for i in 0..m {
                    let j1 = 2 * i * t;
                    let w = op[m + i];
                    let wq = quo[m + i];
                    let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                    if t >= LANES {
                        // t is a power of two ≥ LANES, so chunks_exact
                        // covers the span with no remainder.
                        for (lc, hc) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                            fwd_pairs(lc, hc, w, wq, q, two_q);
                        }
                    } else {
                        fwd_pairs(lo, hi, w, wq, q, two_q);
                    }
                }
                m <<= 1;
            }
            for x in a.iter_mut() {
                *x = csub(csub(*x, two_q), q);
            }
        }

        pub(super) fn ntt_inverse(
            a: &mut [u64],
            op: &[u64],
            quo: &[u64],
            q: u64,
            n_inv_op: u64,
            n_inv_quo: u64,
        ) {
            let n = a.len();
            let two_q = 2 * q;
            let mut t = 1usize;
            let mut m = n;
            while m > 1 {
                let h = m >> 1;
                let mut j1 = 0usize;
                for i in 0..h {
                    let w = op[h + i];
                    let wq = quo[h + i];
                    let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                    if t >= LANES {
                        for (lc, hc) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                            inv_pairs(lc, hc, w, wq, q, two_q);
                        }
                    } else {
                        inv_pairs(lo, hi, w, wq, q, two_q);
                    }
                    j1 += 2 * t;
                }
                t <<= 1;
                m = h;
            }
            for x in a.iter_mut() {
                let v = csub(csub(*x, two_q), q);
                let r = mul_lazy(v, n_inv_op, n_inv_quo, q);
                *x = csub(r, q);
            }
        }

        pub(super) fn add_assign(a: &mut [u64], b: &[u64], q: &Modulus) {
            let qv = q.value();
            for (x, &y) in a.iter_mut().zip(b) {
                *x = csub(*x + y, qv);
            }
        }

        pub(super) fn sub_assign(a: &mut [u64], b: &[u64], q: &Modulus) {
            let qv = q.value();
            for (x, &y) in a.iter_mut().zip(b) {
                let xv = *x;
                // xv - y, plus q exactly when it would underflow: the
                // wrapping round-trip reproduces `sub_mod`'s two branches.
                *x = xv.wrapping_sub(y).wrapping_add(qv * ((xv < y) as u64));
            }
        }

        pub(super) fn negate(a: &mut [u64], q: &Modulus) {
            let qv = q.value();
            for x in a.iter_mut() {
                let xv = *x;
                // neg_mod with the x == 0 branch folded into a mask.
                *x = (qv - xv) * ((xv != 0) as u64);
            }
        }

        pub(super) fn mul_pointwise(a: &mut [u64], b: &[u64], q: &Modulus) {
            let qv = q.value();
            let ratio = q.const_ratio();
            for (x, &y) in a.iter_mut().zip(b) {
                *x = mul_mod_bf(*x, y, qv, ratio);
            }
        }

        pub(super) fn mul_scalar(a: &mut [u64], c: u64, q: &Modulus) {
            let qv = q.value();
            let ratio = q.const_ratio();
            let c = q.reduce(c);
            for x in a.iter_mut() {
                *x = mul_mod_bf(*x, c, qv, ratio);
            }
        }

        pub(super) fn fma_pointwise(r: &mut [u64], a: &[u64], b: &[u64], q: &Modulus) {
            let qv = q.value();
            let ratio = q.const_ratio();
            for ((x, &y), &z) in r.iter_mut().zip(a).zip(b) {
                *x = csub(*x + mul_mod_bf(y, z, qv, ratio), qv);
            }
        }

        pub(super) fn mul_pow2(a: &mut [u64], exp: u32, negative: bool, q: &Modulus) {
            let qv = q.value();
            for x in a.iter_mut() {
                let mut v = *x;
                for _ in 0..exp {
                    v = csub(v + v, qv);
                }
                *x = if negative {
                    (qv - v) * ((v != 0) as u64)
                } else {
                    v
                };
            }
        }

        pub(super) fn fma_pow2(r: &mut [u64], a: &[u64], exp: u32, negative: bool, q: &Modulus) {
            let qv = q.value();
            for (x, &y) in r.iter_mut().zip(a) {
                let mut v = y;
                for _ in 0..exp {
                    v = csub(v + v, qv);
                }
                if negative {
                    v = (qv - v) * ((v != 0) as u64);
                }
                *x = csub(*x + v, qv);
            }
        }
    }

    /// Generates the `portable` (plain) and `avx2` (`target_feature`)
    /// entry points over the shared lane bodies.
    macro_rules! lane_backends {
        ($(fn $name:ident($($arg:ident: $ty:ty),* $(,)?);)*) => {
            pub(super) mod portable {
                use crate::arith::Modulus;
                $(
                    #[inline]
                    pub(in crate::simd) fn $name($($arg: $ty),*) {
                        super::body::$name($($arg),*)
                    }
                )*
            }

            #[cfg(target_arch = "x86_64")]
            pub(super) mod avx2 {
                use crate::arith::Modulus;
                $(
                    /// # Safety
                    ///
                    /// The CPU must support AVX2 (`is_x86_feature_detected!`).
                    #[target_feature(enable = "avx2")]
                    pub(in crate::simd) unsafe fn $name($($arg: $ty),*) {
                        super::body::$name($($arg),*)
                    }
                )*
            }
        };
    }

    lane_backends! {
        fn ntt_forward(a: &mut [u64], op: &[u64], quo: &[u64], q: u64);
        fn ntt_inverse(a: &mut [u64], op: &[u64], quo: &[u64], q: u64,
                       n_inv_op: u64, n_inv_quo: u64);
        fn add_assign(a: &mut [u64], b: &[u64], q: &Modulus);
        fn sub_assign(a: &mut [u64], b: &[u64], q: &Modulus);
        fn negate(a: &mut [u64], q: &Modulus);
        fn mul_pointwise(a: &mut [u64], b: &[u64], q: &Modulus);
        fn mul_scalar(a: &mut [u64], c: u64, q: &Modulus);
        fn fma_pointwise(r: &mut [u64], a: &[u64], b: &[u64], q: &Modulus);
        fn mul_pow2(a: &mut [u64], exp: u32, negative: bool, q: &Modulus);
        fn fma_pow2(r: &mut [u64], a: &[u64], exp: u32, negative: bool, q: &Modulus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::generate_ntt_prime;
    use rand::{Rng, SeedableRng};

    /// Restores the thread's backend override when dropped, so a failing
    /// assertion cannot leak a forced backend into later tests on the
    /// same test thread.
    struct ForceGuard;
    impl ForceGuard {
        fn pin(b: SimdBackend) -> (Self, SimdBackend) {
            (ForceGuard, force_backend(Some(b)))
        }
    }
    impl Drop for ForceGuard {
        fn drop(&mut self) {
            force_backend(None);
        }
    }

    #[test]
    fn clamp_respects_build_features() {
        let detected = detect();
        if cfg!(feature = "simd") {
            assert_ne!(detected, SimdBackend::Scalar);
            let (_g, eff) = ForceGuard::pin(SimdBackend::Portable);
            assert_eq!(eff, SimdBackend::Portable);
        } else {
            assert_eq!(detected, SimdBackend::Scalar);
            let (_g, eff) = ForceGuard::pin(SimdBackend::Avx2);
            assert_eq!(eff, SimdBackend::Scalar, "non-simd builds clamp to scalar");
        }
    }

    #[test]
    fn override_is_thread_local() {
        let (_g, _) = ForceGuard::pin(SimdBackend::Scalar);
        let other = std::thread::spawn(current_backend).join().unwrap();
        assert_eq!(other, detect(), "spawned threads keep the default");
        assert_eq!(current_backend(), SimdBackend::Scalar);
    }

    /// Every backend this build can run, each exercised against Scalar.
    fn runnable_backends() -> Vec<SimdBackend> {
        let mut v = vec![SimdBackend::Scalar];
        for b in [SimdBackend::Portable, SimdBackend::Avx2] {
            let (_g, eff) = ForceGuard::pin(b);
            if eff == b {
                v.push(b);
            }
        }
        v
    }

    #[test]
    fn pointwise_kernels_bit_identical_across_backends() {
        let n = 256usize;
        for bits in [20u32, 40, 59, 60] {
            let q = Modulus::new(generate_ntt_prime(bits, n / 2).unwrap()).unwrap();
            let qv = q.value();
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE + bits as u64);
            // Edge residues (0, 1, q-1) mixed into random data.
            let mut a: Vec<u64> = (0..n).map(|_| rng.random_range(0..qv)).collect();
            a[0] = 0;
            a[1] = qv - 1;
            a[2] = 1;
            let b: Vec<u64> = (0..n).map(|_| rng.random_range(0..qv)).collect();
            let run = |backend: SimdBackend| {
                let (_g, eff) = ForceGuard::pin(backend);
                assert_eq!(eff, backend);
                let mut r = a.clone();
                add_assign(&mut r, &b, &q);
                sub_assign(&mut r, &a, &q);
                negate(&mut r, &q);
                mul_pointwise(&mut r, &b, &q);
                mul_scalar(&mut r, u64::MAX, &q);
                fma_pointwise(&mut r, &a, &b, &q);
                mul_pow2(&mut r, 8, true, &q);
                fma_pow2(&mut r, &a, 9, false, &q);
                r
            };
            let reference = run(SimdBackend::Scalar);
            for backend in runnable_backends() {
                assert_eq!(run(backend), reference, "{} bits={bits}", backend.name());
            }
        }
    }
}
