//! # cheetah-bfv — BFV leveled homomorphic encryption
//!
//! The HE substrate of the Cheetah reproduction (HPCA 2021,
//! arXiv:2006.00505). This crate is a from-scratch implementation of the
//! BFV scheme with exactly the knobs the paper tunes (Table II):
//! polynomial degree `n`, plaintext modulus `t`, ciphertext modulus `q`,
//! plaintext decomposition base `W_dcmp`, ciphertext decomposition base
//! `A_dcmp`, and noise σ.
//!
//! The three BFV operators of §III-B1 are provided by [`Evaluator`]:
//! `HE_Add`, pt-ct `HE_Mult` (with optional Gazelle-style plaintext
//! windowing), and `HE_Rotate` (Galois automorphism + key switching with
//! ciphertext decomposition). Polynomials default to the evaluation (NTT)
//! domain, as Cheetah does, and every ciphertext carries a live Table-III
//! noise estimate that tests reconcile against exact measured noise.
//!
//! ## Leveled evaluation
//!
//! The ciphertext modulus is an RNS chain `Q = q_0 ⋯ q_{l-1}`, and
//! ciphertexts carry a **level**: the number of limbs
//! [`Evaluator::mod_switch_to_next`] has dropped from the tail of the
//! chain. The lifecycle:
//!
//! * **Level 0** — fresh encryptions; all `l` limbs live. A 1-limb chain
//!   is level-0-only (there is nothing to drop;
//!   `mod_switch_to_next` returns [`Error::InvalidLevel`]).
//! * **Switching** — dropping limb `q_drop` divides the invariant noise by
//!   `q_drop` (exact `round(q_drop⁻¹·…)` per remaining residue) at the
//!   price of a small additive rounding term
//!   ([`NoiseEstimate::mod_switch`]). The ceiling `Q_ℓ/2t` shrinks by the
//!   same factor, so the *budget* is nearly preserved — what the switch
//!   buys is **cost**: every subsequent operation runs over the live
//!   planes only. A rotation at level `ℓ` performs
//!   `(l_ct(ℓ) + 1)·live` NTT plane transforms and `2·l_ct(ℓ)` pointwise
//!   multiplications instead of the level-0 `(l_ct + 1)·l` and `2·l_ct`,
//!   storage and wire bytes drop to `2·live·n·8`, and existing Galois
//!   keys keep working (the limb-major key-pair list is consumed as a
//!   prefix — no key regeneration).
//! * **When to switch** — once enough budget has been burned that the
//!   remaining circuit fits under a smaller ceiling:
//!   [`NoiseEstimate::recommended_level`] walks the transition model and
//!   returns the deepest safe level for an
//!   [`Evaluator::mod_switch_to`] call. Chains whose limbs satisfy
//!   `q_i ≡ 1 (mod t)` (the builder prefers them when such primes exist)
//!   switch nearly free of rounding drift; incongruent chains pay up to
//!   `Q_ℓ mod t`, which is why a 30-bit limb over a 16-bit `t` cannot
//!   drop to a single limb while 36-bit limbs over a 17-bit `t` can.
//!
//! Operands of every binary operation must share a level (typed
//! [`Error::LevelMismatch`] otherwise); [`PreparedPlaintext`]s apply at
//! their preparation level or deeper, while [`HoistedDecomposition`]s
//! replay only at the exact level they were hoisted at.
//!
//! ## Quick start
//!
//! ```
//! use cheetah_bfv::{BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator};
//!
//! # fn main() -> Result<(), cheetah_bfv::Error> {
//! // Parameters: n = 4096, 17-bit t, 60-bit q (128-bit secure).
//! let params = BfvParams::builder().degree(4096).build()?;
//!
//! let mut keygen = KeyGenerator::from_seed(params.clone(), 7);
//! let pk = keygen.public_key()?;
//! let keys = keygen.galois_keys_for_steps(&[1])?;
//!
//! let encoder = BatchEncoder::new(params.clone());
//! let mut encryptor = Encryptor::from_public_key(pk, 1);
//! let decryptor = Decryptor::new(keygen.secret_key().clone());
//! let evaluator = Evaluator::new(params);
//!
//! // SIMD: one ciphertext packs 4096 values.
//! let ct = encryptor.encrypt(&encoder.encode(&[1, 2, 3, 4])?)?;
//! let doubled = evaluator.add(&ct, &ct)?;
//! let rotated = evaluator.rotate_rows(&doubled, 1, &keys)?;
//!
//! let out = encoder.decode(&decryptor.decrypt_checked(&rotated)?);
//! assert_eq!(&out[..3], &[4, 6, 8]);
//! # Ok(())
//! # }
//! ```

pub mod arith;
pub mod batch;
pub mod ciphertext;
pub mod encoder;
pub mod encryptor;
pub mod error;
pub mod evaluator;
pub mod keys;
pub mod noise;
pub mod ntt;
pub mod params;
pub mod poly;
pub mod rns;
pub mod sampling;
pub mod scratch;
pub mod simd;
pub mod wire;

pub use batch::PolyBatch;
pub use ciphertext::{Ciphertext, WindowedCiphertext};
pub use encoder::{BatchEncoder, Plaintext};
pub use encryptor::{Decryptor, Encryptor};
pub use error::{Error, Result};
pub use evaluator::{Evaluator, HoistedDecomposition, OpCounts, Pow2Scalar, PreparedPlaintext};
pub use keys::{GaloisKey, GaloisKeys, KeyGenerator, PublicKey, SecretKey};
pub use noise::NoiseEstimate;
pub use params::{
    search_congruent_chain, BfvParams, BfvParamsBuilder, CongruentChain, SecurityLevel,
};
pub use rns::{ModulusChain, RnsPoly};
pub use sampling::expand_uniform;
pub use scratch::{Scratch, ScratchLease, ScratchPool};
pub use simd::SimdBackend;
pub use wire::{
    chain_fingerprint, ciphertext_wire_bytes, decode_ciphertext, decode_galois_keys,
    decode_plaintext_mask, decode_public_key, encode_ciphertext, encode_ciphertext_seeded,
    encode_galois_keys, encode_plaintext_mask, encode_public_key, encode_public_key_seeded,
    galois_keys_wire_bytes, plaintext_mask_wire_bytes, public_key_wire_bytes,
    seeded_ciphertext_wire_bytes, seeded_public_key_wire_bytes, split_ciphertext_messages,
    HEADER_BYTES, SEED_BYTES,
};
