//! Error types for the BFV engine.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the BFV engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The modulus is out of the supported range: raw Barrett arithmetic
    /// needs `2 <= q < 2^62`, and NTT limbs (everything a parameter chain
    /// admits, special prime included) need `q < 2^61` for lazy-butterfly
    /// headroom.
    InvalidModulus(u64),
    /// A value has no inverse modulo the given modulus.
    NotInvertible {
        /// The non-invertible value.
        value: u64,
        /// The modulus.
        modulus: u64,
    },
    /// No NTT-friendly prime of the requested size exists.
    NoNttPrime {
        /// Requested bit size.
        bits: u32,
        /// Polynomial degree.
        n: usize,
    },
    /// No primitive root of the requested order exists modulo the prime.
    NoPrimitiveRoot {
        /// The modulus.
        modulus: u64,
        /// The requested multiplicative order.
        order: u64,
    },
    /// The polynomial degree is invalid (must be a power of two ≥ 8).
    InvalidDegree(usize),
    /// Parameter combination violates the requested security level.
    InsecureParameters {
        /// Polynomial degree.
        n: usize,
        /// Bits of ciphertext modulus requested.
        log_q: u32,
        /// Maximum secure bits of ciphertext modulus for this degree.
        max_log_q: u32,
    },
    /// Two objects built from different encryption parameters were mixed.
    ParameterMismatch,
    /// A polynomial was used in the wrong representation (coeff vs eval).
    WrongRepresentation {
        /// What the operation required.
        expected: &'static str,
        /// What was found.
        found: &'static str,
    },
    /// The plaintext has more data than available slots.
    TooManyValues {
        /// Values supplied.
        given: usize,
        /// Slots available.
        slots: usize,
    },
    /// A rotation step is out of range for the slot geometry.
    InvalidRotation(i64),
    /// Two operands (or an operand and a precomputation) live at different
    /// levels of the modulus chain. Levels count *dropped* limbs, so the
    /// shallower operand must be modulus-switched down (or the deeper
    /// precomputation rebuilt) before they can meet.
    LevelMismatch {
        /// Level of the primary operand.
        expected: usize,
        /// Level of the offending operand.
        found: usize,
    },
    /// A modulus-switch target level is invalid: above the chain's deepest
    /// level, or shallower than the ciphertext already is (limbs cannot be
    /// re-grown).
    InvalidLevel {
        /// The requested level.
        requested: usize,
        /// The ciphertext's current level.
        current: usize,
        /// The deepest level the chain supports (`limbs - 1`).
        max: usize,
    },
    /// Required Galois key is missing from the provided key set.
    MissingGaloisKey {
        /// The Galois element whose key is absent.
        element: u64,
        /// The rotation step that needed the element, when the lookup came
        /// from a step-based rotation (`None` for raw element lookups).
        step: Option<i64>,
    },
    /// A Galois element is structurally invalid for this degree: it must
    /// be odd and lie in `1..2n`.
    InvalidGaloisElement(u64),
    /// Decryption noise exceeded the budget; plaintext unrecoverable.
    NoiseBudgetExhausted,
    /// The decomposition base must be a power of two ≥ 2.
    InvalidDecompositionBase(u64),
    /// A modulus chain must have between 1 and `MAX_RNS_LIMBS` limbs.
    InvalidLimbCount {
        /// Limb count supplied.
        limbs: usize,
    },
    /// The composed modulus chain exceeds what exact CRT arithmetic
    /// supports (`Q` itself, and `t·Q` during decryption rounding, must
    /// fit 128 bits).
    ModulusChainTooLarge {
        /// Bits of the composed modulus (with the plaintext margin).
        total_bits: u32,
        /// Maximum supported bits.
        max_bits: u32,
    },
    /// A wire-format message failed structural validation (length, magic,
    /// version, header fields, or canonical residues) before any
    /// arithmetic touched it.
    Malformed {
        /// What was being decoded (`"ciphertext"`, `"public key"`, …).
        what: &'static str,
        /// Which structural invariant failed.
        reason: String,
    },
    /// A wire message was produced under a different parameter chain than
    /// the session's (degree / plaintext modulus / modulus chain /
    /// decomposition bases fingerprint mismatch).
    ChainMismatch {
        /// Fingerprint of the session's parameter chain.
        expected: u64,
        /// Fingerprint carried by the message header.
        found: u64,
    },
    /// The operation reached a feature this engine does not implement
    /// (returned instead of panicking at the protocol boundary).
    Unsupported(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidModulus(v) => write!(
                f,
                "modulus {v} unsupported: Barrett arithmetic needs 2 <= q < 2^62, NTT limbs need q < 2^61"
            ),
            Error::NotInvertible { value, modulus } => {
                write!(f, "{value} is not invertible modulo {modulus}")
            }
            Error::NoNttPrime { bits, n } => {
                write!(f, "no {bits}-bit prime congruent to 1 mod {}", 2 * n)
            }
            Error::NoPrimitiveRoot { modulus, order } => {
                write!(f, "no primitive root of order {order} modulo {modulus}")
            }
            Error::InvalidDegree(n) => {
                write!(f, "invalid polynomial degree {n}; need a power of two >= 8")
            }
            Error::InsecureParameters { n, log_q, max_log_q } => write!(
                f,
                "log2(q) = {log_q} exceeds the {max_log_q}-bit limit for degree {n} at 128-bit security"
            ),
            Error::ParameterMismatch => write!(f, "objects use different encryption parameters"),
            Error::WrongRepresentation { expected, found } => {
                write!(f, "expected polynomial in {expected} form, found {found}")
            }
            Error::TooManyValues { given, slots } => {
                write!(f, "{given} values exceed the {slots} available slots")
            }
            Error::InvalidRotation(k) => write!(f, "rotation step {k} out of range"),
            Error::LevelMismatch { expected, found } => write!(
                f,
                "operands live at different levels of the modulus chain \
                 (expected level {expected}, found level {found})"
            ),
            Error::InvalidLevel {
                requested,
                current,
                max,
            } => write!(
                f,
                "cannot modulus-switch to level {requested} from level {current} \
                 (chain supports levels 0..={max})"
            ),
            Error::MissingGaloisKey { element, step } => match step {
                Some(s) => write!(
                    f,
                    "no Galois key for rotation step {s} (element {element})"
                ),
                None => write!(f, "no Galois key generated for element {element}"),
            },
            Error::InvalidGaloisElement(g) => {
                write!(f, "Galois element {g} must be odd and lie in 1..2n")
            }
            Error::NoiseBudgetExhausted => {
                write!(f, "noise budget exhausted; decryption would fail")
            }
            Error::InvalidDecompositionBase(b) => {
                write!(f, "decomposition base {b} must be a power of two >= 2")
            }
            Error::InvalidLimbCount { limbs } => {
                write!(f, "modulus chain needs 1..=8 limbs, got {limbs}")
            }
            Error::ModulusChainTooLarge {
                total_bits,
                max_bits,
            } => write!(
                f,
                "modulus chain spans {total_bits} bits, exceeding the {max_bits}-bit exact-CRT limit"
            ),
            Error::Malformed { what, reason } => {
                write!(f, "malformed {what} on the wire: {reason}")
            }
            Error::ChainMismatch { expected, found } => write!(
                f,
                "wire message from a foreign parameter chain \
                 (fingerprint {found:#018x}, session expects {expected:#018x})"
            ),
            Error::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
        let e = Error::InvalidModulus(1);
        assert!(!e.to_string().is_empty());
        let e = Error::InsecureParameters {
            n: 2048,
            log_q: 60,
            max_log_q: 54,
        };
        assert!(e.to_string().contains("2048"));
    }
}
