//! Polynomials in `Z_q[x]/(x^n + 1)` with explicit representation tracking.
//!
//! A [`Poly`] is always in one of two representations:
//!
//! * [`Representation::Coeff`] — the coefficient vector of the polynomial;
//! * [`Representation::Eval`] — pointwise evaluations in the NTT domain
//!   (bit-reversed order, see [`crate::ntt::NttTable`]).
//!
//! Cheetah keeps ciphertext polynomials in `Eval` form by default and drops
//! to `Coeff` only for decomposition and decryption (§III-B), so the type
//! tracks the representation and operations check it, turning latent domain
//! mix-ups into immediate errors.

use crate::arith::Modulus;
use crate::error::{Error, Result};
use crate::ntt::NttTable;
use crate::simd;

// ---------------------------------------------------------------------
// Slice-level kernels, shared by `Poly` (single modulus) and
// `crate::rns::RnsPoly` (invoked once per limb plane). These are the
// element-wise loops everything in the engine bottoms out in; the actual
// loop bodies live in `crate::simd`, which dispatches per thread between
// the pinned scalar reference and the lane backends (bit-identical by
// contract).
// ---------------------------------------------------------------------

pub(crate) fn add_assign_slice(a: &mut [u64], b: &[u64], q: &Modulus) {
    simd::add_assign(a, b, q);
}

pub(crate) fn sub_assign_slice(a: &mut [u64], b: &[u64], q: &Modulus) {
    simd::sub_assign(a, b, q);
}

pub(crate) fn negate_slice(a: &mut [u64], q: &Modulus) {
    simd::negate(a, q);
}

pub(crate) fn mul_pointwise_slice(a: &mut [u64], b: &[u64], q: &Modulus) {
    simd::mul_pointwise(a, b, q);
}

pub(crate) fn mul_scalar_slice(a: &mut [u64], c: u64, q: &Modulus) {
    simd::mul_scalar(a, c, q);
}

pub(crate) fn fma_pointwise_slice(r: &mut [u64], a: &[u64], b: &[u64], q: &Modulus) {
    simd::fma_pointwise(r, a, b, q);
}

/// `x ← (±2^exp)·x mod q` element-wise via a doubling chain — `exp`
/// conditional-subtract doublings plus an optional negation — instead of
/// a 128-bit Barrett multiply. Every step keeps residues canonical in
/// `[0, q)` (and `neg_mod(0) = 0`), so the result is bit-identical to
/// `mul_scalar_slice` with the reduced `±2^exp`.
pub(crate) fn mul_pow2_slice(a: &mut [u64], exp: u32, negative: bool, q: &Modulus) {
    simd::mul_pow2(a, exp, negative, q);
}

/// `r ← r + (±2^exp)·a mod q` element-wise (the pow2 fused accumulate;
/// see [`mul_pow2_slice`] for the bit-identity argument).
pub(crate) fn fma_pow2_slice(r: &mut [u64], a: &[u64], exp: u32, negative: bool, q: &Modulus) {
    simd::fma_pow2(r, a, exp, negative, q);
}

pub(crate) fn permute_slice(dst: &mut [u64], src: &[u64], perm: &[u32]) {
    for (d, &i) in dst.iter_mut().zip(perm) {
        *d = src[i as usize];
    }
}

/// Which domain a [`Poly`]'s data lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Coefficient form.
    Coeff,
    /// NTT (evaluation) form, bit-reversed order.
    Eval,
}

impl Representation {
    fn name(self) -> &'static str {
        match self {
            Representation::Coeff => "coefficient",
            Representation::Eval => "evaluation",
        }
    }
}

/// A polynomial in `Z_q[x]/(x^n + 1)`.
///
/// All arithmetic requires both operands to share the modulus and the
/// representation; use [`Poly::to_eval`] / [`Poly::to_coeff`] to convert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    data: Vec<u64>,
    repr: Representation,
}

impl Poly {
    /// The zero polynomial of degree `n` in the given representation.
    pub fn zero(n: usize, repr: Representation) -> Self {
        Self {
            data: vec![0; n],
            repr,
        }
    }

    /// Wraps raw residues (must already be reduced mod `q`).
    pub fn from_data(data: Vec<u64>, repr: Representation) -> Self {
        Self { data, repr }
    }

    /// Builds a coefficient-form polynomial from signed coefficients.
    pub fn from_signed(coeffs: &[i64], q: &Modulus) -> Self {
        Self {
            data: coeffs.iter().map(|&c| q.from_signed(c)).collect(),
            repr: Representation::Coeff,
        }
    }

    /// Degree bound `n` (the ring dimension, not the mathematical degree).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the polynomial has zero length (degenerate; normally false).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Current representation.
    #[inline]
    pub fn representation(&self) -> Representation {
        self.repr
    }

    /// Raw residues.
    #[inline]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Mutable raw residues. Callers must keep values reduced.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Consumes the polynomial, returning its residues.
    pub fn into_data(self) -> Vec<u64> {
        self.data
    }

    /// Overwrites the representation tag without touching the residues.
    ///
    /// This is the escape hatch the scratch-reuse hot path needs to recycle
    /// a buffer across domains; callers must ensure the data actually is in
    /// the claimed representation, exactly as with [`Poly::from_data`].
    #[inline]
    pub fn set_representation(&mut self, repr: Representation) {
        self.repr = repr;
    }

    /// Copies residues and representation from `other` without reallocating
    /// (the derived `Clone` cannot reuse the destination buffer).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn copy_from(&mut self, other: &Poly) {
        self.data.copy_from_slice(&other.data);
        self.repr = other.repr;
    }

    /// Fills `self` with the permutation `self[j] = src[perm[j]]` — the
    /// evaluation-domain Galois automorphism — reusing this buffer.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn permute_from(&mut self, src: &Poly, perm: &[u32]) {
        assert_eq!(self.data.len(), src.data.len());
        assert_eq!(perm.len(), src.data.len());
        permute_slice(&mut self.data, &src.data, perm);
        self.repr = src.repr;
    }

    /// Zeroes every residue in place, keeping the representation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0);
    }

    /// Checks the representation, erroring otherwise.
    pub fn expect_repr(&self, expected: Representation) -> Result<()> {
        if self.repr != expected {
            return Err(Error::WrongRepresentation {
                expected: expected.name(),
                found: self.repr.name(),
            });
        }
        Ok(())
    }

    /// Converts to evaluation form in place (no-op if already there).
    pub fn to_eval(&mut self, table: &NttTable) {
        if self.repr == Representation::Coeff {
            table.forward(&mut self.data);
            self.repr = Representation::Eval;
        }
    }

    /// Converts to coefficient form in place (no-op if already there).
    pub fn to_coeff(&mut self, table: &NttTable) {
        if self.repr == Representation::Eval {
            table.inverse(&mut self.data);
            self.repr = Representation::Coeff;
        }
    }

    /// `self += other` (element-wise mod `q`); representations must match.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongRepresentation`] on a representation mismatch
    /// and [`Error::ParameterMismatch`] on a length mismatch.
    pub fn add_assign(&mut self, other: &Poly, q: &Modulus) -> Result<()> {
        other.expect_repr(self.repr)?;
        if self.len() != other.len() {
            return Err(Error::ParameterMismatch);
        }
        add_assign_slice(&mut self.data, &other.data, q);
        Ok(())
    }

    /// `self -= other` (element-wise mod `q`); representations must match.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Poly::add_assign`].
    pub fn sub_assign(&mut self, other: &Poly, q: &Modulus) -> Result<()> {
        other.expect_repr(self.repr)?;
        if self.len() != other.len() {
            return Err(Error::ParameterMismatch);
        }
        sub_assign_slice(&mut self.data, &other.data, q);
        Ok(())
    }

    /// Negates every residue in place.
    pub fn negate(&mut self, q: &Modulus) {
        negate_slice(&mut self.data, q);
    }

    /// `self *= other` pointwise; both must be in evaluation form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongRepresentation`] unless both operands are in
    /// evaluation form, or [`Error::ParameterMismatch`] on length mismatch.
    pub fn mul_assign_pointwise(&mut self, other: &Poly, q: &Modulus) -> Result<()> {
        self.expect_repr(Representation::Eval)?;
        other.expect_repr(Representation::Eval)?;
        if self.len() != other.len() {
            return Err(Error::ParameterMismatch);
        }
        mul_pointwise_slice(&mut self.data, &other.data, q);
        Ok(())
    }

    /// Multiplies every residue by the scalar `c` mod `q`.
    pub fn mul_scalar(&mut self, c: u64, q: &Modulus) {
        mul_scalar_slice(&mut self.data, c, q);
    }

    /// Fused multiply-accumulate: `self += a * b` pointwise, all in
    /// evaluation form. This is the inner loop of key switching.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongRepresentation`] unless all three polynomials
    /// are in evaluation form.
    pub fn fma_pointwise(&mut self, a: &Poly, b: &Poly, q: &Modulus) -> Result<()> {
        self.expect_repr(Representation::Eval)?;
        a.expect_repr(Representation::Eval)?;
        b.expect_repr(Representation::Eval)?;
        if self.len() != a.len() || self.len() != b.len() {
            return Err(Error::ParameterMismatch);
        }
        fma_pointwise_slice(&mut self.data, &a.data, &b.data, q);
        Ok(())
    }

    /// Decomposes a coefficient-form polynomial into digit polynomials in
    /// base `base` (a power of two): `self = Σ_i base^i · digits[i]`, with
    /// every digit coefficient in `[0, base)`.
    ///
    /// This is the ciphertext decomposition of §III-B2: rotating with base
    /// `A_dcmp` splits `c1` into `l_ct ≈ log_A(q)` small polynomials so that
    /// key-switch noise grows by `l_ct·A·B·n/2` instead of `q`-scale.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongRepresentation`] if not in coefficient form, or
    /// [`Error::InvalidDecompositionBase`] for a bad base.
    pub fn decompose(&self, base: u64, q: &Modulus) -> Result<Vec<Poly>> {
        let levels = decomposition_levels_checked(q.value(), base)?;
        let mut digits = vec![Poly::zero(self.len(), Representation::Coeff); levels];
        self.decompose_into(base, q, &mut digits)?;
        Ok(digits)
    }

    /// Allocation-free variant of [`Poly::decompose`]: writes the digit
    /// polynomials into `digits`, which must hold exactly
    /// [`decomposition_levels`]`(q, base)` polynomials of matching length.
    /// Digit buffers are fully overwritten (representation included), so
    /// they may be dirty scratch from a previous operation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongRepresentation`] if `self` is not in
    /// coefficient form, [`Error::InvalidDecompositionBase`] for a bad
    /// base, and [`Error::ParameterMismatch`] if `digits` has the wrong
    /// shape.
    pub fn decompose_into(&self, base: u64, q: &Modulus, digits: &mut [Poly]) -> Result<()> {
        self.expect_repr(Representation::Coeff)?;
        let levels = decomposition_levels_checked(q.value(), base)?;
        if digits.len() != levels || digits.iter().any(|d| d.len() != self.len()) {
            return Err(Error::ParameterMismatch);
        }
        let log_base = base.trailing_zeros();
        let mask = base - 1;
        for digit in digits.iter_mut() {
            digit.repr = Representation::Coeff;
        }
        for (i, &c) in self.data.iter().enumerate() {
            let mut rem = c;
            for digit in digits.iter_mut() {
                digit.data[i] = rem & mask;
                rem >>= log_base;
            }
            debug_assert_eq!(rem, 0, "coefficient exceeded base^levels");
        }
        Ok(())
    }

    /// Recomposes digit polynomials: `Σ_i base^i · digits[i] mod q`.
    /// Inverse of [`Poly::decompose`] (up to reduction mod `q`).
    pub fn recompose(digits: &[Poly], base: u64, q: &Modulus) -> Result<Poly> {
        let n = digits.first().map_or(0, Poly::len);
        let mut out = Poly::zero(n, Representation::Coeff);
        let mut scale = 1u64;
        for (level, d) in digits.iter().enumerate() {
            d.expect_repr(Representation::Coeff)?;
            for (o, &v) in out.data.iter_mut().zip(&d.data) {
                *o = q.add_mod(*o, q.mul_mod(scale, q.reduce(v)));
            }
            if level + 1 < digits.len() {
                scale = q.mul_mod(scale, q.reduce(base));
            }
        }
        Ok(out)
    }

    /// Largest centered absolute value of any coefficient
    /// (coefficient-form only; used for noise measurement).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongRepresentation`] if in evaluation form.
    pub fn inf_norm_centered(&self, q: &Modulus) -> Result<u64> {
        self.expect_repr(Representation::Coeff)?;
        Ok(self
            .data
            .iter()
            .map(|&c| q.center(c).unsigned_abs())
            .max()
            .unwrap_or(0))
    }
}

/// Number of base-`base` digits needed to cover residues mod `q`:
/// `l = ceil(log_base(q))`. The paper writes this as `l_ct ≈ log_A(q)` for
/// ciphertexts and `l_pt ≈ log_W(t)` for plaintexts.
pub fn decomposition_levels(q: u64, base: u64) -> usize {
    assert!(base >= 2 && base.is_power_of_two());
    let q_bits = 64 - q.leading_zeros();
    let b_bits = base.trailing_zeros();
    q_bits.div_ceil(b_bits) as usize
}

/// [`decomposition_levels`] with the base validated as an error instead of
/// a panic (shared by the decompose entry points).
fn decomposition_levels_checked(q: u64, base: u64) -> Result<usize> {
    if base < 2 || !base.is_power_of_two() {
        return Err(Error::InvalidDecompositionBase(base));
    }
    Ok(decomposition_levels(q, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::generate_ntt_prime;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, bits: u32) -> (Modulus, NttTable) {
        let q = Modulus::new(generate_ntt_prime(bits, n).unwrap()).unwrap();
        let table = NttTable::new(n, q).unwrap();
        (q, table)
    }

    fn random_poly(n: usize, q: &Modulus, seed: u64) -> Poly {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Poly::from_data(
            (0..n).map(|_| rng.random_range(0..q.value())).collect(),
            Representation::Coeff,
        )
    }

    #[test]
    fn representation_mismatch_is_an_error() {
        let (q, table) = setup(16, 30);
        let mut a = random_poly(16, &q, 1);
        let mut b = random_poly(16, &q, 2);
        b.to_eval(&table);
        assert!(matches!(
            a.add_assign(&b, &q),
            Err(Error::WrongRepresentation { .. })
        ));
        assert!(matches!(
            a.mul_assign_pointwise(&b, &q),
            Err(Error::WrongRepresentation { .. })
        ));
    }

    #[test]
    fn add_then_sub_roundtrips() {
        let (q, _) = setup(32, 30);
        let mut a = random_poly(32, &q, 3);
        let orig = a.clone();
        let b = random_poly(32, &q, 4);
        a.add_assign(&b, &q).unwrap();
        a.sub_assign(&b, &q).unwrap();
        assert_eq!(a, orig);
    }

    #[test]
    fn negate_twice_is_identity() {
        let (q, _) = setup(32, 30);
        let mut a = random_poly(32, &q, 5);
        let orig = a.clone();
        a.negate(&q);
        a.negate(&q);
        assert_eq!(a, orig);
    }

    #[test]
    fn decompose_recompose_roundtrip() {
        let (q, _) = setup(64, 50);
        let a = random_poly(64, &q, 6);
        for base in [2u64, 4, 256, 1 << 16, 1 << 20] {
            let digits = a.decompose(base, &q).unwrap();
            assert_eq!(digits.len(), decomposition_levels(q.value(), base));
            for d in &digits {
                assert!(
                    d.data().iter().all(|&v| v < base),
                    "digit bound base={base}"
                );
            }
            let back = Poly::recompose(&digits, base, &q).unwrap();
            assert_eq!(back, a, "base {base}");
        }
    }

    #[test]
    fn decompose_rejects_bad_base() {
        let (q, _) = setup(16, 30);
        let a = random_poly(16, &q, 7);
        assert!(matches!(
            a.decompose(3, &q),
            Err(Error::InvalidDecompositionBase(3))
        ));
        assert!(matches!(
            a.decompose(1, &q),
            Err(Error::InvalidDecompositionBase(1))
        ));
    }

    #[test]
    fn decomposition_levels_formula() {
        assert_eq!(decomposition_levels((1 << 60) - 1, 1 << 20), 3);
        assert_eq!(decomposition_levels((1 << 60) - 1, 1 << 16), 4);
        assert_eq!(decomposition_levels(1 << 60, 1 << 20), 4); // 61 bits
        assert_eq!(decomposition_levels(255, 16), 2);
    }

    #[test]
    fn fma_matches_manual() {
        let (q, table) = setup(32, 30);
        let mut a = random_poly(32, &q, 8);
        let mut b = random_poly(32, &q, 9);
        a.to_eval(&table);
        b.to_eval(&table);
        let mut acc = Poly::zero(32, Representation::Eval);
        acc.fma_pointwise(&a, &b, &q).unwrap();
        let mut expect = a.clone();
        expect.mul_assign_pointwise(&b, &q).unwrap();
        assert_eq!(acc, expect);
    }

    #[test]
    fn inf_norm_centered_sees_negative_side() {
        let (q, _) = setup(16, 30);
        let mut a = Poly::zero(16, Representation::Coeff);
        a.data_mut()[0] = q.value() - 5; // centered: -5
        a.data_mut()[1] = 3;
        assert_eq!(a.inf_norm_centered(&q).unwrap(), 5);
    }

    #[test]
    fn eval_coeff_conversions_are_inverse() {
        let (q, table) = setup(64, 40);
        let a = random_poly(64, &q, 10);
        let mut b = a.clone();
        b.to_eval(&table);
        assert_eq!(b.representation(), Representation::Eval);
        b.to_eval(&table); // idempotent
        b.to_coeff(&table);
        assert_eq!(b, a);
    }
}
