//! Key material: secret key, public key, and Galois (rotation) keys.
//!
//! Galois keys embed the ciphertext decomposition base `A_dcmp`
//! (Table II): each key holds `l_ct = ceil(log_A Q)` RLWE samples of
//! `A^i · s(x^g)` over the full modulus chain, so applying a rotation costs
//! `2·l_ct` polynomial multiplications and `l_ct + 1` NTT passes (each a
//! limb-parallel transform) — exactly the counts the Cheetah performance
//! model charges per `HE_Rotate` (§IV-A).

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::params::BfvParams;
use crate::poly::Representation;
use crate::rns::RnsPoly;
use crate::sampling::BfvRng;

/// The RLWE secret key: a ternary polynomial lifted into every limb plane,
/// stored in evaluation form.
#[derive(Debug, Clone)]
pub struct SecretKey {
    s: RnsPoly,
    params: BfvParams,
}

impl SecretKey {
    /// The secret polynomial in evaluation form.
    pub fn poly(&self) -> &RnsPoly {
        &self.s
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }
}

/// The public encryption key `(pk0, pk1) = (−(a·s + e), a)`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pk0: RnsPoly,
    pk1: RnsPoly,
    params: BfvParams,
}

impl PublicKey {
    /// First component `−(a·s + e)`, evaluation form.
    pub fn pk0(&self) -> &RnsPoly {
        &self.pk0
    }

    /// Second component `a`, evaluation form.
    pub fn pk1(&self) -> &RnsPoly {
        &self.pk1
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }
}

/// One key-switching key: `l_ct` pairs
/// `(−(a_i·s + e_i) + A^i·s(x^g), a_i)` in evaluation form, plus the cached
/// slot permutation realizing `x ↦ x^g` on NTT-form data (the permutation
/// depends only on `n`, so one table serves every limb plane).
#[derive(Debug, Clone)]
pub struct GaloisKey {
    /// The Galois element `g` (odd).
    pub element: u64,
    /// Key-switch pairs, one per decomposition digit.
    pairs: Vec<(RnsPoly, RnsPoly)>,
    /// NTT-domain permutation for `x ↦ x^g`.
    perm: Vec<u32>,
}

impl GaloisKey {
    /// Key-switch pairs (`l_ct` of them).
    pub fn pairs(&self) -> &[(RnsPoly, RnsPoly)] {
        &self.pairs
    }

    /// The NTT-domain slot permutation.
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }
}

/// A set of Galois keys indexed by Galois element.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    keys: HashMap<u64, GaloisKey>,
}

impl GaloisKeys {
    /// Looks up the key for a Galois element.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MissingGaloisKey`] if absent.
    pub fn get(&self, element: u64) -> Result<&GaloisKey> {
        self.keys
            .get(&element)
            .ok_or(Error::MissingGaloisKey(element))
    }

    /// Whether a key for this element exists.
    pub fn contains(&self, element: u64) -> bool {
        self.keys.contains_key(&element)
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over the stored elements.
    pub fn elements(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.keys().copied()
    }

    /// Serialized size in bytes (for protocol accounting): each key holds
    /// `l_ct` pairs of `l_limbs · n`-word polynomials.
    pub fn byte_size(&self, params: &BfvParams) -> usize {
        self.keys.len() * params.l_ct() * 2 * params.limbs() * params.degree() * 8
    }

    fn insert(&mut self, key: GaloisKey) {
        self.keys.insert(key.element, key);
    }
}

/// Generates all key material for a session.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::params::BfvParams;
/// use cheetah_bfv::keys::KeyGenerator;
///
/// # fn main() -> Result<(), cheetah_bfv::Error> {
/// let params = BfvParams::builder().degree(4096).build()?;
/// let mut keygen = KeyGenerator::from_seed(params, 42);
/// let _sk = keygen.secret_key().clone();
/// let _pk = keygen.public_key()?;
/// let gks = keygen.galois_keys_for_steps(&[1, -1, 8])?;
/// assert_eq!(gks.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KeyGenerator {
    params: BfvParams,
    rng: BfvRng,
    sk: SecretKey,
}

impl KeyGenerator {
    /// Creates a generator with a reproducible seed.
    pub fn from_seed(params: BfvParams, seed: u64) -> Self {
        let mut rng = BfvRng::from_seed(seed, params.sigma());
        let sk = Self::sample_secret(&params, &mut rng);
        Self { params, rng, sk }
    }

    /// Creates a generator seeded from OS entropy.
    pub fn from_entropy(params: BfvParams) -> Self {
        let mut rng = BfvRng::from_entropy(params.sigma());
        let sk = Self::sample_secret(&params, &mut rng);
        Self { params, rng, sk }
    }

    fn sample_secret(params: &BfvParams, rng: &mut BfvRng) -> SecretKey {
        let mut s = rng.ternary_rns(params.chain());
        s.to_eval(params.chain());
        SecretKey {
            s,
            params: params.clone(),
        }
    }

    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// Generates a fresh public key.
    ///
    /// # Errors
    ///
    /// Propagates polynomial arithmetic errors (cannot occur for matched
    /// parameters).
    pub fn public_key(&mut self) -> Result<PublicKey> {
        let chain = self.params.chain().clone();
        let a = self.rng.uniform_rns(&chain, Representation::Eval);
        let mut e = self.rng.noise_rns(&chain);
        e.to_eval(&chain);
        // pk0 = -(a*s + e)
        let mut pk0 = a.clone();
        pk0.mul_assign_pointwise(self.sk.poly(), &chain)?;
        pk0.add_assign(&e, &chain)?;
        pk0.negate(&chain);
        Ok(PublicKey {
            pk0,
            pk1: a,
            params: self.params.clone(),
        })
    }

    /// Generates the Galois key for element `g` with the parameter set's
    /// ciphertext decomposition base.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic errors; `g` must be odd (panics otherwise).
    pub fn galois_key(&mut self, g: u64) -> Result<GaloisKey> {
        let chain = self.params.chain().clone();
        let a_base = self.params.a_dcmp();
        let l_ct = self.params.l_ct();

        // s(x^g) in evaluation form, via the NTT-domain permutation (one
        // permutation table drives every limb plane).
        let perm = chain.table(0).galois_permutation(g);
        let mut s_g = RnsPoly::zero(&chain, Representation::Eval);
        s_g.permute_from(self.sk.poly(), &perm);

        let mut pairs = Vec::with_capacity(l_ct);
        // scale[i] = A^level mod q_i, advanced per level.
        let mut scale: Vec<u64> = vec![1; chain.limbs()];
        for level in 0..l_ct {
            let a_i = self.rng.uniform_rns(&chain, Representation::Eval);
            let mut e_i = self.rng.noise_rns(&chain);
            e_i.to_eval(&chain);
            // k0 = -(a_i*s + e_i) + A^level * s(x^g)
            let mut k0 = a_i.clone();
            k0.mul_assign_pointwise(self.sk.poly(), &chain)?;
            k0.add_assign(&e_i, &chain)?;
            k0.negate(&chain);
            let mut scaled_sg = s_g.clone();
            for (i, &sc) in scale.iter().enumerate() {
                crate::poly::mul_scalar_slice(scaled_sg.limb_mut(i), sc, chain.modulus(i));
            }
            k0.add_assign(&scaled_sg, &chain)?;
            pairs.push((k0, a_i));
            if level + 1 < l_ct {
                for (i, sc) in scale.iter_mut().enumerate() {
                    let q = chain.modulus(i);
                    *sc = q.mul_mod(*sc, q.reduce(a_base));
                }
            }
        }
        Ok(GaloisKey {
            element: g,
            pairs,
            perm,
        })
    }

    /// Galois element realizing a row rotation by `steps`
    /// (positive = left). `steps == 0` is invalid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRotation`] for out-of-range steps.
    pub fn element_for_step(&self, steps: i64) -> Result<u64> {
        element_for_step(self.params.degree(), steps)
    }

    /// Galois element for the row swap (`x ↦ x^{2n−1}`).
    pub fn element_for_row_swap(&self) -> u64 {
        2 * self.params.degree() as u64 - 1
    }

    /// Generates keys for a set of row-rotation steps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRotation`] for any invalid step.
    pub fn galois_keys_for_steps(&mut self, steps: &[i64]) -> Result<GaloisKeys> {
        let mut out = GaloisKeys::default();
        for &s in steps {
            let g = self.element_for_step(s)?;
            if !out.contains(g) {
                out.insert(self.galois_key(g)?);
            }
        }
        Ok(out)
    }

    /// Generates keys for all power-of-two rotations (both directions) plus
    /// the row swap — enough to compose any rotation in ≤ log2(n/2) hops.
    ///
    /// # Errors
    ///
    /// Propagates key-generation errors.
    pub fn galois_keys_power_of_two(&mut self) -> Result<GaloisKeys> {
        let row = self.params.row_size() as i64;
        let mut steps = Vec::new();
        let mut p = 1i64;
        while p < row {
            steps.push(p);
            steps.push(-p);
            p <<= 1;
        }
        let mut keys = self.galois_keys_for_steps(&steps)?;
        let swap = self.element_for_row_swap();
        keys.insert(self.galois_key(swap)?);
        Ok(keys)
    }

    /// Extends an existing key set with additional rotation steps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRotation`] for any invalid step.
    pub fn extend_galois_keys(&mut self, keys: &mut GaloisKeys, steps: &[i64]) -> Result<()> {
        for &s in steps {
            let g = self.element_for_step(s)?;
            if !keys.contains(g) {
                keys.insert(self.galois_key(g)?);
            }
        }
        Ok(())
    }
}

/// Computes the Galois element `3^k mod 2n` realizing a left row-rotation
/// by `steps` (negative steps rotate right).
///
/// # Errors
///
/// Returns [`Error::InvalidRotation`] if `steps` is zero or out of range
/// `(-n/2, n/2)`.
pub fn element_for_step(n: usize, steps: i64) -> Result<u64> {
    let row = (n / 2) as i64;
    if steps == 0 || steps <= -row || steps >= row {
        return Err(Error::InvalidRotation(steps));
    }
    let k = steps.rem_euclid(row) as u64;
    let m = 2 * n as u64;
    let mut g = 1u64;
    for _ in 0..k {
        g = g * 3 % m;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BfvParams {
        BfvParams::builder()
            .degree(1024)
            .plain_bits(16)
            .cipher_bits(27)
            .build()
            .unwrap()
    }

    #[test]
    fn secret_key_is_ternary_in_coeff_form() {
        let p = params();
        let kg = KeyGenerator::from_seed(p.clone(), 1);
        let mut s = kg.secret_key().poly().clone();
        s.to_coeff(p.chain());
        for (i, q) in p.chain().moduli().iter().enumerate() {
            for &c in s.limb(i) {
                assert!(c == 0 || c == 1 || c == q.value() - 1);
            }
        }
    }

    #[test]
    fn public_key_is_rlwe_sample() {
        // pk0 + pk1*s should be small (= -e): verify by computing it.
        let p = params();
        let mut kg = KeyGenerator::from_seed(p.clone(), 2);
        let pk = kg.public_key().unwrap();
        let chain = p.chain();
        let mut check = pk.pk1().clone();
        check
            .mul_assign_pointwise(kg.secret_key().poly(), chain)
            .unwrap();
        check.add_assign(pk.pk0(), chain).unwrap();
        check.to_coeff(chain);
        let norm = check.inf_norm_centered(chain).unwrap();
        // |e| <= CBD bound = round(2*sigma^2) = 20 or so.
        assert!(norm <= 64, "pk residual too large: {norm}");
        assert!(norm > 0, "error should be nonzero");
    }

    #[test]
    fn multi_limb_public_key_is_rlwe_sample() {
        let p = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(p.clone(), 8);
        let pk = kg.public_key().unwrap();
        let chain = p.chain();
        let mut check = pk.pk1().clone();
        check
            .mul_assign_pointwise(kg.secret_key().poly(), chain)
            .unwrap();
        check.add_assign(pk.pk0(), chain).unwrap();
        check.to_coeff(chain);
        let norm = check.inf_norm_centered(chain).unwrap();
        assert!(norm <= 64, "pk residual too large across limbs: {norm}");
        assert!(norm > 0);
    }

    #[test]
    fn element_for_step_values() {
        // n = 8 -> m = 16, row = 4.
        assert_eq!(element_for_step(8, 1).unwrap(), 3);
        assert_eq!(element_for_step(8, 2).unwrap(), 9);
        assert_eq!(element_for_step(8, 3).unwrap(), 27 % 16);
        // negative wraps: -1 == row-1 = 3 steps
        assert_eq!(
            element_for_step(8, -1).unwrap(),
            element_for_step(8, 3).unwrap()
        );
        assert!(element_for_step(8, 0).is_err());
        assert!(element_for_step(8, 4).is_err());
        assert!(element_for_step(8, -4).is_err());
    }

    #[test]
    fn galois_key_count_matches_l_ct() {
        let p = params();
        let mut kg = KeyGenerator::from_seed(p.clone(), 3);
        let gk = kg.galois_key(3).unwrap();
        assert_eq!(gk.pairs().len(), p.l_ct());
        assert_eq!(gk.permutation().len(), p.degree());
    }

    #[test]
    fn galois_keys_for_steps_dedupes() {
        let p = params();
        let row = p.row_size() as i64;
        let mut kg = KeyGenerator::from_seed(p, 4);
        // steps 1 and 1-row alias to the same element.
        let keys = kg.galois_keys_for_steps(&[1, 1 - row]).unwrap();
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn power_of_two_keyset_covers_log_steps() {
        let p = params();
        let mut kg = KeyGenerator::from_seed(p.clone(), 5);
        let keys = kg.galois_keys_power_of_two().unwrap();
        // log2(512) forward + backward + swap, minus aliases.
        assert!(keys.len() >= 10);
        assert!(keys.contains(kg.element_for_row_swap()));
        assert!(keys.byte_size(&p) > 0);
    }

    #[test]
    fn key_byte_size_scales_with_limbs() {
        let p1 = BfvParams::preset_single_60(4096).unwrap();
        let p2 = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut kg1 = KeyGenerator::from_seed(p1.clone(), 6);
        let mut kg2 = KeyGenerator::from_seed(p2.clone(), 6);
        let k1 = kg1.galois_keys_for_steps(&[1]).unwrap();
        let k2 = kg2.galois_keys_for_steps(&[1]).unwrap();
        // Same total log2(Q) = 60, same A_dcmp => same l_ct; double the
        // limbs => double the serialized bytes.
        assert_eq!(k2.byte_size(&p2), 2 * k1.byte_size(&p1));
    }

    #[test]
    fn missing_key_error() {
        let keys = GaloisKeys::default();
        assert!(matches!(keys.get(3), Err(Error::MissingGaloisKey(3))));
        assert!(keys.is_empty());
    }
}
