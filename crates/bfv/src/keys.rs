//! Key material: secret key, public key, and Galois (rotation) keys.
//!
//! Galois keys embed the ciphertext decomposition base `A_dcmp`
//! (Table II) and are indexed per **(limb, digit)** for the RNS-native
//! key switch: pair `(i, d)` is an RLWE sample of `A^d · q̂_i · s(x^g)`
//! (with `q̂_i = Q/q_i`), so the evaluator can pair it with the limb-local
//! digit `[A^{-d}-ish slice of q̂_i^{-1}·c1]_{q_i}` without ever
//! CRT-composing a coefficient. A key holds
//! `l_ct = Σ_i ceil(log_A q_i)` pairs (flat, limb-major); applying a
//! rotation costs `2·l_ct` polynomial multiplications and
//! `(l_ct + 1)·l_limbs` NTT plane transforms — the counts the corrected
//! Cheetah performance model charges per `HE_Rotate` (§IV-A). For a
//! single limb `q̂_0 = 1` and everything degenerates bit-for-bit to the
//! historical composed `A^d·s(x^g)` key shape.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::params::BfvParams;
use crate::poly::Representation;
use crate::rns::RnsPoly;
use crate::sampling::BfvRng;

/// The RLWE secret key: a ternary polynomial lifted into every limb plane,
/// stored in evaluation form.
#[derive(Debug, Clone)]
pub struct SecretKey {
    s: RnsPoly,
    params: BfvParams,
}

impl SecretKey {
    /// The secret polynomial in evaluation form.
    pub fn poly(&self) -> &RnsPoly {
        &self.s
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }
}

/// The public encryption key `(pk0, pk1) = (−(a·s + e), a)`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pk0: RnsPoly,
    pk1: RnsPoly,
    params: BfvParams,
}

impl PublicKey {
    /// First component `−(a·s + e)`, evaluation form.
    pub fn pk0(&self) -> &RnsPoly {
        &self.pk0
    }

    /// Second component `a`, evaluation form.
    pub fn pk1(&self) -> &RnsPoly {
        &self.pk1
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// Assembles a public key from validated parts (wire decoding).
    pub(crate) fn from_parts(pk0: RnsPoly, pk1: RnsPoly, params: BfvParams) -> Self {
        Self { pk0, pk1, params }
    }

    /// Serialized size in bytes (for protocol accounting): two full-width
    /// components of `l_limbs · n` 8-byte words.
    pub fn byte_size(&self) -> usize {
        2 * self.params.limbs() * self.params.degree() * 8
    }
}

/// One key-switching key: `l_ct = Σ_i ceil(log_A q_i)` pairs
/// `(−(a·s + e) + A^d·q̂_i·s(x^g), a)` in evaluation form — indexed per
/// (limb `i`, digit `d`), stored flat in limb-major order to match the
/// digit order [`RnsPoly::rns_decompose_into`] emits — plus the cached
/// slot permutation realizing `x ↦ x^g` on NTT-form data (the permutation
/// depends only on `n`, so one table serves every limb plane).
#[derive(Debug, Clone)]
pub struct GaloisKey {
    /// The Galois element `g` (odd).
    pub element: u64,
    /// Key-switch pairs, one per (limb, digit), flat in limb-major order.
    pairs: Vec<(RnsPoly, RnsPoly)>,
    /// NTT-domain permutation for `x ↦ x^g`.
    perm: Vec<u32>,
}

impl GaloisKey {
    /// Key-switch pairs: `l_ct` of them, one per (limb, digit) in
    /// limb-major order (limb 0's digits first). For a single limb this is
    /// the historical per-digit shape.
    pub fn pairs(&self) -> &[(RnsPoly, RnsPoly)] {
        &self.pairs
    }

    /// The NTT-domain slot permutation.
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    /// Assembles a key from validated parts (wire decoding). The caller
    /// guarantees the pair list is `l_ct` long with chain-shaped
    /// polynomials and `perm` is the element's permutation table.
    pub(crate) fn from_parts(element: u64, pairs: Vec<(RnsPoly, RnsPoly)>, perm: Vec<u32>) -> Self {
        Self {
            element,
            pairs,
            perm,
        }
    }
}

/// A set of Galois keys indexed by Galois element.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    keys: HashMap<u64, GaloisKey>,
}

impl GaloisKeys {
    /// Looks up the key for a Galois element.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MissingGaloisKey`] if absent.
    pub fn get(&self, element: u64) -> Result<&GaloisKey> {
        self.keys.get(&element).ok_or(Error::MissingGaloisKey {
            element,
            step: None,
        })
    }

    /// Looks up the key realizing a row rotation by `steps` at degree `n`.
    ///
    /// The error carries the *step* alongside the Galois element, so a
    /// session asking for a rotation its plan-exact keygen never produced
    /// gets a diagnosable [`Error::MissingGaloisKey`] instead of a bare
    /// element number (or, historically, a panic deeper in the stack).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRotation`] for an identity step,
    /// [`Error::MissingGaloisKey`] (with `step` set) if absent.
    pub fn get_for_step(&self, n: usize, steps: i64) -> Result<&GaloisKey> {
        let element = element_for_step(n, steps)?;
        self.keys.get(&element).ok_or(Error::MissingGaloisKey {
            element,
            step: Some(steps),
        })
    }

    /// Whether a key for this element exists.
    pub fn contains(&self, element: u64) -> bool {
        self.keys.contains_key(&element)
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over the stored elements.
    pub fn elements(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.keys().copied()
    }

    /// Serialized size in bytes (for protocol accounting). Digit keys
    /// hold `l_ct` pairs of `l_limbs·n`-word polynomials; hybrid keys hold
    /// one pair per limb, each over the extended `(l_limbs + 1)`-plane
    /// key-switch chain.
    pub fn byte_size(&self, params: &BfvParams) -> usize {
        let (pairs, planes) = if params.has_special() {
            (params.limbs(), params.limbs() + 1)
        } else {
            (params.l_ct(), params.limbs())
        };
        self.keys.len() * pairs * 2 * planes * params.degree() * 8
    }

    pub(crate) fn insert(&mut self, key: GaloisKey) {
        self.keys.insert(key.element, key);
    }
}

/// Generates all key material for a session.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::params::BfvParams;
/// use cheetah_bfv::keys::KeyGenerator;
///
/// # fn main() -> Result<(), cheetah_bfv::Error> {
/// let params = BfvParams::builder().degree(4096).build()?;
/// let mut keygen = KeyGenerator::from_seed(params, 42);
/// let _sk = keygen.secret_key().clone();
/// let _pk = keygen.public_key()?;
/// let gks = keygen.galois_keys_for_steps(&[1, -1, 8])?;
/// assert_eq!(gks.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KeyGenerator {
    params: BfvParams,
    rng: BfvRng,
    sk: SecretKey,
}

impl KeyGenerator {
    /// Creates a generator with a reproducible seed.
    pub fn from_seed(params: BfvParams, seed: u64) -> Self {
        let mut rng = BfvRng::from_seed(seed, params.sigma());
        let sk = Self::sample_secret(&params, &mut rng);
        Self { params, rng, sk }
    }

    /// Creates a generator seeded from OS entropy.
    pub fn from_entropy(params: BfvParams) -> Self {
        let mut rng = BfvRng::from_entropy(params.sigma());
        let sk = Self::sample_secret(&params, &mut rng);
        Self { params, rng, sk }
    }

    fn sample_secret(params: &BfvParams, rng: &mut BfvRng) -> SecretKey {
        let mut s = rng.ternary_rns(params.chain());
        s.to_eval(params.chain());
        SecretKey {
            s,
            params: params.clone(),
        }
    }

    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// Generates a fresh public key.
    ///
    /// # Errors
    ///
    /// Propagates polynomial arithmetic errors (cannot occur for matched
    /// parameters).
    pub fn public_key(&mut self) -> Result<PublicKey> {
        let chain = self.params.chain().clone();
        let a = self.rng.uniform_rns(&chain, Representation::Eval);
        let mut e = self.rng.noise_rns(&chain);
        e.to_eval(&chain);
        // pk0 = -(a*s + e)
        let mut pk0 = a.clone();
        pk0.mul_assign_pointwise(self.sk.poly(), &chain)?;
        pk0.add_assign(&e, &chain)?;
        pk0.negate(&chain);
        Ok(PublicKey {
            pk0,
            pk1: a,
            params: self.params.clone(),
        })
    }

    /// Generates a public key whose uniform component `pk1 = a` is expanded
    /// from a fresh 64-bit seed (via [`crate::sampling::expand_uniform`]),
    /// so the key can ship over the wire as (seed, pk0) at half the bytes —
    /// see [`crate::wire::encode_public_key_seeded`]. Returns the key
    /// together with the seed that regenerates its `pk1`.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic errors from the pk0 assembly.
    pub fn public_key_seeded(&mut self) -> Result<(PublicKey, u64)> {
        let chain = self.params.chain().clone();
        let seed = self.rng.next_seed();
        let a = crate::sampling::expand_uniform(seed, &chain);
        let mut e = self.rng.noise_rns(&chain);
        e.to_eval(&chain);
        // pk0 = -(a*s + e)
        let mut pk0 = a.clone();
        pk0.mul_assign_pointwise(self.sk.poly(), &chain)?;
        pk0.add_assign(&e, &chain)?;
        pk0.negate(&chain);
        Ok((
            PublicKey {
                pk0,
                pk1: a,
                params: self.params.clone(),
            },
            seed,
        ))
    }

    /// Generates the Galois key for element `g` with the parameter set's
    /// ciphertext decomposition base: one RLWE pair per (limb, digit) of
    /// the RNS-native decomposition, pair `(i, d)` encrypting
    /// `A^d·q̂_i·s(x^g)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGaloisElement`] unless `g` is odd and lies
    /// in `1..2n` (the automorphism group `x ↦ x^g` of the 2n-th
    /// cyclotomic); propagates arithmetic errors otherwise.
    pub fn galois_key(&mut self, g: u64) -> Result<GaloisKey> {
        check_galois_element(self.params.degree(), g)?;
        if self.params.has_special() {
            return self.galois_key_hybrid(g);
        }
        let chain = self.params.chain().clone();
        let a_base = self.params.a_dcmp();
        let limbs = chain.limbs();

        // s(x^g) in evaluation form, via the NTT-domain permutation (one
        // permutation table drives every limb plane).
        let perm = chain.table(0).galois_permutation(g);
        let mut s_g = RnsPoly::zero(&chain, Representation::Eval);
        s_g.permute_from(self.sk.poly(), &perm);

        let mut pairs = Vec::with_capacity(self.params.l_ct());
        for i in 0..limbs {
            // scale[k] = A^d·q̂_i mod q_k, advanced per digit. For one limb
            // q̂_0 = 1, so this replays the historical A^d progression (and
            // the RNG stream order is unchanged: one sample pair per digit).
            let mut scale: Vec<u64> = (0..limbs).map(|k| chain.crt().qhat_mod(i, k)).collect();
            let levels_i = chain.limb_decomposition_levels(a_base, i);
            for digit in 0..levels_i {
                let a_d = self.rng.uniform_rns(&chain, Representation::Eval);
                let mut e_d = self.rng.noise_rns(&chain);
                e_d.to_eval(&chain);
                // k0 = -(a_d*s + e_d) + A^digit · q̂_i · s(x^g)
                let mut k0 = a_d.clone();
                k0.mul_assign_pointwise(self.sk.poly(), &chain)?;
                k0.add_assign(&e_d, &chain)?;
                k0.negate(&chain);
                let mut scaled_sg = s_g.clone();
                for (k, &sc) in scale.iter().enumerate() {
                    crate::poly::mul_scalar_slice(scaled_sg.limb_mut(k), sc, chain.modulus(k));
                }
                k0.add_assign(&scaled_sg, &chain)?;
                pairs.push((k0, a_d));
                if digit + 1 < levels_i {
                    for (k, sc) in scale.iter_mut().enumerate() {
                        let q = chain.modulus(k);
                        *sc = q.mul_mod(*sc, q.reduce(a_base));
                    }
                }
            }
        }
        Ok(GaloisKey {
            element: g,
            pairs,
            perm,
        })
    }

    /// Hybrid (special-prime) Galois key: one RLWE pair per limb over the
    /// *extended* key-switch chain `[q_0 … q_{l-1}, P]`, pair `i`
    /// encrypting `P·q̂_i·s(x^g)` — which is `[P·q̂_i]_{q_k}·s_g` on every
    /// data plane and exactly `0` on the special plane (`P` divides the
    /// signal). The full-chain `q̂_i` keeps the level-prefix property:
    /// a level-`ℓ` switch consumes pairs `i < live` on planes
    /// `[0..live) ∪ {special}`, so one level-0 key set serves every level.
    ///
    /// The secret over the extended chain is the *same* ternary
    /// polynomial: its coefficient values are read off the data chain and
    /// re-lifted, so hybrid parameters sharing a data chain and seed with
    /// a digit twin produce identical secrets and encryptions.
    fn galois_key_hybrid(&mut self, g: u64) -> Result<GaloisKey> {
        let data = self.params.chain().clone();
        let ks = self.params.ks_chain_at(0).clone();
        let limbs = data.limbs();
        let p_special = ks.modulus(limbs).value();

        let perm = data.table(0).galois_permutation(g);
        let s_ks = self.secret_on(&ks);
        let mut s_g = RnsPoly::zero(&ks, Representation::Eval);
        s_g.permute_from(&s_ks, &perm);

        let mut pairs = Vec::with_capacity(limbs);
        for i in 0..limbs {
            let a_i = self.rng.uniform_rns(&ks, Representation::Eval);
            let mut e_i = self.rng.noise_rns(&ks);
            e_i.to_eval(&ks);
            // k0 = -(a_i·s + e_i) + P·q̂_i·s(x^g)
            let mut k0 = a_i.clone();
            k0.mul_assign_pointwise(&s_ks, &ks)?;
            k0.add_assign(&e_i, &ks)?;
            k0.negate(&ks);
            let mut scaled_sg = s_g.clone();
            for k in 0..=limbs {
                let q = ks.modulus(k);
                let sc = if k < limbs {
                    q.mul_mod(q.reduce(p_special), data.crt().qhat_mod(i, k))
                } else {
                    0
                };
                crate::poly::mul_scalar_slice(scaled_sg.limb_mut(k), sc, q);
            }
            k0.add_assign(&scaled_sg, &ks)?;
            pairs.push((k0, a_i));
        }
        Ok(GaloisKey {
            element: g,
            pairs,
            perm,
        })
    }

    /// The secret key's ternary coefficients re-lifted onto `chain`
    /// (evaluation form): limb plane 0 of the data chain is decoded back
    /// to `{−1, 0, 1}` and CRT-lifted, extending `s` to the special prime
    /// without touching the RNG stream.
    fn secret_on(&self, chain: &crate::rns::ModulusChain) -> RnsPoly {
        let data = self.params.chain();
        let mut s = self.sk.poly().clone();
        s.to_coeff(data);
        let q0 = data.modulus(0).value();
        let signed: Vec<i64> = s
            .limb(0)
            .iter()
            .map(|&c| {
                if c == 0 {
                    0
                } else if c == 1 {
                    1
                } else {
                    debug_assert_eq!(c, q0 - 1, "secret must be ternary");
                    -1
                }
            })
            .collect();
        let mut out = RnsPoly::from_signed(&signed, chain);
        out.to_eval(chain);
        out
    }

    /// Galois element realizing a row rotation by `steps`
    /// (positive = left). `steps == 0` is invalid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRotation`] for out-of-range steps.
    pub fn element_for_step(&self, steps: i64) -> Result<u64> {
        element_for_step(self.params.degree(), steps)
    }

    /// Galois element for the row swap (`x ↦ x^{2n−1}`).
    pub fn element_for_row_swap(&self) -> u64 {
        2 * self.params.degree() as u64 - 1
    }

    /// Generates keys for a set of row-rotation steps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRotation`] for any invalid step.
    pub fn galois_keys_for_steps(&mut self, steps: &[i64]) -> Result<GaloisKeys> {
        let mut out = GaloisKeys::default();
        for &s in steps {
            let g = self.element_for_step(s)?;
            if !out.contains(g) {
                out.insert(self.galois_key(g)?);
            }
        }
        Ok(out)
    }

    /// Generates keys for all power-of-two rotations (both directions) plus
    /// the row swap — enough to compose any rotation in ≤ log2(n/2) hops.
    ///
    /// # Errors
    ///
    /// Propagates key-generation errors.
    pub fn galois_keys_power_of_two(&mut self) -> Result<GaloisKeys> {
        let row = self.params.row_size() as i64;
        let mut steps = Vec::new();
        let mut p = 1i64;
        while p < row {
            steps.push(p);
            steps.push(-p);
            p <<= 1;
        }
        let mut keys = self.galois_keys_for_steps(&steps)?;
        let swap = self.element_for_row_swap();
        keys.insert(self.galois_key(swap)?);
        Ok(keys)
    }

    /// Extends an existing key set with additional rotation steps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRotation`] for any invalid step.
    pub fn extend_galois_keys(&mut self, keys: &mut GaloisKeys, steps: &[i64]) -> Result<()> {
        for &s in steps {
            let g = self.element_for_step(s)?;
            if !keys.contains(g) {
                keys.insert(self.galois_key(g)?);
            }
        }
        Ok(())
    }
}

/// Computes the Galois element `3^k mod 2n` realizing a left row-rotation
/// by `steps` (negative steps rotate right).
///
/// Steps wrap around the row: any `steps` with the same
/// `steps mod (n/2)` maps to the same element, so `row + 1` rotates like
/// `1` — the shared semantics of [`crate::Evaluator::rotate_rows`] and
/// [`crate::Evaluator::rotate_rows_composed`]. Computed by
/// square-and-multiply (`O(log k)` word multiplications, not the `O(k)`
/// scan that used to cost up to `n/2 − 1` iterations per lookup).
///
/// # Errors
///
/// Returns [`Error::InvalidRotation`] if `steps ≡ 0 (mod n/2)` — the
/// identity rotation has no Galois element (callers special-case it).
/// Errors unless `g` is a valid Galois element for degree `n`: odd and in
/// `1..2n`. Shared by key generation and wire decoding, so a malformed
/// element is rejected before any permutation table is built.
pub fn check_galois_element(n: usize, g: u64) -> Result<()> {
    if g % 2 == 1 && g >= 1 && g < 2 * n as u64 {
        Ok(())
    } else {
        Err(Error::InvalidGaloisElement(g))
    }
}

pub fn element_for_step(n: usize, steps: i64) -> Result<u64> {
    let row = (n / 2) as i64;
    let k = steps.rem_euclid(row) as u64;
    if k == 0 {
        return Err(Error::InvalidRotation(steps));
    }
    let m = 2 * n as u64;
    // 3^k mod m by square-and-multiply; operands < 2n ≤ 2^63 so the
    // widening product fits u128.
    let mut g = 1u64;
    let mut base = 3u64 % m;
    let mut e = k;
    while e > 0 {
        if e & 1 == 1 {
            g = ((g as u128 * base as u128) % m as u128) as u64;
        }
        base = ((base as u128 * base as u128) % m as u128) as u64;
        e >>= 1;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BfvParams {
        BfvParams::builder()
            .degree(1024)
            .plain_bits(16)
            .cipher_bits(27)
            .build()
            .unwrap()
    }

    #[test]
    fn secret_key_is_ternary_in_coeff_form() {
        let p = params();
        let kg = KeyGenerator::from_seed(p.clone(), 1);
        let mut s = kg.secret_key().poly().clone();
        s.to_coeff(p.chain());
        for (i, q) in p.chain().moduli().iter().enumerate() {
            for &c in s.limb(i) {
                assert!(c == 0 || c == 1 || c == q.value() - 1);
            }
        }
    }

    #[test]
    fn public_key_is_rlwe_sample() {
        // pk0 + pk1*s should be small (= -e): verify by computing it.
        let p = params();
        let mut kg = KeyGenerator::from_seed(p.clone(), 2);
        let pk = kg.public_key().unwrap();
        let chain = p.chain();
        let mut check = pk.pk1().clone();
        check
            .mul_assign_pointwise(kg.secret_key().poly(), chain)
            .unwrap();
        check.add_assign(pk.pk0(), chain).unwrap();
        check.to_coeff(chain);
        let norm = check.inf_norm_centered(chain).unwrap();
        // |e| <= CBD bound = round(2*sigma^2) = 20 or so.
        assert!(norm <= 64, "pk residual too large: {norm}");
        assert!(norm > 0, "error should be nonzero");
    }

    #[test]
    fn multi_limb_public_key_is_rlwe_sample() {
        let p = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(p.clone(), 8);
        let pk = kg.public_key().unwrap();
        let chain = p.chain();
        let mut check = pk.pk1().clone();
        check
            .mul_assign_pointwise(kg.secret_key().poly(), chain)
            .unwrap();
        check.add_assign(pk.pk0(), chain).unwrap();
        check.to_coeff(chain);
        let norm = check.inf_norm_centered(chain).unwrap();
        assert!(norm <= 64, "pk residual too large across limbs: {norm}");
        assert!(norm > 0);
    }

    #[test]
    fn element_for_step_values() {
        // n = 8 -> m = 16, row = 4.
        assert_eq!(element_for_step(8, 1).unwrap(), 3);
        assert_eq!(element_for_step(8, 2).unwrap(), 9);
        assert_eq!(element_for_step(8, 3).unwrap(), 27 % 16);
        // negative wraps: -1 == row-1 = 3 steps
        assert_eq!(
            element_for_step(8, -1).unwrap(),
            element_for_step(8, 3).unwrap()
        );
        // multiples of the row are the identity: no element.
        assert!(element_for_step(8, 0).is_err());
        assert!(element_for_step(8, 4).is_err());
        assert!(element_for_step(8, -4).is_err());
        assert!(element_for_step(8, 8).is_err());
        // everything else wraps around the row.
        assert_eq!(
            element_for_step(8, 5).unwrap(),
            element_for_step(8, 1).unwrap()
        );
        assert_eq!(
            element_for_step(8, -5).unwrap(),
            element_for_step(8, 3).unwrap()
        );
    }

    #[test]
    fn element_for_step_matches_iterative_form_across_full_range() {
        // Pin the square-and-multiply against the historical O(k) scan for
        // every step the row supports, at the largest supported degree.
        for n in [1024usize, 8192] {
            let row = n / 2;
            let m = 2 * n as u64;
            let mut g_iter = 1u64;
            for k in 1..row {
                g_iter = g_iter * 3 % m;
                assert_eq!(
                    element_for_step(n, k as i64).unwrap(),
                    g_iter,
                    "n={n} k={k}"
                );
            }
            // And through the wrap-around on a few offsets.
            for k in [1i64, 7, (row - 1) as i64] {
                assert_eq!(
                    element_for_step(n, k + row as i64).unwrap(),
                    element_for_step(n, k).unwrap(),
                    "n={n} wrapped k={k}"
                );
            }
        }
    }

    #[test]
    fn galois_key_count_matches_l_ct() {
        let p = params();
        let mut kg = KeyGenerator::from_seed(p.clone(), 3);
        let gk = kg.galois_key(3).unwrap();
        assert_eq!(gk.pairs().len(), p.l_ct());
        assert_eq!(gk.permutation().len(), p.degree());
    }

    #[test]
    fn galois_keys_for_steps_dedupes() {
        let p = params();
        let row = p.row_size() as i64;
        let mut kg = KeyGenerator::from_seed(p, 4);
        // steps 1 and 1-row alias to the same element.
        let keys = kg.galois_keys_for_steps(&[1, 1 - row]).unwrap();
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn power_of_two_keyset_covers_log_steps() {
        let p = params();
        let mut kg = KeyGenerator::from_seed(p.clone(), 5);
        let keys = kg.galois_keys_power_of_two().unwrap();
        // log2(512) forward + backward + swap, minus aliases.
        assert!(keys.len() >= 10);
        assert!(keys.contains(kg.element_for_row_swap()));
        assert!(keys.byte_size(&p) > 0);
    }

    #[test]
    fn key_byte_size_scales_with_limbs_and_digits() {
        let p1 = BfvParams::preset_single_60(4096).unwrap();
        let p2 = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut kg1 = KeyGenerator::from_seed(p1.clone(), 6);
        let mut kg2 = KeyGenerator::from_seed(p2.clone(), 6);
        let k1 = kg1.galois_keys_for_steps(&[1]).unwrap();
        let k2 = kg2.galois_keys_for_steps(&[1]).unwrap();
        // Per-limb decomposition: one 60-bit limb carries ceil(60/20) = 3
        // digits; two 30-bit limbs carry 2·ceil(30/20) = 4 digits, each
        // over twice the planes.
        assert_eq!(k1.byte_size(&p1), 3 * 2 * 4096 * 8);
        assert_eq!(k2.byte_size(&p2), 4 * 2 * 2 * 4096 * 8);
    }

    #[test]
    fn multi_limb_pairs_are_rlwe_samples_of_scaled_secret() {
        // Every pair (i, d) must satisfy k0 + k1·s = A^d·q̂_i·s(x^g) + e
        // with small e — the invariant the RNS-native key switch consumes.
        let p = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(p.clone(), 10);
        let g = kg.element_for_step(1).unwrap();
        let key = kg.galois_key(g).unwrap();
        let chain = p.chain();
        assert_eq!(key.pairs().len(), p.l_ct());

        let mut s_g = RnsPoly::zero(chain, Representation::Eval);
        s_g.permute_from(kg.secret_key().poly(), key.permutation());

        let mut idx = 0;
        for i in 0..chain.limbs() {
            let levels_i = chain.limb_decomposition_levels(p.a_dcmp(), i);
            for d in 0..levels_i {
                let (k0, k1) = &key.pairs()[idx];
                // residual = k0 + k1·s − A^d·q̂_i·s(x^g) must be small.
                let mut residual = k1.clone();
                residual
                    .mul_assign_pointwise(kg.secret_key().poly(), chain)
                    .unwrap();
                residual.add_assign(k0, chain).unwrap();
                let mut scaled = s_g.clone();
                for (k, q) in chain.moduli().iter().enumerate() {
                    let mut sc = chain.crt().qhat_mod(i, k);
                    for _ in 0..d {
                        sc = q.mul_mod(sc, q.reduce(p.a_dcmp()));
                    }
                    crate::poly::mul_scalar_slice(scaled.limb_mut(k), sc, q);
                }
                residual.sub_assign(&scaled, chain).unwrap();
                residual.to_coeff(chain);
                let norm = residual.inf_norm_centered(chain).unwrap();
                assert!(norm <= 64, "pair ({i},{d}) residual too large: {norm}");
                idx += 1;
            }
        }
        assert_eq!(idx, key.pairs().len());
    }

    #[test]
    fn hybrid_pairs_are_rlwe_samples_of_p_scaled_secret() {
        // Every hybrid pair i must satisfy k0 + k1·s = P·q̂_i·s(x^g) + e
        // over the extended chain [q_0, q_1, P], with the signal exactly
        // zero on the special plane.
        let p = BfvParams::preset_hybrid_2x36(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(p.clone(), 10);
        let g = kg.element_for_step(1).unwrap();
        let key = kg.galois_key(g).unwrap();
        let data = p.chain();
        let ks = p.ks_chain_at(0);
        let limbs = data.limbs();
        let p_val = p.special().unwrap().value();
        assert_eq!(key.pairs().len(), limbs);

        let s_ks = kg.secret_on(ks);
        let mut s_g = RnsPoly::zero(ks, Representation::Eval);
        s_g.permute_from(&s_ks, key.permutation());

        for (i, (k0, k1)) in key.pairs().iter().enumerate() {
            assert_eq!(k0.limbs(), limbs + 1);
            let mut residual = k1.clone();
            residual.mul_assign_pointwise(&s_ks, ks).unwrap();
            residual.add_assign(k0, ks).unwrap();
            let mut scaled = s_g.clone();
            for k in 0..=limbs {
                let q = ks.modulus(k);
                let sc = if k < limbs {
                    q.mul_mod(q.reduce(p_val), data.crt().qhat_mod(i, k))
                } else {
                    0
                };
                crate::poly::mul_scalar_slice(scaled.limb_mut(k), sc, q);
            }
            residual.sub_assign(&scaled, ks).unwrap();
            residual.to_coeff(ks);
            let norm = residual.inf_norm_centered(ks).unwrap();
            assert!(norm <= 64, "hybrid pair {i} residual too large: {norm}");
            assert!(norm > 0);
        }
        assert_eq!(GaloisKeys::default().byte_size(&p), 0,);
        let mut set = GaloisKeys::default();
        set.insert(key);
        assert_eq!(set.byte_size(&p), limbs * 2 * (limbs + 1) * 4096 * 8);
    }

    #[test]
    fn hybrid_secret_matches_digit_twin_secret() {
        // Same data chain, t, and seed: the hybrid params' secret (and
        // hence every encryption) is identical to the digit twin's — only
        // key material diverges.
        let c = crate::params::search_congruent_chain(4096, 16, &[36, 36], 36).unwrap();
        let digit = BfvParams::builder()
            .degree(4096)
            .plain_modulus(c.t)
            .moduli(c.data.clone())
            .build()
            .unwrap();
        let hybrid = BfvParams::builder()
            .degree(4096)
            .plain_modulus(c.t)
            .moduli(c.data)
            .special_modulus(c.special)
            .build()
            .unwrap();
        let kg_d = KeyGenerator::from_seed(digit, 77);
        let kg_h = KeyGenerator::from_seed(hybrid, 77);
        assert_eq!(
            kg_d.secret_key().poly().data(),
            kg_h.secret_key().poly().data()
        );
    }

    #[test]
    fn missing_key_error() {
        let keys = GaloisKeys::default();
        assert!(matches!(
            keys.get(3),
            Err(Error::MissingGaloisKey {
                element: 3,
                step: None
            })
        ));
        assert!(keys.is_empty());
    }

    #[test]
    fn missing_key_for_step_names_the_step() {
        let keys = GaloisKeys::default();
        let g = element_for_step(1024, 5).unwrap();
        match keys.get_for_step(1024, 5) {
            Err(Error::MissingGaloisKey { element, step }) => {
                assert_eq!(element, g);
                assert_eq!(step, Some(5));
            }
            other => panic!("expected MissingGaloisKey, got {other:?}"),
        }
        // Identity steps have no element at all.
        assert!(matches!(
            keys.get_for_step(1024, 0),
            Err(Error::InvalidRotation(0))
        ));
    }

    #[test]
    fn invalid_galois_elements_are_rejected() {
        let p = params();
        let mut kg = KeyGenerator::from_seed(p, 9);
        assert!(matches!(
            kg.galois_key(4),
            Err(Error::InvalidGaloisElement(4))
        ));
        assert!(matches!(
            kg.galois_key(2 * 1024 + 1),
            Err(Error::InvalidGaloisElement(_))
        ));
        assert!(kg.galois_key(3).is_ok());
    }
}
