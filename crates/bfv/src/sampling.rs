//! Randomness for RLWE: ternary secrets, centered-binomial noise, and
//! uniform polynomials.
//!
//! The encryption noise is drawn from a centered binomial distribution
//! CBD(k) with `k = round(2σ²)`, giving variance `k/2 ≈ σ²` — the
//! independent bounded discrete Gaussian (IBDG) the paper's statistical
//! noise model assumes (§IV-B). CBD is bounded by construction
//! (`|e| ≤ k`), which is what makes the `B = 6σ` worst-case bound of
//! Table III sound.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::arith::Modulus;
use crate::poly::{Poly, Representation};
use crate::rns::{ModulusChain, RnsPoly};

/// Source of randomness for key generation and encryption.
///
/// Wraps a seedable PRNG so experiments are reproducible; production users
/// would seed from the OS.
#[derive(Debug)]
pub struct BfvRng {
    rng: StdRng,
    cbd_k: u32,
}

impl BfvRng {
    /// Creates a generator from a seed, with noise parameter derived from
    /// `sigma` (CBD(k), `k = round(2σ²)`).
    pub fn from_seed(seed: u64, sigma: f64) -> Self {
        let cbd_k = (2.0 * sigma * sigma).round().max(1.0) as u32;
        Self {
            rng: StdRng::seed_from_u64(seed),
            cbd_k,
        }
    }

    /// Creates a generator seeded from the OS entropy pool.
    pub fn from_entropy(sigma: f64) -> Self {
        let cbd_k = (2.0 * sigma * sigma).round().max(1.0) as u32;
        Self {
            rng: StdRng::from_os_rng(),
            cbd_k,
        }
    }

    /// The CBD parameter `k` in use.
    pub fn cbd_k(&self) -> u32 {
        self.cbd_k
    }

    /// Worst-case bound on a single noise sample (`|e| ≤ k`).
    pub fn noise_bound(&self) -> u64 {
        self.cbd_k as u64
    }

    /// Samples a uniform polynomial over `[0, q)` in the given
    /// representation (uniform residues are uniform in either domain).
    pub fn uniform_poly(&mut self, n: usize, q: &Modulus, repr: Representation) -> Poly {
        let data = (0..n)
            .map(|_| self.rng.random_range(0..q.value()))
            .collect();
        Poly::from_data(data, repr)
    }

    /// Samples a ternary polynomial with coefficients in `{-1, 0, 1}`
    /// (uniform), in coefficient form — the RLWE secret distribution.
    pub fn ternary_poly(&mut self, n: usize, q: &Modulus) -> Poly {
        let data = (0..n)
            .map(|_| match self.rng.random_range(0..3u8) {
                0 => 0,
                1 => 1,
                _ => q.value() - 1, // -1 mod q
            })
            .collect();
        Poly::from_data(data, Representation::Coeff)
    }

    /// Samples one CBD(k) noise value in `[-k, k]`.
    pub fn noise_sample(&mut self) -> i64 {
        let k = self.cbd_k;
        let mut acc: i64 = 0;
        let mut remaining = k;
        while remaining > 0 {
            let chunk = remaining.min(32);
            let mask = if chunk == 32 {
                u32::MAX
            } else {
                (1u32 << chunk) - 1
            };
            let a = (self.rng.next_u32() & mask).count_ones() as i64;
            let b = (self.rng.next_u32() & mask).count_ones() as i64;
            acc += a - b;
            remaining -= chunk;
        }
        acc
    }

    /// Samples a noise polynomial (coefficient form).
    pub fn noise_poly(&mut self, n: usize, q: &Modulus) -> Poly {
        let data = (0..n).map(|_| q.from_signed(self.noise_sample())).collect();
        Poly::from_data(data, Representation::Coeff)
    }

    /// Samples a uniform value in `[0, bound)` (used for masking in the
    /// Gazelle protocol layer).
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        self.rng.random_range(0..bound)
    }

    // ------------------------------------------------------------------
    // RNS variants: one sample stream drives every limb plane.
    // ------------------------------------------------------------------

    /// Samples a polynomial uniform over `[0, Q)` in RNS form: each limb
    /// plane is drawn uniformly mod its own prime, which by CRT is exactly
    /// uniform mod the composed `Q`. For a 1-limb chain the draw sequence
    /// is identical to [`BfvRng::uniform_poly`].
    pub fn uniform_rns(&mut self, chain: &ModulusChain, repr: Representation) -> RnsPoly {
        RnsPoly::from_fn(chain, repr, |i, _| {
            self.rng.random_range(0..chain.modulus(i).value())
        })
    }

    /// Draws a fresh 64-bit seed from this generator's stream — the seed a
    /// seeded wire encoding ships in place of a full uniform polynomial
    /// (the receiver re-expands it with [`expand_uniform`]).
    pub fn next_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Samples a ternary polynomial with coefficients in `{-1, 0, 1}`
    /// (uniform), lifted into every limb plane (coefficient form) — the
    /// RLWE secret distribution over the chain. One trit is drawn per
    /// coefficient, exactly as in [`BfvRng::ternary_poly`].
    pub fn ternary_rns(&mut self, chain: &ModulusChain) -> RnsPoly {
        let trits: Vec<i64> = (0..chain.degree())
            .map(|_| match self.rng.random_range(0..3u8) {
                0 => 0,
                1 => 1,
                _ => -1,
            })
            .collect();
        RnsPoly::from_signed(&trits, chain)
    }

    /// Samples a CBD(k) noise polynomial lifted into every limb plane
    /// (coefficient form). One noise value is drawn per coefficient,
    /// exactly as in [`BfvRng::noise_poly`].
    pub fn noise_rns(&mut self, chain: &ModulusChain) -> RnsPoly {
        let samples: Vec<i64> = (0..chain.degree()).map(|_| self.noise_sample()).collect();
        RnsPoly::from_signed(&samples, chain)
    }
}

/// Expands a 64-bit seed into the uniform Eval-domain polynomial the seed
/// stands for on the wire: a dedicated `StdRng` stream drawing limb-major,
/// exactly the draw order of [`BfvRng::uniform_rns`]. Both ends of a
/// seeded encoding call this, so `expand_uniform(seed, chain)` is the
/// *definition* of the `c1` / `pk1` component a (seed, c0) message omits.
pub fn expand_uniform(seed: u64, chain: &ModulusChain) -> RnsPoly {
    let mut rng = StdRng::seed_from_u64(seed);
    RnsPoly::from_fn(chain, Representation::Eval, |i, _| {
        rng.random_range(0..chain.modulus(i).value())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Modulus {
        Modulus::new(crate::arith::generate_ntt_prime(30, 1024).unwrap()).unwrap()
    }

    #[test]
    fn ternary_values_are_ternary() {
        let q = q();
        let mut rng = BfvRng::from_seed(1, 3.2);
        let p = rng.ternary_poly(1024, &q);
        for &c in p.data() {
            assert!(c == 0 || c == 1 || c == q.value() - 1);
        }
    }

    #[test]
    fn cbd_statistics_match_sigma() {
        let mut rng = BfvRng::from_seed(2, 3.2);
        assert_eq!(rng.cbd_k(), 20); // round(2 * 3.2^2) = round(20.48)
        let samples: Vec<i64> = (0..20000).map(|_| rng.noise_sample()).collect();
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64;
        let var: f64 = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        // variance should be k/2 = 10 (close to sigma^2 = 10.24)
        assert!((var - 10.0).abs() < 1.0, "var {var}");
        let bound = rng.noise_bound() as i64;
        assert!(samples.iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn uniform_poly_in_range_and_seed_reproducible() {
        let q = q();
        let mut r1 = BfvRng::from_seed(42, 3.2);
        let mut r2 = BfvRng::from_seed(42, 3.2);
        let a = r1.uniform_poly(256, &q, Representation::Eval);
        let b = r2.uniform_poly(256, &q, Representation::Eval);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|&v| v < q.value()));
    }

    #[test]
    fn single_limb_rns_sampling_matches_poly_sampling() {
        let q = q();
        let chain = ModulusChain::new(1024, &[q.value()]).unwrap();
        let mut scalar = BfvRng::from_seed(77, 3.2);
        let mut rns = BfvRng::from_seed(77, 3.2);

        let a = scalar.uniform_poly(1024, &q, Representation::Eval);
        let b = rns.uniform_rns(&chain, Representation::Eval);
        assert_eq!(a.data(), b.limb(0));

        let a = scalar.ternary_poly(1024, &q);
        let b = rns.ternary_rns(&chain);
        assert_eq!(a.data(), b.limb(0));

        let a = scalar.noise_poly(1024, &q);
        let b = rns.noise_rns(&chain);
        assert_eq!(a.data(), b.limb(0));
    }

    #[test]
    fn multi_limb_planes_agree_on_signed_lift() {
        let values = crate::arith::generate_ntt_primes(30, 512, 2).unwrap();
        let chain = ModulusChain::new(512, &values).unwrap();
        let mut rng = BfvRng::from_seed(5, 3.2);
        let s = rng.ternary_rns(&chain);
        let (q0, q1) = (chain.modulus(0), chain.modulus(1));
        for j in 0..512 {
            assert_eq!(q0.center(s.limb(0)[j]), q1.center(s.limb(1)[j]));
        }
    }

    #[test]
    fn expand_uniform_is_deterministic_and_canonical() {
        let values = crate::arith::generate_ntt_primes(30, 512, 3).unwrap();
        let chain = ModulusChain::new(512, &values).unwrap();
        let a = expand_uniform(0xDEAD_BEEF, &chain);
        let b = expand_uniform(0xDEAD_BEEF, &chain);
        assert_eq!(a, b);
        let c = expand_uniform(0xDEAD_BEF0, &chain);
        assert_ne!(a, c);
        for i in 0..3 {
            let q = chain.modulus(i).value();
            assert!(a.limb(i).iter().all(|&v| v < q));
        }
    }

    #[test]
    fn large_sigma_uses_multiple_chunks() {
        // sigma large enough that k > 32 exercises the chunked path.
        let mut rng = BfvRng::from_seed(3, 6.0);
        assert_eq!(rng.cbd_k(), 72);
        let s: Vec<i64> = (0..5000).map(|_| rng.noise_sample()).collect();
        let var: f64 = s.iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / s.len() as f64;
        assert!((var - 36.0).abs() < 4.0, "var {var}");
    }
}
