//! Encryption and decryption, including exact noise measurement.
//!
//! All ciphertext arithmetic is limb-parallel over the RNS chain;
//! decryption is the one place limbs are CRT-composed back into exact
//! `[0, Q)` values (per coefficient, via Garner composition) before the
//! `round(t·c/Q)` scaling — so a 1-limb chain reproduces the historical
//! single-modulus rounding bit-for-bit, and longer chains get exact
//! wide-modulus decryption without any big-integer polynomial arithmetic.

use crate::arith::Modulus;
use crate::ciphertext::{Ciphertext, WindowedCiphertext};
use crate::encoder::Plaintext;
use crate::error::{Error, Result};
use crate::keys::{PublicKey, SecretKey};
use crate::noise::NoiseEstimate;
use crate::params::BfvParams;
use crate::poly::{decomposition_levels, Poly, Representation};
use crate::rns::RnsPoly;
use crate::sampling::BfvRng;

/// Encrypts plaintexts under a public key (asymmetric) or secret key
/// (symmetric; smaller noise, used by the client for re-encryption in the
/// Gazelle protocol).
#[derive(Debug)]
pub struct Encryptor {
    params: BfvParams,
    pk: Option<PublicKey>,
    sk: Option<SecretKey>,
    rng: BfvRng,
}

impl Encryptor {
    /// Public-key encryptor.
    pub fn from_public_key(pk: PublicKey, seed: u64) -> Self {
        let params = pk.params().clone();
        let rng = BfvRng::from_seed(seed, params.sigma());
        Self {
            params,
            pk: Some(pk),
            sk: None,
            rng,
        }
    }

    /// Secret-key (symmetric) encryptor.
    pub fn from_secret_key(sk: SecretKey, seed: u64) -> Self {
        let params = sk.params().clone();
        let rng = BfvRng::from_seed(seed, params.sigma());
        Self {
            params,
            pk: None,
            sk: Some(sk),
            rng,
        }
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// Encrypts a plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParameterMismatch`] if the plaintext was built for
    /// different parameters.
    pub fn encrypt(&mut self, pt: &Plaintext) -> Result<Ciphertext> {
        self.params.check_same(pt.params())?;
        let mut dm = self.params.lift_scaled(pt.poly().data());
        dm.to_eval(self.params.chain());
        if let Some(pk) = &self.pk {
            self.encrypt_with_pk(dm, pk.clone())
        } else {
            self.encrypt_with_sk(dm)
        }
    }

    fn encrypt_with_pk(&mut self, dm: RnsPoly, pk: PublicKey) -> Result<Ciphertext> {
        let chain = self.params.chain().clone();
        let mut u = self.rng.ternary_rns(&chain);
        u.to_eval(&chain);
        let mut e0 = self.rng.noise_rns(&chain);
        e0.to_eval(&chain);
        let mut e1 = self.rng.noise_rns(&chain);
        e1.to_eval(&chain);

        let mut c0 = pk.pk0().clone();
        c0.mul_assign_pointwise(&u, &chain)?;
        c0.add_assign(&e0, &chain)?;
        c0.add_assign(&dm, &chain)?;
        let mut c1 = pk.pk1().clone();
        c1.mul_assign_pointwise(&u, &chain)?;
        c1.add_assign(&e1, &chain)?;
        Ok(Ciphertext::new(
            c0,
            c1,
            self.params.clone(),
            NoiseEstimate::fresh(&self.params),
        ))
    }

    fn encrypt_with_sk(&mut self, dm: RnsPoly) -> Result<Ciphertext> {
        let chain = self.params.chain().clone();
        let a = self.rng.uniform_rns(&chain, Representation::Eval);
        self.assemble_sk_ciphertext(dm, a, &chain)
    }

    /// Symmetric encryption with a wire-compressible mask: `c1 = a` is
    /// expanded from a fresh 64-bit seed (via
    /// [`crate::sampling::expand_uniform`]) instead of drawn from the main
    /// stream, so the ciphertext can ship as (seed, c0) — see
    /// [`crate::wire::encode_ciphertext_seeded`]. Returns the ciphertext
    /// together with the seed that regenerates its `c1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] on a public-key encryptor (only the
    /// symmetric path has a uniform `c1`), or
    /// [`Error::ParameterMismatch`] for foreign plaintexts.
    pub fn encrypt_seeded(&mut self, pt: &Plaintext) -> Result<(Ciphertext, u64)> {
        if self.sk.is_none() {
            return Err(Error::Unsupported(
                "seeded encryption requires a secret-key encryptor",
            ));
        }
        self.params.check_same(pt.params())?;
        let mut dm = self.params.lift_scaled(pt.poly().data());
        dm.to_eval(self.params.chain());
        let chain = self.params.chain().clone();
        let seed = self.rng.next_seed();
        let a = crate::sampling::expand_uniform(seed, &chain);
        let ct = self.assemble_sk_ciphertext(dm, a, &chain)?;
        Ok((ct, seed))
    }

    fn assemble_sk_ciphertext(
        &mut self,
        dm: RnsPoly,
        a: RnsPoly,
        chain: &crate::rns::ModulusChain,
    ) -> Result<Ciphertext> {
        let sk = self.sk.as_ref().expect("sk encryptor");
        let mut e = self.rng.noise_rns(chain);
        e.to_eval(chain);
        // c0 = -(a*s) + e + Δm; c1 = a
        let mut c0 = a.clone();
        c0.mul_assign_pointwise(sk.poly(), chain)?;
        c0.negate(chain);
        c0.add_assign(&e, chain)?;
        c0.add_assign(&dm, chain)?;
        Ok(Ciphertext::new(
            c0,
            a,
            self.params.clone(),
            NoiseEstimate::fresh(&self.params),
        ))
    }

    /// Windowed encryption (Gazelle plaintext windowing): encrypts
    /// `W^i · m (mod t)` for `i = 0..l_pt` with `W = W_dcmp`.
    ///
    /// Combined with
    /// [`crate::evaluator::Evaluator::mul_plain_windowed`], multiplication
    /// noise shrinks from `n·t/2·v` to `n·l_pt·W/2·v` (Table III) at the
    /// cost of `l_pt×` more ciphertexts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParameterMismatch`] for foreign plaintexts.
    pub fn encrypt_windowed(&mut self, pt: &Plaintext) -> Result<WindowedCiphertext> {
        self.params.check_same(pt.params())?;
        let t = *self.params.plain_modulus();
        let w = self.params.w_dcmp();
        let levels = self.params.l_pt();
        let mut cts = Vec::with_capacity(levels);
        let mut scale = 1u64;
        for i in 0..levels {
            let scaled: Vec<u64> = pt
                .poly()
                .data()
                .iter()
                .map(|&m| t.mul_mod(scale, m))
                .collect();
            let scaled_pt = Plaintext::from_poly(
                Poly::from_data(scaled, Representation::Coeff),
                self.params.clone(),
            )?;
            cts.push(self.encrypt(&scaled_pt)?);
            if i + 1 < levels {
                scale = t.mul_mod(scale, t.reduce(w));
            }
        }
        Ok(WindowedCiphertext { cts, base: w })
    }
}

/// Decrypts ciphertexts and measures true noise against the secret key.
#[derive(Debug)]
pub struct Decryptor {
    params: BfvParams,
    sk: SecretKey,
}

impl Decryptor {
    /// Creates a decryptor from the secret key.
    pub fn new(sk: SecretKey) -> Self {
        Self {
            params: sk.params().clone(),
            sk,
        }
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// Decrypts to a plaintext: `m = round(t·(c0 + c1·s)/Q_ℓ) mod t`, with
    /// each coefficient CRT-composed across the ciphertext's **live**
    /// limbs before the exact integer rounding. Modulus-switched
    /// ciphertexts decrypt against their level's `Q_ℓ` and `Δ_ℓ` — dropped
    /// limbs never re-enter the computation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParameterMismatch`] for foreign ciphertexts.
    /// Decryption itself cannot detect noise overflow — use
    /// [`Decryptor::invariant_noise_budget`] to check.
    pub fn decrypt(&self, ct: &Ciphertext) -> Result<Plaintext> {
        self.params.check_same(ct.params())?;
        let level = ct.level();
        let chain = self.params.chain_at(level);
        let t = self.params.plain_modulus();
        let phase = self.phase(ct)?;
        let qv = chain.big_q();
        let tv = t.value() as u128;
        let half_q = qv / 2;
        let n = self.params.degree();
        let coeffs: Vec<u64> = (0..n)
            .map(|j| {
                // round(t*c/Q_ℓ) mod t, in exact integer arithmetic (the
                // chain builder guarantees t*Q + Q/2 fits u128, and every
                // Q_ℓ divides Q).
                let c = phase.compose_coeff(chain, j);
                let num = tv * c + half_q;
                ((num / qv) % tv) as u64
            })
            .collect();
        Plaintext::from_poly(
            Poly::from_data(coeffs, Representation::Coeff),
            self.params.clone(),
        )
    }

    /// `c0 + c1·s` in coefficient form — the decryption phase, over the
    /// ciphertext's live limbs (the secret key's full-chain lift is read
    /// as a live-plane prefix).
    fn phase(&self, ct: &Ciphertext) -> Result<RnsPoly> {
        let chain = self.params.chain_at(ct.level());
        let mut acc = ct.c1().clone();
        acc.mul_assign_pointwise_prefix(self.sk.poly(), chain)?;
        acc.add_assign(ct.c0(), chain)?;
        acc.to_coeff(chain);
        Ok(acc)
    }

    /// The exact invariant-noise magnitude `||c0 + c1·s − Δ_ℓ·m||_∞`
    /// (centered against the live `Q_ℓ`), the ground truth the Table III
    /// model bounds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn invariant_noise(&self, ct: &Ciphertext) -> Result<u128> {
        let level = ct.level();
        let chain = self.params.chain_at(level);
        let m = self.decrypt(ct)?;
        let dm = self.params.lift_scaled_at(m.poly().data(), level);
        let mut v = self.phase(ct)?;
        v.sub_assign(&dm, chain)?;
        v.inf_norm_centered(chain)
    }

    /// Remaining noise budget in bits: `log2(Q_ℓ/(2t)) − log2(noise)`,
    /// against the ciphertext's own level ceiling.
    ///
    /// The measurement is taken against the *nearest* plaintext multiple,
    /// so once noise truly overflows the budget collapses to ≈ 0 (it can
    /// hover slightly positive) rather than going deeply negative — treat
    /// any budget below ~1 bit as failed, matching SEAL's semantics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn invariant_noise_budget(&self, ct: &Ciphertext) -> Result<f64> {
        let noise = self.invariant_noise(ct)? as f64;
        let ceiling = self.params.noise_ceiling_at(ct.level());
        Ok(ceiling.log2() - noise.max(1.0).log2())
    }

    /// Decrypts, returning [`Error::NoiseBudgetExhausted`] when the measured
    /// noise already exceeds the decryption threshold. (In that regime the
    /// "decrypted" value is garbage; the paper calls this decryption
    /// failure.)
    ///
    /// # Errors
    ///
    /// [`Error::NoiseBudgetExhausted`] or [`Error::ParameterMismatch`].
    pub fn decrypt_checked(&self, ct: &Ciphertext) -> Result<Plaintext> {
        if self.invariant_noise_budget(ct)? <= 0.0 {
            return Err(Error::NoiseBudgetExhausted);
        }
        self.decrypt(ct)
    }
}

/// Derives the number of windows a plaintext modulus `t` needs at base `w`
/// (`l_pt`), mirroring [`BfvParams::l_pt`] for standalone use.
pub fn plaintext_windows(t: &Modulus, w: u64) -> usize {
    if w >= t.value() {
        1
    } else {
        decomposition_levels(t.value(), w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BatchEncoder;
    use crate::keys::KeyGenerator;

    fn setup(n: usize) -> (BfvParams, BatchEncoder, Encryptor, Decryptor) {
        let params = BfvParams::builder()
            .degree(n)
            .plain_bits(16)
            .cipher_bits(if n >= 4096 { 60 } else { 54 })
            .build()
            .unwrap();
        setup_with(params)
    }

    fn setup_with(params: BfvParams) -> (BfvParams, BatchEncoder, Encryptor, Decryptor) {
        let mut kg = KeyGenerator::from_seed(params.clone(), 99);
        let pk = kg.public_key().unwrap();
        let enc = Encryptor::from_public_key(pk, 7);
        let dec = Decryptor::new(kg.secret_key().clone());
        let encoder = BatchEncoder::new(params.clone());
        (params, encoder, enc, dec)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (_, encoder, mut enc, dec) = setup(2048);
        let values: Vec<u64> = (0..2048u64).map(|i| i * 31 % 65537).collect();
        let pt = encoder.encode(&values).unwrap();
        let ct = enc.encrypt(&pt).unwrap();
        let out = dec.decrypt_checked(&ct).unwrap();
        assert_eq!(encoder.decode(&out), encoder.decode(&pt));
    }

    #[test]
    fn multi_limb_encrypt_decrypt_roundtrip() {
        for params in [
            BfvParams::preset_rns_2x30(4096).unwrap(),
            BfvParams::preset_rns_3x36(4096).unwrap(),
        ] {
            let limbs = params.limbs();
            let (_, encoder, mut enc, dec) = setup_with(params);
            let values: Vec<u64> = (0..4096u64).map(|i| i * 31 % 65537).collect();
            let pt = encoder.encode(&values).unwrap();
            let ct = enc.encrypt(&pt).unwrap();
            assert_eq!(ct.limbs(), limbs);
            let out = dec.decrypt_checked(&ct).unwrap();
            assert_eq!(encoder.decode(&out), encoder.decode(&pt), "limbs={limbs}");
        }
    }

    #[test]
    fn deeper_chains_have_deeper_budgets() {
        let (_, enc1, mut e1, d1) = setup_with(BfvParams::preset_single_60(4096).unwrap());
        let (_, _, mut e3, d3) = setup_with(BfvParams::preset_rns_3x36(4096).unwrap());
        let pt1 = enc1.encode(&[1, 2, 3]).unwrap();
        let b1 = d1
            .invariant_noise_budget(&e1.encrypt(&pt1).unwrap())
            .unwrap();
        let enc3 = BatchEncoder::new(d3.params().clone());
        let pt3 = enc3.encode(&[1, 2, 3]).unwrap();
        let b3 = d3
            .invariant_noise_budget(&e3.encrypt(&pt3).unwrap())
            .unwrap();
        // 108-bit Q vs 60-bit Q: ~48 extra bits of budget.
        assert!(b3 > b1 + 40.0, "single {b1:.1} vs 3x36 {b3:.1}");
    }

    #[test]
    fn symmetric_encryption_roundtrip_with_less_noise() {
        let params = BfvParams::builder()
            .degree(2048)
            .plain_bits(16)
            .cipher_bits(54)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 5);
        let pk = kg.public_key().unwrap();
        let dec = Decryptor::new(kg.secret_key().clone());
        let encoder = BatchEncoder::new(params.clone());
        let pt = encoder.encode(&[1, 2, 3]).unwrap();

        let mut enc_pk = Encryptor::from_public_key(pk, 8);
        let mut enc_sk = Encryptor::from_secret_key(kg.secret_key().clone(), 9);
        let ct_pk = enc_pk.encrypt(&pt).unwrap();
        let ct_sk = enc_sk.encrypt(&pt).unwrap();
        assert_eq!(
            encoder.decode(&dec.decrypt(&ct_sk).unwrap())[..3],
            [1, 2, 3]
        );
        let noise_pk = dec.invariant_noise(&ct_pk).unwrap();
        let noise_sk = dec.invariant_noise(&ct_sk).unwrap();
        assert!(noise_sk <= noise_pk, "sk {noise_sk} vs pk {noise_pk}");
    }

    #[test]
    fn seeded_encryption_roundtrips_and_seed_regenerates_c1() {
        for params in [
            BfvParams::preset_single_60(4096).unwrap(),
            BfvParams::preset_rns_3x36(4096).unwrap(),
        ] {
            let kg = KeyGenerator::from_seed(params.clone(), 13);
            let dec = Decryptor::new(kg.secret_key().clone());
            let encoder = BatchEncoder::new(params.clone());
            let pt = encoder.encode(&[9, 8, 7]).unwrap();
            let mut enc = Encryptor::from_secret_key(kg.secret_key().clone(), 14);
            let (ct, seed) = enc.encrypt_seeded(&pt).unwrap();
            // The seed is the c1: re-expansion must match bit-for-bit.
            let a = crate::sampling::expand_uniform(seed, params.chain());
            assert_eq!(ct.c1(), &a);
            assert_eq!(
                encoder.decode(&dec.decrypt_checked(&ct).unwrap())[..3],
                [9, 8, 7]
            );
            // Two seeded encryptions draw distinct seeds.
            let (_, seed2) = enc.encrypt_seeded(&pt).unwrap();
            assert_ne!(seed, seed2);
        }
    }

    #[test]
    fn seeded_encryption_rejected_without_secret_key() {
        let (_, encoder, mut enc, _) = setup(2048);
        let pt = encoder.encode(&[1]).unwrap();
        assert!(matches!(
            enc.encrypt_seeded(&pt),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn measured_noise_below_model_bound() {
        let (params, encoder, mut enc, dec) = setup(2048);
        let pt = encoder.encode(&[42; 100]).unwrap();
        let ct = enc.encrypt(&pt).unwrap();
        let measured = dec.invariant_noise(&ct).unwrap() as f64;
        let bound = ct.noise().bound_log2.exp2();
        assert!(measured > 0.0);
        assert!(measured <= bound, "measured {measured} > bound {bound}");
        // The budget should be large for a fresh ciphertext.
        let budget = dec.invariant_noise_budget(&ct).unwrap();
        assert!(budget > 20.0, "budget {budget}");
        assert!(budget <= params.noise_ceiling().log2());
    }

    #[test]
    fn windowed_encryption_encrypts_scaled_copies() {
        let params = BfvParams::builder()
            .degree(2048)
            .plain_bits(16)
            .cipher_bits(54)
            .w_dcmp(1 << 8)
            .build()
            .unwrap();
        assert_eq!(params.l_pt(), 2);
        let mut kg = KeyGenerator::from_seed(params.clone(), 11);
        let pk = kg.public_key().unwrap();
        let mut enc = Encryptor::from_public_key(pk, 12);
        let dec = Decryptor::new(kg.secret_key().clone());
        let encoder = BatchEncoder::new(params.clone());
        let pt = encoder.encode(&[5, 6]).unwrap();
        let wct = enc.encrypt_windowed(&pt).unwrap();
        assert_eq!(wct.levels(), 2);
        let t = params.plain_modulus();
        let d0 = encoder.decode(&dec.decrypt(&wct.cts[0]).unwrap());
        let d1 = encoder.decode(&dec.decrypt(&wct.cts[1]).unwrap());
        assert_eq!(d0[0], 5);
        assert_eq!(d1[0], t.mul_mod(5, 256));
        assert_eq!(d1[1], t.mul_mod(6, 256));
    }

    #[test]
    fn mismatched_params_rejected() {
        let (_, encoder, _, _) = setup(2048);
        let (_, _, mut enc4096, dec4096) = setup(4096);
        let pt = encoder.encode(&[1]).unwrap();
        assert!(matches!(
            enc4096.encrypt(&pt),
            Err(Error::ParameterMismatch)
        ));
        let pt4096 = BatchEncoder::new(dec4096.params().clone())
            .encode(&[1])
            .unwrap();
        let ct = enc4096.encrypt(&pt4096).unwrap();
        let (_, _, _, dec2048) = setup(2048);
        assert!(matches!(
            dec2048.decrypt(&ct),
            Err(Error::ParameterMismatch)
        ));
    }
}
