//! Modular arithmetic over word-sized prime moduli.
//!
//! Everything in the BFV engine bottoms out in arithmetic modulo a prime
//! `q < 2^62`. Two reduction strategies are provided, matching the cost
//! structure the Cheetah paper models in §IV-A:
//!
//! * [`Modulus::mul_mod`] — Barrett reduction for arbitrary operand pairs.
//!   The reduction itself costs five integer multiplications (four partial
//!   products inside [`mulhi_u128`] plus the `t·q` product), which is exactly
//!   the constant the paper's performance model charges per modular
//!   multiplication ("Cheetah uses Barrett reduction, which uses five
//!   integer-multiplications per reduction").
//! * [`ShoupPrecomp`] — Shoup multiplication for a *fixed* operand, the hot
//!   path inside NTT butterflies (Harvey's butterfly: three integer
//!   multiplications).

use crate::error::{Error, Result};

/// A word-sized modulus with precomputed Barrett constants.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::arith::Modulus;
///
/// let q = Modulus::new(0x3fff_ffff_e800_0001).unwrap(); // a 62-bit value
/// assert_eq!(q.mul_mod(3, 5), 15);
/// assert!(Modulus::new(1 << 62).is_err()); // 63-bit values are too big
/// ```
///
/// Most callers obtain moduli from [`crate::params::BfvParams`] rather than
/// constructing them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// `floor(2^128 / value)`; exact because `value` never divides `2^128`.
    const_ratio: u128,
}

/// Maximum supported modulus: a single 62-bit limb keeps `a*b < 2^124` so the
/// Barrett quotient estimate fits in a `u64`.
pub const MAX_MODULUS_BITS: u32 = 62;

/// Maximum bit width of an **NTT limb** (`q < 2^61`), one bit stricter than
/// [`MAX_MODULUS_BITS`].
///
/// Harvey's lazy butterfly keeps values in `[0, 4q)` and forms `x + 2q - u`
/// in a `u64`, which needs `4q ≤ 2^64` — i.e. `q < 2^62` — to avoid silent
/// wraparound. The engine enforces one bit *more* headroom (`8q ≤ 2^64`) so
/// lane kernels can defer a reduction step without changing the tables.
/// [`crate::ntt::NttTable::new`] rejects wider moduli with a typed
/// [`Error::InvalidModulus`], and [`generate_prime_congruent`] (hence every
/// `BfvParamsBuilder` bit-width request) refuses to generate them. Raw
/// [`Modulus`] values up to 62 bits remain valid for Barrett-only
/// arithmetic that never enters a transform.
pub const MAX_NTT_MODULUS_BITS: u32 = 61;

impl Modulus {
    /// Creates a new modulus with precomputed Barrett constants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModulus`] if `value < 2` or `value >= 2^62`.
    pub fn new(value: u64) -> Result<Self> {
        if value < 2 || value >> MAX_MODULUS_BITS != 0 {
            return Err(Error::InvalidModulus(value));
        }
        // floor(2^128 / value) == floor((2^128 - 1) / value) because value is
        // never a power of two here (value >= 2 and odd primes in practice);
        // even when it is, the difference only matters if value | 2^128,
        // i.e. value is a power of two, in which case we adjust.
        let mut const_ratio = u128::MAX / value as u128;
        if value.is_power_of_two() {
            const_ratio += 1;
        }
        Ok(Self { value, const_ratio })
    }

    /// The numeric value of the modulus.
    #[inline]
    pub const fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits in the modulus.
    #[inline]
    pub const fn bits(&self) -> u32 {
        64 - self.value.leading_zeros()
    }

    /// The Barrett constant `floor(2^128 / value)` (for the branch-free
    /// lane kernels in [`crate::simd`], which replicate [`Modulus::mul_mod`]
    /// bit-for-bit; only they read it, hence unused in non-`simd` builds).
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    #[inline]
    pub(crate) const fn const_ratio(&self) -> u128 {
        self.const_ratio
    }

    /// Reduces an arbitrary `u64` modulo `self`.
    #[inline]
    pub fn reduce(&self, x: u64) -> u64 {
        self.reduce_u128(x as u128)
    }

    /// Barrett-reduces a 128-bit value modulo `self`.
    ///
    /// This is the five-multiplication reduction the paper's cost model
    /// references (four partials in the 128×128 high product, one for `t·q`).
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // Quotient estimate t = floor(x * const_ratio / 2^128) <= floor(x/q),
        // off by at most 2.
        let t = mulhi_u128(x, self.const_ratio);
        // x < 2^124 in all callers, so floor(x/q) < 2^64 and t fits u64 math.
        let mut r = (x - t * self.value as u128) as u64;
        while r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Modular multiplication via Barrett reduction.
    #[inline]
    pub fn mul_mod(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Modular addition. Operands must already be reduced.
    #[inline]
    pub fn add_mod(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction. Operands must already be reduced.
    #[inline]
    pub fn sub_mod(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation. The operand must already be reduced.
    #[inline]
    pub fn neg_mod(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular exponentiation by squaring.
    pub fn pow_mod(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.reduce(base);
        let mut acc: u64 = 1 % self.value;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul_mod(acc, base);
            }
            base = self.mul_mod(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse, if it exists.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInvertible`] when `gcd(a, modulus) != 1`.
    pub fn inv_mod(&self, a: u64) -> Result<u64> {
        let a = self.reduce(a);
        let (g, x, _) = extended_gcd(a as i128, self.value as i128);
        if g != 1 {
            return Err(Error::NotInvertible {
                value: a,
                modulus: self.value,
            });
        }
        let q = self.value as i128;
        Ok((x.rem_euclid(q)) as u64)
    }

    /// Maps a reduced residue to its centered representative in
    /// `(-q/2, q/2]`.
    #[inline]
    pub fn center(&self, a: u64) -> i64 {
        debug_assert!(a < self.value);
        if a > self.value / 2 {
            a as i64 - self.value as i64
        } else {
            a as i64
        }
    }

    /// Reduces a signed integer into `[0, q)`.
    #[inline]
    pub fn from_signed(&self, a: i64) -> u64 {
        let q = self.value as i128;
        (a as i128).rem_euclid(q) as u64
    }
}

/// High 128 bits of the 256-bit product `a * b`.
///
/// Implemented with four 64×64→128 partial products; these are four of the
/// five integer multiplications the paper charges per Barrett reduction.
#[inline]
pub fn mulhi_u128(a: u128, b: u128) -> u128 {
    let a_lo = a as u64 as u128;
    let a_hi = a >> 64;
    let b_lo = b as u64 as u128;
    let b_hi = b >> 64;

    let lo_lo = a_lo * b_lo;
    let lo_hi = a_lo * b_hi;
    let hi_lo = a_hi * b_lo;
    let hi_hi = a_hi * b_hi;

    let mid = (lo_lo >> 64) + (lo_hi & ((1u128 << 64) - 1)) + (hi_lo & ((1u128 << 64) - 1));
    hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64)
}

/// Precomputed Shoup constant for multiplying by a fixed operand `w` mod `q`.
///
/// `mul_lazy` costs three integer multiplications (Harvey's butterfly count
/// in the paper's NTT model) and returns a value in `[0, 2q)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupPrecomp {
    /// The fixed operand `w`, reduced mod `q`.
    pub operand: u64,
    /// `floor(w * 2^64 / q)`.
    pub quotient: u64,
}

impl ShoupPrecomp {
    /// Precomputes the Shoup quotient for operand `w` modulo `q`.
    pub fn new(w: u64, q: &Modulus) -> Self {
        let w = q.reduce(w);
        let quotient = (((w as u128) << 64) / q.value() as u128) as u64;
        Self {
            operand: w,
            quotient,
        }
    }

    /// Computes `x * w mod q`, fully reduced.
    #[inline]
    pub fn mul(&self, x: u64, q: &Modulus) -> u64 {
        let r = self.mul_lazy(x, q);
        if r >= q.value() {
            r - q.value()
        } else {
            r
        }
    }

    /// Computes `x * w mod q`, lazily reduced to `[0, 2q)`.
    ///
    /// Three integer multiplications: `x*quotient` (high word), `x*operand`
    /// and `approx*q` (low words).
    ///
    /// The result is exact for **any** `x < 2^64` — the laziness is in the
    /// output range, not an input bound. Headroom is the *caller's*
    /// obligation: the NTT butterflies feed `x < 4q` back in and form
    /// `x + 2q - u < 4q` sums, which is why NTT limbs are capped at
    /// `q < 2^61` ([`MAX_NTT_MODULUS_BITS`]). The only `mul_lazy` callers
    /// are the butterfly kernels in [`crate::simd`] (via the tables in
    /// [`crate::ntt::NttTable`], which enforce that cap) and
    /// [`ShoupPrecomp::mul`] below, whose single conditional subtraction
    /// only needs `2q ≤ 2^63` — satisfied by every valid [`Modulus`].
    #[inline]
    pub fn mul_lazy(&self, x: u64, q: &Modulus) -> u64 {
        let approx = ((x as u128 * self.quotient as u128) >> 64) as u64;
        (x.wrapping_mul(self.operand)).wrapping_sub(approx.wrapping_mul(q.value()))
    }
}

/// Maximum number of RNS limbs a [`CrtBasis`] supports. The composed value
/// must fit `u128`, which already caps realistic chains at four ~30-bit or
/// two ~61-bit limbs; 8 leaves headroom for many-small-prime experiments.
pub const MAX_RNS_LIMBS: usize = 8;

/// A Chinese-remainder basis over pairwise-coprime word-sized primes, with
/// the Garner (mixed-radix) constants precomputed.
///
/// This is the arithmetic core of the RNS modulus chain: a big ciphertext
/// modulus `Q = q_0 · q_1 · … · q_{l-1}` is never materialized per
/// coefficient — residues live in machine words per limb — and only
/// decryption and digit decomposition cross limbs, via
/// [`CrtBasis::compose`]. Composition runs Garner's algorithm entirely in
/// single-word Barrett arithmetic ([`Modulus::mul_mod`] /
/// [`Modulus::sub_mod`]); the only 128-bit work is the final mixed-radix
/// Horner accumulation, which is exact because construction guarantees
/// `Q < 2^127`.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::arith::{CrtBasis, Modulus};
///
/// # fn main() -> Result<(), cheetah_bfv::Error> {
/// let basis = CrtBasis::new(&[Modulus::new(17)?, Modulus::new(19)?])?;
/// let v = 200u128;
/// let residues = basis.decompose(v);
/// assert_eq!(residues, vec![200 % 17, 200 % 19]);
/// assert_eq!(basis.compose(&residues), v);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrtBasis {
    moduli: Vec<Modulus>,
    /// `inv[j][i] = q_i^{-1} mod q_j` for `i < j` (Garner constants).
    inv: Vec<Vec<u64>>,
    /// `qhat[i][k] = q̂_i mod q_k` with `q̂_i = Q / q_i` — the CRT
    /// interpolation weights, per limb plane (RNS key-switch constants).
    qhat: Vec<Vec<u64>>,
    /// `qhat_inv[i] = q̂_i^{-1} mod q_i` — the per-limb normalizer of the
    /// RNS decomposition `c ≡ Σ_i q̂_i·[q̂_i^{-1}·c]_{q_i} (mod Q)`.
    qhat_inv: Vec<u64>,
    big_q: u128,
    total_bits: u32,
}

impl CrtBasis {
    /// Builds the basis and precomputes the Garner inverses.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidLimbCount`] for an empty or oversized limb list;
    /// * [`Error::ModulusChainTooLarge`] if `Π q_i >= 2^127`;
    /// * [`Error::NotInvertible`] if two limbs share a factor (e.g.
    ///   duplicate primes).
    pub fn new(moduli: &[Modulus]) -> Result<Self> {
        if moduli.is_empty() || moduli.len() > MAX_RNS_LIMBS {
            return Err(Error::InvalidLimbCount {
                limbs: moduli.len(),
            });
        }
        let mut big_q: u128 = 1;
        for q in moduli {
            big_q = big_q
                .checked_mul(q.value() as u128)
                .filter(|&p| p < 1u128 << 127)
                .ok_or(Error::ModulusChainTooLarge {
                    total_bits: 128,
                    max_bits: 127,
                })?;
        }
        let total_bits = 128 - big_q.leading_zeros();
        let mut inv = Vec::with_capacity(moduli.len());
        for (j, qj) in moduli.iter().enumerate() {
            let mut row = Vec::with_capacity(j);
            for qi in &moduli[..j] {
                row.push(qj.inv_mod(qi.value())?);
            }
            inv.push(row);
        }
        // q̂_i = Π_{m≠i} q_m, materialized only as residues per limb plane
        // (word arithmetic; never the big integer).
        let mut qhat = Vec::with_capacity(moduli.len());
        let mut qhat_inv = Vec::with_capacity(moduli.len());
        for i in 0..moduli.len() {
            let row: Vec<u64> = moduli
                .iter()
                .map(|qk| {
                    let mut acc = 1u64 % qk.value();
                    for (m, qm) in moduli.iter().enumerate() {
                        if m != i {
                            acc = qk.mul_mod(acc, qk.reduce(qm.value()));
                        }
                    }
                    acc
                })
                .collect();
            qhat_inv.push(moduli[i].inv_mod(row[i])?);
            qhat.push(row);
        }
        Ok(Self {
            moduli: moduli.to_vec(),
            inv,
            qhat,
            qhat_inv,
            big_q,
            total_bits,
        })
    }

    /// The limb moduli, in chain order.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// Number of limbs `l`.
    #[inline]
    pub fn limbs(&self) -> usize {
        self.moduli.len()
    }

    /// The composed modulus `Q = Π q_i`.
    #[inline]
    pub fn big_q(&self) -> u128 {
        self.big_q
    }

    /// `ceil(log2(Q))`-ish: the bit width of `Q`.
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// `q̂_i mod q_k` with `q̂_i = Q / q_i` — the CRT interpolation weight
    /// of limb `i` seen from limb plane `k`.
    #[inline]
    pub fn qhat_mod(&self, i: usize, k: usize) -> u64 {
        self.qhat[i][k]
    }

    /// `q̂_i^{-1} mod q_i` — normalizer for the per-limb RNS decomposition
    /// `c ≡ Σ_i q̂_i·[q̂_i^{-1}·c]_{q_i} (mod Q)`. Equals 1 for a
    /// single-limb basis.
    #[inline]
    pub fn qhat_inv(&self, i: usize) -> u64 {
        self.qhat_inv[i]
    }

    /// CRT composition: maps per-limb residues back to the unique value in
    /// `[0, Q)`. Garner's mixed-radix algorithm — `O(l²)` single-word
    /// Barrett multiplications per call, no 128-bit modular reduction.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the limb count (callers pass
    /// buffers shaped by this basis).
    pub fn compose(&self, residues: &[u64]) -> u128 {
        let l = self.moduli.len();
        assert_eq!(residues.len(), l, "residue count != limb count");
        // Mixed-radix digits: y_j = (…((x_j − y_0)·q_0⁻¹ − y_1)·q_1⁻¹ …).
        let mut y = [0u64; MAX_RNS_LIMBS];
        y[0] = residues[0];
        for j in 1..l {
            let qj = &self.moduli[j];
            let mut t = residues[j];
            for (&yi, &inv) in y[..j].iter().zip(&self.inv[j]) {
                t = qj.mul_mod(qj.sub_mod(t, qj.reduce(yi)), inv);
            }
            y[j] = t;
        }
        // Horner over the mixed radix: v = y_0 + q_0·(y_1 + q_1·(y_2 + …)).
        let mut v: u128 = y[l - 1] as u128;
        for i in (0..l - 1).rev() {
            v = v * self.moduli[i].value() as u128 + y[i] as u128;
        }
        v
    }

    /// CRT decomposition of `v < Q` into per-limb residues (Barrett per
    /// limb), writing into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the limb count.
    pub fn decompose_into(&self, v: u128, out: &mut [u64]) {
        assert_eq!(out.len(), self.moduli.len(), "output count != limb count");
        debug_assert!(v < self.big_q);
        for (o, q) in out.iter_mut().zip(&self.moduli) {
            *o = q.reduce_u128(v);
        }
    }

    /// Allocating variant of [`CrtBasis::decompose_into`].
    pub fn decompose(&self, v: u128) -> Vec<u64> {
        let mut out = vec![0u64; self.moduli.len()];
        self.decompose_into(v, &mut out);
        out
    }
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with `a*x + b*y = g`.
pub fn extended_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = extended_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let modulus = match Modulus::new(n) {
        Ok(m) => m,
        // n >= 2^62: fall back to u128 arithmetic.
        Err(_) => return is_prime_u128(n),
    };
    let d = n - 1;
    let s = d.trailing_zeros();
    let d = d >> s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = modulus.pow_mod(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = modulus.mul_mod(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn is_prime_u128(n: u64) -> bool {
    let n128 = n as u128;
    let mul = |a: u128, b: u128| (a * b) % n128;
    let pow = |mut b: u128, mut e: u128| {
        let mut acc = 1u128;
        while e > 0 {
            if e & 1 == 1 {
                acc = mul(acc, b);
            }
            b = mul(b, b);
            e >>= 1;
        }
        acc
    };
    let d = n - 1;
    let s = d.trailing_zeros();
    let d = (d >> s) as u128;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow(a as u128, d);
        if x == 1 || x == (n - 1) as u128 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul(x, x);
            if x == (n - 1) as u128 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the largest prime `p < 2^bits` with `p ≡ 1 (mod 2n)`, as required
/// for negacyclic NTT over `Z_p[x]/(x^n + 1)`.
///
/// # Errors
///
/// Returns [`Error::InvalidModulus`] for a bit width outside
/// `2..=`[`MAX_NTT_MODULUS_BITS`], and [`Error::NoNttPrime`] if no such
/// prime exists below `2^bits` (possible only for tiny `bits`).
pub fn generate_ntt_prime(bits: u32, n: usize) -> Result<u64> {
    assert!(
        n.is_power_of_two(),
        "polynomial degree must be a power of 2"
    );
    generate_prime_congruent(bits, 2 * n as u64).map_err(|e| match e {
        // Keep the width rejection typed; only "no prime found" is
        // rephrased in terms of the NTT degree.
        Error::InvalidModulus(v) => Error::InvalidModulus(v),
        _ => Error::NoNttPrime { bits, n },
    })
}

/// Finds the largest prime `p < 2^bits` with `p ≡ 1 (mod step)`.
///
/// Used both for plain NTT primes (`step = 2n`) and for ciphertext moduli
/// with the Gazelle-style congruence `q ≡ 1 (mod 2n·t)`: with
/// `q mod t = 1`, the `(q mod t)·⌊m·p/t⌋` rounding term of BFV plaintext
/// multiplication collapses to a negligible additive, which is the regime
/// the paper's Table III noise model describes.
///
/// # Errors
///
/// Returns [`Error::InvalidModulus`] for a bit-width request outside
/// `2..=`[`MAX_NTT_MODULUS_BITS`] (generated primes feed NTT tables, which
/// cap limbs at `q < 2^61` for lazy-butterfly headroom), and
/// [`Error::NoNttPrime`] if no such prime exists below `2^bits`.
pub fn generate_prime_congruent(bits: u32, step: u64) -> Result<u64> {
    if !(2..=MAX_NTT_MODULUS_BITS).contains(&bits) {
        // Report the smallest value of the requested width, so the error
        // names a concrete out-of-range modulus rather than a bit count.
        let witness = if bits >= 64 {
            u64::MAX
        } else {
            1u64 << bits.saturating_sub(1)
        };
        return Err(Error::InvalidModulus(witness));
    }
    let n_hint = (step / 2).max(1) as usize;
    if step >= 1u64 << bits {
        return Err(Error::NoNttPrime { bits, n: n_hint });
    }
    // Largest candidate of the form k*step + 1 strictly below 2^bits.
    let top = (1u64 << bits) - 1;
    let mut candidate = top - ((top - 1) % step);
    while candidate > step {
        if candidate >> (bits - 1) == 1 && is_prime(candidate) {
            return Ok(candidate);
        }
        candidate -= step;
    }
    Err(Error::NoNttPrime { bits, n: n_hint })
}

/// Finds several distinct primes `p < 2^bits` with `p ≡ 1 (mod step)`,
/// largest first — the pool generator behind fully congruent multi-limb
/// chains (`step = 2n·t` keeps every chain prefix `≡ 1 (mod t)`).
///
/// # Errors
///
/// Returns [`Error::NoNttPrime`] if fewer than `count` such primes exist
/// at this size (congruent progressions get sparse fast; callers fall back
/// to plain NTT primes).
pub fn generate_primes_congruent(bits: u32, step: u64, count: usize) -> Result<Vec<u64>> {
    let n_hint = (step / 2).max(1) as usize;
    let mut primes = Vec::with_capacity(count);
    let mut candidate = generate_prime_congruent(bits, step)?;
    primes.push(candidate);
    while primes.len() < count {
        if candidate <= step {
            return Err(Error::NoNttPrime { bits, n: n_hint });
        }
        candidate -= step;
        if candidate >> (bits - 1) != 1 {
            // Left the size class: no further candidate can qualify.
            return Err(Error::NoNttPrime { bits, n: n_hint });
        }
        if is_prime(candidate) {
            primes.push(candidate);
        }
    }
    Ok(primes)
}

/// Finds several distinct NTT primes of the given size (used for sweeps).
///
/// # Errors
///
/// Returns [`Error::NoNttPrime`] if fewer than `count` primes exist.
pub fn generate_ntt_primes(bits: u32, n: usize, count: usize) -> Result<Vec<u64>> {
    let m = 2 * n as u64;
    let mut primes = Vec::with_capacity(count);
    let mut candidate = generate_ntt_prime(bits, n)?;
    primes.push(candidate);
    while primes.len() < count {
        if candidate <= m {
            return Err(Error::NoNttPrime { bits, n });
        }
        candidate -= m;
        if candidate >> (bits - 1) == 1 && is_prime(candidate) {
            primes.push(candidate);
        }
    }
    Ok(primes)
}

/// Finds a primitive `2n`-th root of unity modulo the prime `q`
/// (requires `q ≡ 1 mod 2n` and `n` a power of two).
///
/// Because `n` is a power of two, `ψ` is a primitive `2n`-th root iff
/// `ψ^n ≡ -1`, which we test directly; candidates are drawn as
/// `x^((q-1)/2n)` for successive `x`.
///
/// # Errors
///
/// Returns [`Error::NoPrimitiveRoot`] if `q ≢ 1 (mod 2n)`.
pub fn primitive_root_2n(q: &Modulus, n: usize) -> Result<u64> {
    let m = 2 * n as u64;
    if !(q.value() - 1).is_multiple_of(m) {
        return Err(Error::NoPrimitiveRoot {
            modulus: q.value(),
            order: m,
        });
    }
    let exp = (q.value() - 1) / m;
    let minus_one = q.value() - 1;
    for x in 2..q.value() {
        let psi = q.pow_mod(x, exp);
        if q.pow_mod(psi, n as u64) == minus_one {
            return Ok(psi);
        }
    }
    Err(Error::NoPrimitiveRoot {
        modulus: q.value(),
        order: m,
    })
}

/// Reverses the low `bits` bits of `x` (used for NTT index scrambling).
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_rejects_out_of_range() {
        assert!(Modulus::new(0).is_err());
        assert!(Modulus::new(1).is_err());
        assert!(Modulus::new(1 << 62).is_err());
        assert!(Modulus::new((1 << 62) - 1).is_ok());
    }

    #[test]
    fn barrett_matches_u128_remainder() {
        let q = Modulus::new(0x3fff_ffff_0000_0001).unwrap();
        let pairs = [
            (0u64, 0u64),
            (1, 1),
            (q.value() - 1, q.value() - 1),
            (123_456_789, 987_654_321),
            (q.value() / 2, q.value() / 3),
        ];
        for (a, b) in pairs {
            let expect = ((a as u128 * b as u128) % q.value() as u128) as u64;
            assert_eq!(q.mul_mod(a, b), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn barrett_reduce_handles_max_product() {
        let q = Modulus::new((1u64 << 62) - 57).unwrap(); // 2^62 - 57 is prime-ish size
        let a = q.value() - 1;
        let x = a as u128 * a as u128;
        assert_eq!(q.reduce_u128(x), (x % q.value() as u128) as u64);
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let q = Modulus::new(65537).unwrap();
        for a in [0u64, 1, 2, 65535, 65536] {
            for b in [0u64, 1, 32768, 65536] {
                let s = q.add_mod(a, b);
                assert_eq!(q.sub_mod(s, b), a);
            }
            assert_eq!(q.add_mod(a, q.neg_mod(a)), 0);
        }
    }

    #[test]
    fn pow_and_inverse() {
        let q = Modulus::new(65537).unwrap();
        assert_eq!(q.pow_mod(3, 65536), 1); // Fermat
        let inv = q.inv_mod(12345).unwrap();
        assert_eq!(q.mul_mod(12345, inv), 1);
        let q2 = Modulus::new(15).unwrap();
        assert!(q2.inv_mod(5).is_err());
    }

    #[test]
    fn center_and_from_signed() {
        let q = Modulus::new(17).unwrap();
        assert_eq!(q.center(0), 0);
        assert_eq!(q.center(8), 8);
        assert_eq!(q.center(9), -8);
        assert_eq!(q.center(16), -1);
        assert_eq!(q.from_signed(-1), 16);
        assert_eq!(q.from_signed(-17), 0);
        assert_eq!(q.from_signed(35), 1);
    }

    #[test]
    fn shoup_matches_barrett() {
        let q = Modulus::new(0x0fff_ffff_ff00_0001).unwrap();
        let w = 0x0123_4567_89ab_cdef % q.value();
        let pre = ShoupPrecomp::new(w, &q);
        for x in [0u64, 1, 2, q.value() - 1, q.value() / 2, 42] {
            assert_eq!(pre.mul(x, &q), q.mul_mod(x, w));
            let lazy = pre.mul_lazy(x, &q);
            assert!(lazy < 2 * q.value());
            assert_eq!(lazy % q.value(), q.mul_mod(x, w));
        }
    }

    #[test]
    fn mulhi_u128_against_known_values() {
        assert_eq!(mulhi_u128(0, u128::MAX), 0);
        assert_eq!(mulhi_u128(u128::MAX, u128::MAX), u128::MAX - 1);
        assert_eq!(mulhi_u128(1 << 127, 2), 1);
        // (2^64)*(2^64) = 2^128 -> high half is exactly 1.
        assert_eq!(mulhi_u128(1 << 64, 1 << 64), 1);
    }

    #[test]
    fn miller_rabin_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(65537));
        assert!(is_prime(0xffff_ffff_ffff_ffc5)); // largest prime < 2^64
        assert!(!is_prime(0));
        assert!(!is_prime(1));
        assert!(!is_prime(65536));
        assert!(!is_prime(3215031751)); // strong pseudoprime to bases 2,3,5,7
    }

    #[test]
    fn ntt_prime_generation() {
        for (bits, n) in [(20u32, 1024usize), (30, 4096), (54, 4096), (60, 8192)] {
            let p = generate_ntt_prime(bits, n).unwrap();
            assert!(is_prime(p));
            assert_eq!(p % (2 * n as u64), 1);
            assert_eq!(64 - p.leading_zeros(), bits);
        }
    }

    #[test]
    fn prime_generation_rejects_overwide_ntt_limbs() {
        // Requests past the 61-bit lazy-butterfly cap fail typed, not with
        // a panic (and not with a misleading "no prime found").
        for bits in [0u32, 1, 62, 63, 64, 100] {
            assert!(
                matches!(
                    generate_prime_congruent(bits, 8192),
                    Err(Error::InvalidModulus(_))
                ),
                "bits = {bits}"
            );
        }
        assert!(matches!(
            generate_ntt_prime(62, 4096),
            Err(Error::InvalidModulus(_))
        ));
        // 61 bits is the widest admissible NTT limb and still works.
        let p = generate_prime_congruent(61, 8192).unwrap();
        assert_eq!(64 - p.leading_zeros(), 61);
        assert!(is_prime(p));
    }

    #[test]
    fn multiple_ntt_primes_are_distinct() {
        let primes = generate_ntt_primes(40, 2048, 4).unwrap();
        assert_eq!(primes.len(), 4);
        let mut dedup = primes.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn primitive_root_has_order_2n() {
        let n = 1024usize;
        let p = generate_ntt_prime(30, n).unwrap();
        let q = Modulus::new(p).unwrap();
        let psi = primitive_root_2n(&q, n).unwrap();
        assert_eq!(q.pow_mod(psi, n as u64), p - 1);
        assert_eq!(q.pow_mod(psi, 2 * n as u64), 1);
    }

    #[test]
    fn crt_compose_decompose_roundtrip() {
        let moduli = [
            Modulus::new(generate_ntt_prime(30, 1024).unwrap()).unwrap(),
            Modulus::new(generate_ntt_prime(31, 1024).unwrap()).unwrap(),
            Modulus::new(generate_ntt_prime(36, 1024).unwrap()).unwrap(),
        ];
        let basis = CrtBasis::new(&moduli).unwrap();
        let q = basis.big_q();
        for v in [0u128, 1, 2, q / 2, q - 1, 0x1234_5678_9abc_def0] {
            let residues = basis.decompose(v);
            for (r, m) in residues.iter().zip(&moduli) {
                assert_eq!(*r as u128, v % m.value() as u128);
            }
            assert_eq!(basis.compose(&residues), v, "v = {v}");
        }
    }

    #[test]
    fn qhat_constants_interpolate_crt() {
        let moduli = [
            Modulus::new(generate_ntt_prime(30, 1024).unwrap()).unwrap(),
            Modulus::new(generate_ntt_prime(31, 1024).unwrap()).unwrap(),
            Modulus::new(generate_ntt_prime(36, 1024).unwrap()).unwrap(),
        ];
        let basis = CrtBasis::new(&moduli).unwrap();
        let v = basis.big_q() - 12345;
        let residues = basis.decompose(v);
        // v ≡ Σ_i q̂_i · [q̂_i^{-1}·v]_{q_i}  (mod q_k) for every plane k.
        for (k, qk) in moduli.iter().enumerate() {
            let mut acc = 0u64;
            for (i, qi) in moduli.iter().enumerate() {
                let norm = qi.mul_mod(residues[i], basis.qhat_inv(i));
                acc = qk.add_mod(acc, qk.mul_mod(qk.reduce(norm), basis.qhat_mod(i, k)));
            }
            assert_eq!(acc, residues[k], "plane {k}");
        }
        // q̂_i mod q_i is invertible and q̂_i·q̂_i^{-1} ≡ 1.
        for (i, qi) in moduli.iter().enumerate() {
            assert_eq!(qi.mul_mod(basis.qhat_mod(i, i), basis.qhat_inv(i)), 1);
        }
    }

    #[test]
    fn qhat_single_limb_is_trivial() {
        let q = Modulus::new(generate_ntt_prime(50, 2048).unwrap()).unwrap();
        let basis = CrtBasis::new(&[q]).unwrap();
        assert_eq!(basis.qhat_mod(0, 0), 1);
        assert_eq!(basis.qhat_inv(0), 1);
    }

    #[test]
    fn crt_single_limb_is_identity() {
        let q = Modulus::new(generate_ntt_prime(50, 2048).unwrap()).unwrap();
        let basis = CrtBasis::new(&[q]).unwrap();
        assert_eq!(basis.total_bits(), 50);
        assert_eq!(basis.compose(&[12345]), 12345);
        assert_eq!(basis.decompose(12345), vec![12345]);
    }

    #[test]
    fn crt_rejects_bad_bases() {
        assert!(matches!(
            CrtBasis::new(&[]),
            Err(Error::InvalidLimbCount { limbs: 0 })
        ));
        let q = Modulus::new(65537).unwrap();
        // Duplicate limbs share every factor: no Garner inverse exists.
        assert!(matches!(
            CrtBasis::new(&[q, q]),
            Err(Error::NotInvertible { .. })
        ));
        // Three 61-bit limbs overflow the u128 composition budget.
        let big = Modulus::new((1u64 << 61) - 1).unwrap();
        let big2 = Modulus::new((1u64 << 61) - 31).unwrap();
        let big3 = Modulus::new((1u64 << 61) - 129).unwrap();
        assert!(matches!(
            CrtBasis::new(&[big, big2, big3]),
            Err(Error::ModulusChainTooLarge { .. })
        ));
    }

    #[test]
    fn bit_reverse_is_involution() {
        for bits in [1u32, 3, 10] {
            for x in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
    }
}
