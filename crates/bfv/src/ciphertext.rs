//! BFV ciphertexts.

use crate::noise::NoiseEstimate;
use crate::params::BfvParams;
use crate::poly::{Poly, Representation};

/// A BFV ciphertext: a pair of polynomials in evaluation (NTT) form.
///
/// Cheetah keeps ciphertexts in the evaluation domain by default and only
/// drops to coefficient form inside `HE_Rotate`'s decomposition and at
/// decryption (§III-B "Polynomial Representations") — this type enforces
/// that convention.
///
/// Every ciphertext carries a live [`NoiseEstimate`] updated by each
/// operation, so the Table III model can be compared against measured noise
/// at any point.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    c0: Poly,
    c1: Poly,
    params: BfvParams,
    noise: NoiseEstimate,
}

impl Ciphertext {
    /// Assembles a ciphertext from its components. Both polynomials must be
    /// in evaluation form.
    ///
    /// # Panics
    ///
    /// Panics if either polynomial is in coefficient form or sizes mismatch.
    pub fn new(c0: Poly, c1: Poly, params: BfvParams, noise: NoiseEstimate) -> Self {
        assert_eq!(c0.representation(), Representation::Eval);
        assert_eq!(c1.representation(), Representation::Eval);
        assert_eq!(c0.len(), params.degree());
        assert_eq!(c1.len(), params.degree());
        Self {
            c0,
            c1,
            params,
            noise,
        }
    }

    /// An encryption of zero with zero noise (additive identity; useful as
    /// an accumulator seed). Marked transparent: it offers no security.
    pub fn transparent_zero(params: &BfvParams) -> Self {
        let n = params.degree();
        Self {
            c0: Poly::zero(n, Representation::Eval),
            c1: Poly::zero(n, Representation::Eval),
            params: params.clone(),
            noise: NoiseEstimate::zero(),
        }
    }

    /// First component.
    pub fn c0(&self) -> &Poly {
        &self.c0
    }

    /// Second component.
    pub fn c1(&self) -> &Poly {
        &self.c1
    }

    /// Mutable components (for the evaluator).
    pub(crate) fn parts_mut(&mut self) -> (&mut Poly, &mut Poly) {
        (&mut self.c0, &mut self.c1)
    }

    /// Consumes into components.
    pub fn into_parts(self) -> (Poly, Poly) {
        (self.c0, self.c1)
    }

    /// Copies another ciphertext's polynomials and noise into this one
    /// without reallocating — the hot-path replacement for `clone` when a
    /// reusable destination exists.
    ///
    /// # Panics
    ///
    /// Panics if the degrees differ (parameter sets are checked by the
    /// evaluator entry points).
    pub fn copy_from(&mut self, other: &Ciphertext) {
        self.c0.copy_from(&other.c0);
        self.c1.copy_from(&other.c1);
        self.noise = other.noise;
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// Current model-tracked noise estimate.
    pub fn noise(&self) -> &NoiseEstimate {
        &self.noise
    }

    /// Overwrites the tracked noise estimate (used by the evaluator).
    pub(crate) fn set_noise(&mut self, noise: NoiseEstimate) {
        self.noise = noise;
    }

    /// Remaining worst-case noise budget in bits (model, not measurement).
    pub fn budget_bits(&self) -> f64 {
        self.noise.budget_bits_worst(&self.params)
    }

    /// Serialized size in bytes (two polynomials of `n` 8-byte words) —
    /// used by the protocol layer for communication accounting.
    pub fn byte_size(&self) -> usize {
        2 * self.params.degree() * 8
    }
}

/// A windowed encryption: encryptions of `W^i · m` for
/// `i = 0..l_pt`, enabling low-noise plaintext multiplication by digit
/// decomposition (Gazelle's "plaintext windowing", modeled in Table III as
/// the `l_pt`/`W_dcmp` terms).
///
/// The client sends `l_pt` ciphertexts instead of one — compute and
/// bandwidth grow by `l_pt`, noise shrinks by `t/(l_pt·W)`.
#[derive(Debug, Clone)]
pub struct WindowedCiphertext {
    /// `cts[i]` encrypts `W^i · m (mod t)`.
    pub cts: Vec<Ciphertext>,
    /// The window base `W`.
    pub base: u64,
}

impl WindowedCiphertext {
    /// Number of windows (`l_pt`).
    pub fn levels(&self) -> usize {
        self.cts.len()
    }

    /// Total serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.cts.iter().map(Ciphertext::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_zero_has_no_noise() {
        let params = BfvParams::builder()
            .degree(1024)
            .cipher_bits(27)
            .plain_bits(16)
            .build()
            .unwrap();
        let z = Ciphertext::transparent_zero(&params);
        assert_eq!(z.noise().bound_log2, f64::NEG_INFINITY);
        assert!(z.budget_bits().is_infinite());
        assert_eq!(z.byte_size(), 2 * 1024 * 8);
    }
}
