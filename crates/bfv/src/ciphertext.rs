//! BFV ciphertexts.

use crate::noise::NoiseEstimate;
use crate::params::BfvParams;
use crate::poly::Representation;
use crate::rns::RnsPoly;

/// A BFV ciphertext: a pair of RNS polynomials in evaluation (NTT) form.
///
/// Cheetah keeps ciphertexts in the evaluation domain by default and only
/// drops to coefficient form inside `HE_Rotate`'s decomposition and at
/// decryption (§III-B "Polynomial Representations") — this type enforces
/// that convention.
///
/// Each component stores one limb plane per **live** prime of the
/// parameter set's [`crate::rns::ModulusChain`]: a ciphertext carries a
/// [`Ciphertext::level`] counting how many limbs
/// [`crate::Evaluator::mod_switch_to_next`] has dropped. Fresh encryptions
/// are level 0 (the full chain); every dropped limb shrinks the
/// ciphertext's storage, wire size, and the cost of every subsequent
/// operation. Operands of a binary operation must share a level — the
/// evaluator rejects mixed-level pairs with
/// [`crate::Error::LevelMismatch`].
///
/// Every ciphertext carries a live [`NoiseEstimate`] updated by each
/// operation, so the Table III model can be compared against measured noise
/// at any point.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    c0: RnsPoly,
    c1: RnsPoly,
    params: BfvParams,
    noise: NoiseEstimate,
}

impl Ciphertext {
    /// Assembles a ciphertext from its components, returning typed errors
    /// instead of panicking — the constructor for attacker-reachable
    /// boundaries (wire decoding validates shapes through here before any
    /// arithmetic runs). Both polynomials must be in evaluation form;
    /// their (shared) limb count may be any live prefix of the chain —
    /// `params.limbs()` planes is level 0, fewer is a deeper level.
    ///
    /// # Errors
    ///
    /// [`crate::Error::WrongRepresentation`] for coefficient-form
    /// components, [`crate::Error::ParameterMismatch`] for a foreign
    /// degree or mismatched component shapes,
    /// [`crate::Error::InvalidLevel`] for a limb count outside the
    /// chain's `1..=limbs`.
    pub fn try_new(
        c0: RnsPoly,
        c1: RnsPoly,
        params: BfvParams,
        noise: NoiseEstimate,
    ) -> crate::error::Result<Self> {
        c0.expect_repr(Representation::Eval)?;
        c1.expect_repr(Representation::Eval)?;
        if c0.degree() != params.degree()
            || c1.degree() != params.degree()
            || c0.limbs() != c1.limbs()
        {
            return Err(crate::error::Error::ParameterMismatch);
        }
        if c0.limbs() < 1 || c0.limbs() > params.limbs() {
            // A limb count past the chain implies a (nonsensical) negative
            // level; report the out-of-range level the count maps to.
            return Err(crate::error::Error::InvalidLevel {
                requested: params.limbs().saturating_sub(c0.limbs()),
                current: 0,
                max: params.max_level(),
            });
        }
        Ok(Self {
            c0,
            c1,
            params,
            noise,
        })
    }

    /// [`Ciphertext::try_new`] for trusted internal callers.
    ///
    /// # Panics
    ///
    /// Panics if either polynomial is in coefficient form or its shape does
    /// not match a live prefix of the parameter set's chain.
    pub fn new(c0: RnsPoly, c1: RnsPoly, params: BfvParams, noise: NoiseEstimate) -> Self {
        assert_eq!(c0.representation(), Representation::Eval);
        assert_eq!(c1.representation(), Representation::Eval);
        assert_eq!(c0.degree(), params.degree());
        assert_eq!(c1.degree(), params.degree());
        assert_eq!(c0.limbs(), c1.limbs());
        assert!(
            c0.limbs() >= 1 && c0.limbs() <= params.limbs(),
            "component limb count {} outside the chain's 1..={}",
            c0.limbs(),
            params.limbs()
        );
        Self {
            c0,
            c1,
            params,
            noise,
        }
    }

    /// An encryption of zero with zero noise (additive identity; useful as
    /// an accumulator seed) at level 0. Marked transparent: it offers no
    /// security.
    pub fn transparent_zero(params: &BfvParams) -> Self {
        Self::transparent_zero_at(params, 0)
    }

    /// [`Ciphertext::transparent_zero`] at an explicit level — the
    /// accumulator seed matching modulus-switched operands (binary
    /// operations require equal levels).
    ///
    /// # Panics
    ///
    /// Panics for a level past `params.max_level()`.
    pub fn transparent_zero_at(params: &BfvParams, level: usize) -> Self {
        Self {
            c0: RnsPoly::zero(params.chain_at(level), Representation::Eval),
            c1: RnsPoly::zero(params.chain_at(level), Representation::Eval),
            params: params.clone(),
            noise: NoiseEstimate::zero(),
        }
    }

    /// First component.
    pub fn c0(&self) -> &RnsPoly {
        &self.c0
    }

    /// Second component.
    pub fn c1(&self) -> &RnsPoly {
        &self.c1
    }

    /// Mutable components (for the evaluator).
    pub(crate) fn parts_mut(&mut self) -> (&mut RnsPoly, &mut RnsPoly) {
        (&mut self.c0, &mut self.c1)
    }

    /// Consumes into components.
    pub fn into_parts(self) -> (RnsPoly, RnsPoly) {
        (self.c0, self.c1)
    }

    /// Copies another ciphertext's polynomials and noise into this one
    /// without reallocating — the hot-path replacement for `clone` when a
    /// reusable destination exists.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ (parameter sets are checked by the
    /// evaluator entry points).
    pub fn copy_from(&mut self, other: &Ciphertext) {
        self.c0.copy_from(&other.c0);
        self.c1.copy_from(&other.c1);
        self.noise = other.noise;
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// Number of **live** RNS limbs per component (shrinks as limbs are
    /// dropped; alias of [`Ciphertext::live_limbs`]).
    pub fn limbs(&self) -> usize {
        self.c0.limbs()
    }

    /// Live limbs per component: `params.limbs() - level`.
    pub fn live_limbs(&self) -> usize {
        self.c0.limbs()
    }

    /// The ciphertext's level: how many limbs have been dropped from the
    /// chain (0 = fresh/full). Binary evaluator operations require equal
    /// levels; precomputations ([`crate::PreparedPlaintext`],
    /// [`crate::HoistedDecomposition`]) carry their own level alongside.
    pub fn level(&self) -> usize {
        self.params.limbs() - self.c0.limbs()
    }

    /// Resizes both components to `live` limb planes, reusing retained
    /// capacity (grown planes are zeroed, truncation keeps the live
    /// prefix). Evaluator plumbing for reusable output buffers whose level
    /// follows the operand's.
    pub(crate) fn resize_live_limbs(&mut self, live: usize) {
        self.c0.resize_limbs(live);
        self.c1.resize_limbs(live);
    }

    /// Current model-tracked noise estimate.
    pub fn noise(&self) -> &NoiseEstimate {
        &self.noise
    }

    /// Overwrites the tracked noise estimate (used by the evaluator).
    pub(crate) fn set_noise(&mut self, noise: NoiseEstimate) {
        self.noise = noise;
    }

    /// Remaining worst-case noise budget in bits (model, not measurement),
    /// against this ciphertext's own level ceiling `Q_ℓ/(2t)`.
    pub fn budget_bits(&self) -> f64 {
        self.noise.budget_bits_worst_at(&self.params, self.level())
    }

    /// Serialized size in bytes: two components of `live_limbs · n` 8-byte
    /// words each. Communication accounting in the protocol layer scales
    /// with the **live** limb count, so a modulus-switched ciphertext
    /// shrinks on the wire exactly as it does in memory.
    pub fn byte_size(&self) -> usize {
        2 * self.live_limbs() * self.params.degree() * 8
    }
}

/// A windowed encryption: encryptions of `W^i · m` for
/// `i = 0..l_pt`, enabling low-noise plaintext multiplication by digit
/// decomposition (Gazelle's "plaintext windowing", modeled in Table III as
/// the `l_pt`/`W_dcmp` terms).
///
/// The client sends `l_pt` ciphertexts instead of one — compute and
/// bandwidth grow by `l_pt`, noise shrinks by `t/(l_pt·W)`.
#[derive(Debug, Clone)]
pub struct WindowedCiphertext {
    /// `cts[i]` encrypts `W^i · m (mod t)`.
    pub cts: Vec<Ciphertext>,
    /// The window base `W`.
    pub base: u64,
}

impl WindowedCiphertext {
    /// Number of windows (`l_pt`).
    pub fn levels(&self) -> usize {
        self.cts.len()
    }

    /// Total serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.cts.iter().map(Ciphertext::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_zero_has_no_noise() {
        let params = BfvParams::builder()
            .degree(1024)
            .cipher_bits(27)
            .plain_bits(16)
            .build()
            .unwrap();
        let z = Ciphertext::transparent_zero(&params);
        assert_eq!(z.noise().bound_log2, f64::NEG_INFINITY);
        assert!(z.budget_bits().is_infinite());
        assert_eq!(z.byte_size(), 2 * 1024 * 8);
    }

    #[test]
    fn byte_size_scales_with_limb_count() {
        let p2 = BfvParams::preset_rns_2x30(4096).unwrap();
        let p3 = BfvParams::preset_rns_3x36(4096).unwrap();
        assert_eq!(
            Ciphertext::transparent_zero(&p2).byte_size(),
            2 * 2 * 4096 * 8
        );
        assert_eq!(
            Ciphertext::transparent_zero(&p3).byte_size(),
            2 * 3 * 4096 * 8
        );
    }
}
