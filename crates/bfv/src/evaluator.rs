//! Homomorphic evaluation: the three BFV operators of §III-B1, plus
//! modulus switching.
//!
//! * [`Evaluator::add`] — SIMD addition (noise adds);
//! * [`Evaluator::mul_plain`] / [`Evaluator::mul_plain_windowed`] — SIMD
//!   plaintext-ciphertext multiplication (noise multiplies by
//!   `≤ n·l_pt·W/2`);
//! * [`Evaluator::rotate_rows`] / [`Evaluator::rotate_columns`] — packed
//!   slot rotation via Galois automorphism + key switching with ciphertext
//!   decomposition (noise adds `l_ct·A·B·n/2`);
//! * [`Evaluator::mod_switch_to_next`] / [`Evaluator::mod_switch_to`] —
//!   drops live limbs of the RNS chain once the noise budget allows,
//!   shrinking every subsequent operation (and the wire format) to the
//!   live-limb count. Every operator here is **level-aware**: it runs over
//!   the live planes of its operands, demands equal operand levels
//!   ([`Error::LevelMismatch`] otherwise), and reusable outputs follow
//!   their operand's level.
//!
//! `HE_Rotate` is implemented as the paper's Lane datapath (Fig. 9c) with
//! RNS-native key switching: permute in the evaluation domain (free), INTT
//! the `c1` component, decompose **per limb** into
//! `l_ct = Σ_i ceil(log_A q_i)` digits (`[q̂_i^{-1}·c1]_{q_i}` split in
//! base `A`; one Barrett multiplication per residue, no CRT composition),
//! NTT each digit back, then `2·l_ct` pointwise multiplications against
//! the (limb, digit)-indexed key-switch pairs. NTT work is
//! `(l_ct + 1)·l_limbs` plane transforms — the counts the corrected
//! HE-PTune model charges (§IV-A).
//!
//! # Hoisting
//!
//! Rotating one ciphertext by many steps (conv tap sets, rotate-and-sum
//! reductions over a fixed input) shares all of the INTT + decompose + NTT
//! work: [`Evaluator::hoist`] performs it once, and
//! [`Evaluator::rotate_hoisted_into`] replays any number of rotations from
//! the cached evaluation-form digits — per extra rotation only the slot
//! permutations and `2·l_ct` multiply-accumulates remain. Correctness:
//! `φ_g` is a ring automorphism, so
//! `Σ_j φ_g(D_j(c1))·A^j·q̂_i·φ_g(s) = φ_g(c1·s)` even though digit
//! extraction itself does not commute with `φ_g`; the hoisted result is
//! not bit-identical to the non-hoisted one but decrypts identically with
//! the same noise bound.
//!
//! # The zero-allocation hot path
//!
//! Every operator comes in two forms:
//!
//! * an **in-place** form (`add_assign`, `sub_assign`, `negate_assign`,
//!   `mul_plain_assign`, `mul_plain_accumulate`, `mul_scalar_assign`,
//!   `add_plain_assign`, `apply_galois_into`, `rotate_rows_into`) that
//!   mutates caller-owned ciphertexts and draws any temporaries from a
//!   caller-owned [`Scratch`] pool — zero heap allocations at steady
//!   state (proved by the counting-allocator test in `tests/zero_alloc.rs`);
//! * the original **allocating** form, now a thin wrapper that clones the
//!   input (or leases the evaluator's internal scratch pool) and delegates
//!   to the in-place form, so both paths execute byte-identical kernels.
//!
//! The in-place family plus per-thread `Scratch` instances is what the
//! thread-parallel linear layers in `cheetah-core` are built on.
//!
//! Operation counters ([`OpCounts`]) record how many of each kernel ran —
//! atomically, so multi-threaded layer evaluation keeps exact accounting —
//! and the profiling harness and the Table IV count model can be validated
//! against the real engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::ciphertext::{Ciphertext, WindowedCiphertext};
use crate::encoder::Plaintext;
use crate::error::{Error, Result};
use crate::keys::{element_for_step, GaloisKeys};
use crate::noise::NoiseEstimate;
use crate::params::BfvParams;
use crate::poly::Representation;
use crate::rns::{digits_from_coeffs, RnsPoly};
use crate::scratch::Scratch;

/// Running kernel-invocation counters (per evaluator).
///
/// Counters are updated atomically, so no invocation is ever lost under
/// multi-threaded evaluation. `mul`, `rotate`, `ntt`, and `poly_mul` are
/// structural — identical for any thread count. `add` reflects the
/// accumulation *shape*: fused accumulators count one `HE_Add` per term
/// (including the first, onto a transparent zero), and chunked parallel
/// reduction adds one merge per extra chunk, so `add` can differ by
/// `chunks − 1` between thread counts (pinned down by
/// `crates/core/tests/parallel_equivalence.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `HE_Add` invocations (ct+ct or ct+pt).
    pub add: u64,
    /// `HE_Mult` invocations (one per plaintext digit — windowed
    /// multiplication counts `l_pt`).
    pub mul: u64,
    /// `HE_Rotate` invocations.
    pub rotate: u64,
    /// Forward + inverse NTT **plane transforms**: an RNS polynomial
    /// transform runs one `n`-point NTT per **live** limb plane and counts
    /// that many here, so multi-limb chains report their true NTT work
    /// (the seed-era structural count under-reported it by a factor of
    /// `l_limbs`) and modulus-switched ciphertexts report their reduced
    /// work. One `HE_Rotate` at level `ℓ` contributes
    /// `(l_ct(ℓ) + 1)·live_limbs`; a hoisted rotation set contributes that
    /// once for the whole set.
    pub ntt: u64,
    /// Pointwise polynomial multiplications (2 per `HE_Mult` digit,
    /// `2·l_ct(ℓ)` per rotate; each spans every live limb plane).
    pub poly_mul: u64,
    /// `HE_ModSwitch` invocations (one per dropped limb, whichever entry
    /// point dropped it).
    pub mod_switch: u64,
}

impl OpCounts {
    /// Component-wise difference (for scoped measurements).
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            add: self.add - earlier.add,
            mul: self.mul - earlier.mul,
            rotate: self.rotate - earlier.rotate,
            ntt: self.ntt - earlier.ntt,
            poly_mul: self.poly_mul - earlier.poly_mul,
            mod_switch: self.mod_switch - earlier.mod_switch,
        }
    }
}

/// Doubling chains beyond this exponent cost more `add_mod`s than one
/// Barrett multiply saves, so the shift-add fast path only engages for
/// small exponents (the regime power-of-two quantized weights live in).
/// Exactly `2^POW2_CHAIN_MAX_EXP` still takes the chain; `2^(max+1)` falls
/// back to the generic Barrett path, bit-identically (boundary pinned by
/// `tests/pow2_mul_plain.rs`).
pub const POW2_CHAIN_MAX_EXP: u32 = 8;

/// Marker that a prepared plaintext is the uniform scalar `±2^exp` across
/// every slot: its centered encoding is a single coefficient `±2^exp` at
/// index 0, whose evaluation form is that constant in every NTT position.
/// `mul_plain` with such a plaintext is replaced by per-limb-plane doubling
/// chains (`exp` conditional-subtract additions, plus one negation for the
/// negative sign) instead of generic Barrett pointwise multiplies. Because
/// `add_mod`/`neg_mod`/`mul_mod` all return the canonical residue in
/// `[0, q)`, the chain lands on exactly the same representative — the fast
/// path is bit-identical to the generic path, not merely congruent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pow2Scalar {
    /// The plaintext multiplies every slot by `2^exp`.
    pub exp: u32,
    /// Whether the scalar is negated (`-2^exp`).
    pub negative: bool,
}

/// Detects the shift-add fast-path shape in a centered coefficient vector:
/// exactly one nonzero coefficient, at index 0, whose magnitude is a power
/// of two no larger than `2^POW2_CHAIN_MAX_EXP`. A uniform slot vector
/// batch-encodes to exactly this shape (inverse NTT of a constant vector),
/// so power-of-two scalar masks qualify; anything else stays on the
/// generic Barrett path.
fn pow2_scalar_of(centered: &[i64]) -> Option<Pow2Scalar> {
    let (first, rest) = centered.split_first()?;
    if rest.iter().any(|&c| c != 0) {
        return None;
    }
    let mag = first.unsigned_abs();
    if mag == 0 || !mag.is_power_of_two() || mag.trailing_zeros() > POW2_CHAIN_MAX_EXP {
        return None;
    }
    Some(Pow2Scalar {
        exp: mag.trailing_zeros(),
        negative: *first < 0,
    })
}

/// A plaintext pre-lifted to `R_Q` (one plane per live limb of its level)
/// and NTT-transformed, ready for repeated multiplication (exposes the
/// intermediate per C-INTERMEDIATE; weight polynomials are reused across
/// many ciphertexts in a conv layer).
///
/// Carries the level it was prepared at. Because limb planes are
/// independent, a preparation at level `ℓ` serves any ciphertext at level
/// `ℓ` **or deeper** — the evaluator reads the live-plane prefix and
/// ignores the surplus. A ciphertext *shallower* than the preparation is
/// rejected with [`Error::LevelMismatch`] (the dropped planes cannot be
/// regrown). Level-0 preparations (the default) therefore work everywhere.
#[derive(Debug, Clone)]
pub struct PreparedPlaintext {
    /// Evaluation-form RNS polynomial (centered lift of the mod-`t`
    /// coefficients into every live limb).
    poly: RnsPoly,
    /// `||pt||_∞` of the centered coefficients (drives noise growth).
    inf_norm: u64,
    /// Level the plaintext was prepared at (0 = full chain).
    level: usize,
    /// Set when the plaintext is a uniform `±2^exp` scalar with a small
    /// exponent; `mul_plain` then takes the shift-add fast path.
    pow2: Option<Pow2Scalar>,
}

impl PreparedPlaintext {
    /// The evaluation-form polynomial.
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// Centered infinity norm of the plaintext.
    pub fn inf_norm(&self) -> u64 {
        self.inf_norm
    }

    /// Level this plaintext was prepared at; usable for ciphertexts at
    /// this level or deeper.
    pub fn level(&self) -> usize {
        self.level
    }

    /// `Some` iff this plaintext is a uniform `±2^exp` scalar that
    /// `mul_plain` will evaluate with doubling chains instead of Barrett
    /// multiplies (bit-identical either way).
    pub fn pow2_scalar(&self) -> Option<Pow2Scalar> {
        self.pow2
    }

    /// Strips the pow2 fast-path marker, forcing the generic Barrett path.
    /// A testing hook: the bit-identity pins multiply by the same prepared
    /// plaintext with and without the marker and compare raw ciphertexts.
    pub fn without_pow2(mut self) -> Self {
        self.pow2 = None;
        self
    }
}

/// The rotation-invariant precomputation of `HE_Rotate` for one
/// ciphertext: the evaluation-form per-limb digit decomposition of its
/// `c1` component (see [`Evaluator::hoist`]).
///
/// Read-only once built, so one instance can be shared across worker
/// threads replaying different rotation steps of the same set.
#[derive(Debug, Clone)]
pub struct HoistedDecomposition {
    params: BfvParams,
    /// Evaluation-form digit polynomials, limb-major (matching
    /// [`crate::keys::GaloisKey::pairs`]).
    digits: Vec<RnsPoly>,
    /// Level of the source ciphertext: the digits cover its live limbs
    /// only, so a replay requires the exact same level.
    level: usize,
    /// Sampled fingerprint of the source `c1`, so a replay against the
    /// wrong (or since-mutated) ciphertext fails loudly instead of
    /// splicing foreign key-switch digits onto an unrelated `c0`.
    source_tag: u64,
}

impl HoistedDecomposition {
    /// An empty decomposition for the parameter set; fill it with
    /// [`Evaluator::hoist_into`]. Digit storage is allocated on first use
    /// and recycled afterwards.
    pub fn empty(params: &BfvParams) -> Self {
        Self {
            params: params.clone(),
            digits: Vec::new(),
            level: 0,
            source_tag: 0,
        }
    }

    /// Number of cached digit polynomials (`l_ct` of the source's level,
    /// once filled).
    pub fn levels(&self) -> usize {
        self.digits.len()
    }

    /// Level of the ciphertext this decomposition was hoisted from;
    /// replays require an operand at exactly this level.
    pub fn level(&self) -> usize {
        self.level
    }
}

/// Strided FNV-1a sample of a polynomial's residues (~64 probes): cheap
/// enough for every hoisted replay, and ciphertext components are
/// uniform-looking, so any two distinct ones collide with negligible
/// probability.
fn source_fingerprint(p: &RnsPoly) -> u64 {
    let data = p.data();
    let stride = (data.len() / 64).max(1);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |w: u64| {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(data.len() as u64);
    for &w in data.iter().step_by(stride) {
        mix(w);
    }
    mix(data.last().copied().unwrap_or(0));
    h
}

/// The homomorphic evaluator.
///
/// Shared-reference (`&Evaluator`) use is thread-safe: kernel counters are
/// atomic and the internal scratch pool is mutex-guarded. For contention-free
/// parallelism, give each worker thread its own [`Scratch`] and call the
/// `*_assign` / `*_into` operations directly.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::{BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator};
///
/// # fn main() -> Result<(), cheetah_bfv::Error> {
/// let params = BfvParams::builder().degree(4096).build()?;
/// let mut keygen = KeyGenerator::from_seed(params.clone(), 1);
/// let pk = keygen.public_key()?;
/// let keys = keygen.galois_keys_for_steps(&[1])?;
/// let encoder = BatchEncoder::new(params.clone());
/// let mut encryptor = Encryptor::from_public_key(pk, 2);
/// let decryptor = Decryptor::new(keygen.secret_key().clone());
/// let evaluator = Evaluator::new(params);
///
/// let ct = encryptor.encrypt(&encoder.encode(&[10, 20, 30])?)?;
/// let rotated = evaluator.rotate_rows(&ct, 1, &keys)?;
/// let out = encoder.decode(&decryptor.decrypt(&rotated)?);
/// assert_eq!(out[0], 20); // left rotation by 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Evaluator {
    params: BfvParams,
    add_count: AtomicU64,
    mul_count: AtomicU64,
    rotate_count: AtomicU64,
    ntt_count: AtomicU64,
    poly_mul_count: AtomicU64,
    mod_switch_count: AtomicU64,
    /// Backs the allocating wrapper API; the in-place API takes a caller
    /// scratch instead so worker threads never contend here.
    scratch: Mutex<Scratch>,
}

impl Evaluator {
    /// Creates an evaluator for the parameter set.
    pub fn new(params: BfvParams) -> Self {
        // Hybrid (special-prime) chains need one extra scratch plane: the
        // key-switch accumulators live on `P·Q_ℓ` (live + 1 planes).
        let (n, limbs) = (params.degree(), params.scratch_limbs());
        Self {
            params,
            add_count: AtomicU64::new(0),
            mul_count: AtomicU64::new(0),
            rotate_count: AtomicU64::new(0),
            ntt_count: AtomicU64::new(0),
            poly_mul_count: AtomicU64::new(0),
            mod_switch_count: AtomicU64::new(0),
            scratch: Mutex::new(Scratch::new(n, limbs)),
        }
    }

    /// Parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// A fresh scratch pool sized for this evaluator's parameters (one per
    /// worker thread is the intended pattern).
    pub fn new_scratch(&self) -> Scratch {
        Scratch::new(self.params.degree(), self.params.scratch_limbs())
    }

    /// Snapshot of the kernel counters.
    pub fn op_counts(&self) -> OpCounts {
        OpCounts {
            add: self.add_count.load(Ordering::Relaxed),
            mul: self.mul_count.load(Ordering::Relaxed),
            rotate: self.rotate_count.load(Ordering::Relaxed),
            ntt: self.ntt_count.load(Ordering::Relaxed),
            poly_mul: self.poly_mul_count.load(Ordering::Relaxed),
            mod_switch: self.mod_switch_count.load(Ordering::Relaxed),
        }
    }

    /// Resets the kernel counters.
    pub fn reset_op_counts(&self) {
        self.add_count.store(0, Ordering::Relaxed);
        self.mul_count.store(0, Ordering::Relaxed);
        self.rotate_count.store(0, Ordering::Relaxed);
        self.ntt_count.store(0, Ordering::Relaxed);
        self.poly_mul_count.store(0, Ordering::Relaxed);
        self.mod_switch_count.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn count(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// Locks the internal scratch pool. A poisoned mutex only means some
    /// other thread panicked while holding the lease; pooled buffers carry
    /// no invariants beyond shape (contents are dirty by contract), so the
    /// lock is recovered rather than propagating the panic through every
    /// public entry point.
    fn scratch_guard(&self) -> std::sync::MutexGuard<'_, Scratch> {
        self.scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Tags a [`Error::MissingGaloisKey`] from an element lookup with the
    /// rotation step that needed it, so protocol-level callers see the
    /// step they asked for rather than a bare Galois element.
    fn attach_step(e: Error, steps: i64) -> Error {
        match e {
            Error::MissingGaloisKey {
                element,
                step: None,
            } => Error::MissingGaloisKey {
                element,
                step: Some(steps),
            },
            other => other,
        }
    }

    /// Errors unless both operands live at the same level.
    #[inline]
    fn check_levels(expected: usize, found: usize) -> Result<()> {
        if expected == found {
            Ok(())
        } else {
            Err(Error::LevelMismatch { expected, found })
        }
    }

    /// Errors unless a prepared plaintext's level serves a ciphertext at
    /// `ct_level` (preparations apply at their own level or deeper).
    #[inline]
    fn check_prepared(pt: &PreparedPlaintext, ct_level: usize) -> Result<()> {
        if pt.level <= ct_level {
            Ok(())
        } else {
            Err(Error::LevelMismatch {
                expected: ct_level,
                found: pt.level,
            })
        }
    }

    /// Resizes a reusable output ciphertext to `live` planes (retained
    /// capacity makes this allocation-free at steady state).
    #[inline]
    fn ensure_live(out: &mut Ciphertext, live: usize) {
        out.resize_live_limbs(live);
    }

    // ------------------------------------------------------------------
    // In-place operations (the zero-allocation hot path)
    // ------------------------------------------------------------------

    /// `HE_Add` in place: `a += b` slot-wise. No allocation.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts,
    /// [`Error::LevelMismatch`] when the operands' levels differ.
    pub fn add_assign(&self, a: &mut Ciphertext, b: &Ciphertext) -> Result<()> {
        self.params.check_same(a.params())?;
        self.params.check_same(b.params())?;
        Self::check_levels(a.level(), b.level())?;
        let chain = self.params.chain_at(a.level());
        let noise = a.noise().add(b.noise());
        {
            let (c0, c1) = a.parts_mut();
            c0.add_assign(b.c0(), chain)?;
            c1.add_assign(b.c1(), chain)?;
        }
        a.set_noise(noise);
        Self::count(&self.add_count, 1);
        Ok(())
    }

    /// `a -= b` slot-wise, in place. No allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::add_assign`].
    pub fn sub_assign(&self, a: &mut Ciphertext, b: &Ciphertext) -> Result<()> {
        self.params.check_same(a.params())?;
        self.params.check_same(b.params())?;
        Self::check_levels(a.level(), b.level())?;
        let chain = self.params.chain_at(a.level());
        let noise = a.noise().add(b.noise());
        {
            let (c0, c1) = a.parts_mut();
            c0.sub_assign(b.c0(), chain)?;
            c1.sub_assign(b.c1(), chain)?;
        }
        a.set_noise(noise);
        Self::count(&self.add_count, 1);
        Ok(())
    }

    /// Slot-wise negation in place. No allocation.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn negate_assign(&self, a: &mut Ciphertext) -> Result<()> {
        self.params.check_same(a.params())?;
        let chain = self.params.chain_at(a.level());
        let (c0, c1) = a.parts_mut();
        c0.negate(chain);
        c1.negate(chain);
        Ok(())
    }

    /// Adds a plaintext slot-wise in place: `a += Δ_ℓ·pt`, lifting the
    /// plaintext into `a`'s live planes through a scratch polynomial. No
    /// allocation at steady state.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign operands.
    pub fn add_plain_assign(
        &self,
        a: &mut Ciphertext,
        pt: &Plaintext,
        scratch: &mut Scratch,
    ) -> Result<()> {
        self.params.check_same(a.params())?;
        self.params.check_same(pt.params())?;
        let level = a.level();
        let live = a.live_limbs();
        let chain = self.params.chain_at(level);
        let mut dm = scratch.take_poly_limbs(live, Representation::Coeff);
        self.params.lift_scaled_into(pt.poly().data(), &mut dm);
        dm.to_eval(chain);
        Self::count(&self.ntt_count, live as u64);
        let noise = a.noise().add_plain(pt.inf_norm());
        let r = a.parts_mut().0.add_assign(&dm, chain);
        scratch.put_poly(dm);
        r?;
        a.set_noise(noise);
        Self::count(&self.add_count, 1);
        Ok(())
    }

    /// `HE_Mult` (pt-ct) in place: `a ⊙= pt`, over `a`'s live planes. No
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts,
    /// [`Error::LevelMismatch`] when the plaintext was prepared deeper
    /// than the ciphertext.
    pub fn mul_plain_assign(&self, a: &mut Ciphertext, pt: &PreparedPlaintext) -> Result<()> {
        self.params.check_same(a.params())?;
        let level = a.level();
        Self::check_prepared(pt, level)?;
        let chain = self.params.chain_at(level);
        let noise = a
            .noise()
            .mul_plain_at(&self.params, level, 1, 2 * pt.inf_norm);
        {
            let (c0, c1) = a.parts_mut();
            // Shift-add fast path for uniform ±2^e plaintexts: doubling
            // chains land on the same canonical residues as the Barrett
            // multiplies, so noise and op accounting stay identical.
            if let Some(p2) = pt.pow2 {
                c0.mul_pow2(p2.exp, p2.negative, chain);
                c1.mul_pow2(p2.exp, p2.negative, chain);
            } else {
                c0.mul_assign_pointwise_prefix(&pt.poly, chain)?;
                c1.mul_assign_pointwise_prefix(&pt.poly, chain)?;
            }
        }
        a.set_noise(noise);
        Self::count(&self.mul_count, 1);
        Self::count(&self.poly_mul_count, 2);
        Ok(())
    }

    /// Fused multiply-accumulate: `acc += a ⊙ pt`, the inner loop of every
    /// rotate-mul-accumulate linear layer. Equivalent to `mul_plain` +
    /// `add` but with no intermediate ciphertext; counts one `HE_Mult`,
    /// one `HE_Add`, and two pointwise multiplications. No allocation.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts,
    /// [`Error::LevelMismatch`] when `acc` and `a` disagree on level or
    /// the plaintext was prepared deeper than the operands.
    pub fn mul_plain_accumulate(
        &self,
        acc: &mut Ciphertext,
        a: &Ciphertext,
        pt: &PreparedPlaintext,
    ) -> Result<()> {
        self.params.check_same(acc.params())?;
        self.params.check_same(a.params())?;
        let level = a.level();
        Self::check_levels(acc.level(), level)?;
        Self::check_prepared(pt, level)?;
        let chain = self.params.chain_at(level);
        let term = a
            .noise()
            .mul_plain_at(&self.params, level, 1, 2 * pt.inf_norm);
        let noise = acc.noise().add(&term);
        {
            let (c0, c1) = acc.parts_mut();
            if let Some(p2) = pt.pow2 {
                c0.fma_pow2_prefix(a.c0(), p2.exp, p2.negative, chain)?;
                c1.fma_pow2_prefix(a.c1(), p2.exp, p2.negative, chain)?;
            } else {
                c0.fma_pointwise_prefix(a.c0(), &pt.poly, chain)?;
                c1.fma_pointwise_prefix(a.c1(), &pt.poly, chain)?;
            }
        }
        acc.set_noise(noise);
        Self::count(&self.mul_count, 1);
        Self::count(&self.add_count, 1);
        Self::count(&self.poly_mul_count, 2);
        Ok(())
    }

    /// Multiplies every slot by a scalar constant, in place. No allocation.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn mul_scalar_assign(&self, a: &mut Ciphertext, c: u64) -> Result<()> {
        self.params.check_same(a.params())?;
        let level = a.level();
        let chain = self.params.chain_at(level);
        let t = self.params.plain_modulus();
        let c_red = t.reduce(c);
        let noise = a
            .noise()
            .mul_plain_at(&self.params, level, 1, 2 * c_red.max(1));
        {
            let (c0, c1) = a.parts_mut();
            // Small power-of-two scalars (e.g. the factored-out scale of a
            // pow2-quantized sparse layer) use the same doubling chains as
            // pow2 prepared plaintexts. Negative-centered scalars stay on
            // the generic path: the chain would multiply by the centered
            // representative instead of `c_red` and the bits would diverge.
            if let Some(p2) = pow2_scalar_of(&[t.center(c_red)]).filter(|p| !p.negative) {
                c0.mul_pow2(p2.exp, p2.negative, chain);
                c1.mul_pow2(p2.exp, p2.negative, chain);
            } else {
                c0.mul_scalar(c_red, chain);
                c1.mul_scalar(c_red, chain);
            }
        }
        a.set_noise(noise);
        Ok(())
    }

    /// Applies the Galois automorphism `x ↦ x^g` + key switching, writing
    /// into `out` and drawing all temporaries (the permuted `c1`, the
    /// `l_ct(ℓ)` decomposition digits) from `scratch`. `out` follows `a`'s
    /// level. Zero allocations at steady state (within one level).
    ///
    /// This is the full Lane datapath of Fig. 9c with RNS-native key
    /// switching over the **live** limbs only: permutation (free),
    /// INTT(c1), per-live-limb `q̂_i`-digit decomposition (limb-local
    /// `u64` arithmetic, full-chain normalizers so level-0 keys apply
    /// verbatim), `l_ct(ℓ)` digit NTTs, `2·l_ct(ℓ)` pointwise
    /// multiply-accumulates against the limb-major key-pair *prefix*.
    /// At a reduced level every stage shrinks: `(l_ct(ℓ) + 1)·live`
    /// NTT plane transforms instead of `(l_ct + 1)·limbs`.
    ///
    /// # Errors
    ///
    /// [`Error::MissingGaloisKey`] or [`Error::ParameterMismatch`].
    pub fn apply_galois_into(
        &self,
        out: &mut Ciphertext,
        a: &Ciphertext,
        g: u64,
        keys: &GaloisKeys,
        scratch: &mut Scratch,
    ) -> Result<()> {
        self.params.check_same(a.params())?;
        self.params.check_same(out.params())?;
        let key = keys.get(g)?;
        let level = a.level();
        let live = a.live_limbs();
        Self::ensure_live(out, live);

        // The permuted c1 lives in a leased scratch buffer; run the key
        // switch in a helper so every error path returns the lease to the
        // pool before propagating.
        let mut c1_g = scratch.take_poly_limbs(live, Representation::Eval);
        let switched = if self.params.has_special() {
            self.galois_key_switch_hybrid(out, a, key, &mut c1_g, scratch)
        } else {
            self.galois_key_switch(out, a, key, &mut c1_g, scratch)
        };
        scratch.put_poly(c1_g);
        switched?;

        if self.params.has_special() {
            // Hybrid bill: INTT(c1) over `live`, `live` digit NTTs of
            // `live + 1` planes, both accumulators INTT'd on the ks chain
            // and NTT'd back after the P-rescale: live² + 6·live + 2.
            let live = live as u64;
            Self::count(&self.ntt_count, live * live + 6 * live + 2);
            Self::count(&self.poly_mul_count, 2 * live);
        } else {
            let l_ct = self.params.l_ct_at(level) as u64;
            Self::count(&self.ntt_count, (l_ct + 1) * live as u64);
            Self::count(&self.poly_mul_count, 2 * l_ct);
        }
        Self::count(&self.rotate_count, 1);
        out.set_noise(a.noise().rotate_at(&self.params, level));
        Ok(())
    }

    /// The Lane datapath body of [`Evaluator::apply_galois_into`]:
    /// permute, INTT, per-live-limb decompose, key-switch
    /// multiply-accumulate against the key-pair prefix.
    fn galois_key_switch(
        &self,
        out: &mut Ciphertext,
        a: &Ciphertext,
        key: &crate::keys::GaloisKey,
        c1_g: &mut RnsPoly,
        scratch: &mut Scratch,
    ) -> Result<()> {
        let level = a.level();
        let live = a.live_limbs();
        // The *full* chain drives the decomposition: its q̂_i^{-1}
        // normalizers are what pair live-limb digits with level-0 keys.
        let chain = self.params.chain();
        let level_chain = self.params.chain_at(level);
        let perm = key.permutation();

        // 1. Permute both components in the evaluation domain (Swap
        //    stage): c0 straight into the output, c1 into scratch for
        //    decomposition (permute_from also stamps the Eval tag).
        c1_g.permute_from(a.c1(), perm);
        let (oc0, oc1) = out.parts_mut();
        oc0.permute_from(a.c0(), perm);
        // 2. INTT c1 for decomposition (one inverse pass per live plane).
        c1_g.to_coeff(chain);
        // 3. RNS-native decomposition over the live limbs: limb i's
        //    residues are normalized by the full-chain q̂_i^{-1} and split
        //    into base-A digits — never composed.
        let digits = scratch.digits_mut_limbs(self.params.l_ct_at(level), live);
        c1_g.rns_decompose_into(self.params.a_dcmp(), chain, digits)?;
        // 4. NTT each digit; multiply-accumulate against the (limb, digit)
        //    key pairs — the limb-major order means the live limbs' pairs
        //    are exactly the list's prefix, read over live planes only.
        oc1.fill_zero();
        oc1.set_representation(Representation::Eval);
        for (digit, (k0, k1)) in digits.iter_mut().zip(key.pairs()) {
            digit.to_eval(level_chain);
            oc0.fma_pointwise_prefix(digit, k0, level_chain)?;
            oc1.fma_pointwise_prefix(digit, k1, level_chain)?;
        }
        Ok(())
    }

    /// The hybrid `P·Q_ℓ` datapath body of [`Evaluator::apply_galois_into`]
    /// for special-prime parameter sets: permute, INTT, one **centered**
    /// digit per live limb lifted onto the key-switch chain
    /// `[q_0, …, q_{live−1}, P]`, multiply-accumulate against the
    /// `P`-scaled key pairs over `P·Q_ℓ`, then the exact rescale by `P`
    /// back onto the live data planes. Cuts the digit count from
    /// `l_ct(ℓ) = Σ_i ceil(log_A q_i)` to `live` — the special prime
    /// absorbs the key-noise bill the base split used to control.
    fn galois_key_switch_hybrid(
        &self,
        out: &mut Ciphertext,
        a: &Ciphertext,
        key: &crate::keys::GaloisKey,
        c1_g: &mut RnsPoly,
        scratch: &mut Scratch,
    ) -> Result<()> {
        let level = a.level();
        let live = a.live_limbs();
        let chain = self.params.chain();
        let level_chain = self.params.chain_at(level);
        let ks = self.params.ks_chain_at(level);
        let perm = key.permutation();

        // 1. Permute both components in the evaluation domain: c0 straight
        //    into the output, c1 into scratch for decomposition.
        c1_g.permute_from(a.c1(), perm);
        let (oc0, oc1) = out.parts_mut();
        oc0.permute_from(a.c0(), perm);
        // 2. INTT c1 (the full chain's tables drive the live prefix).
        c1_g.to_coeff(chain);
        // 3–5 run in a closure so every error path returns the
        //    accumulator leases to the pool before propagating.
        let mut acc0 = scratch.take_poly_limbs(live + 1, Representation::Eval);
        let mut acc1 = scratch.take_poly_limbs(live + 1, Representation::Eval);
        let mut body = || -> Result<()> {
            acc0.fill_zero();
            acc0.set_representation(Representation::Eval);
            acc1.fill_zero();
            acc1.set_representation(Representation::Eval);
            // 3. Decompose over the live limbs (full-chain q̂_i⁻¹
            //    normalizers pair level-ℓ digits with level-0 keys), NTT
            //    each digit on the key-switch chain, and accumulate
            //    against the key pairs' limb-major prefix — the special
            //    plane reads each key's *last* plane.
            let digits = scratch.digits_mut_limbs(live, live + 1);
            c1_g.hybrid_decompose_into(chain, ks, digits)?;
            for (digit, (k0, k1)) in digits.iter_mut().zip(key.pairs()) {
                digit.to_eval(ks);
                acc0.fma_pointwise_prefix_last(digit, k0, ks)?;
                acc1.fma_pointwise_prefix_last(digit, k1, ks)?;
            }
            // 4. Exact rescale by P: the special prime is the ks chain's
            //    last limb, so the rounded limb drop is exactly
            //    round(·/P) onto the live data planes.
            acc0.to_coeff(ks);
            acc1.to_coeff(ks);
            ks.mod_switch_in_place(&mut acc0)?;
            ks.mod_switch_in_place(&mut acc1)?;
            acc0.to_eval(level_chain);
            acc1.to_eval(level_chain);
            // 5. Fold into the permuted output.
            oc0.add_assign(&acc0, level_chain)?;
            oc1.copy_from(&acc1);
            Ok(())
        };
        let switched = body();
        scratch.put_poly(acc0);
        scratch.put_poly(acc1);
        switched
    }

    /// `HE_Rotate` into a caller-owned output ciphertext. Steps wrap
    /// around the row (`steps ≡ 0 (mod n/2)` degenerates to a copy), the
    /// same semantics as [`Evaluator::rotate_rows_composed`]. Zero
    /// allocations at steady state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::rotate_rows`].
    pub fn rotate_rows_into(
        &self,
        out: &mut Ciphertext,
        a: &Ciphertext,
        steps: i64,
        keys: &GaloisKeys,
        scratch: &mut Scratch,
    ) -> Result<()> {
        if steps.rem_euclid(self.params.row_size() as i64) == 0 {
            self.params.check_same(a.params())?;
            self.params.check_same(out.params())?;
            Self::ensure_live(out, a.live_limbs());
            out.copy_from(a);
            return Ok(());
        }
        let g = element_for_step(self.params.degree(), steps)?;
        self.apply_galois_into(out, a, g, keys, scratch)
            .map_err(|e| Self::attach_step(e, steps))
    }

    // ------------------------------------------------------------------
    // Modulus switching: limb dropping as a first-class primitive
    // ------------------------------------------------------------------

    /// `HE_ModSwitch` in place: drops `a`'s last live limb, rescaling the
    /// ciphertext from `Q_ℓ` to `Q_{ℓ+1} = Q_ℓ/q_drop` with the exact
    /// `round(q_drop⁻¹·…)` correction per remaining residue
    /// ([`crate::rns::ModulusChain::mod_switch_in_place`]). Noise divides
    /// by `q_drop` (plus a small rounding term —
    /// [`NoiseEstimate::mod_switch`]), the ceiling divides by the same
    /// factor, and **every subsequent operation gets cheaper**: rotations
    /// at the new level run `(l_ct(ℓ+1) + 1)·live` NTT plane transforms
    /// and `2·l_ct(ℓ+1)` pointwise multiplications, storage and wire size
    /// drop to `2·live·n·8` bytes.
    ///
    /// Costs `2·(2·live − 1)` NTT plane transforms (INTT every live plane,
    /// NTT back the survivors, per component). No allocation — the drop is
    /// a truncation of limb-major storage.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts,
    /// [`Error::InvalidLevel`] when `a` is already at the deepest level
    /// (one live limb).
    pub fn mod_switch_to_next_assign(&self, a: &mut Ciphertext) -> Result<()> {
        self.params.check_same(a.params())?;
        let level = a.level();
        if level >= self.params.max_level() {
            return Err(Error::InvalidLevel {
                requested: level + 1,
                current: level,
                max: self.params.max_level(),
            });
        }
        let chain = self.params.chain();
        let live = a.live_limbs();
        let noise = a.noise().mod_switch(&self.params, level);
        {
            let (c0, c1) = a.parts_mut();
            for comp in [c0, c1] {
                comp.to_coeff(chain);
                chain.mod_switch_in_place(comp)?;
                comp.to_eval(chain);
            }
        }
        a.set_noise(noise);
        Self::count(&self.ntt_count, 2 * (2 * live as u64 - 1));
        Self::count(&self.mod_switch_count, 1);
        Ok(())
    }

    /// `HE_ModSwitch` into a caller-owned output ciphertext (which follows
    /// `a`'s new level; retained capacity keeps this allocation-free at
    /// steady state).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::mod_switch_to_next_assign`].
    pub fn mod_switch_to_next_into(&self, out: &mut Ciphertext, a: &Ciphertext) -> Result<()> {
        self.params.check_same(a.params())?;
        self.params.check_same(out.params())?;
        Self::ensure_live(out, a.live_limbs());
        out.copy_from(a);
        self.mod_switch_to_next_assign(out)
    }

    /// Allocating `HE_ModSwitch`: returns `a` with its last live limb
    /// dropped.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::mod_switch_to_next_assign`].
    pub fn mod_switch_to_next(&self, a: &Ciphertext) -> Result<Ciphertext> {
        let mut out = a.clone();
        self.mod_switch_to_next_assign(&mut out)?;
        Ok(out)
    }

    /// Switches a ciphertext down to an exact target level (repeated
    /// [`Evaluator::mod_switch_to_next_assign`]; a no-op when already
    /// there). Pair with [`NoiseEstimate::recommended_level`] to drop as
    /// many limbs as the remaining noise budget allows.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidLevel`] when `level` is shallower than the
    /// ciphertext's current level (limbs cannot be re-grown) or past the
    /// chain's deepest level; [`Error::ParameterMismatch`] for foreign
    /// ciphertexts.
    pub fn mod_switch_to(&self, a: &Ciphertext, level: usize) -> Result<Ciphertext> {
        let mut out = a.clone();
        self.mod_switch_to_assign(&mut out, level)?;
        Ok(out)
    }

    /// In-place [`Evaluator::mod_switch_to`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::mod_switch_to`].
    pub fn mod_switch_to_assign(&self, a: &mut Ciphertext, level: usize) -> Result<()> {
        self.params.check_same(a.params())?;
        let current = a.level();
        if level < current || level > self.params.max_level() {
            return Err(Error::InvalidLevel {
                requested: level,
                current,
                max: self.params.max_level(),
            });
        }
        for _ in current..level {
            self.mod_switch_to_next_assign(a)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Hoisted rotation sets
    // ------------------------------------------------------------------

    /// Precomputes the rotation-invariant part of `HE_Rotate` for a
    /// ciphertext: INTT of `c1`, the per-limb digit decomposition, and the
    /// digit NTTs — the `(l_ct + 1)·l_limbs` plane transforms that
    /// otherwise repeat for every step of a rotation *set*.
    ///
    /// Pass the result to [`Evaluator::rotate_hoisted_into`] (with the
    /// *same* source ciphertext) for each step; each rotation then costs
    /// only slot permutations and `2·l_ct` multiply-accumulates.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for a foreign ciphertext.
    pub fn hoist(&self, a: &Ciphertext) -> Result<HoistedDecomposition> {
        let mut hoisted = HoistedDecomposition::empty(&self.params);
        let mut scratch = self.scratch_guard();
        self.hoist_into(&mut hoisted, a, &mut scratch)?;
        Ok(hoisted)
    }

    /// [`Evaluator::hoist`] into a reusable [`HoistedDecomposition`] (its
    /// digit storage is recycled; zero allocations at steady state), with
    /// the INTT temporary leased from `scratch`.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for a foreign ciphertext.
    pub fn hoist_into(
        &self,
        hoisted: &mut HoistedDecomposition,
        a: &Ciphertext,
        scratch: &mut Scratch,
    ) -> Result<()> {
        self.params.check_same(a.params())?;
        if self.params.has_special() {
            return self.hoist_into_hybrid(hoisted, a, scratch);
        }
        let level = a.level();
        let live = a.live_limbs();
        let chain = self.params.chain();
        let level_chain = self.params.chain_at(level);
        let l_ct = self.params.l_ct_at(level);
        hoisted.params = self.params.clone();
        hoisted.level = level;
        if hoisted.digits.len() != l_ct
            || hoisted
                .digits
                .first()
                .is_some_and(|d| d.limbs() != live || d.degree() != chain.degree())
        {
            hoisted.digits = vec![RnsPoly::zero(level_chain, Representation::Coeff); l_ct];
        }
        // Invalidate the tag up front: should any step below fail, the
        // stale digits must not pass the replay fingerprint check.
        hoisted.source_tag = 0;
        let mut c1 = scratch.take_poly_limbs(live, Representation::Eval);
        c1.copy_from(a.c1());
        c1.to_coeff(chain);
        let decomposed = c1.rns_decompose_into(self.params.a_dcmp(), chain, &mut hoisted.digits);
        scratch.put_poly(c1);
        decomposed?;
        for digit in &mut hoisted.digits {
            digit.to_eval(level_chain);
        }
        hoisted.source_tag = source_fingerprint(a.c1());
        Self::count(&self.ntt_count, (l_ct as u64 + 1) * live as u64);
        Ok(())
    }

    /// [`Evaluator::hoist_into`] for special-prime parameter sets: caches
    /// `live` evaluation-form digits of `live + 1` planes on the
    /// key-switch chain `[q_0, …, q_{live−1}, P]`. A hybrid replay is not
    /// NTT-free — every step still pays the `P`-rescale
    /// (`4·live + 2` plane transforms) — but the INTT + decompose + digit
    /// NTT front (`live² + 2·live` transforms) is shared across the set.
    fn hoist_into_hybrid(
        &self,
        hoisted: &mut HoistedDecomposition,
        a: &Ciphertext,
        scratch: &mut Scratch,
    ) -> Result<()> {
        let level = a.level();
        let live = a.live_limbs();
        let chain = self.params.chain();
        let ks = self.params.ks_chain_at(level);
        let digit_count = self.params.ks_digits_at(level);
        hoisted.params = self.params.clone();
        hoisted.level = level;
        if hoisted.digits.len() != digit_count
            || hoisted
                .digits
                .first()
                .is_some_and(|d| d.limbs() != live + 1 || d.degree() != chain.degree())
        {
            hoisted.digits = vec![RnsPoly::zero(ks, Representation::Coeff); digit_count];
        }
        // Invalidate the tag up front: should any step below fail, the
        // stale digits must not pass the replay fingerprint check.
        hoisted.source_tag = 0;
        let mut c1 = scratch.take_poly_limbs(live, Representation::Eval);
        c1.copy_from(a.c1());
        c1.to_coeff(chain);
        let decomposed = c1.hybrid_decompose_into(chain, ks, &mut hoisted.digits);
        scratch.put_poly(c1);
        decomposed?;
        for digit in &mut hoisted.digits {
            digit.to_eval(ks);
        }
        hoisted.source_tag = source_fingerprint(a.c1());
        let live = live as u64;
        Self::count(&self.ntt_count, live * live + 2 * live);
        Ok(())
    }

    /// `HE_Rotate` from a hoisted decomposition: applies the Galois slot
    /// permutation to the cached evaluation-form digits and
    /// multiply-accumulates against the key pairs — **zero NTTs**. `a`
    /// must be the ciphertext `hoisted` was built from (its `c0` and noise
    /// estimate are consumed here; enforced by a sampled fingerprint of
    /// its `c1`). Steps wrap around the row; a multiple
    /// of the row degenerates to a copy. Zero allocations at steady state.
    ///
    /// The result decrypts identically to [`Evaluator::rotate_rows_into`]
    /// (automorphisms commute with the reconstruction
    /// `Σ φ(D_j(c1))·A^j·q̂_i·φ(s) = φ(c1·s)`) but is not bit-identical to
    /// it: the key-switch digits are permuted after extraction instead of
    /// before.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRotation`], [`Error::MissingGaloisKey`],
    /// [`Error::LevelMismatch`] when the decomposition was hoisted at a
    /// different level than `a` now lives at, or
    /// [`Error::ParameterMismatch`] (including a `hoisted` built for a
    /// foreign parameter set or ciphertext).
    pub fn rotate_hoisted_into(
        &self,
        out: &mut Ciphertext,
        a: &Ciphertext,
        hoisted: &HoistedDecomposition,
        steps: i64,
        keys: &GaloisKeys,
        scratch: &mut Scratch,
    ) -> Result<()> {
        self.params.check_same(a.params())?;
        self.params.check_same(out.params())?;
        self.params.check_same(&hoisted.params)?;
        let level = a.level();
        let live = a.live_limbs();
        Self::check_levels(level, hoisted.level)?;
        // The decomposition must have been built from *this* ciphertext's
        // c1 (and the ciphertext not mutated since): splicing a foreign
        // hoist onto `a.c0` would decrypt to garbage while carrying a
        // valid-looking noise estimate.
        let expected_digits = if self.params.has_special() {
            self.params.ks_digits_at(level)
        } else {
            self.params.l_ct_at(level)
        };
        if hoisted.digits.len() != expected_digits
            || hoisted.source_tag != source_fingerprint(a.c1())
        {
            return Err(Error::ParameterMismatch);
        }
        Self::ensure_live(out, live);
        if steps.rem_euclid(self.params.row_size() as i64) == 0 {
            out.copy_from(a);
            return Ok(());
        }
        let g = element_for_step(self.params.degree(), steps)?;
        let key = keys.get(g).map_err(|e| Self::attach_step(e, steps))?;
        let level_chain = self.params.chain_at(level);
        let perm = key.permutation();

        let (oc0, oc1) = out.parts_mut();
        oc0.permute_from(a.c0(), perm);
        if self.params.has_special() {
            // Hybrid replay: permute the cached ks-chain digits, FMA over
            // P·Q_ℓ, then pay the per-step exact P-rescale back onto the
            // live data planes.
            let ks = self.params.ks_chain_at(level);
            let mut permuted = scratch.take_poly_limbs(live + 1, Representation::Eval);
            let mut acc0 = scratch.take_poly_limbs(live + 1, Representation::Eval);
            let mut acc1 = scratch.take_poly_limbs(live + 1, Representation::Eval);
            let mut fma = || -> Result<()> {
                acc0.fill_zero();
                acc0.set_representation(Representation::Eval);
                acc1.fill_zero();
                acc1.set_representation(Representation::Eval);
                for (digit, (k0, k1)) in hoisted.digits.iter().zip(key.pairs()) {
                    permuted.permute_from(digit, perm);
                    acc0.fma_pointwise_prefix_last(&permuted, k0, ks)?;
                    acc1.fma_pointwise_prefix_last(&permuted, k1, ks)?;
                }
                acc0.to_coeff(ks);
                acc1.to_coeff(ks);
                ks.mod_switch_in_place(&mut acc0)?;
                ks.mod_switch_in_place(&mut acc1)?;
                acc0.to_eval(level_chain);
                acc1.to_eval(level_chain);
                oc0.add_assign(&acc0, level_chain)?;
                oc1.copy_from(&acc1);
                Ok(())
            };
            let r = fma();
            scratch.put_poly(permuted);
            scratch.put_poly(acc0);
            scratch.put_poly(acc1);
            r?;
            let live = live as u64;
            Self::count(&self.ntt_count, 4 * live + 2);
            Self::count(&self.poly_mul_count, 2 * live);
        } else {
            oc1.fill_zero();
            oc1.set_representation(Representation::Eval);
            let mut permuted = scratch.take_poly_limbs(live, Representation::Eval);
            let mut fma = || -> Result<()> {
                for (digit, (k0, k1)) in hoisted.digits.iter().zip(key.pairs()) {
                    permuted.permute_from(digit, perm);
                    oc0.fma_pointwise_prefix(&permuted, k0, level_chain)?;
                    oc1.fma_pointwise_prefix(&permuted, k1, level_chain)?;
                }
                Ok(())
            };
            let r = fma();
            scratch.put_poly(permuted);
            r?;
            Self::count(&self.poly_mul_count, 2 * self.params.l_ct_at(level) as u64);
        }
        Self::count(&self.rotate_count, 1);
        out.set_noise(a.noise().rotate_at(&self.params, level));
        Ok(())
    }

    /// The baby-step primitive of BSGS layers: hoists `a` once (into the
    /// reusable `hoisted`) and replays the whole rotation `steps` set,
    /// writing `outs[i] = rot(a, steps[i])`. `outs` is resized to
    /// `steps.len()` (retained entries keep their capacity, so a reused
    /// output set is allocation-free at steady state within one level);
    /// steps that are multiples of the row degenerate to copies of `a`.
    ///
    /// Total NTT bill: `(l_ct(ℓ) + 1)·live` plane transforms for the hoist
    /// — independent of the number of steps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::hoist_into`] and
    /// [`Evaluator::rotate_hoisted_into`]; on error `outs` may be
    /// partially written.
    pub fn rotate_set_hoisted_into(
        &self,
        outs: &mut Vec<Ciphertext>,
        a: &Ciphertext,
        steps: &[i64],
        keys: &GaloisKeys,
        hoisted: &mut HoistedDecomposition,
        scratch: &mut Scratch,
    ) -> Result<()> {
        self.hoist_into(hoisted, a, scratch)?;
        outs.truncate(steps.len());
        while outs.len() < steps.len() {
            outs.push(Ciphertext::transparent_zero_at(&self.params, a.level()));
        }
        for (out, &step) in outs.iter_mut().zip(steps) {
            self.rotate_hoisted_into(out, a, hoisted, step, keys, scratch)?;
        }
        Ok(())
    }

    /// Allocating wrapper over [`Evaluator::rotate_hoisted_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::rotate_hoisted_into`].
    pub fn rotate_hoisted(
        &self,
        a: &Ciphertext,
        hoisted: &HoistedDecomposition,
        steps: i64,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext> {
        let mut out = Ciphertext::transparent_zero(&self.params);
        let mut scratch = self.scratch_guard();
        self.rotate_hoisted_into(&mut out, a, hoisted, steps, keys, &mut scratch)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Allocating wrappers (original API, delegating to the hot path)
    // ------------------------------------------------------------------

    /// `HE_Add`: slot-wise ciphertext addition.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext> {
        let mut out = a.clone();
        self.add_assign(&mut out, b)?;
        Ok(out)
    }

    /// `a - b` slot-wise.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext> {
        let mut out = a.clone();
        self.sub_assign(&mut out, b)?;
        Ok(out)
    }

    /// Slot-wise negation.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn negate(&self, a: &Ciphertext) -> Result<Ciphertext> {
        let mut out = a.clone();
        self.negate_assign(&mut out)?;
        Ok(out)
    }

    /// Adds a plaintext to a ciphertext (slot-wise): `ct + Δ·pt`.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign operands.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext> {
        let mut out = a.clone();
        let mut scratch = self.scratch_guard();
        self.add_plain_assign(&mut out, pt, &mut scratch)?;
        Ok(out)
    }

    /// Lifts a plaintext to `R_Q` (centered) and NTT-transforms it for
    /// repeated multiplication, at level 0 — usable against ciphertexts at
    /// any level (the evaluator reads the live-plane prefix).
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign plaintexts.
    pub fn prepare_plaintext(&self, pt: &Plaintext) -> Result<PreparedPlaintext> {
        self.prepare_plaintext_at(pt, 0)
    }

    /// [`Evaluator::prepare_plaintext`] at an explicit level: lifts into
    /// the live planes only, paying `live` instead of `limbs` NTT plane
    /// transforms. Worth it when a plaintext is prepared fresh for the
    /// reduced-level tail of a network; a level-0 preparation remains the
    /// universal choice for reusable weights.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign plaintexts.
    ///
    /// # Panics
    ///
    /// Panics for a level past `params.max_level()`.
    pub fn prepare_plaintext_at(&self, pt: &Plaintext, level: usize) -> Result<PreparedPlaintext> {
        self.params.check_same(pt.params())?;
        let t = self.params.plain_modulus();
        let chain = self.params.chain_at(level);
        let inf_norm = pt.inf_norm().max(1);
        let centered: Vec<i64> = pt.poly().data().iter().map(|&c| t.center(c)).collect();
        let pow2 = pow2_scalar_of(&centered);
        let mut poly = RnsPoly::from_signed(&centered, chain);
        poly.to_eval(chain);
        Self::count(&self.ntt_count, chain.limbs() as u64);
        Ok(PreparedPlaintext {
            poly,
            inf_norm,
            level,
            pow2,
        })
    }

    /// `HE_Mult` (pt-ct, no decomposition): slot-wise multiplication by a
    /// prepared plaintext. Two pointwise polynomial multiplications; noise
    /// grows multiplicatively by `≈ n·||pt||` (Table III with `l_pt = 1`,
    /// `W = 2·||pt||`).
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &PreparedPlaintext) -> Result<Ciphertext> {
        let mut out = a.clone();
        self.mul_plain_assign(&mut out, pt)?;
        Ok(out)
    }

    /// Convenience: encode-free multiplication by an unprepared plaintext.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign operands.
    pub fn mul_plain_unprepared(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext> {
        let prepared = self.prepare_plaintext(pt)?;
        self.mul_plain(a, &prepared)
    }

    /// `HE_Mult` with plaintext decomposition (Gazelle windowing): the
    /// weight plaintext is digit-decomposed in base `W_dcmp` and each digit
    /// multiplies the matching pre-scaled ciphertext from the client's
    /// [`WindowedCiphertext`], fused-accumulated into a single output
    /// ciphertext through the scratch pool. Costs `l_pt` polynomial
    /// multiplications; noise grows by `≈ n·l_pt·W/2` instead of `n·t/2`
    /// (Table III).
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign operands or a windowed
    /// ciphertext built with a different base.
    pub fn mul_plain_windowed(
        &self,
        wct: &WindowedCiphertext,
        pt: &Plaintext,
    ) -> Result<Ciphertext> {
        self.params.check_same(pt.params())?;
        if wct.base != self.params.w_dcmp() || wct.levels() != self.params.l_pt() {
            return Err(Error::ParameterMismatch);
        }
        let level = wct.cts.first().map_or(0, Ciphertext::level);
        for ct in &wct.cts {
            self.params.check_same(ct.params())?;
            Self::check_levels(level, ct.level())?;
        }
        let chain = self.params.chain_at(level);
        let live = chain.limbs();
        let l_pt = wct.levels();

        let mut out = Ciphertext::transparent_zero_at(&self.params, level);
        let mut noise: Option<NoiseEstimate> = None;
        {
            let mut guard = self.scratch_guard();
            let digits = guard.digits_mut_limbs(l_pt, live);
            // Digit coefficients are < W <= t < every q_i: replicate each
            // digit across the live limb planes and lift directly into the
            // evaluation domain.
            digits_from_coeffs(pt.poly().data(), wct.base, chain, digits)?;
            let (oc0, oc1) = out.parts_mut();
            for (digit, ct) in digits.iter_mut().zip(&wct.cts) {
                digit.to_eval(chain);
                Self::count(&self.ntt_count, live as u64);
                oc0.fma_pointwise(ct.c0(), digit, chain)?;
                oc1.fma_pointwise(ct.c1(), digit, chain)?;
                Self::count(&self.poly_mul_count, 2);
                let term = ct.noise().mul_plain_at(&self.params, level, 1, wct.base);
                noise = Some(match noise {
                    None => term,
                    Some(prev) => prev.add(&term),
                });
            }
        }
        Self::count(&self.mul_count, l_pt as u64);
        // l_pt >= 1 by construction, but the boundary never panics on it.
        out.set_noise(noise.unwrap_or_else(NoiseEstimate::zero));
        Ok(out)
    }

    /// Multiplies every slot by a scalar constant.
    ///
    /// # Errors
    ///
    /// [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn mul_scalar(&self, a: &Ciphertext, c: u64) -> Result<Ciphertext> {
        let mut out = a.clone();
        self.mul_scalar_assign(&mut out, c)?;
        Ok(out)
    }

    /// `HE_Rotate`: rotates row slots left by `steps` (negative = right).
    ///
    /// Steps wrap around the row: `steps` and `steps mod (n/2)` are the
    /// same rotation (so `row + 1` behaves like `1`, and any multiple of
    /// the row is the identity) — the same semantics as
    /// [`Evaluator::rotate_rows_composed`].
    ///
    /// # Errors
    ///
    /// [`Error::MissingGaloisKey`] if the key set lacks the element,
    /// [`Error::ParameterMismatch`] for foreign ciphertexts.
    pub fn rotate_rows(&self, a: &Ciphertext, steps: i64, keys: &GaloisKeys) -> Result<Ciphertext> {
        if steps.rem_euclid(self.params.row_size() as i64) == 0 {
            return Ok(a.clone());
        }
        let g = element_for_step(self.params.degree(), steps)?;
        self.apply_galois(a, g, keys)
            .map_err(|e| Self::attach_step(e, steps))
    }

    /// Swaps the two slot rows (`x ↦ x^{2n−1}`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::rotate_rows`].
    pub fn rotate_columns(&self, a: &Ciphertext, keys: &GaloisKeys) -> Result<Ciphertext> {
        let g = 2 * self.params.degree() as u64 - 1;
        self.apply_galois(a, g, keys)
    }

    /// Applies the Galois automorphism `x ↦ x^g` followed by key switching.
    ///
    /// # Errors
    ///
    /// [`Error::MissingGaloisKey`] or [`Error::ParameterMismatch`].
    pub fn apply_galois(&self, a: &Ciphertext, g: u64, keys: &GaloisKeys) -> Result<Ciphertext> {
        let mut out = Ciphertext::transparent_zero(&self.params);
        let mut scratch = self.scratch_guard();
        self.apply_galois_into(&mut out, a, g, keys, &mut scratch)?;
        Ok(out)
    }

    /// Rotates by an arbitrary step using only power-of-two keys,
    /// decomposing the step into a sum of powers (≤ log2(n/2) rotations),
    /// ping-ponging between two ciphertext buffers on the scratch path.
    /// Costs more noise than a single keyed rotation — used when key
    /// storage is constrained.
    ///
    /// Steps wrap around the row, exactly as in
    /// [`Evaluator::rotate_rows`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::rotate_rows`].
    pub fn rotate_rows_composed(
        &self,
        a: &Ciphertext,
        steps: i64,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext> {
        let row = self.params.row_size() as i64;
        let mut remaining = steps.rem_euclid(row);
        if remaining == 0 {
            return Ok(a.clone());
        }
        let mut cur = a.clone();
        let mut tmp = Ciphertext::transparent_zero(&self.params);
        let mut scratch = self.scratch_guard();
        let mut bit = 1i64;
        while remaining > 0 {
            if remaining & 1 == 1 {
                self.rotate_rows_into(&mut tmp, &cur, bit, keys, &mut scratch)?;
                std::mem::swap(&mut cur, &mut tmp);
            }
            remaining >>= 1;
            bit <<= 1;
        }
        Ok(cur)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BatchEncoder;
    use crate::encryptor::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;

    struct Ctx {
        params: BfvParams,
        encoder: BatchEncoder,
        enc: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        keys: GaloisKeys,
    }

    fn ctx(n: usize, steps: &[i64]) -> Ctx {
        let params = BfvParams::builder()
            .degree(n)
            .plain_bits(16)
            .cipher_bits(if n >= 4096 { 60 } else { 54 })
            .a_dcmp(1 << 16)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 1234);
        let pk = kg.public_key().unwrap();
        let keys = kg.galois_keys_for_steps(steps).unwrap();
        Ctx {
            params: params.clone(),
            encoder: BatchEncoder::new(params.clone()),
            enc: Encryptor::from_public_key(pk, 55),
            dec: Decryptor::new(kg.secret_key().clone()),
            eval: Evaluator::new(params),
            keys,
        }
    }

    #[test]
    fn add_is_slotwise() {
        let mut c = ctx(2048, &[]);
        let a: Vec<u64> = (0..100).collect();
        let b: Vec<u64> = (0..100).map(|i| 1000 + i).collect();
        let ca = c.enc.encrypt(&c.encoder.encode(&a).unwrap()).unwrap();
        let cb = c.enc.encrypt(&c.encoder.encode(&b).unwrap()).unwrap();
        let sum = c.eval.add(&ca, &cb).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&sum).unwrap());
        for i in 0..100 {
            assert_eq!(out[i], a[i] + b[i]);
        }
        assert_eq!(c.eval.op_counts().add, 1);
    }

    #[test]
    fn sub_and_negate() {
        let mut c = ctx(2048, &[]);
        let t = c.params.plain_modulus().value();
        let ca = c.enc.encrypt(&c.encoder.encode(&[10]).unwrap()).unwrap();
        let cb = c.enc.encrypt(&c.encoder.encode(&[3]).unwrap()).unwrap();
        let d = c.eval.sub(&ca, &cb).unwrap();
        assert_eq!(c.encoder.decode(&c.dec.decrypt(&d).unwrap())[0], 7);
        let neg = c.eval.negate(&ca).unwrap();
        assert_eq!(c.encoder.decode(&c.dec.decrypt(&neg).unwrap())[0], t - 10);
    }

    #[test]
    fn add_plain_is_slotwise() {
        let mut c = ctx(2048, &[]);
        let ca = c.enc.encrypt(&c.encoder.encode(&[5, 6]).unwrap()).unwrap();
        let pb = c.encoder.encode(&[100, 200]).unwrap();
        let s = c.eval.add_plain(&ca, &pb).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&s).unwrap());
        assert_eq!(&out[..2], &[105, 206]);
    }

    #[test]
    fn mul_plain_is_slotwise() {
        let mut c = ctx(2048, &[]);
        let a: Vec<u64> = (1..=50).collect();
        let w: Vec<u64> = (1..=50).map(|i| 2 * i).collect();
        let ca = c.enc.encrypt(&c.encoder.encode(&a).unwrap()).unwrap();
        let pw = c
            .eval
            .prepare_plaintext(&c.encoder.encode(&w).unwrap())
            .unwrap();
        let prod = c.eval.mul_plain(&ca, &pw).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&prod).unwrap());
        for i in 0..50 {
            assert_eq!(out[i], a[i] * w[i], "slot {i}");
        }
        // Model noise must upper-bound measured noise.
        let measured = c.dec.invariant_noise(&prod).unwrap() as f64;
        assert!(measured.log2() <= prod.noise().bound_log2);
    }

    #[test]
    fn mul_plain_signed_weights() {
        let mut c = ctx(2048, &[]);
        let a: Vec<i64> = vec![3, -4, 5];
        let w: Vec<i64> = vec![-2, -3, 7];
        let ca = c
            .enc
            .encrypt(&c.encoder.encode_signed(&a).unwrap())
            .unwrap();
        let pw = c
            .eval
            .prepare_plaintext(&c.encoder.encode_signed(&w).unwrap())
            .unwrap();
        let prod = c.eval.mul_plain(&ca, &pw).unwrap();
        let out = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&prod).unwrap());
        assert_eq!(&out[..3], &[-6, 12, 35]);
    }

    #[test]
    fn rotate_rows_left_and_right() {
        let mut c = ctx(2048, &[1, -1, 5]);
        let row = c.params.row_size();
        let vals: Vec<u64> = (0..row as u64).collect();
        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();

        let left1 = c.eval.rotate_rows(&ct, 1, &c.keys).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&left1).unwrap());
        assert_eq!(out[0], 1);
        assert_eq!(out[row - 1], 0); // wrapped around

        let right1 = c.eval.rotate_rows(&ct, -1, &c.keys).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&right1).unwrap());
        assert_eq!(out[0], (row - 1) as u64);
        assert_eq!(out[1], 0);

        let left5 = c.eval.rotate_rows(&ct, 5, &c.keys).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&left5).unwrap());
        assert_eq!(out[0], 5);
    }

    #[test]
    fn rotate_affects_both_rows_independently() {
        let mut c = ctx(2048, &[1]);
        let row = c.params.row_size();
        let mut vals = vec![0u64; 2 * row];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as u64;
        }
        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();
        let rot = c.eval.rotate_rows(&ct, 1, &c.keys).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&rot).unwrap());
        assert_eq!(out[0], 1);
        assert_eq!(out[row], row as u64 + 1); // row 1 also rotated left by 1
        assert_eq!(out[row - 1], 0);
        assert_eq!(out[2 * row - 1], row as u64);
    }

    #[test]
    fn rotate_columns_swaps_rows() {
        let params = BfvParams::builder()
            .degree(2048)
            .plain_bits(16)
            .cipher_bits(54)
            .a_dcmp(1 << 16)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 77);
        let pk = kg.public_key().unwrap();
        // The power-of-two helper includes the row-swap element.
        let keyset = kg.galois_keys_power_of_two().unwrap();

        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_public_key(pk, 3);
        let dec = Decryptor::new(kg.secret_key().clone());
        let eval = Evaluator::new(params.clone());
        let row = params.row_size();
        let mut vals = vec![0u64; 2 * row];
        vals[0] = 111;
        vals[row] = 222;
        let ct = enc.encrypt(&encoder.encode(&vals).unwrap()).unwrap();
        let swapped = eval.rotate_columns(&ct, &keyset).unwrap();
        let out = encoder.decode(&dec.decrypt_checked(&swapped).unwrap());
        assert_eq!(out[0], 222);
        assert_eq!(out[row], 111);
    }

    #[test]
    fn composed_rotation_matches_direct() {
        let mut c = ctx(2048, &[1, 2, 4, 8, 16, 11]);
        let vals: Vec<u64> = (0..c.params.row_size() as u64).collect();
        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();
        let direct = c.eval.rotate_rows(&ct, 11, &c.keys).unwrap();
        let composed = c.eval.rotate_rows_composed(&ct, 11, &c.keys).unwrap();
        let d1 = c.encoder.decode(&c.dec.decrypt_checked(&direct).unwrap());
        let d2 = c.encoder.decode(&c.dec.decrypt_checked(&composed).unwrap());
        assert_eq!(d1, d2);
        // Composition uses more rotations => more noise.
        assert!(
            c.dec.invariant_noise(&composed).unwrap() >= c.dec.invariant_noise(&direct).unwrap()
        );
    }

    #[test]
    fn missing_key_is_an_error() {
        let mut c = ctx(2048, &[1]);
        let ct = c.enc.encrypt(&c.encoder.encode(&[1]).unwrap()).unwrap();
        assert!(matches!(
            c.eval.rotate_rows(&ct, 7, &c.keys),
            Err(Error::MissingGaloisKey { .. })
        ));
    }

    #[test]
    fn windowed_mult_reduces_noise() {
        // Compare noise of plain mult vs windowed mult with W = 2^6.
        let params = BfvParams::builder()
            .degree(2048)
            .plain_bits(16)
            .cipher_bits(54)
            .w_dcmp(1 << 6)
            .build()
            .unwrap();
        assert_eq!(params.l_pt(), 3);
        let mut kg = KeyGenerator::from_seed(params.clone(), 21);
        let pk = kg.public_key().unwrap();
        let mut enc = Encryptor::from_public_key(pk, 22);
        let dec = Decryptor::new(kg.secret_key().clone());
        let encoder = BatchEncoder::new(params.clone());
        let eval = Evaluator::new(params.clone());

        let x: Vec<u64> = (1..=64).collect();
        let w: Vec<u64> = (1..=64).map(|i| 1000 + i).collect();
        let px = encoder.encode(&x).unwrap();
        let pw = encoder.encode(&w).unwrap();

        let ct = enc.encrypt(&px).unwrap();
        let wct = enc.encrypt_windowed(&px).unwrap();

        let plain_prod = eval.mul_plain_unprepared(&ct, &pw).unwrap();
        let window_prod = eval.mul_plain_windowed(&wct, &pw).unwrap();

        let t = params.plain_modulus();
        let d1 = encoder.decode(&dec.decrypt_checked(&plain_prod).unwrap());
        let d2 = encoder.decode(&dec.decrypt_checked(&window_prod).unwrap());
        for i in 0..64 {
            assert_eq!(d1[i], t.mul_mod(x[i], w[i]));
            assert_eq!(d2[i], d1[i], "slot {i}");
        }
        let n1 = dec.invariant_noise(&plain_prod).unwrap();
        let n2 = dec.invariant_noise(&window_prod).unwrap();
        assert!(n2 < n1, "windowed {n2} should be below plain {n1}");
    }

    #[test]
    fn op_counts_track_rotate_internals() {
        let mut c = ctx(2048, &[1]);
        let ct = c.enc.encrypt(&c.encoder.encode(&[1]).unwrap()).unwrap();
        c.eval.reset_op_counts();
        let _ = c.eval.rotate_rows(&ct, 1, &c.keys).unwrap();
        let counts = c.eval.op_counts();
        let l_ct = c.params.l_ct() as u64;
        let limbs = c.params.limbs() as u64;
        assert_eq!(counts.rotate, 1);
        assert_eq!(
            counts.ntt,
            (l_ct + 1) * limbs,
            "(l_ct + 1)·limbs NTT plane transforms per rotate"
        );
        assert_eq!(counts.poly_mul, 2 * l_ct, "2 l_ct muls per rotate");
    }

    #[test]
    fn op_counts_scale_with_limb_planes() {
        // The seed-era counter charged l_ct + 1 per rotate regardless of
        // the chain length, under-reporting multi-limb NTT work by a
        // factor of `limbs`. Plane counting fixes that.
        let params = BfvParams::preset_rns_3x36(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 71);
        let pk = kg.public_key().unwrap();
        let keys = kg.galois_keys_for_steps(&[1]).unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_public_key(pk, 72);
        let eval = Evaluator::new(params.clone());
        let ct = enc.encrypt(&encoder.encode(&[1, 2, 3]).unwrap()).unwrap();

        eval.reset_op_counts();
        let _ = eval.rotate_rows(&ct, 1, &keys).unwrap();
        let counts = eval.op_counts();
        let l_ct = params.l_ct() as u64;
        assert_eq!(params.limbs(), 3);
        assert_eq!(counts.ntt, (l_ct + 1) * 3);
        assert_eq!(counts.poly_mul, 2 * l_ct);
    }

    #[test]
    fn hoisted_rotation_matches_direct_and_shares_one_decomposition() {
        for params in [
            BfvParams::preset_single_60(4096).unwrap(),
            BfvParams::preset_rns_2x30(4096).unwrap(),
            BfvParams::preset_rns_3x36(4096).unwrap(),
        ] {
            let mut kg = KeyGenerator::from_seed(params.clone(), 81);
            let pk = kg.public_key().unwrap();
            let steps = [1i64, 2, 5, -3];
            let keys = kg.galois_keys_for_steps(&steps).unwrap();
            let encoder = BatchEncoder::new(params.clone());
            let mut enc = Encryptor::from_public_key(pk, 82);
            let dec = Decryptor::new(kg.secret_key().clone());
            let eval = Evaluator::new(params.clone());
            let vals: Vec<u64> = (0..200).map(|i| i * 13 % 997).collect();
            let ct = enc.encrypt(&encoder.encode(&vals).unwrap()).unwrap();

            eval.reset_op_counts();
            let hoisted = eval.hoist(&ct).unwrap();
            let after_hoist = eval.op_counts();
            let l_ct = params.l_ct() as u64;
            let limbs = params.limbs() as u64;
            assert_eq!(
                after_hoist.ntt,
                (l_ct + 1) * limbs,
                "hoist = one rotation's worth of plane transforms"
            );

            for &s in &steps {
                let direct = eval.rotate_rows(&ct, s, &keys).unwrap();
                let via_hoist = eval.rotate_hoisted(&ct, &hoisted, s, &keys).unwrap();
                let d1 = encoder.decode(&dec.decrypt_checked(&direct).unwrap());
                let d2 = encoder.decode(&dec.decrypt_checked(&via_hoist).unwrap());
                assert_eq!(d1, d2, "step {s}, limbs {limbs}");
                assert_eq!(direct.noise().bound_log2, via_hoist.noise().bound_log2);
            }

            // The k-element set paid for exactly one INTT + decompose:
            // only the k direct rotations added NTT plane transforms.
            let total = eval.op_counts();
            let expected_direct = steps.len() as u64 * (l_ct + 1) * limbs;
            assert_eq!(
                total.ntt - after_hoist.ntt,
                expected_direct,
                "hoisted replays must add zero NTT work"
            );
            assert_eq!(total.rotate, 2 * steps.len() as u64);
        }
    }

    #[test]
    fn hoisted_replay_rejects_foreign_source_ciphertext() {
        let mut c = ctx(2048, &[1]);
        let ct_a = c.enc.encrypt(&c.encoder.encode(&[1, 2]).unwrap()).unwrap();
        let ct_b = c.enc.encrypt(&c.encoder.encode(&[3, 4]).unwrap()).unwrap();
        let hoisted = c.eval.hoist(&ct_a).unwrap();
        // Replaying A's decomposition against B must fail loudly, not
        // splice A's key-switch digits onto B's c0.
        assert!(matches!(
            c.eval.rotate_hoisted(&ct_b, &hoisted, 1, &c.keys),
            Err(Error::ParameterMismatch)
        ));
        // And mutating the source after hoisting invalidates the replay.
        let mut mutated = ct_a.clone();
        c.eval.add_assign(&mut mutated, &ct_b).unwrap();
        assert!(matches!(
            c.eval.rotate_hoisted(&mutated, &hoisted, 1, &c.keys),
            Err(Error::ParameterMismatch)
        ));
        // The genuine source still works.
        assert!(c.eval.rotate_hoisted(&ct_a, &hoisted, 1, &c.keys).is_ok());
    }

    #[test]
    fn rotation_steps_wrap_around_the_row() {
        // steps = row + 1 must behave exactly like steps = 1 on the
        // direct, scratch, composed, and hoisted paths.
        let mut c = ctx(2048, &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
        let row = c.params.row_size() as i64;
        let vals: Vec<u64> = (0..row as u64).collect();
        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();

        let by_one = c.eval.rotate_rows(&ct, 1, &c.keys).unwrap();
        let wrapped = c.eval.rotate_rows(&ct, row + 1, &c.keys).unwrap();
        assert_eq!(by_one.c0().data(), wrapped.c0().data());
        assert_eq!(by_one.c1().data(), wrapped.c1().data());

        let composed = c.eval.rotate_rows_composed(&ct, row + 1, &c.keys).unwrap();
        let d1 = c.encoder.decode(&c.dec.decrypt_checked(&by_one).unwrap());
        let d2 = c.encoder.decode(&c.dec.decrypt_checked(&composed).unwrap());
        assert_eq!(d1, d2);

        // Multiples of the row are the identity everywhere.
        let ident = c.eval.rotate_rows(&ct, row, &c.keys).unwrap();
        assert_eq!(ident.c0().data(), ct.c0().data());
        let ident = c.eval.rotate_rows_composed(&ct, -row, &c.keys).unwrap();
        assert_eq!(ident.c0().data(), ct.c0().data());

        let hoisted = c.eval.hoist(&ct).unwrap();
        let h1 = c
            .eval
            .rotate_hoisted(&ct, &hoisted, row + 1, &c.keys)
            .unwrap();
        let dh = c.encoder.decode(&c.dec.decrypt_checked(&h1).unwrap());
        assert_eq!(d1, dh);
    }

    #[test]
    fn mod_switch_preserves_decryption_and_shrinks_rotation() {
        // The leveled-evaluation acceptance path on the 3x36 preset:
        // switch down one level, decryption is preserved, and a rotation
        // at level 1 runs (l_ct(1) + 1)·live plane transforms — strictly
        // fewer than at level 0.
        let params = BfvParams::preset_rns_3x36(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 61);
        let pk = kg.public_key().unwrap();
        let keys = kg.galois_keys_for_steps(&[1]).unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_public_key(pk, 62);
        let dec = Decryptor::new(kg.secret_key().clone());
        let eval = Evaluator::new(params.clone());

        let vals: Vec<u64> = (0..300).map(|i| i * 7 % 1000).collect();
        let ct = enc.encrypt(&encoder.encode(&vals).unwrap()).unwrap();
        assert_eq!(ct.level(), 0);
        let full_bytes = ct.byte_size();

        let switched = eval.mod_switch_to_next(&ct).unwrap();
        assert_eq!(switched.level(), 1);
        assert_eq!(switched.live_limbs(), 2);
        assert_eq!(switched.byte_size(), 2 * 2 * 4096 * 8);
        assert!(switched.byte_size() < full_bytes, "must shrink on the wire");
        let out = encoder.decode(&dec.decrypt_checked(&switched).unwrap());
        assert_eq!(&out[..300], &vals[..], "decryption preserved");
        // Measured noise stays under the transition model's bound.
        let measured = dec.invariant_noise(&switched).unwrap() as f64;
        assert!(measured.max(1.0).log2() <= switched.noise().bound_log2 + 1e-9);

        // Rotation at the reduced level: strictly less NTT work.
        eval.reset_op_counts();
        let rot_full = eval.rotate_rows(&ct, 1, &keys).unwrap();
        let full_counts = eval.op_counts();
        eval.reset_op_counts();
        let rot_low = eval.rotate_rows(&switched, 1, &keys).unwrap();
        let low_counts = eval.op_counts();
        let l_ct_full = params.l_ct() as u64;
        let l_ct_low = params.l_ct_at(1) as u64;
        assert_eq!(full_counts.ntt, (l_ct_full + 1) * 3);
        assert_eq!(low_counts.ntt, (l_ct_low + 1) * 2);
        assert!(low_counts.ntt < full_counts.ntt);
        assert_eq!(low_counts.poly_mul, 2 * l_ct_low);
        assert!(l_ct_low < l_ct_full, "fewer digits at the reduced level");
        // Both rotations decrypt to the same (shifted) slots.
        let a = encoder.decode(&dec.decrypt_checked(&rot_full).unwrap());
        let b = encoder.decode(&dec.decrypt_checked(&rot_low).unwrap());
        assert_eq!(a, b);

        // Hoisted replays work at the reduced level too.
        let hoisted = eval.hoist(&switched).unwrap();
        assert_eq!(hoisted.level(), 1);
        let hr = eval.rotate_hoisted(&switched, &hoisted, 1, &keys).unwrap();
        assert_eq!(
            encoder.decode(&dec.decrypt_checked(&hr).unwrap()),
            b,
            "hoisted reduced-level rotate diverged"
        );

        // mod_switch_to walks multiple levels; deepest level errors out.
        let bottom = eval.mod_switch_to(&ct, params.max_level()).unwrap();
        assert_eq!(bottom.live_limbs(), 1);
        assert!(matches!(
            eval.mod_switch_to_next(&bottom),
            Err(Error::InvalidLevel { .. })
        ));
        // Switching "up" is refused.
        assert!(matches!(
            eval.mod_switch_to(&switched, 0),
            Err(Error::InvalidLevel { .. })
        ));
    }

    #[test]
    fn level_mismatch_is_a_typed_error_not_a_panic() {
        let params = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 63);
        let pk = kg.public_key().unwrap();
        let keys = kg.galois_keys_for_steps(&[1]).unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_public_key(pk, 64);
        let eval = Evaluator::new(params.clone());

        let ct = enc.encrypt(&encoder.encode(&[1, 2, 3]).unwrap()).unwrap();
        let low = eval.mod_switch_to_next(&ct).unwrap();

        // ct + low: mixed levels.
        let mut work = ct.clone();
        assert!(matches!(
            eval.add_assign(&mut work, &low),
            Err(Error::LevelMismatch {
                expected: 0,
                found: 1
            })
        ));
        assert!(matches!(
            eval.sub_assign(&mut work, &low),
            Err(Error::LevelMismatch { .. })
        ));
        // Accumulator at full level, operand switched.
        let pw = eval
            .prepare_plaintext(&encoder.encode(&[5]).unwrap())
            .unwrap();
        let mut acc = Ciphertext::transparent_zero(&params);
        assert!(matches!(
            eval.mul_plain_accumulate(&mut acc, &low, &pw),
            Err(Error::LevelMismatch { .. })
        ));
        // A plaintext prepared at level 1 cannot serve a level-0 operand…
        let deep_pw = eval
            .prepare_plaintext_at(&encoder.encode(&[5]).unwrap(), 1)
            .unwrap();
        assert_eq!(deep_pw.level(), 1);
        let mut full = ct.clone();
        assert!(matches!(
            eval.mul_plain_assign(&mut full, &deep_pw),
            Err(Error::LevelMismatch { .. })
        ));
        // …but serves a switched one, identically to the level-0 prep.
        let mut a = low.clone();
        eval.mul_plain_assign(&mut a, &deep_pw).unwrap();
        let mut b = low.clone();
        eval.mul_plain_assign(&mut b, &pw).unwrap();
        assert_eq!(a.c0().data(), b.c0().data());
        assert_eq!(a.c1().data(), b.c1().data());
        // A hoist taken at level 0 cannot replay against the switched ct.
        let hoisted = eval.hoist(&ct).unwrap();
        assert!(matches!(
            eval.rotate_hoisted(&low, &hoisted, 1, &keys),
            Err(Error::LevelMismatch { .. })
        ));
    }

    #[test]
    fn mul_scalar_scales_slots() {
        let mut c = ctx(2048, &[]);
        let ct = c.enc.encrypt(&c.encoder.encode(&[7, 9]).unwrap()).unwrap();
        let scaled = c.eval.mul_scalar(&ct, 3).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&scaled).unwrap());
        assert_eq!(&out[..2], &[21, 27]);
    }
}
