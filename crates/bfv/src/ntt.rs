//! Negacyclic Number Theoretic Transform over `Z_q[x]/(x^n + 1)`.
//!
//! Implements the Longa–Naehrig formulation used by SEAL: a decimation-in-time
//! forward transform with bit-reverse-scrambled twiddle factors and a
//! Gentleman–Sande inverse, both built from Harvey's lazy butterfly
//! (three integer multiplications per butterfly — the constant the Cheetah
//! performance model charges per butterfly, §IV-A).
//!
//! The forward transform maps natural-order coefficients to *bit-reversed*
//! evaluation order: after `forward`, array index `j` holds the evaluation of
//! the polynomial at `ψ^(2·brv(j)+1)` where `ψ` is a primitive `2n`-th root of
//! unity. The inverse consumes that layout and returns natural-order
//! coefficients. Keeping this layout end-to-end means no explicit bit-reversal
//! pass is ever needed, and it is the layout assumed by
//! [`crate::encoder::BatchEncoder`] and the Galois slot permutations.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::arith::{bit_reverse, primitive_root_2n, Modulus, ShoupPrecomp};
use crate::error::Result;

/// Precomputed tables for the negacyclic NTT of a fixed degree and modulus.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::arith::{generate_ntt_prime, Modulus};
/// use cheetah_bfv::ntt::NttTable;
///
/// # fn main() -> Result<(), cheetah_bfv::Error> {
/// let n = 1024;
/// let q = Modulus::new(generate_ntt_prime(30, n)?)?;
/// let table = NttTable::new(n, q)?;
/// let mut a = vec![0u64; n];
/// a[1] = 5; // the polynomial 5x
/// let original = a.clone();
/// table.forward(&mut a);
/// table.inverse(&mut a);
/// assert_eq!(a, original);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    log_n: u32,
    q: Modulus,
    /// `psi_rev[i] = ψ^{brv(i, log n)}` with Shoup precomputation.
    psi_rev: Vec<ShoupPrecomp>,
    /// `psi_inv_rev[i] = ψ^{-brv(i, log n)}` with Shoup precomputation.
    psi_inv_rev: Vec<ShoupPrecomp>,
    /// `n^{-1} mod q`, applied at the end of the inverse transform.
    n_inv: ShoupPrecomp,
    /// The primitive 2n-th root of unity used to build the tables.
    psi: u64,
}

impl NttTable {
    /// Builds NTT tables for degree `n` (a power of two ≥ 8) and prime
    /// modulus `q ≡ 1 (mod 2n)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` admits no primitive `2n`-th root of unity or
    /// if `n` is not invertible mod `q`.
    pub fn new(n: usize, q: Modulus) -> Result<Self> {
        assert!(
            n.is_power_of_two() && n >= 8,
            "degree must be a power of two >= 8"
        );
        let log_n = n.trailing_zeros();
        let psi = primitive_root_2n(&q, n)?;
        let psi_inv = q.inv_mod(psi)?;

        let mut psi_rev = Vec::with_capacity(n);
        let mut psi_inv_rev = Vec::with_capacity(n);
        // Powers in natural order first, then scramble.
        let mut pow = 1u64;
        let mut pow_inv = 1u64;
        let mut powers = vec![0u64; n];
        let mut powers_inv = vec![0u64; n];
        for i in 0..n {
            powers[i] = pow;
            powers_inv[i] = pow_inv;
            pow = q.mul_mod(pow, psi);
            pow_inv = q.mul_mod(pow_inv, psi_inv);
        }
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            psi_rev.push(ShoupPrecomp::new(powers[r], &q));
            psi_inv_rev.push(ShoupPrecomp::new(powers_inv[r], &q));
        }
        let n_inv = ShoupPrecomp::new(q.inv_mod(n as u64)?, &q);
        Ok(Self {
            n,
            log_n,
            q,
            psi_rev,
            psi_inv_rev,
            n_inv,
            psi,
        })
    }

    /// Memoized variant of [`NttTable::new`]: tables are cached per
    /// `(modulus, n)` process-wide, so multi-limb parameter sets (and
    /// repeated [`crate::params::BfvParams`] builds over the same primes)
    /// pay the `O(n)` root-power precompute once and share one allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NttTable::new`]; failures are not cached.
    pub fn cached(n: usize, q: Modulus) -> Result<Arc<Self>> {
        type TableCache = Mutex<HashMap<(u64, usize), Arc<NttTable>>>;
        static CACHE: OnceLock<TableCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(t) = cache.lock().expect("ntt cache").get(&(q.value(), n)) {
            return Ok(Arc::clone(t));
        }
        // Build outside the lock: construction is the expensive part.
        let table = Arc::new(Self::new(n, q)?);
        let mut guard = cache.lock().expect("ntt cache");
        let entry = guard
            .entry((q.value(), n))
            .or_insert_with(|| Arc::clone(&table));
        Ok(Arc::clone(entry))
    }

    /// Polynomial degree `n`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// `log2(n)`.
    #[inline]
    pub fn log_degree(&self) -> u32 {
        self.log_n
    }

    /// The coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.q
    }

    /// The primitive `2n`-th root of unity backing the tables.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Number of Harvey butterflies per transform: `(n/2)·log2(n)`.
    ///
    /// Each butterfly costs three integer multiplications in the paper's
    /// cost model (§IV-A).
    #[inline]
    pub fn butterflies(&self) -> u64 {
        (self.n as u64 / 2) * self.log_n as u64
    }

    /// In-place forward negacyclic NTT (natural → bit-reversed order).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal the degree");
        let q = self.q.value();
        let two_q = 2 * q;
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let w = &self.psi_rev[m + i];
                for j in j1..j1 + t {
                    // Harvey forward butterfly, inputs < 4q, outputs < 4q.
                    let mut x = a[j];
                    if x >= two_q {
                        x -= two_q;
                    }
                    let u = w.mul_lazy(a[j + t], &self.q); // < 2q
                    a[j] = x + u;
                    a[j + t] = x + two_q - u;
                }
            }
            m <<= 1;
        }
        // Final full reduction to [0, q).
        for x in a.iter_mut() {
            if *x >= two_q {
                *x -= two_q;
            }
            if *x >= q {
                *x -= q;
            }
        }
    }

    /// In-place inverse negacyclic NTT (bit-reversed → natural order),
    /// including the `n^{-1}` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal the degree");
        let q = self.q.value();
        let two_q = 2 * q;
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let w = &self.psi_inv_rev[h + i];
                for j in j1..j1 + t {
                    // Gentleman–Sande butterfly, lazy.
                    let x = a[j];
                    let y = a[j + t];
                    let mut s = x + y;
                    if s >= two_q {
                        s -= two_q;
                    }
                    a[j] = s;
                    a[j + t] = w.mul_lazy(x + two_q - y, &self.q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            // Lazy butterflies leave values < 2q; two conditional
            // subtractions replace the old hardware division (`% q`).
            let mut v = *x;
            if v >= two_q {
                v -= two_q;
            }
            if v >= q {
                v -= q;
            }
            *x = self.n_inv.mul(v, &self.q);
        }
    }

    /// Builds the slot permutation realizing the Galois automorphism
    /// `x -> x^g` directly on NTT-form (bit-reversed evaluation) data.
    ///
    /// `result[j] = source index whose value moves to position j`, i.e.
    /// `b_ntt[j] = a_ntt[perm[j]]`. Applying the automorphism in evaluation
    /// form is a pure permutation — no multiplications — which is why the
    /// paper's rotate cost model only charges the key-switch NTTs.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even (automorphisms of `x^n + 1` need odd exponents).
    pub fn galois_permutation(&self, g: u64) -> Vec<u32> {
        assert!(g % 2 == 1, "Galois element must be odd");
        let n = self.n;
        let m = 2 * n as u64;
        let mut perm = vec![0u32; n];
        for (j, slot) in perm.iter_mut().enumerate() {
            let e = 2 * bit_reverse(j, self.log_n) as u64 + 1;
            let e_src = (e * g) % m;
            let j_src = bit_reverse(((e_src - 1) / 2) as usize, self.log_n);
            *slot = j_src as u32;
        }
        perm
    }

    /// Applies the Galois automorphism `x -> x^g` to a polynomial in
    /// *coefficient* form: coefficient `a_i` moves to `x^{i·g mod 2n}` with a
    /// sign flip whenever the exponent wraps past `n`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n` or `g` is even.
    pub fn apply_galois_coeff(&self, a: &[u64], g: u64) -> Vec<u64> {
        assert_eq!(a.len(), self.n);
        assert!(g % 2 == 1, "Galois element must be odd");
        let n = self.n as u64;
        let m = 2 * n;
        let mut out = vec![0u64; self.n];
        for (i, &coeff) in a.iter().enumerate() {
            let e = (i as u64 * g) % m;
            if e < n {
                out[e as usize] = coeff;
            } else {
                out[(e - n) as usize] = self.q.neg_mod(coeff);
            }
        }
        out
    }
}

/// Schoolbook negacyclic multiplication, `O(n^2)` — reference for testing.
pub fn negacyclic_mul_naive(a: &[u64], b: &[u64], q: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let p = q.mul_mod(ai, bj);
            let k = i + j;
            if k < n {
                out[k] = q.add_mod(out[k], p);
            } else {
                out[k - n] = q.sub_mod(out[k - n], p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::generate_ntt_prime;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, bits: u32) -> NttTable {
        let q = Modulus::new(generate_ntt_prime(bits, n).unwrap()).unwrap();
        NttTable::new(n, q).unwrap()
    }

    #[test]
    fn roundtrip_identity() {
        let t = table(64, 30);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a: Vec<u64> = (0..64)
            .map(|_| rng.random_range(0..t.modulus().value()))
            .collect();
        let mut b = a.clone();
        t.forward(&mut b);
        t.inverse(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_large_degree_and_modulus() {
        let t = table(4096, 60);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a: Vec<u64> = (0..4096)
            .map(|_| rng.random_range(0..t.modulus().value()))
            .collect();
        let mut b = a.clone();
        t.forward(&mut b);
        assert_ne!(a, b, "transform should not be identity");
        t.inverse(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn pointwise_mult_is_negacyclic_convolution() {
        let t = table(32, 30);
        let q = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a: Vec<u64> = (0..32).map(|_| rng.random_range(0..q.value())).collect();
        let b: Vec<u64> = (0..32).map(|_| rng.random_range(0..q.value())).collect();
        let expect = negacyclic_mul_naive(&a, &b, &q);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul_mod(x, y)).collect();
        t.inverse(&mut fc);
        assert_eq!(fc, expect);
    }

    #[test]
    fn x_times_x_wraps_negatively() {
        // (x^(n-1)) * x = x^n = -1 mod (x^n + 1).
        let t = table(16, 30);
        let q = *t.modulus();
        let mut a = vec![0u64; 16];
        a[15] = 1;
        let mut b = vec![0u64; 16];
        b[1] = 1;
        let c = negacyclic_mul_naive(&a, &b, &q);
        assert_eq!(c[0], q.value() - 1);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul_mod(x, y)).collect();
        t.inverse(&mut fc);
        assert_eq!(fc, c);
    }

    #[test]
    fn forward_evaluates_at_odd_root_powers() {
        // Check the documented layout: index j holds a(ψ^(2·brv(j)+1)).
        let t = table(16, 30);
        let q = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..16).map(|_| rng.random_range(0..q.value())).collect();
        let mut f = a.clone();
        t.forward(&mut f);
        for (j, &fj) in f.iter().enumerate() {
            let e = 2 * bit_reverse(j, t.log_degree()) as u64 + 1;
            let point = q.pow_mod(t.psi(), e);
            let mut eval = 0u64;
            for &c in a.iter().rev() {
                eval = q.add_mod(q.mul_mod(eval, point), c);
            }
            assert_eq!(fj, eval, "slot {j}");
        }
    }

    #[test]
    fn galois_coeff_vs_ntt_permutation_agree() {
        let t = table(32, 30);
        let q = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a: Vec<u64> = (0..32).map(|_| rng.random_range(0..q.value())).collect();
        for g in [3u64, 9, 63, 5] {
            // Path 1: automorphism in coefficient form, then NTT.
            let mut path1 = t.apply_galois_coeff(&a, g);
            t.forward(&mut path1);
            // Path 2: NTT, then permutation.
            let mut fa = a.clone();
            t.forward(&mut fa);
            let perm = t.galois_permutation(g);
            let path2: Vec<u64> = (0..32).map(|j| fa[perm[j] as usize]).collect();
            assert_eq!(path1, path2, "galois element {g}");
        }
    }

    #[test]
    fn galois_identity_element() {
        let t = table(16, 30);
        let perm = t.galois_permutation(1);
        for (j, &p) in perm.iter().enumerate() {
            assert_eq!(p as usize, j);
        }
    }

    #[test]
    fn butterfly_count_matches_formula() {
        let t = table(1024, 30);
        assert_eq!(t.butterflies(), 512 * 10);
    }

    #[test]
    fn cached_tables_are_shared_per_modulus_and_degree() {
        let q = Modulus::new(generate_ntt_prime(30, 512).unwrap()).unwrap();
        let a = NttTable::cached(512, q).unwrap();
        let b = NttTable::cached(512, q).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same (q, n) must share");
        let q2 = Modulus::new(generate_ntt_prime(31, 512).unwrap()).unwrap();
        let c = NttTable::cached(512, q2).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&a, &c), "different q must not");
    }
}
