//! Negacyclic Number Theoretic Transform over `Z_q[x]/(x^n + 1)`.
//!
//! Implements the Longa–Naehrig formulation used by SEAL: a decimation-in-time
//! forward transform with bit-reverse-scrambled twiddle factors and a
//! Gentleman–Sande inverse, both built from Harvey's lazy butterfly
//! (three integer multiplications per butterfly — the constant the Cheetah
//! performance model charges per butterfly, §IV-A).
//!
//! The forward transform maps natural-order coefficients to *bit-reversed*
//! evaluation order: after `forward`, array index `j` holds the evaluation of
//! the polynomial at `ψ^(2·brv(j)+1)` where `ψ` is a primitive `2n`-th root of
//! unity. The inverse consumes that layout and returns natural-order
//! coefficients. Keeping this layout end-to-end means no explicit bit-reversal
//! pass is ever needed, and it is the layout assumed by
//! [`crate::encoder::BatchEncoder`] and the Galois slot permutations.
//!
//! The butterfly loops themselves live in [`crate::simd`] and are selected
//! per thread (scalar reference / portable lanes / AVX2 — bit-identical by
//! contract). Twiddles are stored **struct-of-arrays** — separate `operand`
//! and Shoup-`quotient` planes — so lane kernels load each side
//! contiguously instead of striding through `(op, quo)` pairs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::arith::{bit_reverse, primitive_root_2n, Modulus, ShoupPrecomp, MAX_NTT_MODULUS_BITS};
use crate::error::{Error, Result};
use crate::simd;

/// Precomputed tables for the negacyclic NTT of a fixed degree and modulus.
///
/// # Examples
///
/// ```
/// use cheetah_bfv::arith::{generate_ntt_prime, Modulus};
/// use cheetah_bfv::ntt::NttTable;
///
/// # fn main() -> Result<(), cheetah_bfv::Error> {
/// let n = 1024;
/// let q = Modulus::new(generate_ntt_prime(30, n)?)?;
/// let table = NttTable::new(n, q)?;
/// let mut a = vec![0u64; n];
/// a[1] = 5; // the polynomial 5x
/// let original = a.clone();
/// table.forward(&mut a);
/// table.inverse(&mut a);
/// assert_eq!(a, original);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    log_n: u32,
    q: Modulus,
    /// `psi_rev_op[i] = ψ^{brv(i, log n)}` (struct-of-arrays: operands and
    /// Shoup quotients in separate planes for contiguous lane loads).
    psi_rev_op: Vec<u64>,
    /// Shoup quotients `floor(psi_rev_op[i]·2^64 / q)`.
    psi_rev_quo: Vec<u64>,
    /// `psi_inv_rev_op[i] = ψ^{-brv(i, log n)}`.
    psi_inv_rev_op: Vec<u64>,
    /// Shoup quotients for the inverse twiddles.
    psi_inv_rev_quo: Vec<u64>,
    /// `n^{-1} mod q`, applied at the end of the inverse transform.
    n_inv: ShoupPrecomp,
    /// The primitive 2n-th root of unity used to build the tables.
    psi: u64,
}

impl NttTable {
    /// Builds NTT tables for degree `n` (a power of two ≥ 8) and prime
    /// modulus `q ≡ 1 (mod 2n)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] unless `n` is a power of two ≥ 8,
    /// [`Error::InvalidModulus`] if `q ≥ 2^61` (the lazy Harvey butterfly
    /// accumulates `x + 2q - u < 4q` in a `u64`; see
    /// [`MAX_NTT_MODULUS_BITS`]), and an error if `q` admits no primitive
    /// `2n`-th root of unity or if `n` is not invertible mod `q`.
    pub fn new(n: usize, q: Modulus) -> Result<Self> {
        if !n.is_power_of_two() || n < 8 {
            return Err(Error::InvalidDegree(n));
        }
        if q.value() >> MAX_NTT_MODULUS_BITS != 0 {
            return Err(Error::InvalidModulus(q.value()));
        }
        let log_n = n.trailing_zeros();
        let psi = primitive_root_2n(&q, n)?;
        let psi_inv = q.inv_mod(psi)?;

        let mut psi_rev_op = Vec::with_capacity(n);
        let mut psi_rev_quo = Vec::with_capacity(n);
        let mut psi_inv_rev_op = Vec::with_capacity(n);
        let mut psi_inv_rev_quo = Vec::with_capacity(n);
        // Powers in natural order first, then scramble.
        let mut pow = 1u64;
        let mut pow_inv = 1u64;
        let mut powers = vec![0u64; n];
        let mut powers_inv = vec![0u64; n];
        for i in 0..n {
            powers[i] = pow;
            powers_inv[i] = pow_inv;
            pow = q.mul_mod(pow, psi);
            pow_inv = q.mul_mod(pow_inv, psi_inv);
        }
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            let fwd = ShoupPrecomp::new(powers[r], &q);
            psi_rev_op.push(fwd.operand);
            psi_rev_quo.push(fwd.quotient);
            let inv = ShoupPrecomp::new(powers_inv[r], &q);
            psi_inv_rev_op.push(inv.operand);
            psi_inv_rev_quo.push(inv.quotient);
        }
        let n_inv = ShoupPrecomp::new(q.inv_mod(n as u64)?, &q);
        Ok(Self {
            n,
            log_n,
            q,
            psi_rev_op,
            psi_rev_quo,
            psi_inv_rev_op,
            psi_inv_rev_quo,
            n_inv,
            psi,
        })
    }

    /// Memoized variant of [`NttTable::new`]: tables are cached per
    /// `(modulus, n)` process-wide, so multi-limb parameter sets (and
    /// repeated [`crate::params::BfvParams`] builds over the same primes)
    /// pay the `O(n)` root-power precompute once and share one allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NttTable::new`]; failures are not cached.
    pub fn cached(n: usize, q: Modulus) -> Result<Arc<Self>> {
        type TableCache = Mutex<HashMap<(u64, usize), Arc<NttTable>>>;
        static CACHE: OnceLock<TableCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(t) = cache.lock().expect("ntt cache").get(&(q.value(), n)) {
            return Ok(Arc::clone(t));
        }
        // Build outside the lock: construction is the expensive part.
        let table = Arc::new(Self::new(n, q)?);
        let mut guard = cache.lock().expect("ntt cache");
        let entry = guard
            .entry((q.value(), n))
            .or_insert_with(|| Arc::clone(&table));
        Ok(Arc::clone(entry))
    }

    /// Polynomial degree `n`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// `log2(n)`.
    #[inline]
    pub fn log_degree(&self) -> u32 {
        self.log_n
    }

    /// The coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.q
    }

    /// The primitive `2n`-th root of unity backing the tables.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Number of Harvey butterflies per transform: `(n/2)·log2(n)`.
    ///
    /// Each butterfly costs three integer multiplications in the paper's
    /// cost model (§IV-A).
    #[inline]
    pub fn butterflies(&self) -> u64 {
        (self.n as u64 / 2) * self.log_n as u64
    }

    /// In-place forward negacyclic NTT (natural → bit-reversed order).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParameterMismatch`] if `a.len() != n`.
    pub fn try_forward(&self, a: &mut [u64]) -> Result<()> {
        if a.len() != self.n {
            return Err(Error::ParameterMismatch);
        }
        simd::ntt_forward(a, &self.psi_rev_op, &self.psi_rev_quo, self.q.value());
        Ok(())
    }

    /// In-place forward negacyclic NTT (natural → bit-reversed order).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n` — internal call sites guarantee the shape
    /// by construction; boundary code should use [`NttTable::try_forward`].
    pub fn forward(&self, a: &mut [u64]) {
        self.try_forward(a)
            .expect("input length must equal the degree");
    }

    /// In-place inverse negacyclic NTT (bit-reversed → natural order),
    /// including the `n^{-1}` scaling.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParameterMismatch`] if `a.len() != n`.
    pub fn try_inverse(&self, a: &mut [u64]) -> Result<()> {
        if a.len() != self.n {
            return Err(Error::ParameterMismatch);
        }
        simd::ntt_inverse(
            a,
            &self.psi_inv_rev_op,
            &self.psi_inv_rev_quo,
            self.q.value(),
            self.n_inv.operand,
            self.n_inv.quotient,
        );
        Ok(())
    }

    /// In-place inverse negacyclic NTT (bit-reversed → natural order),
    /// including the `n^{-1}` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n` — internal call sites guarantee the shape
    /// by construction; boundary code should use [`NttTable::try_inverse`].
    pub fn inverse(&self, a: &mut [u64]) {
        self.try_inverse(a)
            .expect("input length must equal the degree");
    }

    /// Builds the slot permutation realizing the Galois automorphism
    /// `x -> x^g` directly on NTT-form (bit-reversed evaluation) data.
    ///
    /// `result[j] = source index whose value moves to position j`, i.e.
    /// `b_ntt[j] = a_ntt[perm[j]]`. Applying the automorphism in evaluation
    /// form is a pure permutation — no multiplications — which is why the
    /// paper's rotate cost model only charges the key-switch NTTs.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even (automorphisms of `x^n + 1` need odd
    /// exponents); boundary code should use
    /// [`NttTable::try_galois_permutation`].
    pub fn galois_permutation(&self, g: u64) -> Vec<u32> {
        self.try_galois_permutation(g)
            .expect("Galois element must be odd")
    }

    /// [`NttTable::galois_permutation`] with the structural check as a
    /// typed error.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGaloisElement`] if `g` is even.
    pub fn try_galois_permutation(&self, g: u64) -> Result<Vec<u32>> {
        if g.is_multiple_of(2) {
            return Err(Error::InvalidGaloisElement(g));
        }
        let n = self.n;
        let m = 2 * n as u64;
        let mut perm = vec![0u32; n];
        for (j, slot) in perm.iter_mut().enumerate() {
            let e = 2 * bit_reverse(j, self.log_n) as u64 + 1;
            let e_src = (e * g) % m;
            let j_src = bit_reverse(((e_src - 1) / 2) as usize, self.log_n);
            *slot = j_src as u32;
        }
        Ok(perm)
    }

    /// Applies the Galois automorphism `x -> x^g` to a polynomial in
    /// *coefficient* form: coefficient `a_i` moves to `x^{i·g mod 2n}` with a
    /// sign flip whenever the exponent wraps past `n`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n` or `g` is even; boundary code should use
    /// [`NttTable::try_apply_galois_coeff`].
    pub fn apply_galois_coeff(&self, a: &[u64], g: u64) -> Vec<u64> {
        self.try_apply_galois_coeff(a, g)
            .expect("length must equal the degree and the Galois element must be odd")
    }

    /// [`NttTable::apply_galois_coeff`] with the structural checks as
    /// typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParameterMismatch`] if `a.len() != n` and
    /// [`Error::InvalidGaloisElement`] if `g` is even.
    pub fn try_apply_galois_coeff(&self, a: &[u64], g: u64) -> Result<Vec<u64>> {
        if a.len() != self.n {
            return Err(Error::ParameterMismatch);
        }
        if g.is_multiple_of(2) {
            return Err(Error::InvalidGaloisElement(g));
        }
        let n = self.n as u64;
        let m = 2 * n;
        let mut out = vec![0u64; self.n];
        for (i, &coeff) in a.iter().enumerate() {
            let e = (i as u64 * g) % m;
            if e < n {
                out[e as usize] = coeff;
            } else {
                out[(e - n) as usize] = self.q.neg_mod(coeff);
            }
        }
        Ok(out)
    }
}

/// Schoolbook negacyclic multiplication, `O(n^2)` — reference for testing.
pub fn negacyclic_mul_naive(a: &[u64], b: &[u64], q: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let p = q.mul_mod(ai, bj);
            let k = i + j;
            if k < n {
                out[k] = q.add_mod(out[k], p);
            } else {
                out[k - n] = q.sub_mod(out[k - n], p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::generate_ntt_prime;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, bits: u32) -> NttTable {
        let q = Modulus::new(generate_ntt_prime(bits, n).unwrap()).unwrap();
        NttTable::new(n, q).unwrap()
    }

    #[test]
    fn roundtrip_identity() {
        let t = table(64, 30);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a: Vec<u64> = (0..64)
            .map(|_| rng.random_range(0..t.modulus().value()))
            .collect();
        let mut b = a.clone();
        t.forward(&mut b);
        t.inverse(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_large_degree_and_modulus() {
        let t = table(4096, 60);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a: Vec<u64> = (0..4096)
            .map(|_| rng.random_range(0..t.modulus().value()))
            .collect();
        let mut b = a.clone();
        t.forward(&mut b);
        assert_ne!(a, b, "transform should not be identity");
        t.inverse(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn pointwise_mult_is_negacyclic_convolution() {
        let t = table(32, 30);
        let q = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a: Vec<u64> = (0..32).map(|_| rng.random_range(0..q.value())).collect();
        let b: Vec<u64> = (0..32).map(|_| rng.random_range(0..q.value())).collect();
        let expect = negacyclic_mul_naive(&a, &b, &q);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul_mod(x, y)).collect();
        t.inverse(&mut fc);
        assert_eq!(fc, expect);
    }

    #[test]
    fn x_times_x_wraps_negatively() {
        // (x^(n-1)) * x = x^n = -1 mod (x^n + 1).
        let t = table(16, 30);
        let q = *t.modulus();
        let mut a = vec![0u64; 16];
        a[15] = 1;
        let mut b = vec![0u64; 16];
        b[1] = 1;
        let c = negacyclic_mul_naive(&a, &b, &q);
        assert_eq!(c[0], q.value() - 1);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul_mod(x, y)).collect();
        t.inverse(&mut fc);
        assert_eq!(fc, c);
    }

    #[test]
    fn forward_evaluates_at_odd_root_powers() {
        // Check the documented layout: index j holds a(ψ^(2·brv(j)+1)).
        let t = table(16, 30);
        let q = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..16).map(|_| rng.random_range(0..q.value())).collect();
        let mut f = a.clone();
        t.forward(&mut f);
        for (j, &fj) in f.iter().enumerate() {
            let e = 2 * bit_reverse(j, t.log_degree()) as u64 + 1;
            let point = q.pow_mod(t.psi(), e);
            let mut eval = 0u64;
            for &c in a.iter().rev() {
                eval = q.add_mod(q.mul_mod(eval, point), c);
            }
            assert_eq!(fj, eval, "slot {j}");
        }
    }

    #[test]
    fn galois_coeff_vs_ntt_permutation_agree() {
        let t = table(32, 30);
        let q = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a: Vec<u64> = (0..32).map(|_| rng.random_range(0..q.value())).collect();
        for g in [3u64, 9, 63, 5] {
            // Path 1: automorphism in coefficient form, then NTT.
            let mut path1 = t.apply_galois_coeff(&a, g);
            t.forward(&mut path1);
            // Path 2: NTT, then permutation.
            let mut fa = a.clone();
            t.forward(&mut fa);
            let perm = t.galois_permutation(g);
            let path2: Vec<u64> = (0..32).map(|j| fa[perm[j] as usize]).collect();
            assert_eq!(path1, path2, "galois element {g}");
        }
    }

    #[test]
    fn galois_identity_element() {
        let t = table(16, 30);
        let perm = t.galois_permutation(1);
        for (j, &p) in perm.iter().enumerate() {
            assert_eq!(p as usize, j);
        }
    }

    #[test]
    fn butterfly_count_matches_formula() {
        let t = table(1024, 30);
        assert_eq!(t.butterflies(), 512 * 10);
    }

    #[test]
    fn cached_tables_are_shared_per_modulus_and_degree() {
        let q = Modulus::new(generate_ntt_prime(30, 512).unwrap()).unwrap();
        let a = NttTable::cached(512, q).unwrap();
        let b = NttTable::cached(512, q).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same (q, n) must share");
        let q2 = Modulus::new(generate_ntt_prime(31, 512).unwrap()).unwrap();
        let c = NttTable::cached(512, q2).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&a, &c), "different q must not");
    }

    #[test]
    fn rejects_overwide_modulus_with_typed_error() {
        // 0x3fff_ffff_e800_0001 is a valid 62-bit raw `Modulus` (Barrett
        // arithmetic is fine with it) but exceeds the 2^61 NTT-limb cap:
        // the Harvey butterfly's x + 2q - u accumulation needs headroom.
        let q = Modulus::new(0x3fff_ffff_e800_0001).unwrap();
        assert!(matches!(
            NttTable::new(4096, q),
            Err(crate::error::Error::InvalidModulus(0x3fff_ffff_e800_0001))
        ));
        // The widest admissible limb (61 bits) still builds.
        let p61 = crate::arith::generate_prime_congruent(61, 2 * 4096).unwrap();
        assert!(NttTable::new(4096, Modulus::new(p61).unwrap()).is_ok());
    }

    #[test]
    fn rejects_bad_degree_with_typed_error() {
        let q = Modulus::new(generate_ntt_prime(30, 8).unwrap()).unwrap();
        for n in [0usize, 4, 12, 100] {
            assert!(
                matches!(
                    NttTable::new(n, q),
                    Err(crate::error::Error::InvalidDegree(bad)) if bad == n
                ),
                "n = {n}"
            );
        }
    }

    #[test]
    fn wrong_length_input_is_a_typed_error() {
        let t = table(64, 30);
        let mut short = vec![0u64; 32];
        assert!(matches!(
            t.try_forward(&mut short),
            Err(crate::error::Error::ParameterMismatch)
        ));
        assert!(matches!(
            t.try_inverse(&mut short),
            Err(crate::error::Error::ParameterMismatch)
        ));
        let mut ok = vec![0u64; 64];
        assert!(t.try_forward(&mut ok).is_ok());
        assert!(t.try_inverse(&mut ok).is_ok());
    }

    #[test]
    fn even_galois_element_is_a_typed_error() {
        let t = table(32, 30);
        assert!(matches!(
            t.try_galois_permutation(6),
            Err(crate::error::Error::InvalidGaloisElement(6))
        ));
        let a = vec![0u64; 32];
        assert!(matches!(
            t.try_apply_galois_coeff(&a, 4),
            Err(crate::error::Error::InvalidGaloisElement(4))
        ));
        assert!(matches!(
            t.try_apply_galois_coeff(&a[..7], 3),
            Err(crate::error::Error::ParameterMismatch)
        ));
    }

    #[test]
    fn backends_transform_bit_identically() {
        use crate::simd::{current_backend, detect, force_backend, SimdBackend};
        // Forward and inverse on every backend this build can run must
        // equal the pinned scalar reference byte-for-byte. Degree 64 makes
        // the small-t butterfly stages (t < LANES) a large fraction of the
        // work; 60-bit q exercises the top of the headroom range.
        for (n, bits) in [(64usize, 30u32), (256, 60), (4096, 59)] {
            let t = table(n, bits);
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64 ^ 0xD15);
            let a: Vec<u64> = (0..n)
                .map(|_| rng.random_range(0..t.modulus().value()))
                .collect();
            force_backend(Some(SimdBackend::Scalar));
            let mut fwd_ref = a.clone();
            t.forward(&mut fwd_ref);
            let mut inv_ref = fwd_ref.clone();
            t.inverse(&mut inv_ref);
            assert_eq!(inv_ref, a);
            for backend in [SimdBackend::Portable, SimdBackend::Avx2] {
                let eff = force_backend(Some(backend));
                if eff != backend {
                    continue; // not runnable in this build/CPU
                }
                let mut fwd = a.clone();
                t.forward(&mut fwd);
                assert_eq!(fwd, fwd_ref, "{} forward n={n}", backend.name());
                let mut inv = fwd.clone();
                t.inverse(&mut inv);
                assert_eq!(inv, a, "{} inverse n={n}", backend.name());
            }
            force_backend(None);
            assert_eq!(current_backend(), detect());
        }
    }
}
