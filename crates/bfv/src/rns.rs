//! The RNS modulus chain: multi-limb ciphertext arithmetic.
//!
//! Cheetah's larger-`q` regimes (deep noise budgets, ResNet50-scale key
//! switching) need a ciphertext modulus far past one machine word. Instead
//! of big-integer coefficients, the engine follows the residue-number-system
//! design every production BFV library uses: `Q = q_0 · q_1 · … · q_{l-1}`
//! for word-sized NTT primes `q_i`, and a polynomial mod `Q` is stored as
//! `l` *limb planes* — its residues mod each `q_i`. Every element-wise
//! kernel (add, multiply, NTT, Galois permutation) then runs limb-by-limb
//! in plain `u64` Barrett arithmetic; only decryption and base-`A` digit
//! decomposition ever cross limbs, via [`crate::arith::CrtBasis`].
//!
//! Two types implement this:
//!
//! * [`ModulusChain`] — the ordered CRT primes with their per-limb
//!   [`NttTable`]s (memoized process-wide) and the Garner composition
//!   constants. Owned by [`crate::params::BfvParams`]; shared by every
//!   object in a session.
//! * [`RnsPoly`] — `l` limb planes in **one contiguous allocation** with
//!   stride-`n` views (the `PolyBatch` layout from the batched-NTT work),
//!   so limb loops stream linearly through memory.
//!
//! A chain of length 1 is bit-identical to the historical single-modulus
//! engine: every kernel degenerates to exactly the scalar loop the old
//! `Poly` ran, which is the migration guarantee the equivalence proptests
//! in `tests/rns_equivalence.rs` pin down.

use std::fmt;
use std::sync::Arc;

use crate::arith::{CrtBasis, Modulus};
use crate::error::{Error, Result};
use crate::ntt::NttTable;
use crate::poly::{
    add_assign_slice, fma_pointwise_slice, fma_pow2_slice, mul_pointwise_slice, mul_pow2_slice,
    mul_scalar_slice, negate_slice, permute_slice, sub_assign_slice, Representation,
};

/// An ordered chain of CRT primes with per-limb NTT tables and the
/// cross-limb (Garner/CRT) constants.
///
/// Cheap to clone (internally reference-counted). Two chains compare equal
/// iff they have the same degree and the same primes in the same order —
/// the compatibility predicate every [`RnsPoly`] operation enforces.
#[derive(Clone)]
pub struct ModulusChain {
    inner: Arc<ChainInner>,
}

struct ChainInner {
    n: usize,
    tables: Vec<Arc<NttTable>>,
    crt: CrtBasis,
    /// `drop_inv[k][i] = q_k^{-1} mod q_i` for `i < k`: the per-residue
    /// correction constants of modulus switching (dropping limb `k` divides
    /// every remaining residue by `q_k`, exactly rounded).
    drop_inv: Vec<Vec<u64>>,
}

impl fmt::Debug for ModulusChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModulusChain")
            .field("n", &self.inner.n)
            .field(
                "moduli",
                &self.moduli().iter().map(Modulus::value).collect::<Vec<_>>(),
            )
            .field("total_bits", &self.total_bits())
            .finish()
    }
}

impl PartialEq for ModulusChain {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.n == other.inner.n && self.moduli() == other.moduli())
    }
}
impl Eq for ModulusChain {}

impl ModulusChain {
    /// Builds a chain for degree `n` from prime limb values (each must be
    /// an NTT prime for `n`, pairwise distinct).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidLimbCount`] / [`Error::ModulusChainTooLarge`] /
    ///   [`Error::NotInvertible`] from [`CrtBasis::new`];
    /// * [`Error::InvalidModulus`] for out-of-range limb values;
    /// * [`Error::NoPrimitiveRoot`] when a limb is not `≡ 1 (mod 2n)`.
    pub fn new(n: usize, limb_values: &[u64]) -> Result<Self> {
        let moduli: Vec<Modulus> = limb_values
            .iter()
            .map(|&q| Modulus::new(q))
            .collect::<Result<_>>()?;
        let crt = CrtBasis::new(&moduli)?;
        let tables: Vec<Arc<NttTable>> = moduli
            .iter()
            .map(|&q| NttTable::cached(n, q))
            .collect::<Result<_>>()?;
        let mut drop_inv = Vec::with_capacity(moduli.len());
        for (k, qk) in moduli.iter().enumerate() {
            let row: Vec<u64> = moduli[..k]
                .iter()
                .map(|qi| qi.inv_mod(qk.value()))
                .collect::<Result<_>>()?;
            drop_inv.push(row);
        }
        Ok(Self {
            inner: Arc::new(ChainInner {
                n,
                tables,
                crt,
                drop_inv,
            }),
        })
    }

    /// Polynomial degree `n` every limb plane has.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inner.n
    }

    /// Number of limbs `l`.
    #[inline]
    pub fn limbs(&self) -> usize {
        self.inner.crt.limbs()
    }

    /// Limb modulus `q_i`.
    #[inline]
    pub fn modulus(&self, i: usize) -> &Modulus {
        &self.inner.crt.moduli()[i]
    }

    /// All limb moduli, in chain order.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        self.inner.crt.moduli()
    }

    /// NTT tables for limb `i`.
    #[inline]
    pub fn table(&self, i: usize) -> &NttTable {
        &self.inner.tables[i]
    }

    /// The shared (memoized) table handles, one per limb.
    #[inline]
    pub fn tables(&self) -> &[Arc<NttTable>] {
        &self.inner.tables
    }

    /// The CRT basis backing cross-limb composition.
    #[inline]
    pub fn crt(&self) -> &CrtBasis {
        &self.inner.crt
    }

    /// The composed ciphertext modulus `Q = Π q_i` (exact; `< 2^127`).
    #[inline]
    pub fn big_q(&self) -> u128 {
        self.inner.crt.big_q()
    }

    /// Bit width of `Q` — the `log q` every noise-budget and
    /// decomposition-level formula consumes.
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.inner.crt.total_bits()
    }

    /// `ceil(log_base(Q))`: base-`base` digits needed to cover `[0, Q)`
    /// over the *composed* modulus. For one limb this is exactly the
    /// historical `decomposition_levels`; multi-limb key switching uses the
    /// per-limb [`ModulusChain::rns_decomposition_levels`] instead.
    pub fn decomposition_levels(&self, base: u64) -> usize {
        assert!(base >= 2 && base.is_power_of_two());
        let b_bits = base.trailing_zeros();
        self.total_bits().div_ceil(b_bits) as usize
    }

    /// `ceil(log_base(q_i))`: base-`base` digits needed to cover limb `i`'s
    /// residue range `[0, q_i)` in the RNS-native decomposition.
    pub fn limb_decomposition_levels(&self, base: u64, i: usize) -> usize {
        assert!(base >= 2 && base.is_power_of_two());
        let b_bits = base.trailing_zeros();
        self.modulus(i).bits().div_ceil(b_bits) as usize
    }

    /// Total digit count `Σ_i ceil(log_base(q_i))` of the per-limb
    /// (`q̂_i`) RNS decomposition — the number of key-switch pairs a Galois
    /// key carries and the digit polynomials one `HE_Rotate` processes.
    /// Equals [`ModulusChain::decomposition_levels`] for a single limb.
    pub fn rns_decomposition_levels(&self, base: u64) -> usize {
        (0..self.limbs())
            .map(|i| self.limb_decomposition_levels(base, i))
            .sum()
    }

    /// Validates a digit-decomposition base against this chain: it must be
    /// a power of two ≥ 2 and strictly below every limb (digits are lifted
    /// limb-wise, so they must be valid residues everywhere).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDecompositionBase`] otherwise.
    pub fn check_decomposition_base(&self, base: u64) -> Result<()> {
        if base < 2 || !base.is_power_of_two() || self.moduli().iter().any(|q| base >= q.value()) {
            return Err(Error::InvalidDecompositionBase(base));
        }
        Ok(())
    }

    /// Errors unless `other` is the same chain (degree and primes).
    pub fn check_same(&self, other: &ModulusChain) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(Error::ParameterMismatch)
        }
    }

    fn check_poly(&self, p: &RnsPoly) -> Result<()> {
        if p.limbs() != self.limbs() || p.degree() != self.degree() {
            return Err(Error::ParameterMismatch);
        }
        Ok(())
    }

    /// Drops the last *live* limb of a coefficient-form polynomial in
    /// place: the modulus-switching kernel. With `k` live limbs (`k` may be
    /// below the chain length for an already-switched polynomial) and
    /// `q_last = q_{k-1}`, every composed coefficient `c` is replaced by
    /// the exactly rounded `round(c / q_last)` over the surviving prefix
    /// modulus `Q' = q_0 ⋯ q_{k-2}`, entirely in per-residue word
    /// arithmetic:
    ///
    /// `c'_i = (c_i + ⌊q_last/2⌋ − [c_last + ⌊q_last/2⌋]_{q_last}) · q_last⁻¹  (mod q_i)`
    ///
    /// which is `⌊(c + ⌊q_last/2⌋)/q_last⌋ = round(c/q_last) mod q_i` because
    /// `b − [b]_{q_last}` is an exact multiple of `q_last`. The polynomial
    /// shrinks by one limb plane (prefix planes are preserved in place —
    /// limb-major storage makes the drop a truncation).
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] unless in coefficient form, and
    /// [`Error::ParameterMismatch`] when fewer than two limbs are live, the
    /// polynomial has more limbs than the chain, or degrees differ.
    pub fn mod_switch_in_place(&self, p: &mut RnsPoly) -> Result<()> {
        p.expect_repr(Representation::Coeff)?;
        let live = p.limbs();
        let n = p.degree();
        if live < 2 || live > self.limbs() || n != self.degree() {
            return Err(Error::ParameterMismatch);
        }
        let q_last = *self.modulus(live - 1);
        let half = q_last.value() >> 1;
        let (head, tail) = p.data.split_at_mut((live - 1) * n);
        let last = &tail[..n];
        for (i, plane) in head.chunks_exact_mut(n).enumerate() {
            let q_i = self.modulus(i);
            let inv = self.inner.drop_inv[live - 1][i];
            let half_i = q_i.reduce(half);
            for (x, &cl) in plane.iter_mut().zip(last) {
                let b_last = q_last.add_mod(cl, half);
                let b_i = q_i.add_mod(*x, half_i);
                *x = q_i.mul_mod(q_i.sub_mod(b_i, q_i.reduce(b_last)), inv);
            }
        }
        p.truncate_limbs(live - 1);
        Ok(())
    }
}

/// A polynomial in `Z_Q[x]/(x^n + 1)` stored as `l` contiguous limb planes
/// (limb-major, stride `n`), with one representation tag shared by every
/// plane — limbs always move through the NTT together.
///
/// The API mirrors the scalar [`crate::poly::Poly`]; every operation takes
/// the [`ModulusChain`] the polynomial belongs to and loops the matching
/// scalar kernel over the limb planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    data: Vec<u64>,
    n: usize,
    limbs: usize,
    repr: Representation,
}

impl RnsPoly {
    /// The zero polynomial for a chain, in the given representation.
    pub fn zero(chain: &ModulusChain, repr: Representation) -> Self {
        Self::zero_with(chain.limbs(), chain.degree(), repr)
    }

    /// The zero polynomial with explicit shape (scratch-pool constructor).
    pub fn zero_with(limbs: usize, n: usize, repr: Representation) -> Self {
        Self {
            data: vec![0; limbs * n],
            n,
            limbs,
            repr,
        }
    }

    /// Wraps a raw limb-major buffer of length `limbs · n` (values must be
    /// reduced per limb).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not `limbs · n`.
    pub fn from_data(data: Vec<u64>, limbs: usize, n: usize, repr: Representation) -> Self {
        assert_eq!(data.len(), limbs * n, "buffer must be limbs * n words");
        Self {
            data,
            n,
            limbs,
            repr,
        }
    }

    /// Builds a polynomial where limb `i`, coefficient `j` is `f(i, j)`
    /// (values must already be reduced mod `q_i`).
    pub fn from_fn(
        chain: &ModulusChain,
        repr: Representation,
        mut f: impl FnMut(usize, usize) -> u64,
    ) -> Self {
        let (l, n) = (chain.limbs(), chain.degree());
        let mut data = Vec::with_capacity(l * n);
        for i in 0..l {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self {
            data,
            n,
            limbs: l,
            repr,
        }
    }

    /// Lifts signed coefficients into every limb plane (coefficient form):
    /// the CRT image of the centered integer vector.
    pub fn from_signed(coeffs: &[i64], chain: &ModulusChain) -> Self {
        Self::from_fn(chain, Representation::Coeff, |i, j| {
            chain.modulus(i).from_signed(coeffs[j])
        })
    }

    /// Lifts small unsigned coefficients (each `< min q_i`) into every limb
    /// plane (coefficient form).
    pub fn from_small_unsigned(coeffs: &[u64], chain: &ModulusChain) -> Self {
        Self::from_fn(chain, Representation::Coeff, |i, j| {
            chain.modulus(i).reduce(coeffs[j])
        })
    }

    /// Number of limb planes.
    #[inline]
    pub fn limbs(&self) -> usize {
        self.limbs
    }

    /// Degree bound `n` (the per-limb stride).
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Current representation (shared by all limbs).
    #[inline]
    pub fn representation(&self) -> Representation {
        self.repr
    }

    /// Overwrites the representation tag without touching residues (the
    /// scratch-reuse escape hatch, as on `Poly`).
    #[inline]
    pub fn set_representation(&mut self, repr: Representation) {
        self.repr = repr;
    }

    /// The whole contiguous limb-major storage.
    #[inline]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Mutable contiguous storage. Callers must keep limbs reduced.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Consumes the polynomial, returning its storage.
    pub fn into_data(self) -> Vec<u64> {
        self.data
    }

    /// Read view of limb plane `i`.
    #[inline]
    pub fn limb(&self, i: usize) -> &[u64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable view of limb plane `i`.
    #[inline]
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Iterator over stride-`n` limb views.
    pub fn limb_planes(&self) -> impl Iterator<Item = &[u64]> {
        self.data.chunks_exact(self.n)
    }

    /// Zeroes every residue in place, keeping the representation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0);
    }

    /// Copies residues and representation from `other` without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn copy_from(&mut self, other: &RnsPoly) {
        self.data.copy_from_slice(&other.data);
        self.repr = other.repr;
    }

    /// Applies the evaluation-domain slot permutation limb-by-limb:
    /// `self[limb][j] = src[limb][perm[j]]` (the Galois automorphism; the
    /// permutation depends only on `n`, so one table serves every limb).
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn permute_from(&mut self, src: &RnsPoly, perm: &[u32]) {
        assert_eq!(self.data.len(), src.data.len());
        assert_eq!(self.n, src.n);
        assert_eq!(perm.len(), self.n);
        for (dst, s) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(src.data.chunks_exact(self.n))
        {
            permute_slice(dst, s, perm);
        }
        self.repr = src.repr;
    }

    /// Checks the representation, erroring otherwise.
    pub fn expect_repr(&self, expected: Representation) -> Result<()> {
        if self.repr != expected {
            return Err(Error::WrongRepresentation {
                expected: repr_name(expected),
                found: repr_name(self.repr),
            });
        }
        Ok(())
    }

    /// Converts to evaluation form in place, one NTT per limb plane
    /// (no-op if already there).
    pub fn to_eval(&mut self, chain: &ModulusChain) {
        if self.repr == Representation::Coeff {
            for (i, plane) in self.data.chunks_exact_mut(self.n).enumerate() {
                chain.table(i).forward(plane);
            }
            self.repr = Representation::Eval;
        }
    }

    /// Converts to coefficient form in place, one inverse NTT per limb
    /// plane (no-op if already there).
    pub fn to_coeff(&mut self, chain: &ModulusChain) {
        if self.repr == Representation::Eval {
            for (i, plane) in self.data.chunks_exact_mut(self.n).enumerate() {
                chain.table(i).inverse(plane);
            }
            self.repr = Representation::Coeff;
        }
    }

    /// [`RnsPoly::to_eval`] with the limb planes transformed across up to
    /// `threads` worker threads (the [`crate::batch::PolyBatch`]
    /// chunk-per-worker scheme applied to independent limb planes, each
    /// against its own table). Bit-identical for every thread count;
    /// `threads <= 1` (or one limb) runs the serial loop.
    pub fn to_eval_threaded(&mut self, chain: &ModulusChain, threads: usize) {
        if self.repr == Representation::Coeff {
            self.transform_planes(chain, threads, false);
            self.repr = Representation::Eval;
        }
    }

    /// [`RnsPoly::to_coeff`] with thread-parallel limb planes (see
    /// [`RnsPoly::to_eval_threaded`]).
    pub fn to_coeff_threaded(&mut self, chain: &ModulusChain, threads: usize) {
        if self.repr == Representation::Eval {
            self.transform_planes(chain, threads, true);
            self.repr = Representation::Coeff;
        }
    }

    /// Runs one NTT per limb plane, splitting planes into contiguous
    /// per-worker chunks. Unlike the single-modulus `PolyBatch`, every
    /// plane uses its own limb's table, so chunks carry their starting limb
    /// index.
    fn transform_planes(&mut self, chain: &ModulusChain, threads: usize, inverse: bool) {
        let (l, n) = (self.limbs, self.n);
        let run = |limb: usize, plane: &mut [u64]| {
            if inverse {
                chain.table(limb).inverse(plane);
            } else {
                chain.table(limb).forward(plane);
            }
        };
        if threads <= 1 || l <= 1 {
            for (i, plane) in self.data.chunks_exact_mut(n).enumerate() {
                run(i, plane);
            }
            return;
        }
        let per_worker = l.div_ceil(threads.min(l));
        std::thread::scope(|scope| {
            for (w, chunk) in self.data.chunks_mut(per_worker * n).enumerate() {
                scope.spawn(move || {
                    for (k, plane) in chunk.chunks_exact_mut(n).enumerate() {
                        run(w * per_worker + k, plane);
                    }
                });
            }
        });
    }

    /// Drops limb planes past `limbs`, keeping the prefix in place (planes
    /// are limb-major, so this is a truncation; capacity is retained for
    /// reuse). No-op when already at or below `limbs`.
    pub fn truncate_limbs(&mut self, limbs: usize) {
        if limbs < self.limbs {
            self.data.truncate(limbs * self.n);
            self.limbs = limbs;
        }
    }

    /// Resizes to exactly `limbs` planes: truncates the suffix or appends
    /// zeroed planes (reusing retained capacity where possible). Callers
    /// overwriting the contents afterwards (scratch-style reuse) are the
    /// intended audience — grown planes are *zero*, not valid residues of
    /// anything.
    pub fn resize_limbs(&mut self, limbs: usize) {
        if limbs != self.limbs {
            self.data.resize(limbs * self.n, 0);
            self.limbs = limbs;
        }
    }

    fn check_binary(&self, other: &RnsPoly, chain: &ModulusChain) -> Result<()> {
        chain.check_poly(self)?;
        chain.check_poly(other)?;
        other.expect_repr(self.repr)
    }

    /// `self += other` limb-wise.
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] on a representation mismatch,
    /// [`Error::ParameterMismatch`] on a shape/chain mismatch.
    pub fn add_assign(&mut self, other: &RnsPoly, chain: &ModulusChain) -> Result<()> {
        self.check_binary(other, chain)?;
        for (i, (a, b)) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(other.limb_planes())
            .enumerate()
        {
            add_assign_slice(a, b, chain.modulus(i));
        }
        Ok(())
    }

    /// `self -= other` limb-wise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsPoly::add_assign`].
    pub fn sub_assign(&mut self, other: &RnsPoly, chain: &ModulusChain) -> Result<()> {
        self.check_binary(other, chain)?;
        for (i, (a, b)) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(other.limb_planes())
            .enumerate()
        {
            sub_assign_slice(a, b, chain.modulus(i));
        }
        Ok(())
    }

    /// Negates every residue limb-wise in place.
    pub fn negate(&mut self, chain: &ModulusChain) {
        for (i, a) in self.data.chunks_exact_mut(self.n).enumerate() {
            negate_slice(a, chain.modulus(i));
        }
    }

    /// `self *= other` pointwise limb-wise; both must be in evaluation
    /// form.
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] unless both operands are in
    /// evaluation form, [`Error::ParameterMismatch`] on a shape mismatch.
    pub fn mul_assign_pointwise(&mut self, other: &RnsPoly, chain: &ModulusChain) -> Result<()> {
        self.expect_repr(Representation::Eval)?;
        self.check_binary(other, chain)?;
        for (i, (a, b)) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(other.limb_planes())
            .enumerate()
        {
            mul_pointwise_slice(a, b, chain.modulus(i));
        }
        Ok(())
    }

    /// Multiplies every residue by the small scalar `c` (reduced per limb).
    pub fn mul_scalar(&mut self, c: u64, chain: &ModulusChain) {
        for (i, a) in self.data.chunks_exact_mut(self.n).enumerate() {
            mul_scalar_slice(a, c, chain.modulus(i));
        }
    }

    /// `self ← (±2^exp)·self` per plane via doubling chains — the shift-add
    /// scalar path. Bit-identical to [`RnsPoly::mul_scalar`] by the reduced
    /// `±2^exp` (canonical residues at every step); representation-agnostic
    /// (element-wise either way).
    pub fn mul_pow2(&mut self, exp: u32, negative: bool, chain: &ModulusChain) {
        for (i, a) in self.data.chunks_exact_mut(self.n).enumerate() {
            mul_pow2_slice(a, exp, negative, chain.modulus(i));
        }
    }

    /// `self += (±2^exp)·a` over self's planes, prefix semantics like
    /// [`RnsPoly::fma_pointwise_prefix`] (`a` may carry more planes).
    /// The pow2 accumulate of the shift-add `mul_plain` fast path.
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] unless both are in evaluation form,
    /// [`Error::ParameterMismatch`] unless `chain` matches `self`'s shape
    /// and `a` covers at least `self`'s planes.
    pub fn fma_pow2_prefix(
        &mut self,
        a: &RnsPoly,
        exp: u32,
        negative: bool,
        chain: &ModulusChain,
    ) -> Result<()> {
        self.expect_repr(Representation::Eval)?;
        a.expect_repr(Representation::Eval)?;
        chain.check_poly(self)?;
        if a.limbs() < self.limbs() || a.degree() != self.n {
            return Err(Error::ParameterMismatch);
        }
        for (i, (r, x)) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(a.limb_planes())
            .enumerate()
        {
            fma_pow2_slice(r, x, exp, negative, chain.modulus(i));
        }
        Ok(())
    }

    /// Fused multiply-accumulate: `self += a * b` pointwise limb-wise, all
    /// in evaluation form — the key-switch inner loop.
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] unless all three are in evaluation
    /// form, [`Error::ParameterMismatch`] on a shape mismatch.
    pub fn fma_pointwise(&mut self, a: &RnsPoly, b: &RnsPoly, chain: &ModulusChain) -> Result<()> {
        self.expect_repr(Representation::Eval)?;
        a.expect_repr(Representation::Eval)?;
        b.expect_repr(Representation::Eval)?;
        chain.check_poly(self)?;
        chain.check_poly(a)?;
        chain.check_poly(b)?;
        for (i, ((r, x), y)) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(a.limb_planes())
            .zip(b.limb_planes())
            .enumerate()
        {
            fma_pointwise_slice(r, x, y, chain.modulus(i));
        }
        Ok(())
    }

    /// `self *= other` pointwise over *self's* planes only; `other` may
    /// carry more planes (live at a shallower level) — its prefix is read
    /// and the surplus ignored. This is how full-level precomputations
    /// (prepared plaintexts, key-switch pairs) apply to modulus-switched
    /// ciphertexts without re-preparation: limb-major planes make the
    /// level-`ℓ` image of a lifted polynomial exactly its first
    /// `live` planes.
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] unless both are in evaluation form,
    /// [`Error::ParameterMismatch`] unless `chain` matches `self`'s shape
    /// and `other` covers at least `self`'s planes.
    pub fn mul_assign_pointwise_prefix(
        &mut self,
        other: &RnsPoly,
        chain: &ModulusChain,
    ) -> Result<()> {
        self.expect_repr(Representation::Eval)?;
        other.expect_repr(Representation::Eval)?;
        chain.check_poly(self)?;
        if other.limbs() < self.limbs() || other.degree() != self.n {
            return Err(Error::ParameterMismatch);
        }
        for (i, (a, b)) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(other.limb_planes())
            .enumerate()
        {
            mul_pointwise_slice(a, b, chain.modulus(i));
        }
        Ok(())
    }

    /// Prefix variant of [`RnsPoly::fma_pointwise`]: `self += a * b` over
    /// self's planes, where `a` and `b` may carry more planes than `self`
    /// (see [`RnsPoly::mul_assign_pointwise_prefix`]). The key-switch inner
    /// loop at reduced level: digits live at the ciphertext's level, key
    /// pairs at level 0.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsPoly::mul_assign_pointwise_prefix`].
    pub fn fma_pointwise_prefix(
        &mut self,
        a: &RnsPoly,
        b: &RnsPoly,
        chain: &ModulusChain,
    ) -> Result<()> {
        self.expect_repr(Representation::Eval)?;
        a.expect_repr(Representation::Eval)?;
        b.expect_repr(Representation::Eval)?;
        chain.check_poly(self)?;
        if a.limbs() < self.limbs()
            || b.limbs() < self.limbs()
            || a.degree() != self.n
            || b.degree() != self.n
        {
            return Err(Error::ParameterMismatch);
        }
        for (i, ((r, x), y)) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(a.limb_planes())
            .zip(b.limb_planes())
            .enumerate()
        {
            fma_pointwise_slice(r, x, y, chain.modulus(i));
        }
        Ok(())
    }

    /// CRT-composes coefficient `idx` across limbs into its value in
    /// `[0, Q)` (coefficient or evaluation index, caller's semantics).
    pub fn compose_coeff(&self, chain: &ModulusChain, idx: usize) -> u128 {
        let mut residues = [0u64; crate::arith::MAX_RNS_LIMBS];
        for (r, plane) in residues[..self.limbs]
            .iter_mut()
            .zip(self.data.chunks_exact(self.n))
        {
            *r = plane[idx];
        }
        chain.crt().compose(&residues[..self.limbs])
    }

    /// RNS-native (per-limb `q̂_i`) digit decomposition — the key-switch
    /// decomposition that never leaves limb-local `u64` arithmetic.
    ///
    /// Writes `Σ_i ceil(log_base q_i)` digit polynomials, ordered
    /// limb-major: for limb `i`, coefficient `j`, the normalized residue
    /// `v = [q̂_i^{-1}·c]_{q_i}` (one Barrett multiplication) is split into
    /// base-`base` digits, each replicated across every limb plane of its
    /// digit polynomial. Correctness rests on the CRT interpolation
    /// `c ≡ Σ_i q̂_i·v_i (mod Q)`, so pairing digit `(i, d)` with a key
    /// that encrypts `base^d·q̂_i·s(x^g)` reconstructs `c·s(x^g)` exactly —
    /// no Garner composition, no 128-bit arithmetic anywhere.
    ///
    /// For one limb `q̂_0 = 1`, and this degenerates to exactly the
    /// historical word-shift extraction (bit-identical digits).
    ///
    /// `self` may live at a reduced level — carry fewer limb planes than
    /// `chain` — in which case only the live limbs are decomposed
    /// (`Σ_{i<live} ceil(log_base q_i)` digits, each spanning the live
    /// planes). The normalizer stays the **full-chain** `q̂_i^{-1}`:
    /// `q̂_i = Q/q_i` factors as `(Q_live/q_i)·Π_{dropped} q_m`, so digits
    /// normalized against the full chain pair exactly with level-0 Galois
    /// keys (which encrypt `A^d·q̂_i·s(x^g)`) restricted to the live
    /// planes — mod switching never invalidates key material.
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] if not in coefficient form,
    /// [`Error::InvalidDecompositionBase`] for a bad base, and
    /// [`Error::ParameterMismatch`] if `digits` has the wrong shape (they
    /// must mirror `self`'s live planes) or `self` has more limbs than the
    /// chain.
    pub fn rns_decompose_into(
        &self,
        base: u64,
        chain: &ModulusChain,
        digits: &mut [RnsPoly],
    ) -> Result<()> {
        self.expect_repr(Representation::Coeff)?;
        if self.limbs > chain.limbs() || self.n != chain.degree() {
            return Err(Error::ParameterMismatch);
        }
        chain.check_decomposition_base(base)?;
        let total: usize = (0..self.limbs)
            .map(|i| chain.limb_decomposition_levels(base, i))
            .sum();
        if digits.len() != total {
            return Err(Error::ParameterMismatch);
        }
        for d in digits.iter_mut() {
            if d.limbs != self.limbs || d.n != self.n {
                return Err(Error::ParameterMismatch);
            }
            d.repr = Representation::Coeff;
        }
        let log_base = base.trailing_zeros();
        let mask = base - 1;
        let (l, n) = (self.limbs, self.n);
        let mut first = 0;
        for i in 0..l {
            let q_i = chain.modulus(i);
            let inv = chain.crt().qhat_inv(i);
            let levels_i = chain.limb_decomposition_levels(base, i);
            let limb_digits = &mut digits[first..first + levels_i];
            for j in 0..n {
                let mut rem = q_i.mul_mod(self.data[i * n + j], inv);
                for digit in limb_digits.iter_mut() {
                    let v = rem & mask;
                    for k in 0..l {
                        digit.data[k * n + j] = v;
                    }
                    rem >>= log_base;
                }
                debug_assert_eq!(rem, 0, "residue exceeded base^levels");
            }
            first += levels_i;
        }
        Ok(())
    }

    /// Hybrid (special-prime) key-switch decomposition: one digit per
    /// live limb, spread across the key-switch chain `[q_0 … q_{live-1}, P]`.
    ///
    /// For live limb `i`, coefficient `j`, the normalized residue
    /// `v = [q̂_i^{-1}·c]_{q_i}` (full-chain `q̂_i`, exactly as
    /// [`RnsPoly::rns_decompose_into`] — level-0 keys serve every level)
    /// is taken **centered** (`v_c ∈ (−q_i/2, q_i/2]`) and lifted into
    /// every plane of digit `i` over `ks_chain`. No base-`A` split: the
    /// digit carries the full residue, and the special prime `P` — which
    /// divides the key's signal `P·q̂_i·s(x^g)` — absorbs the
    /// `Σ_i v_i·e_i` key-noise bill that the base split used to control.
    /// Reconstruction is exact over the *extended* modulus:
    /// `Σ_i v_i·P·q̂_i ≡ P·c (mod P·Q_live)`, because `v_i ≡ [q̂_i^{-1}c]_{q_i}`
    /// and `q̂_i ≡ 0` modulo every other limb (and modulo nothing times `P`
    /// — the `P` factor is explicit in the key's signal).
    ///
    /// `digits` must hold exactly `live` polynomials of `live + 1` planes
    /// each; they come out in coefficient form on `ks_chain`.
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] if not in coefficient form, and
    /// [`Error::ParameterMismatch`] if `ks_chain` is not `self`'s live
    /// prefix of `data_chain` extended by one limb, or `digits` has the
    /// wrong shape.
    pub fn hybrid_decompose_into(
        &self,
        data_chain: &ModulusChain,
        ks_chain: &ModulusChain,
        digits: &mut [RnsPoly],
    ) -> Result<()> {
        self.expect_repr(Representation::Coeff)?;
        let (live, n) = (self.limbs, self.n);
        if live > data_chain.limbs()
            || n != data_chain.degree()
            || ks_chain.limbs() != live + 1
            || ks_chain.degree() != n
            || digits.len() != live
        {
            return Err(Error::ParameterMismatch);
        }
        for i in 0..live {
            if ks_chain.modulus(i).value() != data_chain.modulus(i).value() {
                return Err(Error::ParameterMismatch);
            }
        }
        for d in digits.iter_mut() {
            if d.limbs != live + 1 || d.n != n {
                return Err(Error::ParameterMismatch);
            }
            d.repr = Representation::Coeff;
        }
        for (i, digit) in digits.iter_mut().enumerate() {
            let q_i = data_chain.modulus(i);
            let inv = data_chain.crt().qhat_inv(i);
            let half = q_i.value() >> 1;
            for j in 0..n {
                let v = q_i.mul_mod(self.data[i * n + j], inv);
                // Centered representative: halves the |v_i| bound that
                // multiplies the key noise.
                let v_c = if v > half {
                    v as i64 - q_i.value() as i64
                } else {
                    v as i64
                };
                for k in 0..=live {
                    digit.data[k * n + j] = ks_chain.modulus(k).from_signed(v_c);
                }
            }
        }
        Ok(())
    }

    /// Key-switch variant of [`RnsPoly::fma_pointwise_prefix`] for the
    /// hybrid path: `self += a * b` over `self`'s planes on the per-level
    /// key-switch chain, where `b` (a key polynomial) lives on the *full*
    /// key-switch chain. Prefix planes align by index; `self`'s last plane
    /// (the special prime) reads `b`'s **last** plane — at reduced levels
    /// the special plane sits at different indices in digits (`live`) and
    /// keys (`limbs`), so plain prefix alignment would pair it with a
    /// foreign modulus.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsPoly::fma_pointwise_prefix`].
    pub fn fma_pointwise_prefix_last(
        &mut self,
        a: &RnsPoly,
        b: &RnsPoly,
        chain: &ModulusChain,
    ) -> Result<()> {
        self.expect_repr(Representation::Eval)?;
        a.expect_repr(Representation::Eval)?;
        b.expect_repr(Representation::Eval)?;
        chain.check_poly(self)?;
        if a.limbs() < self.limbs
            || b.limbs() < self.limbs
            || a.degree() != self.n
            || b.degree() != self.n
        {
            return Err(Error::ParameterMismatch);
        }
        let last = self.limbs - 1;
        for (i, (r, x)) in self
            .data
            .chunks_exact_mut(self.n)
            .zip(a.limb_planes())
            .enumerate()
        {
            let y = if i < last {
                b.limb(i)
            } else {
                b.limb(b.limbs() - 1)
            };
            fma_pointwise_slice(r, x, y, chain.modulus(i));
        }
        Ok(())
    }

    /// Largest centered absolute value of any composed coefficient
    /// (`|c|` against `Q/2`; coefficient form only) — the exact noise
    /// measurement primitive.
    ///
    /// # Errors
    ///
    /// [`Error::WrongRepresentation`] if in evaluation form.
    pub fn inf_norm_centered(&self, chain: &ModulusChain) -> Result<u128> {
        self.expect_repr(Representation::Coeff)?;
        let q = chain.big_q();
        let half = q / 2;
        let mut max = 0u128;
        for j in 0..self.n {
            let c = self.compose_coeff(chain, j);
            let mag = if c > half { q - c } else { c };
            max = max.max(mag);
        }
        Ok(max)
    }
}

/// Fills base-`base` digit polynomials directly from small single-modulus
/// coefficients (each `< base^levels`, e.g. a plaintext mod `t`): digit
/// `d` of coefficient `j` is replicated across every limb plane of
/// `digits[d]`. Used by windowed plaintext multiplication, where the digit
/// source lives mod `t` rather than mod `Q`.
///
/// # Errors
///
/// [`Error::InvalidDecompositionBase`] for a bad base and
/// [`Error::ParameterMismatch`] if shapes mismatch (`digits` must hold
/// `ceil(log_base t)`-style levels chosen by the caller).
pub fn digits_from_coeffs(
    coeffs: &[u64],
    base: u64,
    chain: &ModulusChain,
    digits: &mut [RnsPoly],
) -> Result<()> {
    chain.check_decomposition_base(base)?;
    if coeffs.len() != chain.degree() || digits.is_empty() {
        return Err(Error::ParameterMismatch);
    }
    for d in digits.iter_mut() {
        chain.check_poly(d)?;
        d.repr = Representation::Coeff;
    }
    let log_base = base.trailing_zeros();
    let mask = base - 1;
    let (l, n) = (chain.limbs(), chain.degree());
    // `digits` must cover every coefficient: base^digits.len() > max coeff.
    // (Shift width is capped at 63 so huge level counts don't overflow.)
    let covered_bits = (log_base as usize * digits.len()).min(64) as u32;
    let max_coeff = coeffs.iter().copied().max().unwrap_or(0);
    if covered_bits < 64 && max_coeff >> covered_bits != 0 {
        return Err(Error::ParameterMismatch);
    }
    for (j, &c) in coeffs.iter().enumerate() {
        let mut rem = c;
        for digit in digits.iter_mut() {
            let v = rem & mask;
            for i in 0..l {
                digit.data[i * n + j] = v;
            }
            rem >>= log_base;
        }
        debug_assert_eq!(rem, 0, "coefficient exceeded base^levels");
    }
    Ok(())
}

fn repr_name(r: Representation) -> &'static str {
    match r {
        Representation::Coeff => "coefficient",
        Representation::Eval => "evaluation",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::generate_ntt_primes;
    use crate::poly::Poly;

    /// Chain of `bits.len()` distinct primes (homogeneous sizes in tests).
    fn chain(n: usize, bits: &[u32]) -> ModulusChain {
        let values = generate_ntt_primes(bits[0], n, bits.len()).unwrap();
        ModulusChain::new(n, &values).unwrap()
    }

    #[test]
    fn chain_equality_is_structural() {
        let a = chain(64, &[30, 30]);
        let b = chain(64, &[30, 30]);
        let c = chain(64, &[36]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.check_same(&b).is_ok());
        assert!(a.check_same(&c).is_err());
    }

    #[test]
    fn single_limb_ops_match_poly_kernels() {
        let ch = chain(64, &[50]);
        let q = *ch.modulus(0);
        let vals_a: Vec<u64> = (0..64).map(|i| (i as u64 * 977 + 13) % q.value()).collect();
        let vals_b: Vec<u64> = (0..64).map(|i| (i as u64 * 31 + 7) % q.value()).collect();

        let mut r = RnsPoly::from_data(vals_a.clone(), 1, 64, Representation::Coeff);
        let rb = RnsPoly::from_data(vals_b.clone(), 1, 64, Representation::Coeff);
        let mut p = Poly::from_data(vals_a, Representation::Coeff);
        let pb = Poly::from_data(vals_b, Representation::Coeff);

        r.add_assign(&rb, &ch).unwrap();
        p.add_assign(&pb, &q).unwrap();
        assert_eq!(r.limb(0), p.data());

        r.to_eval(&ch);
        p.to_eval(ch.table(0));
        assert_eq!(r.limb(0), p.data());

        r.to_coeff(&ch);
        p.to_coeff(ch.table(0));
        assert_eq!(r.limb(0), p.data());

        r.negate(&ch);
        p.negate(&q);
        assert_eq!(r.limb(0), p.data());
    }

    #[test]
    fn multi_limb_roundtrip_through_ntt() {
        let ch = chain(128, &[30, 30]);
        let a = RnsPoly::from_fn(&ch, Representation::Coeff, |i, j| {
            ((i * 997 + j * 31 + 5) as u64) % ch.modulus(i).value()
        });
        let mut b = a.clone();
        b.to_eval(&ch);
        assert_ne!(a, b);
        b.to_coeff(&ch);
        assert_eq!(a, b);
    }

    /// Test-local composed-base digit extraction — the seed-era reference
    /// the retired `RnsPoly::decompose_into` implemented, replayed through
    /// the library's [`RnsPoly::compose_coeff`] helper: CRT-compose each
    /// coefficient and split the `[0, Q)` value into base digits, each
    /// replicated across every limb plane.
    fn composed_base_digits(p: &RnsPoly, base: u64, chain: &ModulusChain) -> Vec<RnsPoly> {
        assert!(base >= 2 && base.is_power_of_two(), "bad reference base");
        assert_eq!(p.representation(), Representation::Coeff);
        let levels = chain.decomposition_levels(base);
        let mut digits = vec![RnsPoly::zero(chain, Representation::Coeff); levels];
        let log_base = base.trailing_zeros();
        let mask = (base - 1) as u128;
        for j in 0..p.degree() {
            let mut rem = p.compose_coeff(chain, j);
            for digit in digits.iter_mut() {
                let v = (rem & mask) as u64;
                for i in 0..chain.limbs() {
                    digit.limb_mut(i)[j] = v;
                }
                rem >>= log_base;
            }
            assert_eq!(rem, 0, "coefficient exceeded base^levels");
        }
        digits
    }

    #[test]
    fn decompose_digits_recompose_to_value() {
        let ch = chain(32, &[30, 30]);
        let a = RnsPoly::from_fn(&ch, Representation::Coeff, |i, j| {
            ((i * 12345 + j * 678 + 9) as u64) % ch.modulus(i).value()
        });
        let base = 1u64 << 16;
        let levels = ch.decomposition_levels(base);
        assert_eq!(levels, ch.total_bits().div_ceil(16) as usize);
        let digits = composed_base_digits(&a, base, &ch);
        // Σ base^d · digit_d must CRT-compose back to the coefficient.
        for j in 0..32 {
            let mut v: u128 = 0;
            for d in (0..levels).rev() {
                v = (v << 16) + digits[d].limb(0)[j] as u128;
            }
            assert_eq!(v, a.compose_coeff(&ch, j), "coeff {j}");
        }
    }

    #[test]
    fn rns_decompose_reconstructs_on_every_plane() {
        // Σ_{i,d} base^d·q̂_i·digit_{i,d} must reproduce the original
        // residue on every limb plane — verified entirely in word
        // arithmetic, the same congruences key switching relies on.
        for bits in [&[30u32, 30][..], &[30, 31, 36][..], &[50][..]] {
            let ch = chain(32, bits);
            let a = RnsPoly::from_fn(&ch, Representation::Coeff, |i, j| {
                ((i * 5231 + j * 877 + 3) as u64) % ch.modulus(i).value()
            });
            let base = 1u64 << 16;
            let total = ch.rns_decomposition_levels(base);
            assert_eq!(
                total,
                (0..ch.limbs())
                    .map(|i| ch.limb_decomposition_levels(base, i))
                    .sum::<usize>()
            );
            let mut digits = vec![RnsPoly::zero(&ch, Representation::Coeff); total];
            a.rns_decompose_into(base, &ch, &mut digits).unwrap();
            for j in 0..32 {
                for (k, q_k) in ch.moduli().iter().enumerate() {
                    let mut acc = 0u64;
                    let mut d = 0;
                    for i in 0..ch.limbs() {
                        let mut weight = ch.crt().qhat_mod(i, k);
                        for _ in 0..ch.limb_decomposition_levels(base, i) {
                            acc = q_k.add_mod(acc, q_k.mul_mod(digits[d].limb(k)[j], weight));
                            weight = q_k.mul_mod(weight, q_k.reduce(base));
                            d += 1;
                        }
                    }
                    assert_eq!(acc, a.limb(k)[j], "bits={bits:?} coeff {j} plane {k}");
                }
            }
        }
    }

    #[test]
    fn rns_decompose_single_limb_matches_composed() {
        // One limb: the per-limb path is bit-identical to the composed
        // Garner extraction (q̂_0 = 1).
        let ch = chain(32, &[50]);
        let a = RnsPoly::from_fn(&ch, Representation::Coeff, |_, j| {
            (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) % ch.modulus(0).value()
        });
        let base = 1u64 << 20;
        let levels = ch.decomposition_levels(base);
        assert_eq!(levels, ch.rns_decomposition_levels(base));
        let mut per_limb = vec![RnsPoly::zero(&ch, Representation::Coeff); levels];
        let composed = composed_base_digits(&a, base, &ch);
        a.rns_decompose_into(base, &ch, &mut per_limb).unwrap();
        assert_eq!(composed, per_limb);
    }

    #[test]
    fn rns_decompose_rejects_wrong_digit_count() {
        let ch = chain(32, &[30, 30]);
        let a = RnsPoly::zero(&ch, Representation::Coeff);
        let total = ch.rns_decomposition_levels(1 << 16);
        let mut digits = vec![RnsPoly::zero(&ch, Representation::Coeff); total - 1];
        assert!(matches!(
            a.rns_decompose_into(1 << 16, &ch, &mut digits),
            Err(Error::ParameterMismatch)
        ));
    }

    #[test]
    fn decompose_rejects_base_at_least_a_limb() {
        let ch = chain(32, &[30]);
        let a = RnsPoly::zero(&ch, Representation::Coeff);
        let mut digits = vec![RnsPoly::zero(&ch, Representation::Coeff); 1];
        assert!(matches!(
            a.rns_decompose_into(1 << 30, &ch, &mut digits),
            Err(Error::InvalidDecompositionBase(_))
        ));
    }

    #[test]
    fn foreign_shapes_are_rejected() {
        let ch2 = chain(32, &[30, 30]);
        let ch1 = chain(32, &[36]);
        let mut a = RnsPoly::zero(&ch2, Representation::Eval);
        let b = RnsPoly::zero(&ch1, Representation::Eval);
        assert!(matches!(
            a.add_assign(&b, &ch2),
            Err(Error::ParameterMismatch)
        ));
        assert!(matches!(
            a.mul_assign_pointwise(&b, &ch2),
            Err(Error::ParameterMismatch)
        ));
    }

    /// Multi-limb rotation under the RNS-native key switch decrypts to the
    /// same slots as the seed-era composed-base key switch. The old path
    /// no longer exists anywhere in the library (the Garner
    /// `RnsPoly::decompose_into` is fully retired), so it is replayed here
    /// from the [`composed_base_digits`] test helper over
    /// [`RnsPoly::compose_coeff`]: composed keys
    /// `(−(a·s + e) + A^level·s(x^g), a)` built over the full chain,
    /// Garner (compose-then-split) digit extraction, and the Lane
    /// multiply-accumulate. Moved from `tests/rns_equivalence.rs` when
    /// `decompose_into` left the public API.
    #[test]
    fn multi_limb_rotate_matches_composed_base_reference() {
        use crate::ciphertext::Ciphertext;
        use crate::encoder::BatchEncoder;
        use crate::encryptor::{Decryptor, Encryptor};
        use crate::evaluator::Evaluator;
        use crate::keys::{element_for_step, KeyGenerator};
        use crate::params::BfvParams;
        use crate::sampling::BfvRng;

        for (name, params) in BfvParams::presets(4096).unwrap() {
            let mut kg = KeyGenerator::from_seed(params.clone(), 21);
            let pk = kg.public_key().unwrap();
            let keys = kg.galois_keys_for_steps(&[1]).unwrap();
            let encoder = BatchEncoder::new(params.clone());
            let mut enc = Encryptor::from_public_key(pk, 21 ^ 0x5eed);
            let dec = Decryptor::new(kg.secret_key().clone());
            let eval = Evaluator::new(params.clone());

            let chain = params.chain();
            let vals: Vec<u64> = (0..100).map(|i| (i * 31 + 7) % 1000).collect();
            let ct = enc.encrypt(&encoder.encode(&vals).unwrap()).unwrap();

            // Engine path: RNS-native per-limb key switching.
            let rotated = eval.rotate_rows(&ct, 1, &keys).unwrap();

            // Reference path: composed-base key switching. Keys come from
            // an independent RNG stream — only the *decrypted slots* can
            // match, which is exactly the old-vs-new guarantee pinned
            // here. The secret key is deterministic from the seed alone.
            let s = kg.secret_key().poly().clone();
            let g = element_for_step(params.degree(), 1).unwrap();
            let perm = chain.table(0).galois_permutation(g);
            let mut s_g = RnsPoly::zero(chain, Representation::Eval);
            s_g.permute_from(&s, &perm);

            let a_base = params.a_dcmp();
            let l_cmp = chain.decomposition_levels(a_base);
            let mut rng = BfvRng::from_seed(0xc0de, params.sigma());
            let mut pairs: Vec<(RnsPoly, RnsPoly)> = Vec::with_capacity(l_cmp);
            let mut scale: Vec<u64> = vec![1; chain.limbs()];
            for level in 0..l_cmp {
                let a = rng.uniform_rns(chain, Representation::Eval);
                let mut e = rng.noise_rns(chain);
                e.to_eval(chain);
                let mut k0 = a.clone();
                k0.mul_assign_pointwise(&s, chain).unwrap();
                k0.add_assign(&e, chain).unwrap();
                k0.negate(chain);
                let mut scaled = s_g.clone();
                for (i, &sc) in scale.iter().enumerate() {
                    let q = chain.modulus(i);
                    let plane: Vec<u64> =
                        scaled.limb(i).iter().map(|&x| q.mul_mod(x, sc)).collect();
                    scaled.limb_mut(i).copy_from_slice(&plane);
                }
                k0.add_assign(&scaled, chain).unwrap();
                pairs.push((k0, a));
                if level + 1 < l_cmp {
                    for (i, sc) in scale.iter_mut().enumerate() {
                        let q = chain.modulus(i);
                        *sc = q.mul_mod(*sc, q.reduce(a_base));
                    }
                }
            }

            // Old Lane datapath: permute, INTT, Garner compose-then-split
            // (via the test-local composed-base reference — the in-library
            // Garner `decompose_into` is retired).
            let key = keys.get(g).unwrap();
            let mut ref_c0 = RnsPoly::zero(chain, Representation::Eval);
            ref_c0.permute_from(ct.c0(), key.permutation());
            let mut c1_g = RnsPoly::zero(chain, Representation::Eval);
            c1_g.permute_from(ct.c1(), key.permutation());
            c1_g.to_coeff(chain);
            let mut digits = composed_base_digits(&c1_g, a_base, chain);
            assert_eq!(digits.len(), l_cmp);
            let mut ref_c1 = RnsPoly::zero(chain, Representation::Eval);
            for (digit, (k0, k1)) in digits.iter_mut().zip(&pairs) {
                digit.to_eval(chain);
                ref_c0.fma_pointwise(digit, k0, chain).unwrap();
                ref_c1.fma_pointwise(digit, k1, chain).unwrap();
            }
            let reference = Ciphertext::new(ref_c0, ref_c1, params.clone(), *rotated.noise());

            let engine_slots = encoder.decode(&dec.decrypt_checked(&rotated).unwrap());
            let reference_slots = encoder.decode(&dec.decrypt(&reference).unwrap());
            assert_eq!(
                engine_slots, reference_slots,
                "{name}: RNS-native vs composed-base key switch diverged"
            );
        }
    }

    #[test]
    fn mod_switch_rounds_exactly() {
        // Dropping a limb must compute round(c / q_last) per coefficient,
        // verified against exact u128 arithmetic through the CRT.
        let ch = chain(32, &[30, 31, 36]);
        let a = RnsPoly::from_fn(&ch, Representation::Coeff, |i, j| {
            ((i as u64 * 0x9e37_79b9 + j as u64 * 0x85eb_ca6b) ^ (j as u64) << 7)
                % ch.modulus(i).value()
        });
        let mut b = a.clone();
        ch.mod_switch_in_place(&mut b).unwrap();
        assert_eq!(b.limbs(), 2);
        let q_last = ch.modulus(2).value() as u128;
        let sub = ModulusChain::new(32, &[ch.modulus(0).value(), ch.modulus(1).value()]).unwrap();
        for j in 0..32 {
            let c = a.compose_coeff(&ch, j);
            let rounded = (c + q_last / 2) / q_last;
            let expect = rounded % sub.big_q();
            assert_eq!(b.compose_coeff(&sub, j), expect, "coeff {j}");
        }
        // And a second drop keeps rounding exactly over the new prefix.
        let mut c2 = b.clone();
        ch.mod_switch_in_place(&mut c2).unwrap();
        assert_eq!(c2.limbs(), 1);
        let q1 = ch.modulus(1).value() as u128;
        for j in 0..32 {
            let c = b.compose_coeff(&sub, j);
            let expect = ((c + q1 / 2) / q1) % ch.modulus(0).value() as u128;
            assert_eq!(c2.limb(0)[j] as u128, expect, "coeff {j} second drop");
        }
        // One live limb left: nothing to drop.
        let mut last = c2;
        assert!(matches!(
            ch.mod_switch_in_place(&mut last),
            Err(Error::ParameterMismatch)
        ));
    }

    #[test]
    fn threaded_plane_transforms_are_bit_identical() {
        let ch = chain(128, &[30, 31, 36]);
        let base = RnsPoly::from_fn(&ch, Representation::Coeff, |i, j| {
            ((i * 997 + j * 13 + 1) as u64) % ch.modulus(i).value()
        });
        let mut serial = base.clone();
        serial.to_eval(&ch);
        for threads in [2, 3, 8] {
            let mut parallel = base.clone();
            parallel.to_eval_threaded(&ch, threads);
            assert_eq!(parallel, serial, "forward threads={threads}");
            parallel.to_coeff_threaded(&ch, threads);
            assert_eq!(parallel, base, "inverse threads={threads}");
        }
    }

    #[test]
    fn prefix_kernels_read_only_live_planes() {
        let ch3 = chain(32, &[30, 31, 36]);
        // The reduced-level chain must be ch3's literal prefix (the
        // invariant the prefix kernels rely on), so build it from ch3's
        // own first two primes.
        let prefix =
            ModulusChain::new(32, &[ch3.modulus(0).value(), ch3.modulus(1).value()]).unwrap();
        let full = RnsPoly::from_fn(&ch3, Representation::Eval, |i, j| {
            ((i * 31 + j * 7 + 3) as u64) % ch3.modulus(i).value()
        });
        let mut reduced = RnsPoly::zero(&prefix, Representation::Eval);
        reduced.data_mut().copy_from_slice(&full.data()[..2 * 32]);
        let mut via_prefix = reduced.clone();
        via_prefix
            .mul_assign_pointwise_prefix(&full, &prefix)
            .unwrap();
        let mut direct = reduced.clone();
        direct.mul_assign_pointwise(&reduced, &prefix).unwrap();
        assert_eq!(via_prefix, direct, "prefix mul reads the live planes");
        // Shorter operand is rejected.
        let mut full_mut = full.clone();
        assert!(matches!(
            full_mut.mul_assign_pointwise_prefix(&reduced, &ch3),
            Err(Error::ParameterMismatch)
        ));
    }

    #[test]
    fn inf_norm_sees_big_negative_side() {
        let ch = chain(32, &[30, 30]);
        let q = ch.big_q();
        // Set coefficient 0 to Q − 5 (centered: −5) across limbs.
        let mut a = RnsPoly::zero(&ch, Representation::Coeff);
        let mut residues = [0u64; crate::arith::MAX_RNS_LIMBS];
        ch.crt().decompose_into(q - 5, &mut residues[..2]);
        for (i, &r) in residues[..2].iter().enumerate() {
            a.limb_mut(i)[0] = r;
        }
        a.limb_mut(0)[1] = 3;
        a.limb_mut(1)[1] = 3;
        assert_eq!(a.inf_norm_centered(&ch).unwrap(), 5);
    }
}
