//! Contiguous batched polynomial storage with thread-parallel NTTs.
//!
//! The seed's batched-NTT path operated on `Vec<Vec<u64>>` — one heap
//! allocation per polynomial, scattered across the address space, which
//! defeats hardware prefetching exactly where Cheetah's §IV performance
//! model assumes streaming access. A [`PolyBatch`] stores `count`
//! degree-`n` polynomials in **one contiguous `Vec<u64>`** with stride-`n`
//! views, so a batch walks linearly through memory and splits into
//! per-thread chunks with zero copying.
//!
//! Both transform directions are provided ([`PolyBatch::forward_ntt`],
//! [`PolyBatch::inverse_ntt`]); each polynomial's transform is independent,
//! so results are **bit-identical for every thread count** — a property the
//! equivalence tests pin down. `cheetah-gpu`'s Fig. 8 host study is built
//! on this type.
//!
//! **Layout contract:** storage is polynomial-major (poly 0's `n`
//! coefficients, then poly 1's, …), mirroring `RnsPoly`'s limb-major
//! planes. The vectorized kernels (`crate::simd`) traverse lanes *within*
//! one polynomial/plane, so this layout feeds them contiguous loads while
//! keeping whole-plane truncation (level drops, prefix views) O(1) —
//! element-wise interleaving across polynomials or limbs was rejected for
//! that reason (see `docs/SIMD.md`).

use crate::ntt::NttTable;
use crate::poly::Representation;

/// `count` polynomials of degree `n` in one contiguous allocation.
///
/// All polynomials share one representation tag, as batches move through
/// the NTT together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyBatch {
    data: Vec<u64>,
    n: usize,
    repr: Representation,
}

impl PolyBatch {
    /// A batch of `count` zero polynomials of degree `n`.
    pub fn zero(count: usize, n: usize, repr: Representation) -> Self {
        Self {
            data: vec![0; count * n],
            n,
            repr,
        }
    }

    /// Builds a batch from a generator: element `j` of polynomial `i` is
    /// `f(i, j)`. Values must already be reduced mod the working modulus.
    pub fn from_fn(
        count: usize,
        n: usize,
        repr: Representation,
        mut f: impl FnMut(usize, usize) -> u64,
    ) -> Self {
        let mut data = Vec::with_capacity(count * n);
        for i in 0..count {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self { data, n, repr }
    }

    /// Builds a batch by copying equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<u64>], repr: Representation) -> Self {
        let n = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * n);
        for row in rows {
            assert_eq!(row.len(), n, "inconsistent row length in PolyBatch");
            data.extend_from_slice(row);
        }
        Self { data, n, repr }
    }

    /// Number of polynomials in the batch.
    #[inline]
    pub fn count(&self) -> usize {
        self.data.len().checked_div(self.n).unwrap_or(0)
    }

    /// Whether the batch holds no polynomials.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Polynomial degree `n` (the stride).
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Shared representation of every polynomial in the batch.
    #[inline]
    pub fn representation(&self) -> Representation {
        self.repr
    }

    /// Read view of polynomial `i`.
    #[inline]
    pub fn poly(&self, i: usize) -> &[u64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable view of polynomial `i`. Callers must keep values reduced.
    #[inline]
    pub fn poly_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Iterator over stride-`n` read views.
    pub fn polys(&self) -> impl Iterator<Item = &[u64]> {
        self.data.chunks_exact(self.n)
    }

    /// Iterator over stride-`n` mutable views.
    pub fn polys_mut(&mut self) -> impl Iterator<Item = &mut [u64]> {
        self.data.chunks_exact_mut(self.n)
    }

    /// The whole contiguous storage.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.data
    }

    /// Copies the batch back out into row vectors (interop/debug helper).
    pub fn to_rows(&self) -> Vec<Vec<u64>> {
        self.polys().map(<[u64]>::to_vec).collect()
    }

    /// Forward negacyclic NTT over every polynomial, split across up to
    /// `threads` worker threads (`<= 1` runs inline). Each polynomial's
    /// transform is independent, so the result is bit-identical for every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if the batch is not in coefficient form or the table degree
    /// mismatches the stride.
    pub fn forward_ntt(&mut self, table: &NttTable, threads: usize) {
        assert_eq!(
            self.repr,
            Representation::Coeff,
            "forward NTT needs coefficient form"
        );
        self.transform(table, threads, false);
        self.repr = Representation::Eval;
    }

    /// Inverse negacyclic NTT over every polynomial (including the
    /// `n^{-1}` scaling), split across up to `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the batch is not in evaluation form or the table degree
    /// mismatches the stride.
    pub fn inverse_ntt(&mut self, table: &NttTable, threads: usize) {
        assert_eq!(
            self.repr,
            Representation::Eval,
            "inverse NTT needs evaluation form"
        );
        self.transform(table, threads, true);
        self.repr = Representation::Coeff;
    }

    fn transform(&mut self, table: &NttTable, threads: usize, inverse: bool) {
        assert_eq!(table.degree(), self.n, "NTT table degree mismatch");
        let count = self.count();
        let run = |p: &mut [u64]| {
            if inverse {
                table.inverse(p);
            } else {
                table.forward(p);
            }
        };
        if threads <= 1 || count <= 1 {
            for p in self.data.chunks_exact_mut(self.n) {
                run(p);
            }
            return;
        }
        let per_worker = count.div_ceil(threads.min(count));
        std::thread::scope(|scope| {
            for chunk in self.data.chunks_mut(per_worker * self.n) {
                scope.spawn(|| {
                    for p in chunk.chunks_exact_mut(self.n) {
                        run(p);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{generate_ntt_prime, Modulus};

    fn table(n: usize, bits: u32) -> NttTable {
        let q = Modulus::new(generate_ntt_prime(bits, n).unwrap()).unwrap();
        NttTable::new(n, q).unwrap()
    }

    fn sample_batch(count: usize, n: usize, q: u64) -> PolyBatch {
        PolyBatch::from_fn(count, n, Representation::Coeff, |i, j| {
            ((i as u64 + 3).wrapping_mul(31).wrapping_add(j as u64 * 7)) % q
        })
    }

    #[test]
    fn matches_per_poly_ntt() {
        let t = table(64, 30);
        let q = t.modulus().value();
        let mut batch = sample_batch(5, 64, q);
        let rows = batch.to_rows();
        batch.forward_ntt(&t, 1);
        for (i, row) in rows.iter().enumerate() {
            let mut expect = row.clone();
            t.forward(&mut expect);
            assert_eq!(batch.poly(i), &expect[..], "poly {i}");
        }
        assert_eq!(batch.representation(), Representation::Eval);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(128, 40);
        let q = t.modulus().value();
        let mut batch = sample_batch(7, 128, q);
        let orig = batch.clone();
        batch.forward_ntt(&t, 2);
        assert_ne!(batch, orig);
        batch.inverse_ntt(&t, 2);
        assert_eq!(batch, orig);
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let t = table(256, 50);
        let q = t.modulus().value();
        let base = sample_batch(9, 256, q);
        let mut serial = base.clone();
        serial.forward_ntt(&t, 1);
        for threads in [2, 3, 4, 16] {
            let mut parallel = base.clone();
            parallel.forward_ntt(&t, threads);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn oversubscribed_threads_clamp_to_count() {
        let t = table(32, 30);
        let q = t.modulus().value();
        let mut batch = sample_batch(2, 32, q);
        batch.forward_ntt(&t, 64); // more threads than polynomials
        batch.inverse_ntt(&t, 64);
        assert_eq!(batch, sample_batch(2, 32, q));
    }

    #[test]
    #[should_panic(expected = "coefficient form")]
    fn forward_rejects_eval_form() {
        let t = table(32, 30);
        let mut batch = PolyBatch::zero(1, 32, Representation::Eval);
        batch.forward_ntt(&t, 1);
    }

    #[test]
    fn contiguity_and_views() {
        let mut batch = PolyBatch::zero(3, 8, Representation::Coeff);
        batch.poly_mut(1)[0] = 42;
        assert_eq!(batch.as_slice()[8], 42);
        assert_eq!(batch.count(), 3);
        assert_eq!(batch.degree(), 8);
        assert_eq!(batch.polys().count(), 3);
    }
}
