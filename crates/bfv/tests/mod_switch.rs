//! Leveled-evaluation guarantees, pinned:
//!
//! * modulus switching preserves decryption: an encrypt → (ops) →
//!   `mod_switch` → decrypt pipeline produces the same plaintext as the
//!   unswitched ciphertext, for every preset, at every level the noise
//!   model recommends — and specifically one `mod_switch_to_next` on the
//!   3-limb preset (proptest-pinned);
//! * the model's `recommended_level` is honest about when switching is
//!   *unsafe*: the 2x30 preset's 30-bit limbs over a 16-bit `t` leave no
//!   room for the rounding drift, so it recommends staying at level 0,
//!   while 36-bit limbs drop happily;
//! * a 1-limb chain is level-0-only (`InvalidLevel`, not a panic);
//! * byte accounting follows the live level: a switched ciphertext
//!   shrinks on the wire (`2·live·n·8`).

use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Error, Evaluator, GaloisKeys,
    KeyGenerator,
};
use proptest::prelude::*;

struct Ctx {
    params: BfvParams,
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: GaloisKeys,
}

fn ctx(params: BfvParams, seed: u64) -> Ctx {
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1]).unwrap();
    Ctx {
        params: params.clone(),
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 0x5eed),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params),
        keys,
    }
}

/// A 2-limb chain that *can* drop to a single live limb: 36-bit limbs
/// leave ~19 bits of ceiling over a 16-bit `t`, clearing the worst-case
/// rounding drift whether or not the congruent generator found primes.
fn switchable_2_limb() -> BfvParams {
    BfvParams::builder()
        .degree(4096)
        .plain_bits(16)
        .moduli_bits(&[36, 36])
        .a_dcmp(1 << 16)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// encrypt → mul_plain → rotate → switch-to-recommended → decrypt
    /// equals the unswitched decrypt, for all three presets (the preset
    /// whose model recommends staying put trivially stays put — that
    /// honesty is part of the contract) plus the deep-switchable chain.
    #[test]
    fn switched_pipeline_decrypts_identically_for_all_presets(
        seed in any::<u64>(),
        vals in proptest::collection::vec(0u64..30000, 32),
        weights in proptest::collection::vec(1u64..40, 32),
    ) {
        let mut presets = BfvParams::presets(4096).unwrap();
        presets.push(("switchable_2x36", switchable_2_limb()));
        for (name, params) in presets {
            let mut c = ctx(params, seed);
            let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();
            let pw = c
                .eval
                .prepare_plaintext(&c.encoder.encode(&weights).unwrap())
                .unwrap();
            let prod = c.eval.mul_plain(&ct, &pw).unwrap();
            let worked = c.eval.rotate_rows(&prod, 1, &c.keys).unwrap();
            let reference = c.encoder.decode(&c.dec.decrypt_checked(&worked).unwrap());

            let target = worked
                .noise()
                .recommended_level(&c.params, worked.level(), 1.0);
            let switched = c.eval.mod_switch_to(&worked, target).unwrap();
            prop_assert_eq!(switched.level(), target, "{}", name);
            let out = c.encoder.decode(&c.dec.decrypt_checked(&switched).unwrap());
            prop_assert_eq!(&out, &reference, "{}: switched decrypt diverged", name);

            // Measured noise obeys the transition model at the final level.
            let measured = c.dec.invariant_noise(&switched).unwrap() as f64;
            prop_assert!(
                measured.max(1.0).log2() <= switched.noise().bound_log2 + 1e-9,
                "{}: measured 2^{:.1} above bound 2^{:.1}",
                name,
                measured.log2(),
                switched.noise().bound_log2
            );
            // Wire size follows the live level.
            prop_assert_eq!(
                switched.byte_size(),
                2 * (c.params.limbs() - target) * 4096 * 8,
                "{}", name
            );
        }
    }

    /// The acceptance pin: one `mod_switch_to_next` on a fresh
    /// `preset_rns_3x36` ciphertext preserves decryption, and the
    /// reduced-level rotation still lands on the right slots.
    #[test]
    fn rns_3x36_single_switch_preserves_decryption(
        seed in any::<u64>(),
        vals in proptest::collection::vec(0u64..100_000, 48),
    ) {
        let mut c = ctx(BfvParams::preset_rns_3x36(4096).unwrap(), seed);
        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();
        let reference = c.encoder.decode(&c.dec.decrypt_checked(&ct).unwrap());

        let switched = c.eval.mod_switch_to_next(&ct).unwrap();
        prop_assert_eq!(switched.level(), 1);
        prop_assert_eq!(switched.live_limbs(), 2);
        let out = c.encoder.decode(&c.dec.decrypt_checked(&switched).unwrap());
        prop_assert_eq!(&out, &reference, "switched decrypt diverged");

        let rotated = c.eval.rotate_rows(&switched, 1, &c.keys).unwrap();
        let rot_out = c.encoder.decode(&c.dec.decrypt_checked(&rotated).unwrap());
        let row = c.params.row_size();
        for j in 0..47 {
            prop_assert_eq!(rot_out[j], reference[j + 1], "slot {}", j);
        }
        prop_assert_eq!(rot_out[row - 1], reference[0], "wrap-around");
    }
}

#[test]
fn one_limb_chain_is_level_zero_only() {
    let mut c = ctx(BfvParams::preset_single_60(4096).unwrap(), 17);
    let ct = c
        .enc
        .encrypt(&c.encoder.encode(&[1, 2, 3]).unwrap())
        .unwrap();
    assert_eq!(c.params.max_level(), 0);
    assert!(matches!(
        c.eval.mod_switch_to_next(&ct),
        Err(Error::InvalidLevel {
            requested: 1,
            current: 0,
            max: 0
        })
    ));
    // mod_switch_to(0) is the identity, not an error.
    let same = c.eval.mod_switch_to(&ct, 0).unwrap();
    assert_eq!(same.c0().data(), ct.c0().data());
}

#[test]
fn model_refuses_unswitchable_2x30_but_mechanics_stay_bounded() {
    // 30-bit limbs over a 16-bit t: Q' mod t is a generic ~2^15 residue
    // while the one-limb ceiling is ~2^13 — the drift alone can overflow,
    // so the model must keep the preset at level 0. The switch itself
    // still runs and its measured noise still obeys the transition bound;
    // the bound simply exceeds the ceiling (negative modeled budget).
    let mut c = ctx(BfvParams::preset_rns_2x30(4096).unwrap(), 23);
    let vals: Vec<u64> = (0..64).map(|i| i * 131 % 40000).collect();
    let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();
    assert_eq!(
        ct.noise().recommended_level(&c.params, 0, 0.0),
        0,
        "2x30 must not be recommended below level 0"
    );
    let switched = c.eval.mod_switch_to_next(&ct).unwrap();
    let measured = c.dec.invariant_noise(&switched).unwrap() as f64;
    assert!(measured.max(1.0).log2() <= switched.noise().bound_log2 + 1e-9);
}

#[test]
fn switched_ciphertext_shrinks_on_the_wire() {
    // Satellite: byte accounting reflects the live level, end to end.
    let mut c = ctx(BfvParams::preset_rns_3x36(4096).unwrap(), 29);
    let ct = c
        .enc
        .encrypt(&c.encoder.encode(&[7, 8, 9]).unwrap())
        .unwrap();
    assert_eq!(ct.byte_size(), 2 * 3 * 4096 * 8);
    let l1 = c.eval.mod_switch_to_next(&ct).unwrap();
    assert_eq!(l1.byte_size(), 2 * 2 * 4096 * 8);
    let l2 = c.eval.mod_switch_to_next(&l1).unwrap();
    assert_eq!(l2.byte_size(), 2 * 4096 * 8);
    assert!(l2.byte_size() < l1.byte_size() && l1.byte_size() < ct.byte_size());
    // The transparent accumulator for a level matches its operands.
    let z = Ciphertext::transparent_zero_at(&c.params, 2);
    assert_eq!(z.byte_size(), l2.byte_size());
}
