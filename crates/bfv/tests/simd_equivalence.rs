//! Scalar-vs-SIMD bit-identity pins.
//!
//! The `simd` feature is only allowed to change *how fast* a kernel runs,
//! never a single output bit. These tests force the pinned scalar
//! reference, repeat the identical computation under every runnable
//! vector backend, and require byte-for-byte equality:
//!
//! * forward and inverse negacyclic NTT on random polynomials, per limb
//!   of every preset (RNS and hybrid);
//! * the pointwise Barrett kernels (`add`/`sub`/`negate`/`mul`/`fma`/
//!   `mul_scalar`) on random residue vectors;
//! * a **full rotate** — keygen, encrypt, Galois key switch, decrypt —
//!   at every preset and every reachable level of its chain;
//! * typed-error behaviour is backend-independent.
//!
//! The same suite compiles and passes with the feature off: every
//! requested backend then clamps to `Scalar` and the comparisons are
//! trivially exact, which pins the clamp itself.

use cheetah_bfv::arith::Modulus;
use cheetah_bfv::ntt::NttTable;
use cheetah_bfv::poly::{Poly, Representation};
use cheetah_bfv::simd::{self, SimdBackend};
use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Evaluator, KeyGenerator,
};
use proptest::prelude::*;

/// Restores automatic backend detection even if an assertion unwinds.
struct ForceGuard;

impl ForceGuard {
    /// Forces `backend` for the current thread; returns the guard and the
    /// backend that is actually in effect after clamping (`Scalar` in
    /// no-`simd` builds, `Portable` when AVX2 is unavailable).
    fn force(backend: SimdBackend) -> (Self, SimdBackend) {
        let effective = simd::force_backend(Some(backend));
        (ForceGuard, effective)
    }
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        simd::force_backend(None);
    }
}

/// The vector backends this machine can actually run (clamp fixpoints).
/// Scalar is the reference, so it is excluded.
fn runnable_vector_backends() -> Vec<SimdBackend> {
    [SimdBackend::Portable, SimdBackend::Avx2]
        .into_iter()
        .filter(|&b| {
            let (_guard, effective) = ForceGuard::force(b);
            effective == b
        })
        .collect()
}

fn all_presets() -> Vec<(&'static str, BfvParams)> {
    let mut v = BfvParams::presets(4096).unwrap();
    v.extend(BfvParams::hybrid_presets(4096).unwrap());
    v
}

fn residues(q: &Modulus, n: usize, seed: u64) -> Vec<u64> {
    // Splitmix-style mixing — cheap, deterministic, full-width; reduced
    // into [0, q) with the edge residues planted at the front.
    let mut out: Vec<u64> = (0..n as u64)
        .map(|i| {
            let mut z = seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % q.value()
        })
        .collect();
    out[0] = 0;
    out[1] = 1;
    out[2] = q.value() - 1;
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Forward and inverse NTT produce the same bits on every backend,
    /// for every limb of every preset.
    #[test]
    fn ntt_transforms_bit_identical_across_backends(seed in any::<u64>()) {
        for (name, params) in all_presets() {
            let chain = params.chain();
            for i in 0..chain.limbs() {
                let table = chain.table(i);
                let input = residues(chain.modulus(i), chain.degree(), seed);

                let mut fwd_ref = input.clone();
                let mut inv_ref = input.clone();
                {
                    let (_guard, eff) = ForceGuard::force(SimdBackend::Scalar);
                    prop_assert_eq!(eff, SimdBackend::Scalar);
                    table.forward(&mut fwd_ref);
                    inv_ref.copy_from_slice(&fwd_ref);
                    table.inverse(&mut inv_ref);
                }
                prop_assert_eq!(&inv_ref, &input, "{}: scalar NTT roundtrip", name);

                for backend in runnable_vector_backends() {
                    let (_guard, eff) = ForceGuard::force(backend);
                    prop_assert_eq!(eff, backend);
                    let mut fwd = input.clone();
                    table.forward(&mut fwd);
                    prop_assert_eq!(
                        &fwd, &fwd_ref,
                        "{} limb {} forward diverged on {}", name, i, backend.name()
                    );
                    let mut inv = fwd;
                    table.inverse(&mut inv);
                    prop_assert_eq!(
                        &inv, &input,
                        "{} limb {} inverse diverged on {}", name, i, backend.name()
                    );
                }
            }
        }
    }

    /// The pointwise residue kernels agree bit for bit on every backend,
    /// for every limb modulus of every preset.
    #[test]
    fn pointwise_kernels_bit_identical_across_backends(seed in any::<u64>(), c in any::<u64>()) {
        for (name, params) in all_presets() {
            let chain = params.chain();
            for i in 0..chain.limbs() {
                let q = chain.modulus(i);
                let n = chain.degree();
                let a = Poly::from_data(residues(q, n, seed), Representation::Eval);
                let b = Poly::from_data(residues(q, n, seed ^ 0xabcd), Representation::Eval);
                let c = c % q.value();

                let run = |backend: SimdBackend| -> Vec<Vec<u64>> {
                    let (_guard, eff) = ForceGuard::force(backend);
                    assert_eq!(eff, backend);
                    let mut add = a.clone();
                    add.add_assign(&b, q).unwrap();
                    let mut sub = a.clone();
                    sub.sub_assign(&b, q).unwrap();
                    let mut neg = a.clone();
                    neg.negate(q);
                    let mut mul = a.clone();
                    mul.mul_assign_pointwise(&b, q).unwrap();
                    let mut muls = a.clone();
                    muls.mul_scalar(c, q);
                    let mut fma = add.clone();
                    fma.fma_pointwise(&a, &b, q).unwrap();
                    [add, sub, neg, mul, muls, fma]
                        .into_iter()
                        .map(Poly::into_data)
                        .collect()
                };

                let reference = run(SimdBackend::Scalar);
                for backend in runnable_vector_backends() {
                    let got = run(backend);
                    prop_assert_eq!(
                        &got, &reference,
                        "{} limb {} pointwise kernels diverged on {}",
                        name, i, backend.name()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// A full rotate pipeline — seeded keygen, encrypt, Galois key switch
    /// at each reachable level — produces bit-identical ciphertexts on
    /// every backend, for every preset including hybrid keyswitching.
    #[test]
    fn full_rotate_bit_identical_across_backends(seed in any::<u64>(), step in 1i64..8) {
        for (name, params) in all_presets() {
            let run = |backend: SimdBackend| -> Vec<Ciphertext> {
                let (_guard, eff) = ForceGuard::force(backend);
                assert_eq!(eff, backend);
                let mut kg = KeyGenerator::from_seed(params.clone(), seed);
                let pk = kg.public_key().unwrap();
                let keys = kg.galois_keys_for_steps(&[step]).unwrap();
                let encoder = BatchEncoder::new(params.clone());
                let mut enc = Encryptor::from_public_key(pk, seed ^ 0x5eed);
                let dec = Decryptor::new(kg.secret_key().clone());
                let eval = Evaluator::new(params.clone());

                let values: Vec<u64> = (0..64u64).map(|i| (i * 37 + 11) % 97).collect();
                let fresh = enc.encrypt(&encoder.encode(&values).unwrap()).unwrap();
                let deepest = fresh.noise().recommended_level(&params, 0, 2.0);
                let mut out = Vec::new();
                for level in 0..=deepest {
                    let ct = eval.mod_switch_to(&fresh, level).unwrap();
                    let rotated = eval.rotate_rows(&ct, step, &keys).unwrap();
                    // Where the noise model says the rotation is sound
                    // (same gate as the BSGS suite), it must also still
                    // decrypt correctly — bit-identical garbage would be
                    // a hollow victory. Unsound levels stay in the
                    // cross-backend bit comparison regardless.
                    let sound = ct
                        .noise()
                        .rotate_at(&params, level)
                        .budget_bits_worst_at(&params, level)
                        >= 2.0;
                    if sound {
                        let decoded = encoder.decode(&dec.decrypt(&rotated).unwrap());
                        let expect_first = values[step as usize];
                        assert_eq!(
                            decoded[0], expect_first,
                            "{} L{} on {}: rotate decrypted wrong", name, level, backend.name()
                        );
                    }
                    out.push(rotated);
                }
                out
            };

            let reference = run(SimdBackend::Scalar);
            for backend in runnable_vector_backends() {
                let got = run(backend);
                prop_assert_eq!(got.len(), reference.len());
                for (level, (g, r)) in got.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        g.c0(), r.c0(),
                        "{} L{} c0 diverged on {}", name, level, backend.name()
                    );
                    prop_assert_eq!(
                        g.c1(), r.c1(),
                        "{} L{} c1 diverged on {}", name, level, backend.name()
                    );
                }
            }
        }
    }
}

/// Typed boundary errors fire identically on every backend: the checks
/// live in front of the dispatch, so no vector path can bypass them.
#[test]
fn typed_errors_are_backend_independent() {
    let q = Modulus::new(cheetah_bfv::arith::generate_ntt_prime(30, 64).unwrap()).unwrap();
    let table = NttTable::new(64, q).unwrap();
    let mut backends = vec![SimdBackend::Scalar];
    backends.extend(runnable_vector_backends());
    for backend in backends {
        let (_guard, eff) = ForceGuard::force(backend);
        assert_eq!(eff, backend);
        let mut short = vec![0u64; 32];
        assert!(matches!(
            table.try_forward(&mut short),
            Err(cheetah_bfv::Error::ParameterMismatch)
        ));
        assert!(matches!(
            table.try_inverse(&mut short),
            Err(cheetah_bfv::Error::ParameterMismatch)
        ));
        assert!(matches!(
            table.try_galois_permutation(4),
            Err(cheetah_bfv::Error::InvalidGaloisElement(4))
        ));
    }
}
