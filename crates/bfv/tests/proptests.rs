//! Property-based tests for the BFV substrate: algebraic laws that must
//! hold for arbitrary inputs, and homomorphism properties of the full
//! encrypt→evaluate→decrypt pipeline.

use cheetah_bfv::arith::{bit_reverse, generate_ntt_prime, Modulus, ShoupPrecomp};
use cheetah_bfv::ntt::{negacyclic_mul_naive, NttTable};
use cheetah_bfv::poly::{Poly, Representation};
use cheetah_bfv::{BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator};
use proptest::prelude::*;

const Q30: u64 = 0; // placeholder replaced by lazy helpers below

fn modulus_30() -> Modulus {
    let _ = Q30;
    Modulus::new(generate_ntt_prime(30, 64).unwrap()).unwrap()
}

fn modulus_60() -> Modulus {
    Modulus::new(generate_ntt_prime(60, 64).unwrap()).unwrap()
}

proptest! {
    #[test]
    fn barrett_mul_matches_reference(a in any::<u64>(), b in any::<u64>()) {
        for q in [modulus_30(), modulus_60()] {
            let a = a % q.value();
            let b = b % q.value();
            let expect = ((a as u128 * b as u128) % q.value() as u128) as u64;
            prop_assert_eq!(q.mul_mod(a, b), expect);
        }
    }

    #[test]
    fn shoup_mul_matches_barrett(w in any::<u64>(), x in any::<u64>()) {
        let q = modulus_60();
        let w = w % q.value();
        let x = x % q.value();
        let pre = ShoupPrecomp::new(w, &q);
        prop_assert_eq!(pre.mul(x, &q), q.mul_mod(x, w));
    }

    #[test]
    fn modular_ring_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let q = modulus_30();
        let (a, b, c) = (a % q.value(), b % q.value(), c % q.value());
        // commutativity, associativity, distributivity
        prop_assert_eq!(q.add_mod(a, b), q.add_mod(b, a));
        prop_assert_eq!(q.mul_mod(a, b), q.mul_mod(b, a));
        prop_assert_eq!(q.mul_mod(q.mul_mod(a, b), c), q.mul_mod(a, q.mul_mod(b, c)));
        prop_assert_eq!(
            q.mul_mod(a, q.add_mod(b, c)),
            q.add_mod(q.mul_mod(a, b), q.mul_mod(a, c))
        );
    }

    #[test]
    fn inverse_is_two_sided(a in 1u64..u64::MAX) {
        let q = modulus_30();
        let a = a % q.value();
        prop_assume!(a != 0);
        let inv = q.inv_mod(a).unwrap();
        prop_assert_eq!(q.mul_mod(a, inv), 1);
        prop_assert_eq!(q.mul_mod(inv, a), 1);
    }

    #[test]
    fn center_roundtrips(a in any::<u64>()) {
        let q = modulus_30();
        let a = a % q.value();
        prop_assert_eq!(q.from_signed(q.center(a)), a);
    }

    #[test]
    fn bit_reverse_involution(x in 0usize..4096, bits in 1u32..13) {
        let x = x & ((1 << bits) - 1);
        prop_assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ntt_roundtrip_random(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let n = 128;
        let q = Modulus::new(generate_ntt_prime(40, n).unwrap()).unwrap();
        let table = NttTable::new(n, q).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..n).map(|_| rng.random_range(0..q.value())).collect();
        let mut b = a.clone();
        table.forward(&mut b);
        table.inverse(&mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ntt_mul_matches_schoolbook(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let n = 64;
        let q = Modulus::new(generate_ntt_prime(40, n).unwrap()).unwrap();
        let table = NttTable::new(n, q).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..n).map(|_| rng.random_range(0..q.value())).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.random_range(0..q.value())).collect();
        let expect = negacyclic_mul_naive(&a, &b, &q);
        let mut fa = a.clone();
        let mut fb = b;
        table.forward(&mut fa);
        table.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul_mod(x, y)).collect();
        table.inverse(&mut fc);
        prop_assert_eq!(fc, expect);
    }

    #[test]
    fn decompose_recompose_identity(seed in any::<u64>(), log_base in 1u32..21) {
        use rand::{Rng, SeedableRng};
        let n = 32;
        let q = Modulus::new(generate_ntt_prime(50, n).unwrap()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Poly::from_data(
            (0..n).map(|_| rng.random_range(0..q.value())).collect(),
            Representation::Coeff,
        );
        let base = 1u64 << log_base;
        let digits = a.decompose(base, &q).unwrap();
        let back = Poly::recompose(&digits, base, &q).unwrap();
        prop_assert_eq!(back, a);
    }
}

/// Shared fixture for the (expensive) end-to-end homomorphism properties.
struct HomCtx {
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: cheetah_bfv::GaloisKeys,
    t: u64,
}

fn hom_ctx(seed: u64) -> HomCtx {
    let params = BfvParams::builder()
        .degree(2048)
        .plain_bits(16)
        .cipher_bits(54)
        .a_dcmp(1 << 16)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1, 2, 3, -1, -2]).unwrap();
    HomCtx {
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 0xabcdef),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params.clone()),
        keys,
        t: params.plain_modulus().value(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn homomorphic_affine_combination(
        seed in any::<u64>(),
        a in proptest::collection::vec(0u64..65536, 8),
        b in proptest::collection::vec(0u64..65536, 8),
        w in proptest::collection::vec(0u64..65536, 8),
    ) {
        let mut ctx = hom_ctx(seed);
        let ca = ctx.enc.encrypt(&ctx.encoder.encode(&a).unwrap()).unwrap();
        let cb = ctx.enc.encrypt(&ctx.encoder.encode(&b).unwrap()).unwrap();
        let pw = ctx.eval.prepare_plaintext(&ctx.encoder.encode(&w).unwrap()).unwrap();
        // (a + b) * w slot-wise
        let sum = ctx.eval.add(&ca, &cb).unwrap();
        let prod = ctx.eval.mul_plain(&sum, &pw).unwrap();
        let out = ctx.encoder.decode(&ctx.dec.decrypt_checked(&prod).unwrap());
        for i in 0..8 {
            let expect = ((a[i] + b[i]) as u128 * w[i] as u128 % ctx.t as u128) as u64;
            prop_assert_eq!(out[i], expect);
        }
    }

    #[test]
    fn rotation_is_cyclic_shift(seed in any::<u64>(), step in 1i64..4) {
        let mut ctx = hom_ctx(seed);
        let row = ctx.encoder.row_size();
        let vals: Vec<u64> = (0..row as u64).map(|i| i * 3 % 65536).collect();
        let ct = ctx.enc.encrypt(&ctx.encoder.encode(&vals).unwrap()).unwrap();
        let rot = ctx.eval.rotate_rows(&ct, step, &ctx.keys).unwrap();
        let out = ctx.encoder.decode(&ctx.dec.decrypt_checked(&rot).unwrap());
        for i in 0..16 {
            prop_assert_eq!(out[i], vals[(i + step as usize) % row]);
        }
    }

    #[test]
    fn rotate_then_unrotate_is_identity(seed in any::<u64>(), step in 1i64..3) {
        let mut ctx = hom_ctx(seed);
        let vals: Vec<u64> = (0..64u64).collect();
        let ct = ctx.enc.encrypt(&ctx.encoder.encode(&vals).unwrap()).unwrap();
        let there = ctx.eval.rotate_rows(&ct, step, &ctx.keys).unwrap();
        let back = ctx.eval.rotate_rows(&there, -step, &ctx.keys).unwrap();
        let out = ctx.encoder.decode(&ctx.dec.decrypt_checked(&back).unwrap());
        prop_assert_eq!(&out[..64], &vals[..]);
    }

    #[test]
    fn measured_noise_never_exceeds_model_bound(
        seed in any::<u64>(),
        w in proptest::collection::vec(0u64..65536, 4),
    ) {
        let mut ctx = hom_ctx(seed);
        let ct = ctx.enc.encrypt(&ctx.encoder.encode(&[1, 2, 3, 4]).unwrap()).unwrap();
        let pw = ctx.eval.prepare_plaintext(&ctx.encoder.encode(&w).unwrap()).unwrap();
        let after_mul = ctx.eval.mul_plain(&ct, &pw).unwrap();
        let after_rot = ctx.eval.rotate_rows(&after_mul, 1, &ctx.keys).unwrap();
        for c in [&ct, &after_mul, &after_rot] {
            let measured = ctx.dec.invariant_noise(c).unwrap() as f64;
            prop_assert!(measured.max(1.0).log2() <= c.noise().bound_log2 + 1e-9,
                "measured 2^{} vs bound 2^{}", measured.log2(), c.noise().bound_log2);
        }
    }
}

// ---------------------------------------------------------------------------
// HE-PTune v2 prime search: the congruence contract under random draws.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever `(n, t_bits, limb widths)` the solver asks for, a chain
    /// the search *returns* is fully congruent: every data limb and the
    /// special prime satisfy `q ≡ 1 (mod 2n·t)`, all primes are pairwise
    /// distinct, and each lands in its requested size class. Regimes with
    /// no congruent primes error out (covered by the unit suite) — here
    /// they are skipped, never silently degraded.
    #[test]
    fn congruent_chain_search_holds_for_random_draws(
        n_pow in 10u32..13,
        t_bits in 14u32..17,
        extra in 0u32..6,
        limbs in 1usize..3,
    ) {
        let n = 1usize << n_pow;
        // Congruent primes must exceed 2n·t, so the width floor moves
        // with the draw: t_bits + log2(2n) + slack.
        let width = t_bits + n_pow + 3 + extra;
        prop_assume!(width <= 60);
        let data = vec![width; limbs];
        let Ok(c) = cheetah_bfv::search_congruent_chain(n, t_bits, &data, width) else {
            prop_assume!(false);
            unreachable!();
        };
        let step = 2 * (n as u64) * c.t;
        let mut all: Vec<u64> = c.data.clone();
        all.push(c.special);
        prop_assert_eq!(all.len(), limbs + 1);
        for &q in &all {
            prop_assert_eq!(q % step, 1, "q = {} not congruent (step {})", q, step);
            prop_assert_eq!(64 - q.leading_zeros(), width, "q = {} wrong size", q);
        }
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), all.len(), "limbs must be pairwise distinct");
        prop_assert_eq!(64 - c.t.leading_zeros(), t_bits);
    }
}

#[test]
fn every_hybrid_preset_chain_is_congruent_at_every_degree() {
    // The three shipped hybrid presets (1x54, 2x36, 2x40) across their
    // valid degrees: `q ≡ 1 (mod 2n·t)` down to and including `P`, so
    // `Q_ℓ ≡ 1 (mod t)` at every level and the `P`-rescale is
    // congruence-free.
    for n in [4096usize, 8192] {
        for (name, p) in BfvParams::hybrid_presets(n).unwrap() {
            let t = p.plain_modulus().value();
            let step = 2 * (n as u64) * t;
            let special = p.special().expect("hybrid preset must carry P");
            let limbs: Vec<u64> = (0..p.limbs())
                .map(|i| p.chain().modulus(i).value())
                .chain(std::iter::once(special.value()))
                .collect();
            for q in limbs {
                assert_eq!(q % step, 1, "{n}/{name}: q = {q} not congruent");
            }
        }
    }
}
