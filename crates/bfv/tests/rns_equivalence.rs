//! The RNS migration guarantees, pinned:
//!
//! * a 1-limb [`cheetah_bfv::ModulusChain`] is **bit-identical** to the
//!   historical single-`q` engine: a full encrypt → rotate → mul_plain →
//!   decrypt pipeline is replayed step by step with seed-era scalar
//!   [`Poly`] primitives on limb plane 0 and compared residue-for-residue;
//! * CRT decompose ∘ compose round-trips on random `u128` values under
//!   every parameter preset (1, 2, and 3 limbs);
//! * the evaluator rejects ciphertexts from a foreign chain, even one with
//!   the same degree and total modulus bits;
//! * multi-limb pipelines decrypt to the same slots as the single-limb
//!   engine computes;
//! * the RNS-native (per-limb `q̂_i`) key switch decrypts identically to
//!   the seed-era composed-base key switch, replayed here against
//!   manually built composed keys over the Garner decomposition.

use std::sync::OnceLock;

use cheetah_bfv::poly::{Poly, Representation};
use cheetah_bfv::{
    BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, GaloisKeys, KeyGenerator, RnsPoly,
};
use proptest::prelude::*;

struct Ctx {
    params: BfvParams,
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: GaloisKeys,
}

fn ctx(params: BfvParams, seed: u64) -> Ctx {
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1, 2]).unwrap();
    Ctx {
        params: params.clone(),
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 0x5eed),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params),
        keys,
    }
}

fn single_limb_params() -> BfvParams {
    BfvParams::builder()
        .degree(2048)
        .plain_bits(16)
        .cipher_bits(54)
        .a_dcmp(1 << 16)
        .build()
        .unwrap()
}

/// Limb plane 0 as a seed-era scalar `Poly`.
fn limb0(p: &RnsPoly) -> Poly {
    Poly::from_data(p.limb(0).to_vec(), p.representation())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (a) 1-limb bit-identity: the whole encrypt → rotate → mul_plain →
    /// decrypt pipeline, each stage replayed with scalar `Poly` kernels.
    #[test]
    fn one_limb_pipeline_matches_single_q_reference(
        seed in any::<u64>(),
        vals in proptest::collection::vec(0u64..40000, 16),
        weights in proptest::collection::vec(0u64..40000, 16),
    ) {
        let mut c = ctx(single_limb_params(), seed);
        let q = *c.params.chain().modulus(0);
        let table = c.params.chain().table(0);
        prop_assert_eq!(c.params.limbs(), 1);

        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();

        // --- Stage 1: rotate by 1 (engine) vs scalar Lane datapath. ---
        let rotated = c.eval.rotate_rows(&ct, 1, &c.keys).unwrap();

        let g = cheetah_bfv::keys::element_for_step(c.params.degree(), 1).unwrap();
        let key = c.keys.get(g).unwrap();
        let perm = key.permutation();
        let n = c.params.degree();

        let mut ref_c0 = Poly::zero(n, Representation::Eval);
        ref_c0.permute_from(&limb0(ct.c0()), perm);
        let mut c1_g = Poly::zero(n, Representation::Eval);
        c1_g.permute_from(&limb0(ct.c1()), perm);
        c1_g.to_coeff(table);
        let digits = c1_g.decompose(c.params.a_dcmp(), &q).unwrap();
        prop_assert_eq!(digits.len(), c.params.l_ct());
        let mut ref_c1 = Poly::zero(n, Representation::Eval);
        for (mut digit, (k0, k1)) in digits.into_iter().zip(key.pairs()) {
            digit.to_eval(table);
            ref_c0.fma_pointwise(&digit, &limb0(k0), &q).unwrap();
            ref_c1.fma_pointwise(&digit, &limb0(k1), &q).unwrap();
        }
        prop_assert_eq!(rotated.c0().data(), ref_c0.data(), "rotate c0");
        prop_assert_eq!(rotated.c1().data(), ref_c1.data(), "rotate c1");

        // --- Stage 2: mul_plain (engine) vs scalar pointwise product. ---
        let pw = c
            .eval
            .prepare_plaintext(&c.encoder.encode(&weights).unwrap())
            .unwrap();
        let prod = c.eval.mul_plain(&rotated, &pw).unwrap();
        ref_c0.mul_assign_pointwise(&limb0(pw.poly()), &q).unwrap();
        ref_c1.mul_assign_pointwise(&limb0(pw.poly()), &q).unwrap();
        prop_assert_eq!(prod.c0().data(), ref_c0.data(), "mul c0");
        prop_assert_eq!(prod.c1().data(), ref_c1.data(), "mul c1");

        // --- Stage 3: decrypt (engine) vs scalar phase + exact rounding. ---
        let decrypted = c.dec.decrypt(&prod).unwrap();
        let mut kg = KeyGenerator::from_seed(c.params.clone(), seed);
        let _ = kg.public_key().unwrap(); // replay the keygen stream
        let s = limb0(kg.secret_key().poly());
        let mut phase = ref_c1.clone();
        phase.mul_assign_pointwise(&s, &q).unwrap();
        phase.add_assign(&ref_c0, &q).unwrap();
        phase.to_coeff(table);
        let (qv, tv) = (q.value() as u128, c.params.plain_modulus().value() as u128);
        let reference: Vec<u64> = phase
            .data()
            .iter()
            .map(|&p| ((tv * p as u128 + qv / 2) / qv % tv) as u64)
            .collect();
        prop_assert_eq!(decrypted.poly().data(), &reference[..], "decrypt");
    }

    /// (b) CRT decompose ∘ compose round-trip on random u128 values under
    /// every params preset.
    #[test]
    fn crt_roundtrip_under_every_preset(hi in any::<u64>(), lo in any::<u64>()) {
        let raw = (hi as u128) << 64 | lo as u128;
        static PRESETS: OnceLock<Vec<(&'static str, BfvParams)>> = OnceLock::new();
        let presets = PRESETS.get_or_init(|| BfvParams::presets(4096).unwrap());
        for (name, p) in presets {
            let crt = p.chain().crt();
            let v = raw % crt.big_q();
            let residues = crt.decompose(v);
            prop_assert_eq!(residues.len(), p.limbs(), "{}", name);
            prop_assert_eq!(crt.compose(&residues), v, "{}: compose∘decompose", name);
            // And the other direction, from an arbitrary residue vector.
            let arbitrary: Vec<u64> = p
                .chain()
                .moduli()
                .iter()
                .enumerate()
                .map(|(i, m)| (raw as u64 ^ (i as u64) << 17) % m.value())
                .collect();
            let composed = crt.compose(&arbitrary);
            prop_assert_eq!(crt.decompose(composed), arbitrary, "{}: decompose∘compose", name);
        }
    }
}

/// (c) The evaluator rejects ciphertexts from a foreign chain — including
/// one with the same degree and the same total `log2(Q)`.
#[test]
fn evaluator_rejects_foreign_chain_ciphertexts() {
    use cheetah_bfv::Error;

    let mut single = ctx(BfvParams::preset_single_60(4096).unwrap(), 3);
    let mut two = ctx(BfvParams::preset_rns_2x30(4096).unwrap(), 4);

    let ct_single = single
        .enc
        .encrypt(&single.encoder.encode(&[1, 2, 3]).unwrap())
        .unwrap();
    let ct_two = two
        .enc
        .encrypt(&two.encoder.encode(&[1, 2, 3]).unwrap())
        .unwrap();

    // Same degree, same 60-bit total modulus — still a foreign chain.
    assert!(matches!(
        two.eval.add(&ct_two, &ct_single),
        Err(Error::ParameterMismatch)
    ));
    let mut work = ct_two.clone();
    assert!(matches!(
        two.eval.add_assign(&mut work, &ct_single),
        Err(Error::ParameterMismatch)
    ));
    assert!(matches!(
        two.eval.rotate_rows(&ct_single, 1, &two.keys),
        Err(Error::ParameterMismatch)
    ));
    let pw_single = single
        .eval
        .prepare_plaintext(&single.encoder.encode(&[5]).unwrap())
        .unwrap();
    let mut work = ct_two.clone();
    assert!(matches!(
        two.eval.mul_plain_assign(&mut work, &pw_single),
        Err(Error::ParameterMismatch)
    ));
    // And decryptors refuse foreign ciphertexts outright.
    assert!(matches!(
        two.dec.decrypt(&ct_single),
        Err(Error::ParameterMismatch)
    ));
}

/// The RNS-native key switch agrees with the seed-era composed-base key
/// switch. The Garner `decompose_into` is retired outright; the replay is
/// reconstructed from `compose_coeff` inside `rns.rs`
/// (`multi_limb_rotate_matches_composed_base_reference`). What remains
/// here is the public-API half of that guarantee: the hoisted replay
/// decrypts identically to the direct rotation for every preset.
#[test]
fn multi_limb_hoisted_rotate_matches_direct() {
    for (name, params) in BfvParams::presets(4096).unwrap() {
        let mut c = ctx(params.clone(), 21);
        let vals: Vec<u64> = (0..100).map(|i| (i * 31 + 7) % 1000).collect();
        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();

        let rotated = c.eval.rotate_rows(&ct, 1, &c.keys).unwrap();
        let engine_slots = c.encoder.decode(&c.dec.decrypt_checked(&rotated).unwrap());

        let hoisted = c.eval.hoist(&ct).unwrap();
        let via_hoist = c.eval.rotate_hoisted(&ct, &hoisted, 1, &c.keys).unwrap();
        let hoist_slots = c
            .encoder
            .decode(&c.dec.decrypt_checked(&via_hoist).unwrap());
        assert_eq!(engine_slots, hoist_slots, "{name}: hoisted rotate diverged");
    }
}

/// Multi-limb pipelines produce the same plaintext slots as the
/// single-limb engine for the same logical computation.
#[test]
fn multi_limb_pipeline_matches_single_limb_slots() {
    // Products stay below every preset's plaintext modulus (min ~2^15.3),
    // so the slot results are exact integers shared across limb counts.
    let vals: Vec<u64> = (0..64).map(|i| i * 37 % 200).collect();
    let weights: Vec<u64> = (1..=64).collect();

    let mut reference: Option<Vec<u64>> = None;
    for (name, params) in BfvParams::presets(4096).unwrap() {
        let mut c = ctx(params, 9);
        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();
        // Sched-PA order (multiply before rotating): the presets keep the
        // paper's A_dcmp = 2^20, whose key-switch noise must not be
        // amplified by a subsequent multiplication (§V).
        let pw = c
            .eval
            .prepare_plaintext(&c.encoder.encode(&weights).unwrap())
            .unwrap();
        let prod = c.eval.mul_plain(&ct, &pw).unwrap();
        let rotated = c.eval.rotate_rows(&prod, 2, &c.keys).unwrap();
        let out = c.encoder.decode(&c.dec.decrypt_checked(&rotated).unwrap());
        let expect: Vec<u64> = (0..62).map(|i| vals[i + 2] * weights[i + 2]).collect();
        assert_eq!(&out[..62], &expect[..], "{name}: wrong slots");
        // All presets share a plaintext modulus large enough for these
        // products, so the logical results agree across limb counts.
        match &reference {
            None => reference = Some(out[..62].to_vec()),
            Some(r) => assert_eq!(&out[..62], &r[..], "{name} diverges"),
        }
    }
}
