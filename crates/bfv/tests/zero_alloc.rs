//! Proof of the zero-allocation hot path: a counting global allocator
//! wraps `System`, and after one warmup pass each in-place evaluator
//! operation must execute with **zero** heap allocations.
//!
//! This is the acceptance criterion of the scratch-pool refactor: the
//! steady-state cost of `HE_Add` / `HE_Mult` / `HE_Rotate` is arithmetic
//! only, never allocator traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Evaluator, HoistedDecomposition,
    KeyGenerator, Scratch,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_inplace_ops_do_not_allocate() {
    let params = BfvParams::builder()
        .degree(2048)
        .plain_bits(16)
        .cipher_bits(54)
        .a_dcmp(1 << 16)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), 99);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1, 2]).unwrap();
    let encoder = BatchEncoder::new(params.clone());
    let mut enc = Encryptor::from_public_key(pk, 7);
    let dec = Decryptor::new(kg.secret_key().clone());
    let eval = Evaluator::new(params.clone());

    let vals: Vec<u64> = (0..100).collect();
    let pt = encoder.encode(&vals).unwrap();
    let prepared = eval.prepare_plaintext(&pt).unwrap();
    let base = enc.encrypt(&pt).unwrap();
    let other = enc.encrypt(&pt).unwrap();

    let mut scratch: Scratch = eval.new_scratch();
    let mut work = base.clone();
    let mut rot = Ciphertext::transparent_zero(&params);
    let mut hoisted = HoistedDecomposition::empty(&params);

    let run_all = |work: &mut Ciphertext,
                   rot: &mut Ciphertext,
                   hoisted: &mut HoistedDecomposition,
                   scratch: &mut Scratch| {
        eval.add_assign(work, &other).unwrap();
        eval.sub_assign(work, &other).unwrap();
        eval.negate_assign(work).unwrap();
        eval.negate_assign(work).unwrap();
        eval.mul_plain_assign(work, &prepared).unwrap();
        eval.mul_plain_accumulate(work, &other, &prepared).unwrap();
        eval.mul_scalar_assign(work, 3).unwrap();
        eval.add_plain_assign(work, &pt, scratch).unwrap();
        eval.rotate_rows_into(rot, work, 1, &keys, scratch).unwrap();
        eval.rotate_rows_into(rot, work, 0, &keys, scratch).unwrap();
        eval.apply_galois_into(rot, work, 3, &keys, scratch)
            .unwrap();
        eval.hoist_into(hoisted, work, scratch).unwrap();
        eval.rotate_hoisted_into(rot, work, hoisted, 1, &keys, scratch)
            .unwrap();
        eval.rotate_hoisted_into(rot, work, hoisted, 2, &keys, scratch)
            .unwrap();
    };

    // Warmup: populates the scratch pool (temporary poly + l_ct digits)
    // and the hoisted digit storage.
    run_all(&mut work, &mut rot, &mut hoisted, &mut scratch);

    // Steady state: not a single trip to the allocator.
    let before = allocations();
    for _ in 0..5 {
        run_all(&mut work, &mut rot, &mut hoisted, &mut scratch);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "in-place evaluator ops allocated {} times at steady state",
        after - before
    );

    // The ciphertext still decrypts (values are garbage arithmetic, but
    // the pipeline must stay structurally sound).
    let _ = dec.decrypt(&rot).unwrap();
}

#[test]
fn allocating_wrappers_still_work_and_count() {
    let params = BfvParams::builder()
        .degree(2048)
        .plain_bits(16)
        .cipher_bits(54)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), 5);
    let pk = kg.public_key().unwrap();
    let encoder = BatchEncoder::new(params.clone());
    let mut enc = Encryptor::from_public_key(pk, 6);
    let eval = Evaluator::new(params);

    let ct = enc.encrypt(&encoder.encode(&[1, 2, 3]).unwrap()).unwrap();
    let before = allocations();
    let _sum = eval.add(&ct, &ct).unwrap();
    assert!(
        allocations() > before,
        "allocating wrapper must clone its input"
    );
}
