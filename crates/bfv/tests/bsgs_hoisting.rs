//! The evaluator-level guarantees BSGS layers are built on, pinned:
//!
//! * a hoisted baby-step set ([`Evaluator::rotate_set_hoisted_into`])
//!   decrypts identically to direct rotations, for every preset and at
//!   every level — the hoisted-vs-direct giant-step identity;
//! * a BSGS-shaped rotate-and-sum (hoisted babies + direct giants) equals
//!   the all-direct dependent chain it replaces, slot for slot;
//! * every negative path of the new BSGS shapes fires its typed error:
//!   mixed-level group accumulators ([`Error::LevelMismatch`]), stale
//!   hoist reuse across a modulus switch ([`Error::LevelMismatch`]),
//!   foreign-fingerprint hoisted replay ([`Error::ParameterMismatch`]),
//!   and invalid switch targets ([`Error::InvalidLevel`]).

use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Error, Evaluator, GaloisKeys,
    HoistedDecomposition, KeyGenerator,
};
use proptest::prelude::*;

struct Ctx {
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: GaloisKeys,
}

fn ctx(params: BfvParams, seed: u64) -> Ctx {
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let steps: Vec<i64> = (1..16).collect();
    let keys = kg.galois_keys_for_steps(&steps).unwrap();
    Ctx {
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 0x5eed),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params),
        keys,
    }
}

fn values(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (i * 37 + 11) % 500).collect()
}

#[test]
fn hoisted_baby_set_matches_direct_rotations_per_preset_and_level() {
    for (name, params) in BfvParams::presets(4096).unwrap() {
        let mut c = ctx(params.clone(), 91);
        let fresh = c
            .enc
            .encrypt(&c.encoder.encode(&values(64)).unwrap())
            .unwrap();
        // Only levels the noise model recommends (the 2×30 chain cannot
        // drop its rounding drift; the deep chain's bottom limb cannot
        // hold a rotation) — the same gate leveled evaluation uses.
        let deepest = fresh.noise().recommended_level(&params, 0, 2.0);
        let mut checked = 0;
        for level in 0..=deepest {
            let ct = c.eval.mod_switch_to(&fresh, level).unwrap();
            if ct
                .noise()
                .rotate_at(&params, level)
                .budget_bits_worst_at(&params, level)
                < 2.0
            {
                continue;
            }
            checked += 1;
            let steps: Vec<i64> = (0..8).collect();
            let mut outs = Vec::new();
            let mut hoisted = HoistedDecomposition::empty(&params);
            let mut scratch = c.eval.new_scratch();
            c.eval
                .rotate_set_hoisted_into(
                    &mut outs,
                    &ct,
                    &steps,
                    &c.keys,
                    &mut hoisted,
                    &mut scratch,
                )
                .unwrap();
            assert_eq!(outs.len(), steps.len());
            for (out, &step) in outs.iter().zip(&steps) {
                let direct = c.eval.rotate_rows(&ct, step, &c.keys).unwrap();
                assert_eq!(
                    c.encoder.decode(&c.dec.decrypt_checked(out).unwrap()),
                    c.encoder.decode(&c.dec.decrypt_checked(&direct).unwrap()),
                    "{name} level {level} step {step}: hoisted replay diverged"
                );
            }
        }
        assert!(checked >= 1, "{name}: at least level 0 must be checked");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A BSGS-shaped rotate-and-sum — hoisted baby replays feeding
    /// direct giant-step rotations of the partial groups — decrypts
    /// identically to the all-direct dependent chain it replaces.
    #[test]
    fn bsgs_shaped_rotate_sum_matches_direct_chain(seed in any::<u64>()) {
        let params = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut c = ctx(params.clone(), seed % 900 + 2);
        let ct = c.enc.encrypt(&c.encoder.encode(&values(12)).unwrap()).unwrap();

        // Direct dependent chain: Σ_{k=0}^{11} rot(ct, k), one full
        // rotation per term reading the fresh accumulator.
        let mut direct = ct.clone();
        for k in 1..12 {
            let r = c.eval.rotate_rows(&ct, k, &c.keys).unwrap();
            direct = c.eval.add(&direct, &r).unwrap();
        }

        // BSGS shape: babies rot(ct, 0..4) from one hoist, group sums,
        // direct giant rotations by 4 and 8.
        let mut babies = Vec::new();
        let mut hoisted = HoistedDecomposition::empty(&params);
        let mut scratch = c.eval.new_scratch();
        c.eval
            .rotate_set_hoisted_into(
                &mut babies, &ct, &[0, 1, 2, 3], &c.keys, &mut hoisted, &mut scratch,
            )
            .unwrap();
        let mut inner = babies[0].clone();
        for b in &babies[1..] {
            inner = c.eval.add(&inner, b).unwrap();
        }
        let mut bsgs = inner.clone();
        for giant in [4i64, 8] {
            let rotated = c.eval.rotate_rows(&inner, giant, &c.keys).unwrap();
            bsgs = c.eval.add(&bsgs, &rotated).unwrap();
        }

        prop_assert_eq!(
            c.encoder.decode(&c.dec.decrypt_checked(&bsgs).unwrap()),
            c.encoder.decode(&c.dec.decrypt_checked(&direct).unwrap())
        );
    }
}

#[test]
fn stale_hoist_across_mod_switch_is_rejected() {
    let params = BfvParams::preset_rns_3x36(4096).unwrap();
    let mut c = ctx(params.clone(), 17);
    let ct = c
        .enc
        .encrypt(&c.encoder.encode(&values(8)).unwrap())
        .unwrap();

    // Hoist at level 0, then switch the ciphertext down a level: the
    // cached digits cover the wrong live planes and must not replay.
    let hoisted = c.eval.hoist(&ct).unwrap();
    let switched = c.eval.mod_switch_to_next(&ct).unwrap();
    assert_eq!(switched.level(), 1);
    let mut out = Ciphertext::transparent_zero(&params);
    let mut scratch = c.eval.new_scratch();
    assert!(matches!(
        c.eval
            .rotate_hoisted_into(&mut out, &switched, &hoisted, 1, &c.keys, &mut scratch),
        Err(Error::LevelMismatch {
            expected: 1,
            found: 0
        })
    ));
}

#[test]
fn foreign_fingerprint_hoisted_replay_is_rejected() {
    let params = BfvParams::preset_rns_2x30(4096).unwrap();
    let mut c = ctx(params.clone(), 19);
    let ct_a = c
        .enc
        .encrypt(&c.encoder.encode(&values(8)).unwrap())
        .unwrap();
    let ct_b = c
        .enc
        .encrypt(&c.encoder.encode(&values(9)).unwrap())
        .unwrap();

    // A hoist of A spliced onto B's c0 would decrypt to garbage while
    // carrying a valid-looking noise estimate — the fingerprint stops it.
    let hoisted = c.eval.hoist(&ct_a).unwrap();
    let mut out = Ciphertext::transparent_zero(&params);
    let mut scratch = c.eval.new_scratch();
    assert!(matches!(
        c.eval
            .rotate_hoisted_into(&mut out, &ct_b, &hoisted, 1, &c.keys, &mut scratch),
        Err(Error::ParameterMismatch)
    ));
}

#[test]
fn mixed_level_group_accumulator_is_rejected() {
    let params = BfvParams::preset_rns_3x36(4096).unwrap();
    let mut c = ctx(params.clone(), 23);
    let ct = c
        .enc
        .encrypt(&c.encoder.encode(&values(8)).unwrap())
        .unwrap();
    let switched = c.eval.mod_switch_to_next(&ct).unwrap();
    let prepared = c
        .eval
        .prepare_plaintext(&c.encoder.encode(&values(8)).unwrap())
        .unwrap();

    // Group accumulator left at full level, baby ciphertext switched
    // down: the fused accumulate must fire LevelMismatch, not silently
    // mix live-plane widths.
    let mut acc = Ciphertext::transparent_zero_at(&params, 0);
    assert!(matches!(
        c.eval.mul_plain_accumulate(&mut acc, &switched, &prepared),
        Err(Error::LevelMismatch {
            expected: 0,
            found: 1
        })
    ));
    // Same for the giant-step merge of mixed-level partials.
    let mut full = ct.clone();
    assert!(matches!(
        c.eval.add_assign(&mut full, &switched),
        Err(Error::LevelMismatch { .. })
    ));
}

#[test]
fn invalid_switch_targets_are_rejected() {
    let params = BfvParams::preset_rns_2x30(4096).unwrap();
    let mut c = ctx(params.clone(), 29);
    let ct = c
        .enc
        .encrypt(&c.encoder.encode(&values(8)).unwrap())
        .unwrap();
    let switched = c.eval.mod_switch_to_next(&ct).unwrap();

    // Levels cannot regrow…
    assert!(matches!(
        c.eval.mod_switch_to(&switched, 0),
        Err(Error::InvalidLevel {
            requested: 0,
            current: 1,
            ..
        })
    ));
    // …and cannot pass the deepest level.
    assert!(matches!(
        c.eval.mod_switch_to(&ct, 5),
        Err(Error::InvalidLevel { requested: 5, .. })
    ));
}
