//! Wire round-trip conformance: `encode → decode` must be bit-identical
//! for every serializable object, at every level of every preset chain,
//! and the encoded length must match the transcript accounting the
//! protocol layer pins (`2·live·n·8` per ciphertext, plus the fixed
//! 24-byte header).
//!
//! These pins are what make the transcript byte counts in
//! `tests/session_conformance.rs` *mean* something: a message's accounted
//! size plus [`wire::HEADER_BYTES`] is exactly what crosses the network.

use cheetah_bfv::{wire, BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator};

fn presets() -> Vec<(&'static str, BfvParams)> {
    vec![
        ("single_60", BfvParams::preset_single_60(4096).unwrap()),
        ("rns_2x30", BfvParams::preset_rns_2x30(4096).unwrap()),
        ("rns_3x36", BfvParams::preset_rns_3x36(4096).unwrap()),
        ("hybrid_1x54", BfvParams::preset_hybrid_1x54(4096).unwrap()),
        ("hybrid_2x36", BfvParams::preset_hybrid_2x36(4096).unwrap()),
    ]
}

#[test]
fn ciphertext_roundtrips_at_every_level_on_every_preset() {
    for (name, p) in presets() {
        let n = p.degree();
        let limbs = p.limbs();
        let mut kg = KeyGenerator::from_seed(p.clone(), 7);
        let pk = kg.public_key().unwrap();
        let encoder = BatchEncoder::new(p.clone());
        let mut enc = Encryptor::from_public_key(pk, 8);
        let dec = Decryptor::new(kg.secret_key().clone());
        let eval = Evaluator::new(p.clone());

        let values: Vec<u64> = (0..n as u64).map(|i| i % 251).collect();
        let fresh = enc.encrypt(&encoder.encode(&values).unwrap()).unwrap();

        for level in 0..p.levels() {
            let ct = eval.mod_switch_to(&fresh, level).unwrap();
            let bytes = wire::encode_ciphertext(&ct);

            // Size pin: header + 2 polys × live limb planes × n × 8 bytes,
            // and the payload part must agree with the object's own
            // accounting (what the transcript records).
            let live = limbs - level;
            assert_eq!(
                bytes.len(),
                wire::HEADER_BYTES + 2 * live * n * 8,
                "{name} lvl{level}: wire size formula"
            );
            assert_eq!(
                bytes.len(),
                ct.byte_size() + wire::HEADER_BYTES,
                "{name} lvl{level}: wire size vs transcript accounting"
            );
            assert_eq!(bytes.len(), wire::ciphertext_wire_bytes(&p, level));

            let back = wire::decode_ciphertext(&bytes, &p).unwrap();
            assert_eq!(back.level(), level);
            assert_eq!(
                wire::encode_ciphertext(&back),
                bytes,
                "{name} lvl{level}: re-encode must be bit-identical"
            );
            // Decode attaches a fresh (pessimistic) noise estimate; the
            // payload itself still decrypts to the original slots.
            assert_eq!(
                encoder.decode(&dec.decrypt(&back).unwrap()),
                values,
                "{name} lvl{level}: decrypt after round-trip"
            );
        }
    }
}

#[test]
fn public_key_roundtrip_and_size_pin() {
    for (name, p) in presets() {
        let mut kg = KeyGenerator::from_seed(p.clone(), 17);
        let pk = kg.public_key().unwrap();
        let bytes = wire::encode_public_key(&pk);
        assert_eq!(
            bytes.len(),
            wire::HEADER_BYTES + pk.byte_size(),
            "{name}: public key wire size"
        );
        assert_eq!(bytes.len(), wire::public_key_wire_bytes(&p));
        let back = wire::decode_public_key(&bytes, &p).unwrap();
        assert_eq!(
            wire::encode_public_key(&back),
            bytes,
            "{name}: public key re-encode bit-identical"
        );
        // The decoded key is usable: encrypt with it, decrypt with the
        // matching secret key.
        let encoder = BatchEncoder::new(p.clone());
        let mut enc = Encryptor::from_public_key(back, 18);
        let dec = Decryptor::new(kg.secret_key().clone());
        let ct = enc.encrypt(&encoder.encode(&[5, 6, 7]).unwrap()).unwrap();
        assert_eq!(&encoder.decode(&dec.decrypt(&ct).unwrap())[..3], &[5, 6, 7]);
    }
}

#[test]
fn galois_keys_roundtrip_and_size_pin() {
    for (name, p) in presets() {
        let mut kg = KeyGenerator::from_seed(p.clone(), 27);
        let steps = [1, 2, 8, -1];
        let keys = kg.galois_keys_for_steps(&steps).unwrap();
        let bytes = wire::encode_galois_keys(&keys, &p);
        assert_eq!(
            bytes.len(),
            wire::galois_keys_wire_bytes(&p, keys.len()),
            "{name}: galois keys wire size formula"
        );
        assert_eq!(
            bytes.len(),
            wire::HEADER_BYTES + 4 + keys.len() * 8 + keys.byte_size(&p),
            "{name}: galois keys wire size vs key accounting"
        );
        let back = wire::decode_galois_keys(&bytes, &p).unwrap();
        assert_eq!(
            wire::encode_galois_keys(&back, &p),
            bytes,
            "{name}: galois keys re-encode bit-identical"
        );
        // The decoded keys still rotate correctly.
        let pk = kg.public_key().unwrap();
        let encoder = BatchEncoder::new(p.clone());
        let mut enc = Encryptor::from_public_key(pk, 28);
        let dec = Decryptor::new(kg.secret_key().clone());
        let eval = Evaluator::new(p.clone());
        let ct = enc
            .encrypt(&encoder.encode(&[1, 2, 3, 4]).unwrap())
            .unwrap();
        let rot = eval.rotate_rows(&ct, 1, &back).unwrap();
        assert_eq!(
            &encoder.decode(&dec.decrypt(&rot).unwrap())[..3],
            &[2, 3, 4]
        );
    }
}

#[test]
fn plaintext_mask_roundtrip_and_size_pin() {
    for (name, p) in presets() {
        let encoder = BatchEncoder::new(p.clone());
        let values: Vec<u64> = (0..p.degree() as u64).map(|i| (i * 7) % 97).collect();
        let pt = encoder.encode(&values).unwrap();
        let bytes = wire::encode_plaintext_mask(&pt);
        assert_eq!(
            bytes.len(),
            wire::plaintext_mask_wire_bytes(&p),
            "{name}: mask wire size"
        );
        let back = wire::decode_plaintext_mask(&bytes, &p).unwrap();
        assert_eq!(
            wire::encode_plaintext_mask(&back),
            bytes,
            "{name}: mask re-encode bit-identical"
        );
        assert_eq!(encoder.decode(&back), values, "{name}: mask values survive");
    }
}

#[test]
fn hybrid_and_digit_chains_over_the_same_data_limbs_mutually_reject() {
    // The sharpest fingerprint case: a hybrid set and a digit set built
    // from the *same* data limbs and t produce bit-identical ciphertexts
    // (the special prime never touches encryption), so only the
    // fingerprint's special-prime term separates their key material on
    // the wire. Both directions must reject, for every message kind.
    let hybrid = BfvParams::preset_hybrid_2x36(4096).unwrap();
    let data: Vec<u64> = (0..hybrid.limbs())
        .map(|i| hybrid.chain().modulus(i).value())
        .collect();
    let digit = BfvParams::builder()
        .degree(hybrid.degree())
        .plain_modulus(hybrid.plain_modulus().value())
        .moduli(data)
        .build()
        .unwrap();
    assert_ne!(
        wire::chain_fingerprint(&hybrid),
        wire::chain_fingerprint(&digit),
        "special prime must reach the fingerprint"
    );
    let mut kg_h = KeyGenerator::from_seed(hybrid.clone(), 41);
    let mut kg_d = KeyGenerator::from_seed(digit.clone(), 41);
    let keys_h = kg_h.galois_keys_for_steps(&[1]).unwrap();
    let keys_d = kg_d.galois_keys_for_steps(&[1]).unwrap();
    let bytes_h = wire::encode_galois_keys(&keys_h, &hybrid);
    let bytes_d = wire::encode_galois_keys(&keys_d, &digit);
    assert!(
        wire::decode_galois_keys(&bytes_h, &digit).is_err(),
        "hybrid keys must not decode under the digit chain"
    );
    assert!(
        wire::decode_galois_keys(&bytes_d, &hybrid).is_err(),
        "digit keys must not decode under the hybrid chain"
    );
    // Ciphertexts are bit-identical across the twins, so the fingerprint
    // is the *only* thing keeping a transcript from silently mixing the
    // two worlds' key material.
    let pk_h = kg_h.public_key().unwrap();
    let encoder = BatchEncoder::new(hybrid.clone());
    let mut enc = Encryptor::from_public_key(pk_h, 42);
    let ct = enc.encrypt(&encoder.encode(&[9, 9, 9]).unwrap()).unwrap();
    let ct_bytes = wire::encode_ciphertext(&ct);
    assert!(
        wire::decode_ciphertext(&ct_bytes, &digit).is_err(),
        "hybrid ciphertext must not decode under the digit chain"
    );
    assert!(wire::decode_ciphertext(&ct_bytes, &hybrid).is_ok());
}

#[test]
fn presets_have_distinct_fingerprints_and_reject_each_other() {
    let ps = presets();
    for (i, (name_a, a)) in ps.iter().enumerate() {
        let mut kg = KeyGenerator::from_seed(a.clone(), 37);
        let pk = kg.public_key().unwrap();
        let bytes = wire::encode_public_key(&pk);
        for (j, (name_b, b)) in ps.iter().enumerate() {
            if i == j {
                continue;
            }
            assert_ne!(
                wire::chain_fingerprint(a),
                wire::chain_fingerprint(b),
                "{name_a} vs {name_b}: fingerprints must differ"
            );
            assert!(
                wire::decode_public_key(&bytes, b).is_err(),
                "{name_a} key must not decode under {name_b}"
            );
        }
    }
}
