//! Equivalence properties for the zero-allocation hot path:
//!
//! * every in-place evaluator operation must be **bit-identical** to an
//!   independent reference built from the (unchanged, seed-era) `Poly`
//!   primitives;
//! * reusing a dirty [`Scratch`] across operations must never change a
//!   result;
//! * the contiguous [`PolyBatch`] NTT must be bit-identical across thread
//!   counts and against the per-polynomial `NttTable` path.

use cheetah_bfv::arith::{generate_ntt_prime, Modulus};
use cheetah_bfv::batch::PolyBatch;
use cheetah_bfv::ntt::NttTable;
use cheetah_bfv::poly::{Poly, Representation};
use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
    Scratch,
};
use proptest::prelude::*;

struct Ctx {
    params: BfvParams,
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: GaloisKeys,
}

fn ctx(seed: u64) -> Ctx {
    let params = BfvParams::builder()
        .degree(2048)
        .plain_bits(16)
        .cipher_bits(54)
        .a_dcmp(1 << 16)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1, 2, 3]).unwrap();
    Ctx {
        params: params.clone(),
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 0x5eed),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params),
        keys,
    }
}

/// Strict bit-equality on the ciphertext polynomials (all limb planes).
fn assert_polys_eq(a: &Ciphertext, b: &Ciphertext) {
    assert_eq!(a.c0().data(), b.c0().data(), "c0 residues differ");
    assert_eq!(a.c1().data(), b.c1().data(), "c1 residues differ");
}

/// Extracts limb plane 0 as a seed-era scalar `Poly` (the 1-limb chains in
/// these tests make that the whole ciphertext component).
fn limb0(p: &cheetah_bfv::RnsPoly) -> Poly {
    Poly::from_data(p.limb(0).to_vec(), p.representation())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn add_assign_matches_poly_reference(
        seed in any::<u64>(),
        a in proptest::collection::vec(0u64..65536, 8),
        b in proptest::collection::vec(0u64..65536, 8),
    ) {
        let mut c = ctx(seed);
        let q = *c.params.chain().modulus(0);
        let ca = c.enc.encrypt(&c.encoder.encode(&a).unwrap()).unwrap();
        let cb = c.enc.encrypt(&c.encoder.encode(&b).unwrap()).unwrap();

        // Reference: seed-era scalar Poly primitives on limb plane 0 (the
        // only limb of this chain).
        let mut ref0 = limb0(ca.c0());
        let mut ref1 = limb0(ca.c1());
        ref0.add_assign(&limb0(cb.c0()), &q).unwrap();
        ref1.add_assign(&limb0(cb.c1()), &q).unwrap();

        let mut inplace = ca.clone();
        c.eval.add_assign(&mut inplace, &cb).unwrap();
        prop_assert_eq!(inplace.c0().data(), ref0.data());
        prop_assert_eq!(inplace.c1().data(), ref1.data());

        // Wrapper and in-place must agree bit-for-bit.
        let wrapper = c.eval.add(&ca, &cb).unwrap();
        assert_polys_eq(&wrapper, &inplace);

        // And sub_assign must invert add_assign exactly.
        c.eval.sub_assign(&mut inplace, &cb).unwrap();
        assert_polys_eq(&inplace, &ca);
    }

    #[test]
    fn mul_plain_assign_matches_poly_reference(
        seed in any::<u64>(),
        a in proptest::collection::vec(0u64..65536, 8),
        w in proptest::collection::vec(0u64..65536, 8),
    ) {
        let mut c = ctx(seed);
        let q = *c.params.chain().modulus(0);
        let ca = c.enc.encrypt(&c.encoder.encode(&a).unwrap()).unwrap();
        let pw = c.eval.prepare_plaintext(&c.encoder.encode(&w).unwrap()).unwrap();

        let mut ref0 = limb0(ca.c0());
        let mut ref1 = limb0(ca.c1());
        ref0.mul_assign_pointwise(&limb0(pw.poly()), &q).unwrap();
        ref1.mul_assign_pointwise(&limb0(pw.poly()), &q).unwrap();

        let mut inplace = ca.clone();
        c.eval.mul_plain_assign(&mut inplace, &pw).unwrap();
        prop_assert_eq!(inplace.c0().data(), ref0.data());
        prop_assert_eq!(inplace.c1().data(), ref1.data());

        let wrapper = c.eval.mul_plain(&ca, &pw).unwrap();
        assert_polys_eq(&wrapper, &inplace);

        // Fused accumulate == mul then add, bit-for-bit.
        let mut fused = ca.clone();
        c.eval.mul_plain_accumulate(&mut fused, &ca, &pw).unwrap();
        let explicit = c.eval.add(&ca, &c.eval.mul_plain(&ca, &pw).unwrap()).unwrap();
        assert_polys_eq(&fused, &explicit);
    }

    #[test]
    fn rotate_into_is_deterministic_under_dirty_scratch(
        seed in any::<u64>(),
        step in 1i64..4,
    ) {
        let mut c = ctx(seed);
        let vals: Vec<u64> = (0..64u64).collect();
        let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();

        // Wrapper (fresh internal scratch each lock) vs caller scratch
        // reused twice in a row, third call after unrelated traffic.
        let wrapper = c.eval.rotate_rows(&ct, step, &c.keys).unwrap();
        let mut scratch: Scratch = c.eval.new_scratch();
        let mut out1 = Ciphertext::transparent_zero(&c.params);
        c.eval.rotate_rows_into(&mut out1, &ct, step, &c.keys, &mut scratch).unwrap();
        assert_polys_eq(&out1, &wrapper);

        let mut out2 = Ciphertext::transparent_zero(&c.params);
        c.eval.add_plain_assign(&mut out2, &c.encoder.encode(&vals).unwrap(), &mut scratch).unwrap();
        c.eval.rotate_rows_into(&mut out2, &ct, step, &c.keys, &mut scratch).unwrap();
        assert_polys_eq(&out2, &wrapper);

        // Decryption agrees with the slot-shift semantics (step < 4, so
        // slots 0..16 read from within the 64 populated values).
        let out = c.encoder.decode(&c.dec.decrypt_checked(&out2).unwrap());
        for i in 0..16 {
            prop_assert_eq!(out[i], vals[i + step as usize]);
        }
    }

    #[test]
    fn batch_ntt_threads_bit_identical(seed in any::<u64>(), log_n in 5u32..9) {
        let n = 1usize << log_n;
        let q = Modulus::new(generate_ntt_prime(45, n).unwrap()).unwrap();
        let table = NttTable::new(n, q).unwrap();
        let base = PolyBatch::from_fn(6, n, Representation::Coeff, |i, j| {
            seed.wrapping_mul(0x9e3779b9).wrapping_add((i * n + j) as u64) % q.value()
        });

        // Reference: the scalar per-polynomial NTT path.
        let mut expect = base.to_rows();
        for row in &mut expect {
            table.forward(row);
        }

        for threads in [1usize, 2, 4, 7] {
            let mut batch = base.clone();
            batch.forward_ntt(&table, threads);
            for (i, row) in expect.iter().enumerate() {
                prop_assert_eq!(batch.poly(i), &row[..], "threads={} poly={}", threads, i);
            }
            batch.inverse_ntt(&table, threads);
            prop_assert_eq!(&batch, &base, "roundtrip threads={}", threads);
        }
    }
}

#[test]
fn composed_rotation_matches_direct_on_scratch_path() {
    let mut c = ctx(12345);
    let vals: Vec<u64> = (0..c.encoder.row_size() as u64).collect();
    let ct = c.enc.encrypt(&c.encoder.encode(&vals).unwrap()).unwrap();
    let mut kg = KeyGenerator::from_seed(c.params.clone(), 12345);
    let _ = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1, 2, 4, 8, 11]).unwrap();
    let direct = c.eval.rotate_rows(&ct, 11, &keys).unwrap();
    let composed = c.eval.rotate_rows_composed(&ct, 11, &keys).unwrap();
    let d1 = c.encoder.decode(&c.dec.decrypt_checked(&direct).unwrap());
    let d2 = c.encoder.decode(&c.dec.decrypt_checked(&composed).unwrap());
    assert_eq!(d1, d2);
}
