//! Pins of the pow2 shift-add `mul_plain` fast path:
//!
//! * a prepared plaintext that is a uniform `±2^e` scalar carries the
//!   [`cheetah_bfv::Pow2Scalar`] marker, and multiplying by it — plain or
//!   fused-accumulate — produces **bit-identical** ciphertexts to the
//!   generic Barrett path on the same prepared polynomial, for every RNS
//!   and hybrid preset and at every recommended level;
//! * `mul_scalar_assign` by a small power of two lands on exactly the
//!   bits of a generic `mul_plain` by the same uniform constant;
//! * plaintexts that are not uniform power-of-two scalars (non-uniform
//!   vectors, non-pow2 constants, zero, oversized exponents) never set
//!   the marker and stay on the generic path.

use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Evaluator, KeyGenerator, Pow2Scalar,
};

struct Ctx {
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
}

fn ctx(params: BfvParams, seed: u64) -> Ctx {
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    Ctx {
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 0x5eed),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params),
    }
}

fn all_presets() -> Vec<(&'static str, BfvParams)> {
    let mut v = BfvParams::presets(4096).unwrap();
    v.extend(BfvParams::hybrid_presets(4096).unwrap());
    v
}

fn values(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (i * 37 + 11) % 97).collect()
}

fn assert_same_bits(fast: &Ciphertext, generic: &Ciphertext, what: &str) {
    assert_eq!(fast.c0(), generic.c0(), "{what}: c0 diverged");
    assert_eq!(fast.c1(), generic.c1(), "{what}: c1 diverged");
}

#[test]
fn pow2_fast_path_is_bit_identical_across_presets_and_levels() {
    for (name, params) in all_presets() {
        let mut c = ctx(params.clone(), 17);
        let slots = c.encoder.slots();
        let fresh = c
            .enc
            .encrypt(&c.encoder.encode(&values(64)).unwrap())
            .unwrap();
        let deepest = fresh.noise().recommended_level(&params, 0, 2.0);
        for scalar in [1i64, -1, 4, -8, 16] {
            let pt = c.encoder.encode_signed(&vec![scalar; slots]).unwrap();
            for level in 0..=deepest {
                let ct = c.eval.mod_switch_to(&fresh, level).unwrap();
                let prep = c.eval.prepare_plaintext_at(&pt, level).unwrap();
                let expect = Pow2Scalar {
                    exp: scalar.unsigned_abs().trailing_zeros(),
                    negative: scalar < 0,
                };
                assert_eq!(
                    prep.pow2_scalar(),
                    Some(expect),
                    "{name}: uniform {scalar} must carry the pow2 marker"
                );
                let stripped = prep.clone().without_pow2();

                let fast = c.eval.mul_plain(&ct, &prep).unwrap();
                let generic = c.eval.mul_plain(&ct, &stripped).unwrap();
                assert_same_bits(&fast, &generic, &format!("{name} L{level} mul x{scalar}"));

                let mut acc_fast = ct.clone();
                let mut acc_generic = ct.clone();
                c.eval
                    .mul_plain_accumulate(&mut acc_fast, &ct, &prep)
                    .unwrap();
                c.eval
                    .mul_plain_accumulate(&mut acc_generic, &ct, &stripped)
                    .unwrap();
                assert_same_bits(
                    &acc_fast,
                    &acc_generic,
                    &format!("{name} L{level} fma x{scalar}"),
                );

                // And the product is the right one: inputs and scalars are
                // small enough that no slot wraps mod t.
                let got = c
                    .encoder
                    .decode_signed(&c.dec.decrypt_checked(&fast).unwrap());
                for (slot, &v) in values(64).iter().enumerate() {
                    assert_eq!(got[slot], v as i64 * scalar, "{name} L{level} slot {slot}");
                }
            }
        }
    }
}

#[test]
fn mul_scalar_by_pow2_matches_generic_mul_plain_bitwise() {
    for (name, params) in all_presets() {
        let mut c = ctx(params.clone(), 23);
        let slots = c.encoder.slots();
        let fresh = c
            .enc
            .encrypt(&c.encoder.encode(&values(48)).unwrap())
            .unwrap();
        for scalar in [1u64, 2, 8, 256] {
            let mut fast = fresh.clone();
            c.eval.mul_scalar_assign(&mut fast, scalar).unwrap();
            let prep = c
                .eval
                .prepare_plaintext_at(&c.encoder.encode(&vec![scalar; slots]).unwrap(), 0)
                .unwrap()
                .without_pow2();
            let generic = c.eval.mul_plain(&fresh, &prep).unwrap();
            assert_same_bits(&fast, &generic, &format!("{name} mul_scalar x{scalar}"));
        }
    }
}

#[test]
fn non_pow2_plaintexts_never_take_the_fast_path() {
    let (_, params) = all_presets().remove(0);
    let mut c = ctx(params, 31);
    let slots = c.encoder.slots();

    // Non-uniform vector (even of powers of two), non-pow2 constants,
    // zero, and a constant whose exponent exceeds the chain budget: all
    // stay generic.
    let mut non_uniform = vec![4u64; slots];
    non_uniform[7] = 8;
    for (what, vals) in [
        ("non-uniform", non_uniform),
        ("uniform 3", vec![3u64; slots]),
        ("uniform 6", vec![6u64; slots]),
        ("zero", vec![0u64; slots]),
        ("uniform 512 (exp > chain budget)", vec![512u64; slots]),
        ("short pow2 vector (zero-padded tail)", vec![4u64; 5]),
    ] {
        let prep = c
            .eval
            .prepare_plaintext_at(&c.encoder.encode(&vals).unwrap(), 0)
            .unwrap();
        assert!(
            prep.pow2_scalar().is_none(),
            "{what} must not be marked pow2"
        );
    }

    // Sanity: the generic path on one of those still multiplies correctly.
    let fresh = c
        .enc
        .encrypt(&c.encoder.encode(&values(16)).unwrap())
        .unwrap();
    let prep = c
        .eval
        .prepare_plaintext_at(&c.encoder.encode(&vec![3u64; slots]).unwrap(), 0)
        .unwrap();
    let out = c.eval.mul_plain(&fresh, &prep).unwrap();
    let got = c
        .encoder
        .decode_signed(&c.dec.decrypt_checked(&out).unwrap());
    for (slot, &v) in values(16).iter().enumerate() {
        assert_eq!(got[slot], v as i64 * 3);
    }
}

#[test]
fn chain_budget_boundary_is_exact() {
    // The shift-add chain accepts exponents up to and including
    // POW2_CHAIN_MAX_EXP; one past it falls back to generic Barrett. Both
    // sides of the boundary must be bit-identical to the generic path.
    use cheetah_bfv::evaluator::POW2_CHAIN_MAX_EXP;

    for (name, params) in all_presets() {
        let mut c = ctx(params, 41);
        let slots = c.encoder.slots();
        let fresh = c
            .enc
            .encrypt(&c.encoder.encode(&values(32)).unwrap())
            .unwrap();

        // Exactly at the limit: marked, fast path taken.
        let at = 1u64 << POW2_CHAIN_MAX_EXP;
        let prep = c
            .eval
            .prepare_plaintext_at(&c.encoder.encode(&vec![at; slots]).unwrap(), 0)
            .unwrap();
        assert_eq!(
            prep.pow2_scalar(),
            Some(Pow2Scalar {
                exp: POW2_CHAIN_MAX_EXP,
                negative: false,
            }),
            "{name}: 2^{POW2_CHAIN_MAX_EXP} must take the chain path"
        );
        let fast = c.eval.mul_plain(&fresh, &prep).unwrap();
        let generic = c
            .eval
            .mul_plain(&fresh, &prep.clone().without_pow2())
            .unwrap();
        assert_same_bits(
            &fast,
            &generic,
            &format!("{name} at-limit 2^{POW2_CHAIN_MAX_EXP}"),
        );

        // One past the limit: unmarked, generic Barrett — and a stripped
        // clone (a no-op here) still lands on exactly the same bits.
        let over = 1u64 << (POW2_CHAIN_MAX_EXP + 1);
        let prep = c
            .eval
            .prepare_plaintext_at(&c.encoder.encode(&vec![over; slots]).unwrap(), 0)
            .unwrap();
        assert!(
            prep.pow2_scalar().is_none(),
            "{name}: 2^{} must fall back to Barrett",
            POW2_CHAIN_MAX_EXP + 1
        );
        let fallback = c.eval.mul_plain(&fresh, &prep).unwrap();
        let generic = c
            .eval
            .mul_plain(&fresh, &prep.clone().without_pow2())
            .unwrap();
        assert_same_bits(
            &fallback,
            &generic,
            &format!("{name} over-limit 2^{}", POW2_CHAIN_MAX_EXP + 1),
        );
    }
}
