//! Conformance: hybrid (special-prime `P·Q_ℓ`) key switching against the
//! digit-decomposition path.
//!
//! The twin construction is the load-bearing trick: a hybrid parameter
//! set and a digit set built from the *same* data chain, `t`, and keygen
//! seed produce bit-identical secrets and encryptions (the special prime
//! never touches the encryption RNG stream), so the two engines can be
//! run side by side on the same ciphertext bits and compared after
//! decryption — at every level of the chain.

use cheetah_bfv::params::search_congruent_chain;
use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Evaluator, KeyGenerator,
};

/// Builds the digit-decomposition twin of a hybrid parameter set: same
/// degree, `t`, and data limbs — no special prime.
fn digit_twin(hybrid: &BfvParams) -> BfvParams {
    let data: Vec<u64> = (0..hybrid.limbs())
        .map(|i| hybrid.chain().modulus(i).value())
        .collect();
    BfvParams::builder()
        .degree(hybrid.degree())
        .plain_modulus(hybrid.plain_modulus().value())
        .moduli(data)
        .build()
        .expect("digit twin of a valid hybrid set")
}

struct World {
    evaluator: Evaluator,
    keys: cheetah_bfv::GaloisKeys,
    decryptor: Decryptor,
    encoder: BatchEncoder,
}

impl World {
    fn new(params: BfvParams, seed: u64, steps: &[i64]) -> (Self, Ciphertext) {
        let mut keygen = KeyGenerator::from_seed(params.clone(), seed);
        let pk = keygen.public_key().unwrap();
        let keys = keygen.galois_keys_for_steps(steps).unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let data: Vec<u64> = (0..params.degree() as u64).map(|i| i % 97).collect();
        let mut encryptor = Encryptor::from_public_key(pk, seed + 1);
        let ct = encryptor.encrypt(&encoder.encode(&data).unwrap()).unwrap();
        let decryptor = Decryptor::new(keygen.secret_key().clone());
        let evaluator = Evaluator::new(params);
        (
            Self {
                evaluator,
                keys,
                decryptor,
                encoder,
            },
            ct,
        )
    }

    fn decode(&self, ct: &Ciphertext) -> Vec<u64> {
        self.encoder.decode(&self.decryptor.decrypt(ct).unwrap())
    }
}

/// Reference row rotation of the decoded slot vector.
fn rotate_slots(slots: &[u64], steps: i64) -> Vec<u64> {
    let row = slots.len() / 2;
    let mut out = vec![0; slots.len()];
    for half in 0..2 {
        for j in 0..row {
            let src = (j as i64 + steps).rem_euclid(row as i64) as usize;
            out[half * row + j] = slots[half * row + src];
        }
    }
    out
}

#[test]
fn hybrid_rotations_decrypt_identically_to_the_digit_twin_at_every_level() {
    for (name, hybrid) in BfvParams::hybrid_presets(4096).unwrap() {
        let digit = digit_twin(&hybrid);
        let steps = [1i64, -3];
        let (hw, h_ct0) = World::new(hybrid.clone(), 7, &steps);
        let (dw, d_ct0) = World::new(digit, 7, &steps);
        // Twin construction: identical ciphertext bits going in.
        assert_eq!(h_ct0.c0().data(), d_ct0.c0().data(), "{name}: twin c0");
        assert_eq!(h_ct0.c1().data(), d_ct0.c1().data(), "{name}: twin c1");
        let reference = hw.decode(&h_ct0);
        for level in 0..=hybrid.max_level() {
            let h_ct = hw.evaluator.mod_switch_to(&h_ct0, level).unwrap();
            let d_ct = dw.evaluator.mod_switch_to(&d_ct0, level).unwrap();
            for &step in &steps {
                let h_rot = hw.evaluator.rotate_rows(&h_ct, step, &hw.keys).unwrap();
                let d_rot = dw.evaluator.rotate_rows(&d_ct, step, &dw.keys).unwrap();
                let expect = rotate_slots(&reference, step);
                // The hybrid path must decrypt correctly at *every* level —
                // its key-switch noise is divided by P.
                assert_eq!(
                    hw.decode(&h_rot),
                    expect,
                    "{name}: hybrid rotate by {step} at level {level}"
                );
                // The digit twin's additive term l_ct·A·B·n/2 is NOT
                // divided by anything; at deep levels of a wide-limb chain
                // it can exceed the ceiling (which is exactly what the
                // special prime buys). Only assert it where its own noise
                // model says decryption holds.
                if d_rot.noise().budget_bits_worst_at(d_ct.params(), level) > 0.0 {
                    assert_eq!(
                        dw.decode(&d_rot),
                        expect,
                        "{name}: digit rotate by {step} at level {level}"
                    );
                } else {
                    assert!(level > 0, "{name}: digit path must at least serve level 0");
                }
            }
        }
    }
}

#[test]
fn hybrid_rotations_hold_at_degree_8192() {
    for (name, hybrid) in BfvParams::hybrid_presets(8192).unwrap() {
        let (hw, ct0) = World::new(hybrid.clone(), 11, &[5]);
        let reference = hw.decode(&ct0);
        for level in 0..=hybrid.max_level() {
            let ct = hw.evaluator.mod_switch_to(&ct0, level).unwrap();
            let rot = hw.evaluator.rotate_rows(&ct, 5, &hw.keys).unwrap();
            assert_eq!(
                hw.decode(&rot),
                rotate_slots(&reference, 5),
                "{name}: hybrid rotate at level {level}, n = 8192"
            );
        }
    }
}

#[test]
fn hybrid_hoisted_replay_matches_direct_rotation_at_every_level() {
    let hybrid = BfvParams::preset_hybrid_2x36(4096).unwrap();
    let steps = [1i64, 2, -1];
    let (hw, ct0) = World::new(hybrid.clone(), 13, &steps);
    for level in 0..=hybrid.max_level() {
        let ct = hw.evaluator.mod_switch_to(&ct0, level).unwrap();
        let mut hoisted = cheetah_bfv::HoistedDecomposition::empty(&hybrid);
        let mut outs = Vec::new();
        let mut scratch = hw.evaluator.new_scratch();
        hw.evaluator
            .rotate_set_hoisted_into(&mut outs, &ct, &steps, &hw.keys, &mut hoisted, &mut scratch)
            .unwrap();
        for (out, &step) in outs.iter().zip(&steps) {
            let direct = hw.evaluator.rotate_rows(&ct, step, &hw.keys).unwrap();
            assert_eq!(
                hw.decode(out),
                hw.decode(&direct),
                "hoisted replay by {step} at level {level}"
            );
        }
    }
}

#[test]
fn hybrid_rotation_noise_stays_under_the_tracked_bound() {
    for (name, hybrid) in BfvParams::hybrid_presets(4096).unwrap() {
        let (hw, ct0) = World::new(hybrid.clone(), 17, &[1]);
        let mut ct = ct0;
        for _ in 0..4 {
            ct = hw.evaluator.rotate_rows(&ct, 1, &hw.keys).unwrap();
        }
        let measured = hw.decryptor.invariant_noise(&ct).unwrap() as f64;
        assert!(
            measured.log2() <= ct.noise().bound_log2,
            "{name}: measured {} bits over tracked bound {} bits",
            measured.log2(),
            ct.noise().bound_log2
        );
    }
}

#[test]
fn hybrid_rotate_transform_bill_beats_the_equal_width_digit_preset() {
    // The tentpole's arithmetic claim, pinned on the engine's own op
    // counters. The fair twin holds the *total plane count* (RLWE modulus
    // width, wire size, security budget) fixed: hybrid_1x54 spends its
    // second plane on P where rns_2x30 spends it on data, and hybrid_2x36
    // pits 3 planes against rns_3x36's 3. Per rotation the hybrid path
    // runs live² + 6·live + 2 plane transforms against the digit path's
    // (l_ct + 1)·live.
    let pairs = [
        (
            BfvParams::preset_hybrid_1x54(4096).unwrap(),
            BfvParams::preset_rns_2x30(4096).unwrap(),
        ),
        (
            BfvParams::preset_hybrid_2x36(4096).unwrap(),
            BfvParams::preset_rns_3x36(4096).unwrap(),
        ),
    ];
    for (hybrid, digit) in pairs {
        let h_live = hybrid.limbs() as u64;
        let d_live = digit.limbs() as u64;
        assert_eq!(h_live + 1, d_live, "equal total plane count");
        let l_ct = digit.l_ct_at(0) as u64;
        let (hw, h_ct) = World::new(hybrid, 19, &[1]);
        let (dw, d_ct) = World::new(digit, 19, &[1]);
        hw.evaluator.reset_op_counts();
        dw.evaluator.reset_op_counts();
        hw.evaluator.rotate_rows(&h_ct, 1, &hw.keys).unwrap();
        dw.evaluator.rotate_rows(&d_ct, 1, &dw.keys).unwrap();
        let h_ntt = hw.evaluator.op_counts().ntt;
        let d_ntt = dw.evaluator.op_counts().ntt;
        assert_eq!(h_ntt, h_live * h_live + 6 * h_live + 2, "hybrid bill");
        assert_eq!(d_ntt, (l_ct + 1) * d_live, "digit bill");
        assert!(
            h_ntt < d_ntt,
            "hybrid must beat the equal-width digit preset ({h_ntt} vs {d_ntt})"
        );
    }
}

#[test]
fn chain_search_is_congruent_for_random_draws() {
    // Deterministic sweep over (n, t_bits, limb widths): every chain the
    // search returns must be congruent (q ≡ 1 mod 2n·t) down to and
    // including the special prime. Impossible regimes must error, never
    // silently fall back.
    for (n, t_bits) in [(2048usize, 14u32), (4096, 16), (8192, 17)] {
        for widths in [&[54u32][..], &[36, 36], &[40, 40]] {
            let special = widths[0];
            let Ok(c) = search_congruent_chain(n, t_bits, widths, special) else {
                continue;
            };
            let step = 2 * (n as u64) * c.t;
            for &q in c.data.iter().chain(std::iter::once(&c.special)) {
                assert_eq!(q % step, 1, "n={n} t={} q={q}", c.t);
            }
        }
    }
}
