//! Failure injection: the BFV engine must *detect* the failure modes the
//! paper's models exist to avoid — noise-budget exhaustion, wrong keys,
//! parameter mismatches — rather than silently returning garbage.
//!
//! The original six ad-hoc cases (below) predate the wire layer; the
//! [`wire_fault_harness`] module re-expresses the corruption-shaped ones
//! on the shared [`cheetah_protocol::faults::FaultInjector`] corruption
//! classes and adds proptest-driven random-corruption coverage: any
//! mutation of a valid encoding yields a typed error or a bit-identical
//! decrypt — never a panic, never silent garbage.

use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Error, Evaluator, KeyGenerator,
    SecurityLevel,
};

fn params(plain_bits: u32, cipher_bits: u32) -> BfvParams {
    BfvParams::builder()
        .degree(2048)
        .plain_bits(plain_bits)
        .cipher_bits(cipher_bits)
        .a_dcmp(1 << 16)
        .security(SecurityLevel::None)
        .build()
        .unwrap()
}

/// Chains plaintext multiplications until the budget is exhausted and
/// checks that the decrypted value really goes wrong — the failure the
/// noise model guards against is real, not theoretical. Note the measured
/// budget is computed against the *nearest* plaintext multiple, so after
/// true overflow it collapses to ~0 rather than going deeply negative;
/// a collapsed budget (< 1 bit) is the failure signature.
#[test]
fn noise_exhaustion_is_detected_and_real() {
    // Full-range (non-constant) multiplier polynomials consume ~20 bits of
    // budget per multiplication; the chain dies after about two.
    let p = params(16, 54);
    let mut kg = KeyGenerator::from_seed(p.clone(), 1);
    let pk = kg.public_key().unwrap();
    let encoder = BatchEncoder::new(p.clone());
    let mut enc = Encryptor::from_public_key(pk, 2);
    let dec = Decryptor::new(kg.secret_key().clone());
    let eval = Evaluator::new(p.clone());

    let w_vals: Vec<u64> = (0..2048u64).map(|i| 3 + i % 97).collect();
    let w = eval
        .prepare_plaintext(&encoder.encode(&w_vals).unwrap())
        .unwrap();
    let mut ct = enc.encrypt(&encoder.encode(&[1]).unwrap()).unwrap();
    let mut failed = false;
    let mut expected: u64 = 1;
    let t = p.plain_modulus();
    for round in 0..8 {
        ct = eval.mul_plain(&ct, &w).unwrap();
        expected = t.mul_mod(expected, w_vals[0]);
        let budget = dec.invariant_noise_budget(&ct).unwrap();
        let out = encoder.decode(&dec.decrypt(&ct).unwrap());
        if budget >= 2.0 {
            assert_eq!(
                out[0], expected,
                "round {round}: budget {budget:.1}b but wrong value"
            );
        } else if out[0] != expected {
            failed = true;
            assert!(
                budget < 2.0,
                "round {round}: garbage with a healthy budget ({budget:.1}b)"
            );
            break;
        }
    }
    assert!(failed, "budget never exhausted — q too wide for this test");
    let _ = Error::NoiseBudgetExhausted; // referenced: decrypt_checked guards the <= 0 region
}

#[test]
fn wrong_secret_key_decrypts_garbage() {
    let p = params(16, 54);
    let mut kg_a = KeyGenerator::from_seed(p.clone(), 10);
    let kg_b = KeyGenerator::from_seed(p.clone(), 11);
    let pk = kg_a.public_key().unwrap();
    let encoder = BatchEncoder::new(p.clone());
    let mut enc = Encryptor::from_public_key(pk, 12);
    let ct = enc.encrypt(&encoder.encode(&[42]).unwrap()).unwrap();

    let right = Decryptor::new(kg_a.secret_key().clone());
    let wrong = Decryptor::new(kg_b.secret_key().clone());
    assert_eq!(encoder.decode(&right.decrypt(&ct).unwrap())[0], 42);
    // Wrong key: the phase is uniform, so the residual against the nearest
    // plaintext multiple sits right at the decryption threshold (budget
    // ~0 bits, vs ~20 for the right key) and the value is garbage.
    let budget = wrong.invariant_noise_budget(&ct).unwrap();
    assert!(budget < 1.0, "wrong-key budget {budget:.2} should be ~0");
    assert!(right.invariant_noise_budget(&ct).unwrap() > 10.0);
    assert_ne!(encoder.decode(&wrong.decrypt(&ct).unwrap())[0], 42);
}

#[test]
fn transparent_zero_adds_nothing() {
    let p = params(16, 54);
    let mut kg = KeyGenerator::from_seed(p.clone(), 20);
    let pk = kg.public_key().unwrap();
    let encoder = BatchEncoder::new(p.clone());
    let mut enc = Encryptor::from_public_key(pk, 21);
    let dec = Decryptor::new(kg.secret_key().clone());
    let eval = Evaluator::new(p.clone());

    let ct = enc.encrypt(&encoder.encode(&[7, 8]).unwrap()).unwrap();
    let zero = Ciphertext::transparent_zero(&p);
    let sum = eval.add(&ct, &zero).unwrap();
    let out = encoder.decode(&dec.decrypt_checked(&sum).unwrap());
    assert_eq!(&out[..2], &[7, 8]);
    // Noise unchanged (zero contributes none).
    assert_eq!(
        dec.invariant_noise(&sum).unwrap(),
        dec.invariant_noise(&ct).unwrap()
    );
}

#[test]
fn security_enforcement_blocks_legacy_parameters() {
    // Gazelle's real n=2048/q=60 violates the 128-bit table.
    let err = BfvParams::builder()
        .degree(2048)
        .cipher_bits(60)
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        Error::InsecureParameters { max_log_q: 54, .. }
    ));
}

#[test]
fn rotation_with_borrowed_keyset_from_other_session_fails_cleanly() {
    // Galois keys from another secret key: decryption after such a rotate
    // must be garbage (detected via budget), never a silent wrong answer
    // accepted as valid.
    let p = params(16, 54);
    let mut kg_a = KeyGenerator::from_seed(p.clone(), 30);
    let mut kg_b = KeyGenerator::from_seed(p.clone(), 31);
    let pk = kg_a.public_key().unwrap();
    let foreign_keys = kg_b.galois_keys_for_steps(&[1]).unwrap();

    let encoder = BatchEncoder::new(p.clone());
    let mut enc = Encryptor::from_public_key(pk, 32);
    let dec = Decryptor::new(kg_a.secret_key().clone());
    let eval = Evaluator::new(p.clone());

    let ct = enc.encrypt(&encoder.encode(&[1, 2, 3]).unwrap()).unwrap();
    let rotated = eval.rotate_rows(&ct, 1, &foreign_keys).unwrap();
    // Key-switch against the wrong key injects uniform noise: the budget
    // collapses to ~0 and the decrypted slots are garbage.
    let budget = dec.invariant_noise_budget(&rotated).unwrap();
    assert!(
        budget < 1.0,
        "foreign-key rotation must destroy the ciphertext (budget {budget:.2})"
    );
    let out = encoder.decode(&dec.decrypt(&rotated).unwrap());
    assert_ne!(&out[..3], &[2, 3, 4], "rotation must not silently succeed");
}

#[test]
fn plaintext_overflow_wraps_mod_t() {
    // Not a crash — mod-t wraparound is the *correct* HE semantics; the
    // quantizer's job (cheetah-core) is to provision t so this never
    // happens on real layer ranges.
    let p = params(16, 54);
    let t = p.plain_modulus().value();
    let mut kg = KeyGenerator::from_seed(p.clone(), 40);
    let pk = kg.public_key().unwrap();
    let encoder = BatchEncoder::new(p.clone());
    let mut enc = Encryptor::from_public_key(pk, 41);
    let dec = Decryptor::new(kg.secret_key().clone());
    let eval = Evaluator::new(p.clone());

    let big = t - 1; // == -1 centered
    let ct = enc.encrypt(&encoder.encode(&[big]).unwrap()).unwrap();
    let doubled = eval.add(&ct, &ct).unwrap();
    let out = encoder.decode(&dec.decrypt_checked(&doubled).unwrap());
    assert_eq!(out[0], t - 2, "(-1) + (-1) = -2 mod t");
}

/// Wire-level failure injection on the shared protocol fault harness:
/// the corruption classes of `cheetah_protocol::faults` driven directly
/// against the engine's decode → measured-noise-gate receive path.
mod wire_fault_harness {
    use super::*;
    use cheetah_bfv::wire;
    use cheetah_protocol::faults::{Corruption, FaultInjector};
    use proptest::prelude::*;

    /// Measured-noise gate matching the protocol session's semantics:
    /// overflowed noise collapses the budget to ≈ 0 (it can hover
    /// slightly positive), so anything under half a bit is failed.
    const MIN_BUDGET_BITS: f64 = 0.5;

    struct Rig {
        params: BfvParams,
        encoder: BatchEncoder,
        decryptor: Decryptor,
        clean: Vec<u8>,
        clean_slots: Vec<u64>,
    }

    fn rig(seed: u64) -> Rig {
        let params = params(16, 54);
        let mut kg = KeyGenerator::from_seed(params.clone(), seed);
        let pk = kg.public_key().unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_public_key(pk, seed ^ 0xfa11);
        let decryptor = Decryptor::new(kg.secret_key().clone());
        let values: Vec<u64> = (0..64).map(|i| i * 31 % 1000).collect();
        let ct = enc.encrypt(&encoder.encode(&values).unwrap()).unwrap();
        let clean = wire::encode_ciphertext(&ct);
        let clean_slots = encoder.decode(&decryptor.decrypt(&ct).unwrap());
        Rig {
            params,
            encoder,
            decryptor,
            clean,
            clean_slots,
        }
    }

    /// The two contractual outcomes; reaching neither panics the test.
    fn assert_detected_or_harmless(r: &Rig, mutant: &[u8], what: &str) -> bool {
        let ct = match wire::decode_ciphertext(mutant, &r.params) {
            Err(_) => return true, // detected structurally, typed
            Ok(ct) => ct,
        };
        let budget = r.decryptor.invariant_noise_budget(&ct).unwrap();
        if budget < MIN_BUDGET_BITS {
            return true; // detected at the noise gate
        }
        let slots = r.encoder.decode(&r.decryptor.decrypt(&ct).unwrap());
        assert_eq!(
            slots, r.clean_slots,
            "{what}: decoded+decrypted with healthy budget but different slots"
        );
        false // harmless
    }

    #[test]
    fn every_corruption_class_is_detected_or_harmless() {
        let r = rig(90);
        let len = r.clean.len();
        let battery = [
            Corruption::BitFlip {
                byte: wire::HEADER_BYTES + 3,
                bit: 5,
            },
            Corruption::BitFlip { byte: 2, bit: 0 },
            Corruption::Truncate { keep: len - 9 },
            Corruption::Truncate { keep: 3 },
            Corruption::Extend { extra: 24 },
            Corruption::LevelLie {
                level: 3,
                resize_payload: false,
            },
            Corruption::ForeignFingerprint,
            Corruption::NonCanonicalResidue { limb: 0 },
            Corruption::SwapComponents,
            Corruption::ReservedByte { value: 0x42 },
        ];
        let mut detected = 0;
        let mut harmless = 0;
        for c in &battery {
            let mutant = FaultInjector::apply(&r.clean, c, &r.params);
            if assert_detected_or_harmless(&r, &mutant, &c.label()) {
                detected += 1;
            } else {
                harmless += 1;
            }
        }
        assert!(detected >= 9, "structural classes must all be detected");
        assert!(harmless >= 1, "the reserved byte is harmless by design");
    }

    /// The foreign-keyset legacy case, re-expressed on the wire: a key
    /// set serialized under one chain is rejected by fingerprint before
    /// any key material is trusted.
    #[test]
    fn foreign_chain_keys_are_rejected_at_decode() {
        let p_a = params(16, 54);
        let p_b = params(17, 54);
        let mut kg = KeyGenerator::from_seed(p_a.clone(), 91);
        let keys = kg.galois_keys_for_steps(&[1, 4]).unwrap();
        let bytes = wire::encode_galois_keys(&keys, &p_a);
        assert!(wire::decode_galois_keys(&bytes, &p_a).is_ok());
        assert!(matches!(
            wire::decode_galois_keys(&bytes, &p_b),
            Err(Error::ChainMismatch { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Random corruption of a valid encoding ⇒ typed error or
        /// bit-identical decrypt. Never a panic, never silent garbage.
        fn random_corruption_never_silently_corrupts(seed in any::<u64>()) {
            let r = rig(92);
            let mut injector = FaultInjector::new(seed);
            let c = injector.random_corruption(r.clean.len());
            let mutant = FaultInjector::apply(&r.clean, &c, &r.params);
            if mutant != r.clean {
                let _ = assert_detected_or_harmless(&r, &mutant, &c.label());
            }
        }
    }
}
