//! Sparse ↔ dense equivalence, pinned:
//!
//! * a sparsity-planned `HomFc` (SparseBsgsPlan) decrypts **bit-identically**
//!   to the dense BSGS plan of the same `(b, g)` shape on the same weights —
//!   across sparsity patterns (fully live, 50%, 90%, single diagonal) and at
//!   every reachable level of a deep chain (skipped terms are zero
//!   polynomials, so even the ciphertext bits agree);
//! * a sparse `HomConv2d` (dead taps, dead channels, live-channel reduces)
//!   decodes to exactly the cleartext reference under both schedules and at
//!   every reachable level;
//! * all-zero layers produce transparent-zero outputs with **zero**
//!   rotations and zero multiplies, at every level, for both layer kinds.

use cheetah_bfv::{
    BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
};
use cheetah_core::linear::{HomConv2d, HomFc};
use cheetah_core::{BsgsPlan, Schedule};
use cheetah_nn::inference::eval_linear;
use cheetah_nn::{ConvSpec, FcSpec, LinearLayer, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

struct Ctx {
    params: BfvParams,
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: GaloisKeys,
}

fn ctx(params: BfvParams, steps: &[i64], seed: u64) -> Ctx {
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(steps).unwrap();
    Ctx {
        params: params.clone(),
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 0x5eed),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params),
        keys,
    }
}

/// A 3-limb chain with levels to reach.
fn deep_params() -> BfvParams {
    BfvParams::builder()
        .degree(4096)
        .plain_bits(17)
        .moduli_bits(&[36, 36, 36])
        .a_dcmp(1 << 6)
        .build()
        .unwrap()
}

const NI: usize = 16;

fn fc_spec() -> FcSpec {
    // Square, so diagonals have no alias partners and patterns prune
    // exactly the diagonals they name.
    FcSpec {
        name: "fc-sparse".into(),
        ni: NI,
        no: NI,
    }
}

/// Square FC weights whose live generalized diagonals are exactly `live`.
fn fc_weights_with_live(live: &[usize], seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut data = vec![0i64; NI * NI];
    for &k in live {
        for j in 0..NI {
            let v = loop {
                let v = rng.random_range(-4i64..=4);
                if v != 0 {
                    break v;
                }
            };
            data[(j % NI) * NI + (j + k) % NI] = v;
        }
    }
    Tensor::from_data(&[NI, NI], data)
}

/// The five sparsity patterns of the suite, by index.
fn fc_pattern(sel: usize) -> (&'static str, Vec<usize>) {
    match sel {
        0 => ("full", (0..NI).collect()),
        1 => ("half", (0..NI).step_by(2).collect()),
        2 => ("sparse90", vec![3, 11]),
        3 => ("single", vec![5]),
        _ => ("zero", vec![]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Sparse FC bit-identity: for every pattern with live weight, the
    /// auto-chosen kernel decrypts to the same full slot vector as a dense
    /// BSGS of the same `(b, g)` on the same weights, at every reachable
    /// level — and never rotates more than the dense plan.
    #[test]
    fn sparse_fc_matches_dense_plan_across_patterns_and_levels(
        seed in any::<u64>(),
        sel in 0usize..4,
    ) {
        let (pattern, live) = fc_pattern(sel);
        let s = fc_spec();
        let mut c = ctx(deep_params(), &HomFc::required_steps(&s), seed % 911 + 1);
        let weights = fc_weights_with_live(&live, seed ^ 0xd1a6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1297);
        let input = Tensor::from_data(
            &[NI],
            (0..NI).map(|_| rng.random_range(-9i64..=9)).collect(),
        );
        let expect = eval_linear(&LinearLayer::Fc(s.clone()), &weights, &input);

        let sparse = HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned)
            .unwrap();
        // Fully-live structures collapse to the plain dense kernel; pruned
        // ones carry a sparse plan.
        let (b, g, sparse_rotations) = match (sparse.plan(), sparse.sparse_plan()) {
            (Some(p), None) => {
                prop_assert_eq!(pattern, "full", "dense collapse only when fully live");
                (p.b, p.g, p.rotations())
            }
            (None, Some(p)) => (p.b, p.g, p.rotations()),
            other => {
                prop_assert!(false, "no plan chosen: {:?}", other);
                unreachable!()
            }
        };
        let dense = HomFc::with_plan(
            &s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned,
            Some(BsgsPlan { b, g }),
        ).unwrap();
        prop_assert!(
            sparse_rotations <= BsgsPlan { b, g }.rotations(),
            "{}: sparse plan must not rotate more than dense", pattern
        );

        let fresh = c.enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let mut reached = 0;
        for level in 0..c.params.levels() {
            let ct = c.eval.mod_switch_to(&fresh, level).unwrap();
            let predicted = dense.noise_after(ct.noise(), &c.params, level);
            if predicted.budget_bits_statistical_at(&c.params, level) < 2.0 {
                continue;
            }
            reached += 1;

            c.eval.reset_op_counts();
            let a = sparse.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
            let counts = c.eval.op_counts();
            prop_assert_eq!(
                counts.rotate as usize, sparse_rotations,
                "{} level {}: rotation count off plan", pattern, level
            );
            let d = dense.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();

            // Skipped terms are zero polynomials: the ciphertexts agree
            // bit for bit, not just after decryption.
            prop_assert_eq!(a.c0(), d.c0(), "{} level {}: c0 diverged", pattern, level);
            prop_assert_eq!(a.c1(), d.c1(), "{} level {}: c1 diverged", pattern, level);

            let slots = c.encoder.decode_signed(&c.dec.decrypt_checked(&a).unwrap());
            prop_assert_eq!(
                sparse.decode_output(&slots).data(), expect.data(),
                "{} level {}: diverged from cleartext", pattern, level
            );
        }
        prop_assert!(reached >= 2, "levels 0 and 1 must both be reachable");
    }

    /// Sparse conv correctness: dead taps and dead channels are skipped
    /// (live-channel reduces included) and the decoded outputs equal the
    /// cleartext reference under both schedules at every reachable level.
    #[test]
    fn sparse_conv_matches_reference_across_patterns_levels_and_schedules(
        seed in any::<u64>(),
        sel in 0usize..4,
    ) {
        let s = ConvSpec {
            name: "conv-sparse".into(),
            w: 4,
            fw: 3,
            ci: 2,
            co: 2,
            stride: 1,
            pad: 1,
        };
        let taps = s.fw * s.fw;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xc0de);
        let mut data = vec![0i64; s.co * s.ci * taps];
        // Pattern: which (o, c, tap) cells stay live.
        let live_cell: &dyn Fn(usize, usize, usize) -> bool = match sel {
            0 => &|_, _, _| true,                                  // full
            1 => &|_, _, tap| ![0usize, 2, 6, 8].contains(&tap),   // corners dead
            2 => &|o, c, tap| o == 0 && c == 1 && tap == 4,        // 90%+: one cell
            3 => &|o, _, tap| o == 1 && tap == 3,                  // single mask
            _ => unreachable!(),
        };
        for o in 0..s.co {
            for ch in 0..s.ci {
                for tap in 0..taps {
                    if live_cell(o, ch, tap) {
                        data[(o * s.ci + ch) * taps + tap] = loop {
                            let v = rng.random_range(-4i64..=4);
                            if v != 0 { break v; }
                        };
                    }
                }
            }
        }
        let weights = Tensor::from_data(&[s.co, s.ci, s.fw, s.fw], data);
        let input = Tensor::from_data(
            &[s.ci, s.w, s.w],
            (0..s.ci * s.w * s.w).map(|_| rng.random_range(-5i64..=5)).collect(),
        );
        let expect = eval_linear(&LinearLayer::Conv(s.clone()), &weights, &input);

        for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
            let mut c = ctx(deep_params(), &HomConv2d::required_steps(&s), seed % 907 + 1);
            let layer = HomConv2d::new(&s, &weights, &c.encoder, &c.eval, schedule).unwrap();
            if sel > 0 {
                prop_assert!(
                    !layer.structure().fully_live(),
                    "pattern {} must prune something", sel
                );
            }
            let fresh = c.enc
                .encrypt(&HomConv2d::encode_input(&s, &input, &c.encoder).unwrap())
                .unwrap();
            let mut reached = 0;
            for level in 0..c.params.levels() {
                let ct = c.eval.mod_switch_to(&fresh, level).unwrap();
                let predicted = layer.noise_after(ct.noise(), &c.params, level);
                if predicted.budget_bits_statistical_at(&c.params, level) < 2.0 {
                    continue;
                }
                reached += 1;
                let outputs = layer.apply(&ct, &c.eval, &c.keys).unwrap();
                for (o, out_ct) in outputs.iter().enumerate() {
                    let slots = c.encoder.decode_signed(&c.dec.decrypt_checked(out_ct).unwrap());
                    let img = layer.decode_output(&slots);
                    for y in 0..s.w {
                        for x in 0..s.w {
                            prop_assert_eq!(
                                img.at3(0, y, x), expect.at3(o, y, x),
                                "pattern {} {:?} level {}: (o={}, y={}, x={})",
                                sel, schedule, level, o, y, x
                            );
                        }
                    }
                }
            }
            prop_assert!(reached >= 1, "level 0 must be reachable");
        }
    }
}

/// All-zero layers cost nothing: transparent-zero outputs, zero rotations,
/// zero plaintext multiplies — at every level, both layer kinds, both
/// schedules for conv.
#[test]
fn all_zero_layers_are_transparent_and_rotation_free_at_every_level() {
    let params = deep_params();

    // FC.
    let s = fc_spec();
    let mut c = ctx(params.clone(), &HomFc::required_steps(&s), 61);
    let weights = fc_weights_with_live(&[], 0);
    let fc = HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned).unwrap();
    assert!(fc.rotation_steps().is_empty(), "no keys needed at all");
    let input = Tensor::from_data(&[NI], (0..NI as i64).collect());
    let fresh = c
        .enc
        .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
        .unwrap();
    for level in 0..params.levels() {
        let ct = c.eval.mod_switch_to(&fresh, level).unwrap();
        c.eval.reset_op_counts();
        let out = fc.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let counts = c.eval.op_counts();
        assert_eq!(counts.rotate, 0, "level {level}: all-zero FC rotated");
        assert_eq!(counts.mul, 0, "level {level}: all-zero FC multiplied");
        assert_eq!(out.level(), level);
        assert_eq!(
            out.noise().bound_log2,
            f64::NEG_INFINITY,
            "level {level}: output must be transparent zero"
        );
        let slots = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&out).unwrap());
        assert!(slots.iter().all(|&v| v == 0));
    }

    // Conv, both schedules.
    let cs = ConvSpec {
        name: "conv-zero".into(),
        w: 4,
        fw: 3,
        ci: 2,
        co: 2,
        stride: 1,
        pad: 1,
    };
    let zero_w = Tensor::from_data(
        &[cs.co, cs.ci, cs.fw, cs.fw],
        vec![0i64; cs.co * cs.ci * cs.fw * cs.fw],
    );
    let input = Tensor::from_data(&[cs.ci, cs.w, cs.w], (0..32i64).collect());
    for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
        let mut c = ctx(params.clone(), &HomConv2d::required_steps(&cs), 62);
        let conv = HomConv2d::new(&cs, &zero_w, &c.encoder, &c.eval, schedule).unwrap();
        assert!(conv.structure().all_zero());
        assert!(conv.rotation_steps().is_empty());
        let fresh = c
            .enc
            .encrypt(&HomConv2d::encode_input(&cs, &input, &c.encoder).unwrap())
            .unwrap();
        for level in 0..params.levels() {
            let ct = c.eval.mod_switch_to(&fresh, level).unwrap();
            c.eval.reset_op_counts();
            let outputs = conv.apply(&ct, &c.eval, &c.keys).unwrap();
            let counts = c.eval.op_counts();
            assert_eq!(counts.rotate, 0, "{schedule:?} level {level}: rotated");
            assert_eq!(counts.mul, 0, "{schedule:?} level {level}: multiplied");
            for out in &outputs {
                assert_eq!(out.noise().bound_log2, f64::NEG_INFINITY);
                let slots = c
                    .encoder
                    .decode_signed(&c.dec.decrypt_checked(out).unwrap());
                assert!(slots.iter().all(|&v| v == 0));
            }
        }
    }
}
