//! Parallel-vs-serial equivalence for the homomorphic linear layers:
//! `apply_threaded(…, N)` must decrypt to exactly the tensor that
//! `apply_threaded(…, 1)` (the serial path) produces, for both schedules.
//! Residue arithmetic mod `q` is exact, so the chunked accumulation order
//! cannot change the decrypted result — these tests pin that down on the
//! real engine.

use cheetah_bfv::{
    BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
};
use cheetah_core::linear::{HomConv2d, HomFc};
use cheetah_core::schedule::Schedule;
use cheetah_nn::{ConvSpec, FcSpec, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

struct Ctx {
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: GaloisKeys,
}

fn ctx(steps: &[i64], seed: u64) -> Ctx {
    let params = BfvParams::builder()
        .degree(4096)
        .plain_bits(16)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(steps).unwrap();
    Ctx {
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 1),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params),
        keys,
    }
}

fn conv_spec(w: usize, fw: usize, ci: usize, co: usize) -> ConvSpec {
    ConvSpec {
        name: "par-test".into(),
        w,
        fw,
        ci,
        co,
        stride: 1,
        pad: fw / 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn conv_parallel_decrypts_identically(seed in any::<u64>(), threads in 2usize..6) {
        let spec = conv_spec(8, 3, 2, 2);
        let mut c = ctx(&HomConv2d::required_steps(&spec), seed % 1000 + 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let weights = Tensor::from_data(
            &[spec.co, spec.ci, spec.fw, spec.fw],
            (0..spec.co * spec.ci * spec.fw * spec.fw)
                .map(|_| rng.random_range(-4..=4))
                .collect(),
        );
        let input = Tensor::from_data(
            &[spec.ci, spec.w, spec.w],
            (0..spec.ci * spec.w * spec.w)
                .map(|_| rng.random_range(-8..=8))
                .collect(),
        );

        for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
            let layer = HomConv2d::new(&spec, &weights, &c.encoder, &c.eval, schedule).unwrap();
            let ct = c
                .enc
                .encrypt(&HomConv2d::encode_input(&spec, &input, &c.encoder).unwrap())
                .unwrap();
            let serial = layer.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
            let parallel = layer.apply_threaded(&ct, &c.eval, &c.keys, threads).unwrap();
            prop_assert_eq!(serial.len(), parallel.len());
            for (o, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                let ds = c.encoder.decode_signed(&c.dec.decrypt(s).unwrap());
                let dp = c.encoder.decode_signed(&c.dec.decrypt(p).unwrap());
                prop_assert_eq!(&ds, &dp, "{} channel {} differs at {} threads", schedule, o, threads);
                // Residues themselves must match: chunked accumulation is
                // exact mod q, not just up to decryption.
                prop_assert_eq!(s.c0().data(), p.c0().data());
                prop_assert_eq!(s.c1().data(), p.c1().data());
            }
        }
    }

    #[test]
    fn fc_parallel_decrypts_identically(seed in any::<u64>(), threads in 2usize..6) {
        let spec = FcSpec { name: "fc-par".into(), ni: 16, no: 8 };
        let mut c = ctx(&HomFc::required_steps(&spec), seed % 1000 + 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let weights = Tensor::from_data(
            &[spec.no, spec.ni],
            (0..spec.no * spec.ni).map(|_| rng.random_range(-5..=5)).collect(),
        );
        let input = Tensor::from_data(
            &[spec.ni],
            (0..spec.ni).map(|_| rng.random_range(-9..=9)).collect(),
        );

        for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
            let layer = HomFc::new(&spec, &weights, &c.encoder, &c.eval, schedule).unwrap();
            let ct = c
                .enc
                .encrypt(&HomFc::encode_input(&spec, &input, &c.encoder).unwrap())
                .unwrap();
            let serial = layer.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
            let parallel = layer.apply_threaded(&ct, &c.eval, &c.keys, threads).unwrap();
            let ds = c.encoder.decode_signed(&c.dec.decrypt(&serial).unwrap());
            let dp = c.encoder.decode_signed(&c.dec.decrypt(&parallel).unwrap());
            prop_assert_eq!(&ds[..spec.no], &dp[..spec.no], "{} differs", schedule);
            prop_assert_eq!(serial.c0().data(), parallel.c0().data());
            prop_assert_eq!(serial.c1().data(), parallel.c1().data());
        }
    }
}

/// Exact op-count accounting must survive multi-threaded evaluation: the
/// atomic counters see every kernel exactly once regardless of interleaving.
#[test]
fn op_counts_exact_across_threads() {
    let spec = FcSpec {
        name: "fc-counts".into(),
        ni: 16,
        no: 8,
    };
    let mut c = ctx(&HomFc::required_steps(&spec), 77);
    let weights = Tensor::from_data(&[spec.no, spec.ni], vec![1; spec.no * spec.ni]);
    let input = Tensor::from_data(&[spec.ni], (0..spec.ni as i64).collect());
    let layer = HomFc::new(
        &spec,
        &weights,
        &c.encoder,
        &c.eval,
        Schedule::PartialAligned,
    )
    .unwrap();
    let ct = c
        .enc
        .encrypt(&HomFc::encode_input(&spec, &input, &c.encoder).unwrap())
        .unwrap();

    c.eval.reset_op_counts();
    let _ = layer.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
    let serial = c.eval.op_counts();

    c.eval.reset_op_counts();
    let _ = layer.apply_threaded(&ct, &c.eval, &c.keys, 4).unwrap();
    let parallel = c.eval.op_counts();

    // Rotations, multiplications, NTTs, and pointwise products are
    // structural (independent of chunking); only the merge adds differ by
    // the number of extra partial-sum folds (chunks - 1 extra HE_Adds).
    // The parallel work range is the layer's plan: giant-step groups under
    // BSGS, diagonal steps on the legacy path.
    assert_eq!(serial.rotate, parallel.rotate);
    assert_eq!(serial.mul, parallel.mul);
    assert_eq!(serial.ntt, parallel.ntt);
    assert_eq!(serial.poly_mul, parallel.poly_mul);
    let work_items = layer.plan().map_or(spec.ni, |p| p.g);
    let chunks = 4.min(work_items) as u64;
    assert_eq!(
        parallel.add - serial.add,
        chunks - 1,
        "{chunks} chunks -> {} merge adds",
        chunks - 1
    );
}

/// Foreign-parameter inputs must be rejected before the copy-based hot
/// path touches them (the copy would otherwise run arithmetic mod the
/// wrong `q` and return garbage with `Ok`).
#[test]
fn foreign_parameter_input_is_rejected() {
    let spec = FcSpec {
        name: "fc-foreign".into(),
        ni: 8,
        no: 4,
    };
    let c = ctx(&HomFc::required_steps(&spec), 13);
    let weights = Tensor::from_data(&[spec.no, spec.ni], vec![1; spec.no * spec.ni]);
    let layer = HomFc::new(
        &spec,
        &weights,
        &c.encoder,
        &c.eval,
        Schedule::PartialAligned,
    )
    .unwrap();

    // Same degree, different cipher modulus -> foreign parameter set.
    let foreign = BfvParams::builder()
        .degree(4096)
        .plain_bits(16)
        .cipher_bits(59)
        .build()
        .unwrap();
    let mut fkg = KeyGenerator::from_seed(foreign.clone(), 14);
    let fpk = fkg.public_key().unwrap();
    let mut fenc = Encryptor::from_public_key(fpk, 15);
    let fencoder = BatchEncoder::new(foreign);
    let input = Tensor::from_data(&[spec.ni], (0..spec.ni as i64).collect());
    let foreign_ct = fenc
        .encrypt(&HomFc::encode_input(&spec, &input, &fencoder).unwrap())
        .unwrap();

    for threads in [1, 4] {
        assert!(
            layer
                .apply_threaded(&foreign_ct, &c.eval, &c.keys, threads)
                .is_err(),
            "foreign ciphertext accepted at {threads} threads"
        );
    }
}
