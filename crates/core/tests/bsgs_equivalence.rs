//! BSGS ↔ diagonal equivalence, pinned:
//!
//! * a BSGS `HomFc` decrypts identically to the legacy diagonal path —
//!   across random dims (non-square, `d` not a perfect square, forced
//!   `b·g > d` padding) and under both legacy schedules;
//! * the equivalence holds at **every reachable level** of a deep chain
//!   (every level the statistical planner would run the layer at);
//! * the BSGS rotation structure is what the plan promises: `b + g − 2`
//!   rotations, `g` hoist-priced NTT bills — `O(√d)` plane transforms
//!   against the diagonal path's `O(d)`.

use cheetah_bfv::{
    BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
};
use cheetah_core::linear::HomFc;
use cheetah_core::{BsgsPlan, Schedule};
use cheetah_nn::inference::eval_linear;
use cheetah_nn::{FcSpec, LinearLayer, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

struct Ctx {
    params: BfvParams,
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: GaloisKeys,
}

fn ctx(params: BfvParams, max_ni: usize, seed: u64) -> Ctx {
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let steps: Vec<i64> = (1..max_ni as i64).collect();
    let keys = kg.galois_keys_for_steps(&steps).unwrap();
    Ctx {
        params: params.clone(),
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 0x5eed),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params),
        keys,
    }
}

fn flat_params() -> BfvParams {
    BfvParams::builder()
        .degree(4096)
        .plain_bits(16)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()
        .unwrap()
}

/// A 3-limb chain deep enough that FC layers are statistically safe at
/// level 1 (level 2's single 36-bit limb is not).
fn deep_params() -> BfvParams {
    BfvParams::builder()
        .degree(4096)
        .plain_bits(17)
        .moduli_bits(&[36, 36, 36])
        .a_dcmp(1 << 6)
        .build()
        .unwrap()
}

fn spec(ni: usize, no: usize) -> FcSpec {
    FcSpec {
        name: "fc-bsgs".into(),
        ni,
        no,
    }
}

fn random_layer(s: &FcSpec, seed: u64) -> (Tensor, Tensor) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let weights = Tensor::from_data(
        &[s.no, s.ni],
        (0..s.no * s.ni).map(|_| rng.random_range(-5..=5)).collect(),
    );
    let input = Tensor::from_data(
        &[s.ni],
        (0..s.ni).map(|_| rng.random_range(-9..=9)).collect(),
    );
    (weights, input)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// BSGS decrypts identically to the legacy diagonal path for random
    /// dims and arbitrary forced splits, including b·g > d padding and
    /// non-perfect-square d, against both legacy schedules and the
    /// cleartext reference.
    #[test]
    fn bsgs_matches_diagonal_for_random_dims_and_plans(
        seed in any::<u64>(),
        dim_sel in 0usize..3,
        extra_g in 0usize..2,
    ) {
        let ni = [8usize, 16, 32][dim_sel];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xb565);
        let no = rng.random_range(1..=ni);
        let b = rng.random_range(2..=ni);
        // ceil(ni/b) groups cover every diagonal; extra_g pads b·g past d.
        let g = ni.div_ceil(b) + extra_g;
        let s = spec(ni, no);
        let mut c = ctx(flat_params(), ni, seed % 997 + 1);
        let (weights, input) = random_layer(&s, seed);
        let expect = eval_linear(&LinearLayer::Fc(s.clone()), &weights, &input);

        let ct = c.enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();

        let bsgs = HomFc::with_plan(
            &s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned,
            Some(BsgsPlan { b, g }),
        ).unwrap();
        let out_bsgs = bsgs.apply(&ct, &c.eval, &c.keys).unwrap();
        let slots_bsgs = c.encoder.decode_signed(&c.dec.decrypt_checked(&out_bsgs).unwrap());

        for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
            let diag = HomFc::with_plan(
                &s, &weights, &c.encoder, &c.eval, schedule, None,
            ).unwrap();
            let out_diag = diag.apply(&ct, &c.eval, &c.keys).unwrap();
            let slots_diag = c.encoder.decode_signed(&c.dec.decrypt_checked(&out_diag).unwrap());
            prop_assert_eq!(
                &slots_bsgs, &slots_diag,
                "b={} g={} vs {} diagonal", b, g, schedule
            );
        }
        prop_assert_eq!(bsgs.decode_output(&slots_bsgs).data(), expect.data());
    }

    /// The equivalence holds at every level the statistical planner deems
    /// reachable on a deep chain: the same masks (prepared at level 0)
    /// serve the modulus-switched input, and BSGS and diagonal agree slot
    /// for slot at each such level.
    #[test]
    fn bsgs_matches_diagonal_at_every_reachable_level(seed in any::<u64>()) {
        let params = deep_params();
        let s = spec(16, 7);
        let mut c = ctx(params.clone(), s.ni, seed % 991 + 1);
        let (weights, input) = random_layer(&s, seed ^ 0x1eaf);

        let bsgs = HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned)
            .unwrap();
        prop_assert!(bsgs.plan().is_some(), "d = 16 must pick a BSGS plan");
        let diag = HomFc::with_plan(
            &s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned, None,
        ).unwrap();

        let fresh = c.enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let mut reached = 0;
        for level in 0..c.params.levels() {
            let ct = c.eval.mod_switch_to(&fresh, level).unwrap();
            let predicted = bsgs.noise_after(ct.noise(), &c.params, level);
            if predicted.budget_bits_statistical_at(&c.params, level) < 2.0 {
                continue; // not reachable: the planner would never run here
            }
            reached += 1;
            let a = bsgs.apply(&ct, &c.eval, &c.keys).unwrap();
            let b = diag.apply(&ct, &c.eval, &c.keys).unwrap();
            prop_assert_eq!(a.level(), level, "output follows the input level");
            let sa = c.encoder.decode_signed(&c.dec.decrypt_checked(&a).unwrap());
            let sb = c.encoder.decode_signed(&c.dec.decrypt_checked(&b).unwrap());
            prop_assert_eq!(sa, sb, "level {} diverged", level);
        }
        prop_assert!(reached >= 2, "levels 0 and 1 must both be reachable");
    }
}

/// The O(√d) structure, pinned exactly: rotation count `b + g − 2` and
/// NTT plane bill `g·(l_ct + 1)·limbs` (one hoist + `g − 1` giant steps)
/// versus the diagonal path's `(d − 1)·(l_ct + 1)·limbs` — at level 0 and
/// at level 1 of the deep chain, where every live count shrinks.
#[test]
fn bsgs_ntt_structure_at_level_0_and_1() {
    let params = deep_params();
    let s = spec(32, 8);
    let c = ctx(params.clone(), s.ni, 3);
    let (weights, input) = random_layer(&s, 77);
    let mut enc = c.enc;

    let bsgs = HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned).unwrap();
    let plan = bsgs.plan().unwrap();
    let diag = HomFc::with_plan(
        &s,
        &weights,
        &c.encoder,
        &c.eval,
        Schedule::InputAligned,
        None,
    )
    .unwrap();

    let fresh = enc
        .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
        .unwrap();
    for level in 0..2 {
        let ct = c.eval.mod_switch_to(&fresh, level).unwrap();
        let planes = (params.l_ct_at(level) as u64 + 1) * params.live_limbs_at(level) as u64;

        c.eval.reset_op_counts();
        bsgs.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let counts = c.eval.op_counts();
        assert_eq!(counts.rotate as usize, plan.rotations(), "level {level}");
        assert_eq!(counts.ntt, planes * plan.g as u64, "level {level}");

        c.eval.reset_op_counts();
        diag.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let diag_counts = c.eval.op_counts();
        assert_eq!(diag_counts.ntt, planes * (s.ni as u64 - 1), "level {level}");
        assert!(
            counts.ntt * 4 < diag_counts.ntt,
            "level {level}: BSGS {} planes vs diagonal {}",
            counts.ntt,
            diag_counts.ntt
        );
    }
}
