//! Property tests on the HE-PTune models: monotonicity and consistency
//! laws that must hold across the whole parameter space, not just the
//! points unit tests pin.

use cheetah_core::cost::HeCostParams;
use cheetah_core::ptune::noise::{layer_noise, HeNoiseParams, NoiseRegime};
use cheetah_core::ptune::perf::{conv_ops_scheduled, fc_ops_scheduled, layer_ops};
use cheetah_core::ptune::tuner::{evaluate_point, NO_WINDOW};
use cheetah_core::Schedule;
use cheetah_nn::{ConvSpec, FcSpec, LinearLayer};
use proptest::prelude::*;

fn arb_conv() -> impl Strategy<Value = ConvSpec> {
    (
        prop_oneof![Just(8usize), Just(16), Just(28), Just(56), Just(224)],
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7), Just(11)],
        1usize..=512,
        1usize..=512,
    )
        .prop_map(|(w, fw, ci, co)| ConvSpec {
            name: "prop".into(),
            w,
            fw,
            ci,
            co,
            stride: 1,
            pad: fw / 2,
        })
}

fn arb_fc() -> impl Strategy<Value = FcSpec> {
    (1usize..=30000, 1usize..=8192).prop_map(|(ni, no)| FcSpec {
        name: "prop".into(),
        ni,
        no,
    })
}

proptest! {
    #[test]
    fn conv_counts_are_positive_and_scale_with_l_pt(c in arb_conv(), l_pt in 1usize..6) {
        for n in [2048usize, 4096, 8192] {
            let m1 = conv_ops_scheduled(&c, n, 1, Schedule::PartialAligned);
            let ml = conv_ops_scheduled(&c, n, l_pt, Schedule::PartialAligned);
            prop_assert!(m1.he_mult > 0.0);
            prop_assert!(m1.he_rotate >= 0.0);
            // Mults scale exactly with l_pt; PA rotations do not.
            prop_assert!((ml.he_mult - l_pt as f64 * m1.he_mult).abs() < 1e-6 * ml.he_mult.max(1.0));
            prop_assert!((ml.he_rotate - m1.he_rotate).abs() < 1e-9);
            // IA rotations do scale with l_pt.
            let ia = conv_ops_scheduled(&c, n, l_pt, Schedule::InputAligned);
            prop_assert!((ia.he_rotate - l_pt as f64 * m1.he_rotate).abs() < 1e-6 * ia.he_rotate.max(1.0));
        }
    }

    #[test]
    fn fc_mult_count_is_exactly_table_iv(f in arb_fc(), l_pt in 1usize..6) {
        for n in [2048usize, 4096, 16384] {
            let m = fc_ops_scheduled(&f, n, l_pt, Schedule::PartialAligned);
            let expect = l_pt as f64 * (f.ni * f.no) as f64 / n as f64;
            prop_assert!((m.he_mult - expect).abs() < 1e-6 * expect.max(1.0));
            prop_assert!(m.he_rotate >= 0.0);
        }
    }

    #[test]
    fn int_mults_monotone_in_decomposition_levels(c in arb_conv()) {
        // More decomposition levels never make a layer cheaper.
        let layer = LinearLayer::Conv(c);
        let base = HeCostParams { n: 4096, l_pt: 1, l_ct: 3,
            limbs: 1, hybrid: false, };
        let deeper_ct = HeCostParams { l_ct: 8, ..base };
        let cost = |p: &HeCostParams, l_pt: usize| layer_ops(&layer, p.n, l_pt).int_mults(p);
        prop_assert!(cost(&deeper_ct, 1) >= cost(&base, 1));
        prop_assert!(cost(&base, 3) >= cost(&base, 1));
    }

    #[test]
    fn noise_budget_monotone_in_q(c in arb_conv(), q_lo in 30u32..45) {
        let layer = LinearLayer::Conv(c);
        let q_hi = q_lo + 10;
        let mk = |q_bits| HeNoiseParams {
            n: 4096,
            t_bits: 18,
            q_bits,
            w_dcmp: 1 << 18,
            a_dcmp: 1 << 10,
            sigma: 3.2,
        };
        // Same decomposition levels for both (fix l_ct by scaling A with q
        // would change levels; keep A fixed and only compare budgets when
        // l_ct is equal).
        let lo = mk(q_lo);
        let hi = mk(q_hi);
        if lo.l_ct() == hi.l_ct() {
            for regime in [NoiseRegime::WorstCase, NoiseRegime::Statistical] {
                let b_lo = layer_noise(&layer, &lo, Schedule::PartialAligned, regime).budget_bits;
                let b_hi = layer_noise(&layer, &hi, Schedule::PartialAligned, regime).budget_bits;
                prop_assert!(b_hi >= b_lo, "{regime:?}: q {q_hi} budget {b_hi} < q {q_lo} budget {b_lo}");
            }
        }
    }

    #[test]
    fn ia_never_beats_pa_in_noise(c in arb_conv()) {
        let layer = LinearLayer::Conv(c);
        let p = HeNoiseParams {
            n: 4096,
            t_bits: 18,
            q_bits: 60,
            w_dcmp: 1 << 6,
            a_dcmp: 1 << 8,
            sigma: 3.2,
        };
        for regime in [NoiseRegime::WorstCase, NoiseRegime::Statistical] {
            let pa = layer_noise(&layer, &p, Schedule::PartialAligned, regime);
            let ia = layer_noise(&layer, &p, Schedule::InputAligned, regime);
            prop_assert!(ia.noise_log2 >= pa.noise_log2);
        }
    }

    #[test]
    fn evaluate_point_is_deterministic(c in arb_conv(), a_log in 2u32..24, seed in 0u32..4) {
        let _ = seed; // determinism means seed must not matter (there is none)
        let layer = LinearLayer::Conv(c);
        let p1 = evaluate_point(
            &layer, 18, 4096, 60, a_log, NO_WINDOW, 3.2,
            Schedule::PartialAligned, NoiseRegime::Statistical,
        );
        let p2 = evaluate_point(
            &layer, 18, 4096, 60, a_log, NO_WINDOW, 3.2,
            Schedule::PartialAligned, NoiseRegime::Statistical,
        );
        prop_assert_eq!(p1, p2);
    }
}
