//! The Gazelle baseline: one global HE parameter set + Sched-IA.
//!
//! "Gazelle uses the same sets of HE parameters for all layers" (§IV-C) and
//! aligns inputs before multiplying (Sched-IA, §V-A). Two baselines are
//! provided:
//!
//! * [`gazelle_config`] — the *legacy* fixed configuration Gazelle actually
//!   shipped (n = 2048, 60-bit q, 2⁸ windows), used for the Fig. 3/Fig. 6
//!   comparisons, exactly as the paper compares against Gazelle's own
//!   parameter choices;
//! * [`tune_global`] — a globally *optimized* single configuration (the
//!   best a one-size-fits-all Gazelle could possibly do), used as an
//!   ablation to separate "per-layer tuning" gains from "better global
//!   parameters" gains.

use cheetah_nn::LinearLayer;

use crate::cost::HeCostParams;
use crate::ptune::noise::NoiseRegime;
use crate::ptune::perf::layer_ops;
use crate::ptune::tuner::{evaluate_point, DesignPoint, TuneSpace};
use crate::schedule::Schedule;

/// The global configuration selected for a network, with per-layer costs.
#[derive(Debug, Clone)]
pub struct GlobalConfig {
    /// The chosen configuration (same for every layer).
    pub point: DesignPoint,
    /// Per-layer modeled cost (integer multiplications) under it.
    pub layer_costs: Vec<f64>,
    /// Per-layer remaining noise budget under it.
    pub layer_budgets: Vec<f64>,
}

impl GlobalConfig {
    /// Total network cost.
    pub fn total_cost(&self) -> f64 {
        self.layer_costs.iter().sum()
    }
}

/// Finds the cheapest single configuration feasible for *every* layer.
///
/// `t_bits` must be the network-wide worst-case requirement — a global
/// parameter set cannot vary the plaintext modulus per layer.
///
/// Returns `None` when the space contains no globally feasible point.
pub fn tune_global(
    layers: &[LinearLayer],
    t_bits: u32,
    schedule: Schedule,
    regime: NoiseRegime,
    space: &TuneSpace,
) -> Option<GlobalConfig> {
    let mut best: Option<GlobalConfig> = None;
    for &n in &space.degrees {
        let max_q = if space.enforce_security {
            cheetah_bfv::params::max_log_q_128(n).unwrap_or(0).min(62)
        } else {
            62
        };
        for &q_bits in &space.q_bits {
            if q_bits > max_q || q_bits < t_bits + 2 {
                continue;
            }
            for &a_log in &space.a_dcmp_log2 {
                'w: for &w_log in &space.w_dcmp_log2 {
                    let mut costs = Vec::with_capacity(layers.len());
                    let mut budgets = Vec::with_capacity(layers.len());
                    let mut probe = None;
                    for layer in layers {
                        let point = evaluate_point(
                            layer,
                            t_bits,
                            n,
                            q_bits,
                            a_log,
                            w_log,
                            space.sigma,
                            schedule,
                            regime,
                        );
                        if !point.feasible() {
                            continue 'w; // one bad layer sinks the config
                        }
                        costs.push(point.int_mults);
                        budgets.push(point.budget_bits);
                        probe = Some(point);
                    }
                    let Some(point) = probe else { continue };
                    let total: f64 = costs.iter().sum();
                    if best.as_ref().is_none_or(|b| total < b.total_cost()) {
                        best = Some(GlobalConfig {
                            point,
                            layer_costs: costs,
                            layer_budgets: budgets,
                        });
                    }
                }
            }
        }
    }
    best
}

/// The *legacy Gazelle* configuration: the fixed parameter set the actual
/// Gazelle implementation shipped with — `n = 2048`, 60-bit `q` (insecure
/// under the HE-standard table, as Gazelle's real choice was), ~20-bit `t`,
/// and conservative 2⁸ decomposition windows for both plaintext and
/// ciphertext — applied to *every* layer.
///
/// This is the red-star configuration of Fig. 3: feasible everywhere (with
/// slack on most layers) but never tuned. When a network's precision or
/// noise requirements exceed what `n = 2048` can carry, the ring is
/// escalated (4096, 8192, 16384) with the window bases kept fixed — the
/// provisioning *style* stays Gazelle's even when the size must grow.
///
/// Returns `None` only if no escalation level is feasible.
pub fn gazelle_config(layers: &[LinearLayer], t_bits: u32, sigma: f64) -> Option<GlobalConfig> {
    let t_bits = t_bits.max(20);
    for n in [2048usize, 4096, 8192, 16384] {
        let point = DesignPoint {
            n,
            t_bits,
            q_bits: 60,
            a_dcmp_log2: 8,
            w_dcmp_log2: 8,
            int_mults: 0.0,
            budget_bits: 0.0,
        };
        let mut costs = Vec::with_capacity(layers.len());
        let mut budgets = Vec::with_capacity(layers.len());
        let mut feasible = true;
        for layer in layers {
            let p = evaluate_point(
                layer,
                t_bits,
                n,
                60,
                8,
                8,
                sigma,
                Schedule::InputAligned,
                NoiseRegime::Statistical,
            );
            if !p.feasible() {
                feasible = false;
                break;
            }
            costs.push(p.int_mults);
            budgets.push(p.budget_bits);
        }
        if feasible {
            return Some(GlobalConfig {
                point,
                layer_costs: costs,
                layer_budgets: budgets,
            });
        }
    }
    None
}

/// Per-layer cost of running a network under a fixed global configuration
/// (used when running *other* models on a config chosen elsewhere).
pub fn layer_costs_under(layers: &[LinearLayer], point: &DesignPoint) -> Vec<f64> {
    let cost_params = HeCostParams {
        n: point.n,
        l_pt: point.l_pt(),
        l_ct: point.l_ct(),
        // DesignPoint sweeps single-word ciphertext moduli (q_bits ≤ 62).
        limbs: 1,
        hybrid: false,
    };
    layers
        .iter()
        .map(|l| layer_ops(l, point.n, point.l_pt()).int_mults(&cost_params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantSpec;
    use cheetah_nn::models;

    #[test]
    fn global_config_exists_for_lenet5() {
        let quant = QuantSpec::default();
        let layers = models::lenet5().linear_layers();
        let t_bits = quant.statistical_plain_bits_network(&layers);
        let cfg = tune_global(
            &layers,
            t_bits,
            Schedule::InputAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        )
        .expect("baseline must be able to run LeNet5");
        assert_eq!(cfg.layer_costs.len(), 4);
        assert!(cfg.total_cost() > 0.0);
        assert!(cfg.layer_budgets.iter().all(|&b| b >= 0.0));
    }

    #[test]
    fn global_cost_at_least_per_layer_total() {
        // A single global config can never beat per-layer tuning.
        let quant = QuantSpec::default();
        let layers = models::alexnet().linear_layers();
        let t_global = quant.statistical_plain_bits_network(&layers);
        let space = TuneSpace::default();
        let global = tune_global(
            &layers,
            t_global,
            Schedule::InputAligned,
            NoiseRegime::Statistical,
            &space,
        )
        .unwrap();
        let t_bits: Vec<u32> = layers
            .iter()
            .map(|l| quant.statistical_plain_bits(l))
            .collect();
        let tuned = crate::ptune::tuner::tune_network(
            &layers,
            &t_bits,
            Schedule::InputAligned,
            NoiseRegime::Statistical,
            &space,
        )
        .unwrap();
        let tuned_total: f64 = tuned.iter().map(|(_, p)| p.int_mults).sum();
        assert!(
            tuned_total <= global.total_cost(),
            "per-layer {tuned_total:.3e} must not exceed global {:.3e}",
            global.total_cost()
        );
    }

    #[test]
    fn layer_costs_under_matches_direct_model() {
        let layers = models::lenet300().linear_layers();
        let point = DesignPoint {
            n: 4096,
            t_bits: 18,
            q_bits: 60,
            a_dcmp_log2: 10,
            w_dcmp_log2: 6,
            int_mults: 0.0,
            budget_bits: 0.0,
        };
        let costs = layer_costs_under(&layers, &point);
        assert_eq!(costs.len(), 3);
        assert!(costs.iter().all(|&c| c > 0.0));
        // FC1 (784x300) must cost more than FC3 (100x10).
        assert!(costs[0] > costs[2]);
    }
}
