//! Fixed-point quantization settings shared by the models and the tuner.
//!
//! HE inference computes exactly over integers mod `t`; the plaintext
//! modulus must be wide enough that no layer output overflows. "Setting `t`
//! requires profiling the application to ensure enough bits are used for
//! correctness and no more, as over provisioning causes unnecessary
//! slowdown" (§III-B). [`QuantSpec::required_plain_bits`] is that profile:
//! weight bits + activation bits + accumulation depth + sign.

use cheetah_nn::LinearLayer;

/// How weight values are constrained after quantization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WeightMode {
    /// Plain fixed-point integers in `[-weight_bound, weight_bound]`.
    #[default]
    Integer,
    /// Signed powers of two: every nonzero weight is rounded to the
    /// nearest `±2^k` within the bit budget — the shift-add regime where
    /// `cheetah_bfv`'s pow2 `mul_plain` doubling chains (and the
    /// [`crate::sparse`] scale factoring) replace Barrett multiplies.
    Pow2,
}

/// Bit widths for weights and activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantSpec {
    /// Magnitude bits per weight (sign handled separately).
    pub weight_bits: u32,
    /// Magnitude bits per activation.
    pub activation_bits: u32,
    /// Weight value constraint (plain integers or signed powers of two).
    pub weight_mode: WeightMode,
}

impl Default for QuantSpec {
    fn default() -> Self {
        // 5+5-bit fixed point: enough for the demonstration networks and
        // puts ResNet50's widest layer at a ~24-bit t, in the regime the
        // paper's q ≈ 60-bit parameters target.
        Self {
            weight_bits: 5,
            activation_bits: 5,
            weight_mode: WeightMode::Integer,
        }
    }
}

/// Rounds `w` to the nearest signed power of two (in linear distance,
/// ties toward the smaller magnitude); zero stays zero. The result's
/// magnitude is clamped to `2^max_exp`.
pub fn round_to_pow2(w: i64, max_exp: u32) -> i64 {
    if w == 0 {
        return 0;
    }
    let mag = w.unsigned_abs();
    let floor_exp = 63 - mag.leading_zeros();
    let exp = if floor_exp >= max_exp {
        max_exp
    } else {
        let lo = 1u64 << floor_exp;
        let hi = lo << 1;
        if mag - lo <= hi - mag {
            floor_exp
        } else {
            floor_exp + 1
        }
    };
    let q = 1i64 << exp.min(max_exp);
    if w < 0 {
        -q
    } else {
        q
    }
}

impl QuantSpec {
    /// Minimum plaintext-modulus bits for an overflow-free evaluation of
    /// `layer`.
    pub fn required_plain_bits(&self, layer: &LinearLayer) -> u32 {
        layer.required_plain_bits(self.weight_bits, self.activation_bits)
    }

    /// The worst (widest) requirement across a set of layers — what a
    /// single global parameter set (the Gazelle baseline) must provision.
    pub fn required_plain_bits_network(&self, layers: &[LinearLayer]) -> u32 {
        layers
            .iter()
            .map(|l| self.required_plain_bits(l))
            .max()
            .unwrap_or(self.weight_bits + self.activation_bits + 1)
    }

    /// Statistically profiled plaintext-modulus requirement: real (and our
    /// randomly drawn) weights make the dot product concentrate around
    /// `√(dot_len)·w·a` rather than the worst case `dot_len·w·a`. This is
    /// the "profiling the application" sizing of §III-B that the paper's
    /// systems rely on; 3 extra bits cover sign and tail.
    pub fn statistical_plain_bits(&self, layer: &LinearLayer) -> u32 {
        let dot = layer.dot_length() as f64;
        let spread = dot.sqrt().log2().ceil() as u32;
        self.weight_bits + self.activation_bits + spread + 3
    }

    /// Network-wide statistical requirement (max over layers).
    pub fn statistical_plain_bits_network(&self, layers: &[LinearLayer]) -> u32 {
        layers
            .iter()
            .map(|l| self.statistical_plain_bits(l))
            .max()
            .unwrap_or(self.weight_bits + self.activation_bits + 3)
    }

    /// Largest weight magnitude representable.
    pub fn weight_bound(&self) -> i64 {
        match self.weight_mode {
            WeightMode::Integer => (1i64 << self.weight_bits) - 1,
            // The largest signed power of two under the integer bound.
            WeightMode::Pow2 => 1i64 << self.pow2_max_exp(),
        }
    }

    /// Largest pow2 exponent within the weight bit budget
    /// (`2^e ≤ 2^weight_bits − 1`).
    fn pow2_max_exp(&self) -> u32 {
        self.weight_bits.saturating_sub(1)
    }

    /// Quantizes one already-integer weight into this spec's value set:
    /// clamped to the bound in [`WeightMode::Integer`], rounded to the
    /// nearest signed power of two in [`WeightMode::Pow2`].
    pub fn quantize_weight(&self, w: i64) -> i64 {
        match self.weight_mode {
            WeightMode::Integer => w.clamp(-self.weight_bound(), self.weight_bound()),
            WeightMode::Pow2 => round_to_pow2(w, self.pow2_max_exp()),
        }
    }

    /// Quantizes a weight slice in place (see [`QuantSpec::quantize_weight`]).
    pub fn quantize_weights(&self, weights: &mut [i64]) {
        for w in weights {
            *w = self.quantize_weight(*w);
        }
    }

    /// Largest activation magnitude representable.
    pub fn activation_bound(&self) -> i64 {
        (1i64 << self.activation_bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_nn::models;

    #[test]
    fn resnet50_precision_requirement_is_plausible() {
        let q = QuantSpec::default();
        let layers = models::resnet50().linear_layers();
        let bits = q.required_plain_bits_network(&layers);
        // 5 + 5 + ceil(log2(4608)) + 1 = 24
        assert_eq!(bits, 24);
    }

    #[test]
    fn per_layer_requirements_vary() {
        let q = QuantSpec::default();
        let layers = models::resnet50().linear_layers();
        let reqs: Vec<u32> = layers.iter().map(|l| q.required_plain_bits(l)).collect();
        let min = *reqs.iter().min().unwrap();
        let max = *reqs.iter().max().unwrap();
        assert!(
            max > min + 3,
            "per-layer spread ({min}..{max}) is what makes per-layer tuning pay"
        );
    }

    #[test]
    fn bounds_match_bits() {
        let q = QuantSpec {
            weight_bits: 4,
            activation_bits: 3,
            weight_mode: WeightMode::Integer,
        };
        assert_eq!(q.weight_bound(), 15);
        assert_eq!(q.activation_bound(), 7);
        let p2 = QuantSpec {
            weight_mode: WeightMode::Pow2,
            ..q
        };
        assert_eq!(p2.weight_bound(), 8, "largest pow2 under 15");
    }

    #[test]
    fn pow2_rounding_is_nearest_and_bounded() {
        assert_eq!(round_to_pow2(0, 4), 0);
        assert_eq!(round_to_pow2(1, 4), 1);
        assert_eq!(
            round_to_pow2(3, 4),
            2,
            "equidistant ties keep the smaller magnitude"
        );
        assert_eq!(
            round_to_pow2(6, 4),
            4,
            "equidistant ties keep the smaller magnitude"
        );
        assert_eq!(round_to_pow2(7, 4), 8);
        assert_eq!(round_to_pow2(-5, 4), -4);
        assert_eq!(round_to_pow2(100, 4), 16, "clamped to 2^4");
        assert_eq!(round_to_pow2(-100, 3), -8);
    }

    #[test]
    fn quantize_weight_honors_the_mode() {
        let q = QuantSpec::default();
        assert_eq!(q.quantize_weight(29), 29);
        assert_eq!(q.quantize_weight(77), 31, "integer clamp");
        let p2 = QuantSpec {
            weight_mode: WeightMode::Pow2,
            ..QuantSpec::default()
        };
        assert_eq!(p2.quantize_weight(29), 16, "clamped to the pow2 bound 2^4");
        assert_eq!(p2.quantize_weight(-29), -16);
        assert_eq!(
            p2.quantize_weight(12),
            8,
            "equidistant keeps the smaller magnitude"
        );
        let mut ws = vec![0, 1, -3, 29];
        p2.quantize_weights(&mut ws);
        assert_eq!(ws, vec![0, 1, -2, 16]);
        // Every quantized value classifies as zero or pow2.
        for &w in &ws {
            assert!(w == 0 || crate::sparse::pow2_exponent(w).is_some());
        }
    }
}
