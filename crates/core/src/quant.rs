//! Fixed-point quantization settings shared by the models and the tuner.
//!
//! HE inference computes exactly over integers mod `t`; the plaintext
//! modulus must be wide enough that no layer output overflows. "Setting `t`
//! requires profiling the application to ensure enough bits are used for
//! correctness and no more, as over provisioning causes unnecessary
//! slowdown" (§III-B). [`QuantSpec::required_plain_bits`] is that profile:
//! weight bits + activation bits + accumulation depth + sign.

use cheetah_nn::LinearLayer;

/// Bit widths for weights and activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantSpec {
    /// Magnitude bits per weight (sign handled separately).
    pub weight_bits: u32,
    /// Magnitude bits per activation.
    pub activation_bits: u32,
}

impl Default for QuantSpec {
    fn default() -> Self {
        // 5+5-bit fixed point: enough for the demonstration networks and
        // puts ResNet50's widest layer at a ~24-bit t, in the regime the
        // paper's q ≈ 60-bit parameters target.
        Self {
            weight_bits: 5,
            activation_bits: 5,
        }
    }
}

impl QuantSpec {
    /// Minimum plaintext-modulus bits for an overflow-free evaluation of
    /// `layer`.
    pub fn required_plain_bits(&self, layer: &LinearLayer) -> u32 {
        layer.required_plain_bits(self.weight_bits, self.activation_bits)
    }

    /// The worst (widest) requirement across a set of layers — what a
    /// single global parameter set (the Gazelle baseline) must provision.
    pub fn required_plain_bits_network(&self, layers: &[LinearLayer]) -> u32 {
        layers
            .iter()
            .map(|l| self.required_plain_bits(l))
            .max()
            .unwrap_or(self.weight_bits + self.activation_bits + 1)
    }

    /// Statistically profiled plaintext-modulus requirement: real (and our
    /// randomly drawn) weights make the dot product concentrate around
    /// `√(dot_len)·w·a` rather than the worst case `dot_len·w·a`. This is
    /// the "profiling the application" sizing of §III-B that the paper's
    /// systems rely on; 3 extra bits cover sign and tail.
    pub fn statistical_plain_bits(&self, layer: &LinearLayer) -> u32 {
        let dot = layer.dot_length() as f64;
        let spread = dot.sqrt().log2().ceil() as u32;
        self.weight_bits + self.activation_bits + spread + 3
    }

    /// Network-wide statistical requirement (max over layers).
    pub fn statistical_plain_bits_network(&self, layers: &[LinearLayer]) -> u32 {
        layers
            .iter()
            .map(|l| self.statistical_plain_bits(l))
            .max()
            .unwrap_or(self.weight_bits + self.activation_bits + 3)
    }

    /// Largest weight magnitude representable.
    pub fn weight_bound(&self) -> i64 {
        (1i64 << self.weight_bits) - 1
    }

    /// Largest activation magnitude representable.
    pub fn activation_bound(&self) -> i64 {
        (1i64 << self.activation_bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_nn::models;

    #[test]
    fn resnet50_precision_requirement_is_plausible() {
        let q = QuantSpec::default();
        let layers = models::resnet50().linear_layers();
        let bits = q.required_plain_bits_network(&layers);
        // 5 + 5 + ceil(log2(4608)) + 1 = 24
        assert_eq!(bits, 24);
    }

    #[test]
    fn per_layer_requirements_vary() {
        let q = QuantSpec::default();
        let layers = models::resnet50().linear_layers();
        let reqs: Vec<u32> = layers.iter().map(|l| q.required_plain_bits(l)).collect();
        let min = *reqs.iter().min().unwrap();
        let max = *reqs.iter().max().unwrap();
        assert!(
            max > min + 3,
            "per-layer spread ({min}..{max}) is what makes per-layer tuning pay"
        );
    }

    #[test]
    fn bounds_match_bits() {
        let q = QuantSpec {
            weight_bits: 4,
            activation_bits: 3,
        };
        assert_eq!(q.weight_bound(), 15);
        assert_eq!(q.activation_bound(), 7);
    }
}
