//! Weight-structure analysis: the sparsity subsystem.
//!
//! Pruned networks are mostly zeros, and the BSGS planner of
//! [`crate::linear`] prices every diagonal as live. This module scans a
//! layer's weights at preparation time and classifies each FC generalized
//! diagonal / conv filter tap as **zero**, **power-of-two**, or **dense**
//! ([`MaskClass`]); a [`SparseBsgsPlan`] then covers only the live
//! diagonals — baby and giant steps whose every diagonal is zero are
//! skipped entirely, so rotations, hoisted replays, plaintext multiplies,
//! Galois-key generation, noise transitions, and cost-model pricing all
//! shrink with the measured sparsity.
//!
//! The power-of-two class feeds the shift-add weight path: when every live
//! weight of a layer is `±2^k`, the shared factor `2^m` (the smallest
//! exponent) is pulled out of the masks and re-applied with one doubling
//! chain scalar multiply (`cheetah_bfv`'s pow2 `mul_plain` fast path),
//! keeping mask norms — and the noise bound — `m` bits lower through the
//! accumulation.
//!
//! Classification is exact (a diagonal is zero iff every entry is zero),
//! so sparse evaluation is *bit-identical* to the dense plan: the skipped
//! terms are zero polynomials. Per-entry random sparsity almost never
//! zeroes a whole length-`n_i` diagonal; the structured pruning helper
//! `cheetah_nn`'s `Weights::prune_to_sparsity` zeroes whole diagonals /
//! taps, which is also what magnitude-pruned real networks converge to
//! under diagonal packing.

use crate::cost::HeCostParams;
use cheetah_nn::{ConvSpec, FcSpec, LinearLayer, Tensor};

/// `Some(e)` iff `v == ±2^e` (so `±1` is `Some(0)`).
pub fn pow2_exponent(v: i64) -> Option<u32> {
    let m = v.unsigned_abs();
    if m != 0 && m.is_power_of_two() {
        Some(m.trailing_zeros())
    } else {
        None
    }
}

/// Structure class of one prepared mask (an FC generalized diagonal or a
/// conv tap's per-channel weight column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskClass {
    /// Every entry is zero: the mask, its rotation, and its multiply are
    /// all skippable.
    Zero,
    /// Every nonzero entry is `±2^k`; `min_exp` is the smallest exponent
    /// over the mask (the factor a shift-add scale can pull out).
    Pow2 {
        /// Smallest exponent among the nonzero entries.
        min_exp: u32,
    },
    /// At least one entry is neither zero nor a signed power of two.
    Dense,
}

impl MaskClass {
    /// Classifies a stream of weight values.
    pub fn classify(values: impl IntoIterator<Item = i64>) -> MaskClass {
        let mut any = false;
        let mut all_pow2 = true;
        let mut min_exp = u32::MAX;
        for v in values {
            if v == 0 {
                continue;
            }
            any = true;
            match pow2_exponent(v) {
                Some(e) => min_exp = min_exp.min(e),
                None => all_pow2 = false,
            }
        }
        if !any {
            MaskClass::Zero
        } else if all_pow2 {
            MaskClass::Pow2 { min_exp }
        } else {
            MaskClass::Dense
        }
    }

    /// Whether the mask is all-zero.
    pub fn is_zero(self) -> bool {
        self == MaskClass::Zero
    }

    /// Whether the mask has any nonzero entry.
    pub fn is_live(self) -> bool {
        !self.is_zero()
    }
}

/// Per-diagonal structure of an FC weight matrix `W (n_o × n_i)`, under
/// the diagonal-method layout `diag_k[j] = W[j mod n_o][(j + k) mod n_i]`.
#[derive(Debug, Clone)]
pub struct FcStructure {
    ni: usize,
    no: usize,
    classes: Vec<MaskClass>,
}

impl FcStructure {
    /// Scans row-major weights (shape `(no, ni)`) into per-diagonal
    /// classes. `w.len()` must be `no·ni`.
    pub fn analyze(w: &[i64], no: usize, ni: usize) -> Self {
        assert_eq!(w.len(), no * ni, "weight length mismatch");
        assert!(no >= 1 && ni >= 1, "degenerate FC shape");
        let classes = (0..ni)
            .map(|k| MaskClass::classify((0..ni).map(|off| w[(off % no) * ni + (off + k) % ni])))
            .collect();
        Self { ni, no, classes }
    }

    /// [`FcStructure::analyze`] from a `(no, ni)` weight tensor.
    pub fn analyze_tensor(weights: &Tensor, spec: &FcSpec) -> Self {
        assert_eq!(
            weights.shape(),
            &[spec.no, spec.ni],
            "weight shape mismatch"
        );
        Self::analyze(weights.data(), spec.no, spec.ni)
    }

    /// Input width (= diagonal count).
    pub fn ni(&self) -> usize {
        self.ni
    }

    /// Output width.
    pub fn no(&self) -> usize {
        self.no
    }

    /// Per-diagonal classes, indexed by diagonal `k`.
    pub fn classes(&self) -> &[MaskClass] {
        &self.classes
    }

    /// Whether diagonal `k` has any nonzero entry.
    pub fn is_live(&self, k: usize) -> bool {
        self.classes[k].is_live()
    }

    /// Number of live diagonals.
    pub fn live_diagonals(&self) -> usize {
        self.classes.iter().filter(|c| c.is_live()).count()
    }

    /// Whether the whole layer is zero.
    pub fn all_zero(&self) -> bool {
        self.live_diagonals() == 0
    }

    /// Whether every diagonal is live (the dense fast case: the classic
    /// [`crate::linear::BsgsPlan`] path is optimal and is kept verbatim).
    pub fn fully_live(&self) -> bool {
        self.live_diagonals() == self.ni
    }

    /// Live fraction in `[0, 1]`.
    pub fn live_fraction(&self) -> f64 {
        self.live_diagonals() as f64 / self.ni as f64
    }

    /// The shared power-of-two factor `m ≥ 1` (as `log2`) that can be
    /// pulled out of every nonzero weight, or `None` when any diagonal is
    /// dense or the smallest exponent is 0 (nothing to factor).
    pub fn pow2_scale_log2(&self) -> Option<u32> {
        let mut min: Option<u32> = None;
        for c in &self.classes {
            match c {
                MaskClass::Zero => {}
                MaskClass::Pow2 { min_exp } => {
                    min = Some(min.map_or(*min_exp, |m| m.min(*min_exp)));
                }
                MaskClass::Dense => return None,
            }
        }
        min.filter(|&m| m >= 1)
    }
}

/// A sparsity-aware Baby-Step-Giant-Step plan: the dense `b × g` grid of
/// [`crate::linear::BsgsPlan`], minus every baby step and giant group
/// whose diagonals are all zero.
///
/// Invariants: `baby_steps` holds the rotations `v ∈ 1..b` that some live
/// group actually multiplies (step 0 reads the unrotated input and is
/// never listed); `live_groups` holds the groups `u` with at least one
/// live diagonal `k = u·b + v`. An all-zero layer yields empty sets — no
/// rotations, no multiplies, a transparent-zero output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBsgsPlan {
    /// Baby steps per group (grid width).
    pub b: usize,
    /// Giant-step groups (grid height, `⌈n_i / b⌉`).
    pub g: usize,
    baby_steps: Vec<usize>,
    live_groups: Vec<usize>,
}

impl SparseBsgsPlan {
    /// Builds the plan for a fixed baby width `b ≥ 1` over the structure.
    pub fn for_structure(s: &FcStructure, b: usize) -> Self {
        assert!(b >= 1, "degenerate baby width");
        let g = s.ni().div_ceil(b);
        let mut baby_used = vec![false; b];
        let mut live_groups = Vec::new();
        for u in 0..g {
            let shift = u * b;
            let width = b.min(s.ni() - shift);
            let mut any = false;
            for (v, used) in baby_used.iter_mut().enumerate().take(width) {
                if s.is_live(shift + v) {
                    any = true;
                    *used = true;
                }
            }
            if any {
                live_groups.push(u);
            }
        }
        let baby_steps = (1..b).filter(|&v| baby_used[v]).collect();
        Self {
            b,
            g,
            baby_steps,
            live_groups,
        }
    }

    /// Picks the cheapest baby width under `cost`, mirroring
    /// [`crate::linear::BsgsPlan::choose`]'s sweep (baseline `b = 1`,
    /// strict improvement only) but pricing only the *live* rotations: a
    /// fully-live structure selects exactly the dense plan, and every
    /// zeroed diagonal can only shrink the bill.
    pub fn choose(s: &FcStructure, cost: &HeCostParams) -> SparseBsgsPlan {
        let d = s.ni();
        let mut best = Self::for_structure(s, 1);
        let mut best_cost = best.rotation_mults(cost);
        for b in 2..=d {
            let cand = Self::for_structure(s, b);
            let c = cand.rotation_mults(cost);
            if c < best_cost {
                best_cost = c;
                best = cand;
            }
        }
        best
    }

    /// Baby rotation steps (`v > 0`) some live group multiplies.
    pub fn baby_steps(&self) -> &[usize] {
        &self.baby_steps
    }

    /// Giant groups with at least one live diagonal.
    pub fn live_groups(&self) -> &[usize] {
        &self.live_groups
    }

    /// Whether the plan covers nothing (all-zero layer).
    pub fn is_empty(&self) -> bool {
        self.live_groups.is_empty()
    }

    /// Direct giant rotations performed: live groups other than group 0
    /// (whose inner sum is accumulated unrotated).
    pub fn giant_rotations(&self) -> usize {
        self.live_groups.iter().filter(|&&u| u > 0).count()
    }

    /// Total rotations: hoisted baby replays plus direct giant steps.
    pub fn rotations(&self) -> usize {
        self.baby_steps.len() + self.giant_rotations()
    }

    /// The exact rotation steps evaluation performs — generate Galois
    /// keys for these and nothing more.
    pub fn rotation_steps(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = self.baby_steps.iter().map(|&v| v as i64).collect();
        steps.extend(
            self.live_groups
                .iter()
                .filter(|&&u| u > 0)
                .map(|&u| (u * self.b) as i64),
        );
        steps
    }

    /// Rotation-side integer multiplications under `cost`: one hoist when
    /// any baby replay runs, one hoisted replay per live baby step, one
    /// direct rotation per live giant group past the first. The sparse
    /// counterpart of [`HeCostParams::bsgs_rotation_mults`].
    pub fn rotation_mults(&self, cost: &HeCostParams) -> u64 {
        let hoist = if self.baby_steps.is_empty() {
            0
        } else {
            cost.hoist_mults()
        };
        hoist
            + self.baby_steps.len() as u64 * cost.he_rotate_hoisted_mults()
            + self.giant_rotations() as u64 * cost.he_rotate_mults()
    }
}

/// Per-mask structure of a conv weight tensor `(co, ci, fw, fw)` under the
/// packed layout of [`crate::linear::HomConv2d`]: one mask per
/// `(output channel o, tap)`, classified over its `ci` channel weights,
/// plus per-`(o, c)` input-channel liveness for the channel reduction.
#[derive(Debug, Clone)]
pub struct ConvStructure {
    co: usize,
    ci: usize,
    taps: usize,
    /// `classes[o·taps + tap]`.
    classes: Vec<MaskClass>,
    /// `channel_live[o·ci + c]`: channel `c` carries weight into output `o`.
    channel_live: Vec<bool>,
}

impl ConvStructure {
    /// Scans `(co, ci, fw, fw)` row-major weights.
    pub fn analyze(w: &[i64], co: usize, ci: usize, fw: usize) -> Self {
        let taps = fw * fw;
        assert_eq!(w.len(), co * ci * taps, "weight length mismatch");
        let mut classes = Vec::with_capacity(co * taps);
        let mut channel_live = vec![false; co * ci];
        for o in 0..co {
            for tap in 0..taps {
                classes.push(MaskClass::classify(
                    (0..ci).map(|c| w[(o * ci + c) * taps + tap]),
                ));
            }
            for c in 0..ci {
                channel_live[o * ci + c] = (0..taps).any(|tap| w[(o * ci + c) * taps + tap] != 0);
            }
        }
        Self {
            co,
            ci,
            taps,
            classes,
            channel_live,
        }
    }

    /// [`ConvStructure::analyze`] from a `(co, ci, fw, fw)` weight tensor.
    pub fn analyze_tensor(weights: &Tensor, spec: &ConvSpec) -> Self {
        assert_eq!(
            weights.shape(),
            &[spec.co, spec.ci, spec.fw, spec.fw],
            "weight shape mismatch"
        );
        Self::analyze(weights.data(), spec.co, spec.ci, spec.fw)
    }

    /// Output channels.
    pub fn co(&self) -> usize {
        self.co
    }

    /// Input channels.
    pub fn ci(&self) -> usize {
        self.ci
    }

    /// Taps per filter (`fw²`).
    pub fn taps(&self) -> usize {
        self.taps
    }

    /// Class of mask `(o, tap)`.
    pub fn mask_class(&self, o: usize, tap: usize) -> MaskClass {
        self.classes[o * self.taps + tap]
    }

    /// Whether mask `(o, tap)` has any weight.
    pub fn mask_live(&self, o: usize, tap: usize) -> bool {
        self.mask_class(o, tap).is_live()
    }

    /// Whether tap `tap` is live for *any* output channel (a dead tap's
    /// input rotation is skipped layer-wide).
    pub fn tap_live(&self, tap: usize) -> bool {
        (0..self.co).any(|o| self.mask_live(o, tap))
    }

    /// Live taps across the layer.
    pub fn live_taps(&self) -> usize {
        (0..self.taps).filter(|&t| self.tap_live(t)).count()
    }

    /// Whether input channel `c` contributes to output `o`.
    pub fn channel_live(&self, o: usize, c: usize) -> bool {
        self.channel_live[o * self.ci + c]
    }

    /// Live input channels for output `o`.
    pub fn live_channels(&self, o: usize) -> usize {
        (0..self.ci).filter(|&c| self.channel_live(o, c)).count()
    }

    /// Whether output channel `o` receives any weight at all.
    pub fn output_live(&self, o: usize) -> bool {
        self.live_channels(o) > 0
    }

    /// Whether the whole layer is zero.
    pub fn all_zero(&self) -> bool {
        self.classes.iter().all(|c| c.is_zero())
    }

    /// Whether every `(o, tap)` mask is live (dense layer).
    pub fn fully_live(&self) -> bool {
        self.classes.iter().all(|c| c.is_live())
    }

    /// Live fraction of `(o, tap)` masks in `[0, 1]`.
    pub fn live_fraction(&self) -> f64 {
        self.classes.iter().filter(|c| c.is_live()).count() as f64 / self.classes.len() as f64
    }
}

/// Analyzed structure of one linear layer — what the solver prices a chain
/// under instead of assuming every mask is live.
#[derive(Debug, Clone)]
pub enum LayerStructure {
    /// FC diagonal structure.
    Fc(FcStructure),
    /// Conv mask/channel structure.
    Conv(ConvStructure),
}

impl LayerStructure {
    /// Analyzes the weights of `layer` (shape checked against the spec).
    pub fn analyze(layer: &LinearLayer, weights: &Tensor) -> Self {
        match layer {
            LinearLayer::Fc(f) => LayerStructure::Fc(FcStructure::analyze_tensor(weights, f)),
            LinearLayer::Conv(c) => LayerStructure::Conv(ConvStructure::analyze_tensor(weights, c)),
        }
    }

    /// A fully-live structure for `layer` — what pricing without weight
    /// knowledge must assume.
    pub fn dense(layer: &LinearLayer) -> Self {
        match layer {
            LinearLayer::Fc(f) => {
                LayerStructure::Fc(FcStructure::analyze(&vec![1; f.no * f.ni], f.no, f.ni))
            }
            LinearLayer::Conv(c) => LayerStructure::Conv(ConvStructure::analyze(
                &vec![1; c.co * c.ci * c.fw * c.fw],
                c.co,
                c.ci,
                c.fw,
            )),
        }
    }

    /// Live fraction of the layer's masks in `[0, 1]`.
    pub fn live_fraction(&self) -> f64 {
        match self {
            LayerStructure::Fc(f) => f.live_fraction(),
            LayerStructure::Conv(c) => c.live_fraction(),
        }
    }

    /// Whether the whole layer is zero.
    pub fn all_zero(&self) -> bool {
        match self {
            LayerStructure::Fc(f) => f.all_zero(),
            LayerStructure::Conv(c) => c.all_zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::BsgsPlan;

    fn cost(l_ct: usize, limbs: usize) -> HeCostParams {
        HeCostParams {
            n: 4096,
            l_pt: 1,
            l_ct,
            limbs,
            hybrid: false,
        }
    }

    /// Weights with exactly the given diagonals zeroed.
    fn fc_weights_with_dead(no: usize, ni: usize, dead: &[usize]) -> Vec<i64> {
        let mut w = vec![0i64; no * ni];
        for k in 0..ni {
            if dead.contains(&k) {
                continue;
            }
            for off in 0..ni {
                w[(off % no) * ni + (off + k) % ni] = 3;
            }
        }
        w
    }

    #[test]
    fn mask_classes() {
        assert_eq!(MaskClass::classify([0, 0, 0]), MaskClass::Zero);
        assert_eq!(
            MaskClass::classify([4, -2, 0, 16]),
            MaskClass::Pow2 { min_exp: 1 }
        );
        assert_eq!(MaskClass::classify([1, -1]), MaskClass::Pow2 { min_exp: 0 });
        assert_eq!(MaskClass::classify([4, 3]), MaskClass::Dense);
        assert!(pow2_exponent(-8) == Some(3) && pow2_exponent(6).is_none());
        assert!(pow2_exponent(0).is_none());
    }

    #[test]
    fn fc_structure_counts_live_diagonals() {
        // Square shape: in a rectangular FC with no | ni, diagonals k and
        // k + no read the same matrix cells, so they live or die together;
        // a square matrix keeps every diagonal independent.
        let ni = 16;
        let w = fc_weights_with_dead(ni, ni, &[0, 3, 7, 9]);
        let s = FcStructure::analyze(&w, ni, ni);
        assert_eq!(s.live_diagonals(), ni - 4);
        assert!(!s.is_live(3) && s.is_live(4));
        assert!(!s.all_zero() && !s.fully_live());
        assert!((s.live_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fully_live_structure_chooses_the_dense_plan() {
        // The sparse chooser must collapse to BsgsPlan::choose on dense
        // weights: same sweep, same pricing, same split.
        for (d, c) in [(16usize, cost(10, 1)), (64, cost(6, 3)), (32, cost(4, 2))] {
            let w = fc_weights_with_dead(d, d, &[]);
            let s = FcStructure::analyze(&w, d, d);
            let sparse = SparseBsgsPlan::choose(&s, &c);
            let dense = BsgsPlan::choose(d, &c).expect("nontrivial d splits");
            assert_eq!((sparse.b, sparse.g), (dense.b, dense.g));
            assert_eq!(sparse.rotations(), dense.rotations());
            assert_eq!(
                sparse.rotation_mults(&c),
                c.bsgs_rotation_mults(dense.b, dense.g)
            );
        }
    }

    #[test]
    fn sparse_plan_skips_dead_steps_and_prices_lower() {
        let ni = 32;
        let c = cost(10, 1);
        let dense_w = fc_weights_with_dead(ni, ni, &[]);
        let dense = SparseBsgsPlan::choose(&FcStructure::analyze(&dense_w, ni, ni), &c);
        // Kill 90% of the diagonals (keep 3 of 32).
        let dead: Vec<usize> = (0..ni).filter(|k| ![0, 11, 21].contains(k)).collect();
        let s = FcStructure::analyze(&fc_weights_with_dead(ni, ni, &dead), ni, ni);
        assert_eq!(s.live_diagonals(), 3);
        let sparse = SparseBsgsPlan::choose(&s, &c);
        assert!(sparse.rotations() < dense.rotations());
        assert!(sparse.rotation_mults(&c) < dense.rotation_mults(&c));
        // Every step the plan reports maps to a live diagonal.
        for &u in sparse.live_groups() {
            let shift = u * sparse.b;
            assert!((0..sparse.b).any(|v| shift + v < ni && s.is_live(shift + v)));
        }
    }

    #[test]
    fn all_zero_layer_has_an_empty_plan() {
        let ni = 16;
        let dead: Vec<usize> = (0..ni).collect();
        let s = FcStructure::analyze(&fc_weights_with_dead(4, ni, &dead), 4, ni);
        assert!(s.all_zero());
        let plan = SparseBsgsPlan::choose(&s, &cost(10, 1));
        assert!(plan.is_empty());
        assert_eq!(plan.rotations(), 0);
        assert!(plan.rotation_steps().is_empty());
        assert_eq!(plan.rotation_mults(&cost(10, 1)), 0);
    }

    #[test]
    fn single_diagonal_plan_is_one_rotation_at_most() {
        let ni = 16;
        for live in [0usize, 1, 9] {
            let dead: Vec<usize> = (0..ni).filter(|&k| k != live).collect();
            let s = FcStructure::analyze(&fc_weights_with_dead(ni, ni, &dead), ni, ni);
            assert_eq!(s.live_diagonals(), 1);
            let plan = SparseBsgsPlan::choose(&s, &cost(10, 1));
            assert!(plan.rotations() <= 1, "live={live}: {plan:?}");
            if live == 0 {
                assert_eq!(plan.rotations(), 0, "diagonal 0 needs no rotation");
            }
        }
    }

    #[test]
    fn pow2_scale_factors_out_of_pow2_layers() {
        let ni = 8;
        let mut w = vec![0i64; ni * ni];
        for k in 0..ni {
            for off in 0..ni {
                w[(off % ni) * ni + (off + k) % ni] = if k % 2 == 0 { 4 } else { -8 };
            }
        }
        let s = FcStructure::analyze(&w, ni, ni);
        assert_eq!(s.pow2_scale_log2(), Some(2));
        // A ±1 weight pins the shared exponent to 0: nothing to factor.
        w[0] = 1;
        assert_eq!(FcStructure::analyze(&w, ni, ni).pow2_scale_log2(), None);
        // A dense weight kills the factoring outright.
        w[0] = 3;
        assert_eq!(FcStructure::analyze(&w, ni, ni).pow2_scale_log2(), None);
    }

    #[test]
    fn conv_structure_tracks_taps_and_channels() {
        let (co, ci, fw) = (2usize, 4usize, 3usize);
        let taps = fw * fw;
        let mut w = vec![0i64; co * ci * taps];
        // Output 0: channels 0 and 2 live, tap 4 (center) only.
        w[4] = 2;
        w[2 * taps + 4] = -4;
        // Output 1: channel 1, taps 0 and 4.
        w[(ci + 1) * taps] = 3;
        w[(ci + 1) * taps + 4] = 1;
        let s = ConvStructure::analyze(&w, co, ci, fw);
        assert!(s.mask_live(0, 4) && !s.mask_live(0, 0) && s.mask_live(1, 0));
        assert!(s.tap_live(4) && s.tap_live(0) && !s.tap_live(1));
        assert_eq!(s.live_taps(), 2);
        assert_eq!(s.live_channels(0), 2);
        assert_eq!(s.live_channels(1), 1);
        assert!(s.channel_live(0, 2) && !s.channel_live(0, 1));
        assert!(s.output_live(0) && s.output_live(1));
        assert!(!s.all_zero() && !s.fully_live());
        assert_eq!(
            s.mask_class(0, 4),
            MaskClass::Pow2 { min_exp: 1 },
            "2 and -4 are both pow2"
        );
        assert_eq!(s.mask_class(1, 0), MaskClass::Dense);
    }

    #[test]
    fn layer_structure_dispatch() {
        let fc = LinearLayer::Fc(FcSpec {
            name: "fc".into(),
            ni: 8,
            no: 4,
        });
        let w = Tensor::from_data(&[4, 8], vec![0; 32]);
        let s = LayerStructure::analyze(&fc, &w);
        assert!(s.all_zero());
        assert_eq!(s.live_fraction(), 0.0);
        let d = LayerStructure::dense(&fc);
        assert!(!d.all_zero());
        assert_eq!(d.live_fraction(), 1.0);
    }
}
