//! Chunked fork/join helper for the thread-parallel linear layers.
//!
//! Both [`super::HomConv2d`] and [`super::HomFc`] are rotate-mul-accumulate
//! loops whose iterations (one per rotation step) are independent until the
//! final accumulation. [`map_chunks`] splits the step range into contiguous
//! chunks, runs one worker per chunk via `crossbeam::scope`, and returns
//! the per-chunk results **in chunk order**, so the caller's merge is
//! deterministic: residue arithmetic mod `q` is exact and order-independent,
//! and the (float) noise-estimate fold always happens in the same order for
//! a given thread count.
//!
//! Each worker owns a private [`cheetah_bfv::Scratch`], so the steady-state
//! loop bodies run with zero heap allocation and zero lock contention.

use cheetah_bfv::{Ciphertext, Evaluator, Result};
use std::ops::Range;

/// Number of worker threads the linear layers use by default: the
/// machine's available parallelism (1 on a single-core host, which makes
/// the default path identical to the serial one).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..count` into up to `threads` contiguous chunks, runs `work`
/// on each chunk (in parallel when `threads > 1`), and returns the chunk
/// results in chunk order.
///
/// # Errors
///
/// Propagates the first failing chunk's error (in chunk order).
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn map_chunks<T, F>(count: usize, threads: usize, work: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> Result<T> + Sync,
{
    if count == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.clamp(1, count);
    let chunk = count.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..count)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(count))
        .collect();
    if threads == 1 {
        return ranges.into_iter().map(work).collect();
    }
    let mut slots: Vec<Option<Result<T>>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    crossbeam::scope(|scope| {
        for (slot, range) in slots.iter_mut().zip(ranges) {
            let work = &work;
            scope.spawn(move |_| *slot = Some(work(range)));
        }
    })
    .expect("worker thread panicked");
    slots
        .into_iter()
        .map(|slot| slot.expect("worker completed"))
        .collect()
}

/// Folds per-chunk partial accumulators into one ciphertext, in chunk
/// order (deterministic for a fixed thread count).
///
/// # Errors
///
/// Propagates evaluator errors.
///
/// # Panics
///
/// Panics on an empty partial list (chunking never produces one for a
/// non-empty step range).
pub fn merge_partials(partials: Vec<Ciphertext>, eval: &Evaluator) -> Result<Ciphertext> {
    let mut iter = partials.into_iter();
    let mut acc = iter.next().expect("at least one partial accumulator");
    for p in iter {
        eval.add_assign(&mut acc, &p)?;
    }
    Ok(acc)
}

/// Column-wise [`merge_partials`]: folds `partials[chunk][slot]` into one
/// accumulator per slot (used by conv layers, one slot per output
/// channel), in chunk order.
///
/// # Errors
///
/// Propagates evaluator errors.
///
/// # Panics
///
/// Panics if chunks disagree on the slot count or no chunks exist.
pub fn merge_partial_vecs(
    partials: Vec<Vec<Ciphertext>>,
    eval: &Evaluator,
) -> Result<Vec<Ciphertext>> {
    let mut iter = partials.into_iter();
    let mut accs = iter.next().expect("at least one partial chunk");
    for chunk in iter {
        assert_eq!(chunk.len(), accs.len(), "ragged partial chunk");
        for (acc, p) in accs.iter_mut().zip(&chunk) {
            eval.add_assign(acc, p)?;
        }
    }
    Ok(accs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_results_arrive_in_order() {
        for threads in [1, 2, 3, 8] {
            let out = map_chunks(10, threads, |r| Ok(r.collect::<Vec<_>>())).unwrap();
            let flat: Vec<usize> = out.into_iter().flatten().collect();
            assert_eq!(flat, (0..10).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_range_yields_nothing() {
        let out: Vec<Vec<usize>> = map_chunks(0, 4, |r| Ok(r.collect())).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn errors_propagate() {
        let r = map_chunks(8, 4, |range| {
            if range.contains(&5) {
                Err(cheetah_bfv::Error::ParameterMismatch)
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
    }
}
