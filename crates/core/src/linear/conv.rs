//! Homomorphic 2-D convolution with packed channels — Fig. 4 of the paper,
//! on the real BFV engine, under either schedule.
//!
//! Packing: the `c_i` input channels are laid out sequentially in row
//! slots, channel `c` occupying slots `[c·w², (c+1)·w²)` in row-major
//! spatial order. For each filter tap `(dy, dx)` a single rotation by
//! `dy·w + dx` aligns every contributing pixel with its output slot; zeros
//! in the weight plaintexts mask the positions where the rotation wrapped
//! across an image or channel boundary (the "selectively adding zeros"
//! of §V-B). A final rotate-and-add pass reduces across input channels.
//!
//! The implementation computes one output-channel ciphertext at a time
//! (output image in slots `[0, w²)` of each). This keeps the slot
//! bookkeeping auditable; the *cost* of the fully packed layout is what the
//! analytical Table IV model captures, and the two are reconciled (within a
//! small factor) by tests.
//!
//! Constraints: stride 1, odd filter with 'same' padding, and
//! `c_i·w² ≤ n/2` (all input channels in one ciphertext row).

use cheetah_bfv::{
    BatchEncoder, Ciphertext, Error, Evaluator, GaloisKeys, HoistedDecomposition, Plaintext,
    PreparedPlaintext, Result, Scratch,
};
use cheetah_nn::{ConvSpec, Tensor};

use crate::cost::HeCostParams;
use crate::linear::parallel::{default_threads, map_chunks, merge_partial_vecs};
use crate::linear::{rotate_sum_noise, rotate_sum_reduce, ReducePlan};
use crate::schedule::Schedule;
use crate::sparse::ConvStructure;

/// How one output channel's cross-channel reduction runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelReduce {
    /// Classic rotate-and-sum over all `ci` blocks under the layer's
    /// shared [`ReducePlan`].
    Dense,
    /// Flat hoisted sum over the listed *live* channel blocks only (dead
    /// blocks are zero polynomials — the masks never wrote them). Chosen
    /// when the live set is small enough that one hoist plus a replay per
    /// live block beats the dense plan.
    SparseLive(Vec<usize>),
    /// No live channels: the output is a transparent zero and the whole
    /// tap/reduce pipeline is skipped.
    Zero,
}

/// A prepared homomorphic convolution layer.
#[derive(Debug)]
pub struct HomConv2d {
    spec: ConvSpec,
    schedule: Schedule,
    /// `masks[o][tap]`: prepared weight plaintexts per output channel/tap.
    masks: Vec<Vec<PreparedPlaintext>>,
    /// Per-tap rotation offsets `dy·w + dx`.
    offsets: Vec<i64>,
    /// How the cross-channel rotate-and-sum reduction runs, chosen from
    /// the parameter set's hoisted/direct rotation pricing: the doubling
    /// ladder is a dependent chain (one full rotation per level), the
    /// BSGS reshape turns it into two hoistable replay sets.
    reduce_plan: ReducePlan,
    /// Weight structure: which `(o, tap)` masks and `(o, c)` channels
    /// carry any weight. Dead taps are never rotated, dead masks never
    /// multiplied, dead channel blocks never summed.
    structure: ConvStructure,
    /// Per-output-channel reduction choice (indexed by `o`).
    reduces: Vec<ChannelReduce>,
}

impl HomConv2d {
    /// Prepares the layer: validates the spec, builds and NTT-transforms
    /// every weight mask.
    ///
    /// `weights` has shape `(co, ci, fw, fw)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `c_i·w²` exceeds the row
    /// capacity, and propagates encoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the spec has stride ≠ 1, even filter width, or padding
    /// ≠ `f_w/2`, or if the weight tensor shape mismatches the spec.
    pub fn new(
        spec: &ConvSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
    ) -> Result<Self> {
        Self::new_at_level(spec, weights, encoder, eval, schedule, 0)
    }

    /// [`HomConv2d::new`] with the level the layer is planned to run at:
    /// the reduce plan is priced over the limbs live there, so a deep
    /// chain position can pick a different rotate-and-sum shape than
    /// level 0.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `c_i·w²` exceeds the row
    /// capacity, and propagates encoding errors.
    ///
    /// # Panics
    ///
    /// Panics on the [`HomConv2d::new`] conditions.
    pub fn new_at_level(
        spec: &ConvSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
        level: usize,
    ) -> Result<Self> {
        assert_eq!(spec.stride, 1, "HomConv2d supports stride 1");
        assert_eq!(spec.fw % 2, 1, "filter width must be odd");
        assert_eq!(
            spec.pad,
            spec.fw / 2,
            "HomConv2d computes 'same' convolutions"
        );
        assert_eq!(
            weights.shape(),
            &[spec.co, spec.ci, spec.fw, spec.fw],
            "weight tensor shape mismatch"
        );
        let w2 = spec.w * spec.w;
        if spec.ci * w2 > encoder.row_size() {
            return Err(Error::TooManyValues {
                given: spec.ci * w2,
                slots: encoder.row_size(),
            });
        }
        let r = (spec.fw / 2) as i64;
        let w = spec.w as i64;
        let mut offsets = Vec::with_capacity(spec.fw * spec.fw);
        for dy in -r..=r {
            for dx in -r..=r {
                offsets.push(dy * w + dx);
            }
        }
        let mut masks = Vec::with_capacity(spec.co);
        for o in 0..spec.co {
            let mut per_tap = Vec::with_capacity(offsets.len());
            for (tap, _) in offsets.iter().enumerate() {
                let dy = tap as i64 / spec.fw as i64 - r;
                let dx = tap as i64 % spec.fw as i64 - r;
                let mask = build_mask(spec, weights, o, dy, dx, schedule, encoder.slots());
                let pt = encoder.encode_signed(&mask)?;
                per_tap.push(eval.prepare_plaintext(&pt)?);
            }
            masks.push(per_tap);
        }
        let cost = HeCostParams::for_bfv(eval.params(), level);
        let reduce_plan = ReducePlan::choose(spec.ci, &cost);
        let structure = ConvStructure::analyze_tensor(weights, spec);
        // Per output channel: dense reduce when every channel is live,
        // transparent zero when none is, and otherwise whichever of the
        // dense plan / flat hoisted live-block sum the cost model prices
        // cheaper.
        let dense_mults = cost.reduce_plan_mults(reduce_plan, spec.ci);
        let reduces = (0..spec.co)
            .map(|o| {
                let live: Vec<usize> = (0..spec.ci)
                    .filter(|&c| structure.channel_live(o, c))
                    .collect();
                if live.is_empty() {
                    ChannelReduce::Zero
                } else if live.len() == spec.ci {
                    ChannelReduce::Dense
                } else {
                    let rotations = live.iter().filter(|&&c| c > 0).count();
                    if cost.sparse_reduce_mults(rotations) < dense_mults {
                        ChannelReduce::SparseLive(live)
                    } else {
                        ChannelReduce::Dense
                    }
                }
            })
            .collect();
        Ok(Self {
            spec: spec.clone(),
            schedule,
            masks,
            offsets,
            reduce_plan,
            structure,
            reduces,
        })
    }

    /// The channel-reduction plan in use.
    pub fn reduce_plan(&self) -> ReducePlan {
        self.reduce_plan
    }

    /// The analyzed weight structure.
    pub fn structure(&self) -> &ConvStructure {
        &self.structure
    }

    /// Per-output-channel reduction choices (indexed by `o`).
    pub fn channel_reduces(&self) -> &[ChannelReduce] {
        &self.reduces
    }

    /// The layer spec.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// The schedule in use.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Conservative Table-III prediction of the layer's output noise when
    /// evaluated at `level` on an input with the given estimate: every tap
    /// is charged the worst mask norm and (for IA) a rotation, then the
    /// channel reduction's rotate-and-add terms are added. Upper-bounds
    /// the estimate the engine tracks through [`HomConv2d::apply`], so a
    /// positive predicted budget at a level means the layer can safely run
    /// there — the planning query behind leveled sessions.
    pub fn noise_after(
        &self,
        input: &cheetah_bfv::NoiseEstimate,
        params: &cheetah_bfv::BfvParams,
        level: usize,
    ) -> cheetah_bfv::NoiseEstimate {
        if self.structure.all_zero() {
            return cheetah_bfv::NoiseEstimate::zero();
        }
        let max_norm = self
            .masks
            .iter()
            .flatten()
            .map(PreparedPlaintext::inf_norm)
            .max()
            .unwrap_or(1)
            .max(1);
        // Only live taps accumulate a schedule-ordered rotate-mul term;
        // dead ones are skipped outright.
        let acc = crate::linear::accumulated_term_noise(
            input,
            params,
            level,
            self.schedule,
            max_norm,
            self.structure.live_taps().max(1),
        );
        // Channel reduction: each output runs its own shape — the worst
        // one bounds the layer. A flat live-block sum prices like a
        // one-stage BSGS replay set (`g = 1` conservatively charges the
        // unused giant rotation).
        let mut worst = cheetah_bfv::NoiseEstimate::zero();
        for reduce in &self.reduces {
            let est = match reduce {
                ChannelReduce::Zero => continue,
                ChannelReduce::Dense => {
                    rotate_sum_noise(&acc, params, level, self.spec.ci, self.reduce_plan)
                }
                ChannelReduce::SparseLive(live) => rotate_sum_noise(
                    &acc,
                    params,
                    level,
                    live.len(),
                    ReducePlan::Bsgs {
                        s: live.len(),
                        g: 1,
                    },
                ),
            };
            if est.bound_log2 > worst.bound_log2 {
                worst = est;
            }
        }
        worst
    }

    /// Rotation steps the evaluation needs (generate Galois keys for
    /// these): all tap offsets plus the channel-reduction strides.
    pub fn required_steps(spec: &ConvSpec) -> Vec<i64> {
        let r = (spec.fw / 2) as i64;
        let w = spec.w as i64;
        let mut steps = Vec::new();
        for dy in -r..=r {
            for dx in -r..=r {
                let k = dy * w + dx;
                if k != 0 {
                    steps.push(k);
                }
            }
        }
        let w2 = (spec.w * spec.w) as i64;
        for c in 1..spec.ci as i64 {
            steps.push(c * w2);
        }
        steps
    }

    /// The exact rotation steps this prepared layer performs — the sparse
    /// counterpart of the static [`HomConv2d::required_steps`] superset:
    /// live tap offsets plus each output's actual reduction strides.
    /// Generate Galois keys for these and nothing more.
    pub fn rotation_steps(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = self
            .offsets
            .iter()
            .enumerate()
            .filter(|&(tap, &k)| k != 0 && self.structure.tap_live(tap))
            .map(|(_, &k)| k)
            .collect();
        let w2 = (self.spec.w * self.spec.w) as i64;
        for reduce in &self.reduces {
            match reduce {
                ChannelReduce::Zero => {}
                ChannelReduce::Dense => {
                    if self.spec.ci > 1 {
                        steps.extend(self.reduce_plan.steps(self.spec.ci, w2));
                    }
                }
                ChannelReduce::SparseLive(live) => {
                    steps.extend(live.iter().filter(|&&c| c > 0).map(|&c| c as i64 * w2));
                }
            }
        }
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Packs an input tensor `(ci, w, w)` into a plaintext (channels
    /// sequential, row-major).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shape mismatches the spec.
    pub fn encode_input(
        spec: &ConvSpec,
        input: &Tensor,
        encoder: &BatchEncoder,
    ) -> Result<Plaintext> {
        assert_eq!(input.shape(), &[spec.ci, spec.w, spec.w]);
        encoder.encode_signed(input.data())
    }

    /// Applies the convolution: one output ciphertext per output channel,
    /// each holding its `w × w` output image in slots `[0, w²)`.
    ///
    /// Runs the rotation + mul-accumulate loops across
    /// [`default_threads`] worker threads; see
    /// [`HomConv2d::apply_threaded`] for an explicit thread count.
    ///
    /// # Errors
    ///
    /// Propagates BFV evaluation errors (missing Galois keys, parameter
    /// mismatches).
    pub fn apply(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>> {
        self.apply_threaded(input, eval, keys, default_threads())
    }

    /// [`HomConv2d::apply`] with an explicit worker-thread count
    /// (`threads <= 1` runs fully inline). The per-tap work — rotations in
    /// Sched-IA, multiply-then-rotate partials in Sched-PA — is split into
    /// contiguous tap chunks, one scratch-owning worker per chunk, and the
    /// per-chunk partial sums are merged in chunk order. Residues mod `q`
    /// are exact, so the decrypted result is identical for every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates BFV evaluation errors (missing Galois keys, parameter
    /// mismatches).
    pub fn apply_threaded(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Vec<Ciphertext>> {
        // The scratch-reuse hot path copies the input into evaluator-owned
        // buffers, so foreign ciphertexts must be rejected up front.
        eval.params().check_same(input.params())?;
        match self.schedule {
            Schedule::InputAligned => self.apply_input_aligned(input, eval, keys, threads),
            Schedule::PartialAligned => self.apply_partial_aligned(input, eval, keys, threads),
        }
    }

    fn apply_input_aligned(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Vec<Ciphertext>> {
        let co = self.spec.co;
        let level = input.level();
        // Every tap rotates the *same* input ciphertext, so the INTT +
        // digit decomposition is hoisted once for the whole tap set (the
        // read-only result is shared by all workers) and each tap pays
        // only permutations + key-switch multiply-accumulates. A 1×1
        // filter has only the zero-offset tap — and a pruned layer may
        // have no live off-center tap at all — and skips the hoist
        // entirely.
        let needs_hoist = self
            .offsets
            .iter()
            .enumerate()
            .any(|(tap, &k)| k != 0 && self.structure.tap_live(tap));
        let hoisted = match needs_hoist {
            true => Some(eval.hoist(input)?),
            false => None,
        };
        // One fork for the whole layer: each worker owns a tap chunk,
        // rotates the input once per tap (shared across output channels,
        // reusing a single rotation buffer + scratch), and fuse-
        // accumulates straight into its per-channel partial sums — the
        // rotated ciphertexts are never materialized as a batch.
        // Accumulators follow the input's level: a modulus-switched input
        // runs the whole layer over its live limbs only.
        let partials = map_chunks(self.offsets.len(), threads, |range| {
            let mut scratch = eval.new_scratch();
            let mut rot = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut accs = vec![Ciphertext::transparent_zero_at(eval.params(), level); co];
            for (tap, &k) in range.clone().zip(&self.offsets[range]) {
                // A tap dead across every output channel never rotates.
                if !self.structure.tap_live(tap) {
                    continue;
                }
                let src: &Ciphertext = match (&hoisted, k != 0) {
                    (Some(h), true) => {
                        eval.rotate_hoisted_into(&mut rot, input, h, k, keys, &mut scratch)?;
                        &rot
                    }
                    // Zero-offset tap: accumulate straight from the
                    // unrotated input, no copy.
                    _ => input,
                };
                for (o, (acc, per_tap)) in accs.iter_mut().zip(&self.masks).enumerate() {
                    // An all-zero mask multiplies to a zero polynomial —
                    // skipping it is bit-identical.
                    if !self.structure.mask_live(o, tap) {
                        continue;
                    }
                    eval.mul_plain_accumulate(acc, src, &per_tap[tap])?;
                }
            }
            Ok(accs)
        })?;
        let merged = merge_partial_vecs(partials, eval)?;
        self.reduce_all_channels(merged, eval, keys)
    }

    fn apply_partial_aligned(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Vec<Ciphertext>> {
        let co = self.spec.co;
        let level = input.level();
        // One fork for the whole layer; per-worker buffers are reused
        // across every (tap, channel) pair in the chunk, all at the
        // input's level.
        let partials = map_chunks(self.offsets.len(), threads, |range| {
            let mut scratch = eval.new_scratch();
            let mut prod = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut aligned = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut accs = vec![Ciphertext::transparent_zero_at(eval.params(), level); co];
            for (tap, &k) in range.clone().zip(&self.offsets[range]) {
                for (o, (acc, per_tap)) in accs.iter_mut().zip(&self.masks).enumerate() {
                    // A dead (o, tap) mask contributes a zero polynomial —
                    // skip its multiply and rotation outright.
                    if !self.structure.mask_live(o, tap) {
                        continue;
                    }
                    // Multiply the *fresh* input first…
                    prod.copy_from(input);
                    eval.mul_plain_assign(&mut prod, &per_tap[tap])?;
                    // …then rotate the partial into alignment.
                    eval.rotate_rows_into(&mut aligned, &prod, k, keys, &mut scratch)?;
                    eval.add_assign(acc, &aligned)?;
                }
            }
            Ok(accs)
        })?;
        let merged = merge_partial_vecs(partials, eval)?;
        self.reduce_all_channels(merged, eval, keys)
    }

    /// Sums the per-channel partial blocks of every output channel into
    /// block 0, on the scratch path (no allocating `rotate_rows`/`add`
    /// wrappers). One scratch pool, rotation buffer, and hoisted-digit
    /// store serve all `co` reductions, so the whole pass stays
    /// allocation-free after the first channel warms the buffers.
    fn reduce_all_channels(
        &self,
        accs: Vec<Ciphertext>,
        eval: &Evaluator,
        keys: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>> {
        let ci = self.spec.ci;
        let mut scratch = eval.new_scratch();
        let mut rotated = Ciphertext::transparent_zero(eval.params());
        let mut hoisted = HoistedDecomposition::empty(eval.params());
        accs.into_iter()
            .zip(&self.reduces)
            .map(|(acc, reduce)| match reduce {
                // All-zero output: the accumulator never saw a multiply.
                ChannelReduce::Zero => Ok(acc),
                ChannelReduce::Dense => {
                    if ci == 1 {
                        return Ok(acc);
                    }
                    self.reduce_channels(acc, eval, keys, &mut scratch, &mut rotated, &mut hoisted)
                }
                ChannelReduce::SparseLive(live) => {
                    self.reduce_live_channels(acc, live, eval, keys, &mut scratch, &mut rotated)
                }
            })
            .collect()
    }

    /// Flat hoisted reduction over the live channel blocks only: hoist the
    /// accumulator once, replay one rotation per live block past block 0.
    /// Dead blocks are zero polynomials, so the sum landing in block 0 is
    /// bit-identical to the dense reduction's (slots outside block 0 —
    /// garbage in every plan — may differ).
    fn reduce_live_channels(
        &self,
        acc: Ciphertext,
        live: &[usize],
        eval: &Evaluator,
        keys: &GaloisKeys,
        scratch: &mut Scratch,
        rotated: &mut Ciphertext,
    ) -> Result<Ciphertext> {
        let w2 = (self.spec.w * self.spec.w) as i64;
        let rotations: Vec<i64> = live
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| c as i64 * w2)
            .collect();
        if rotations.is_empty() {
            // live ⊆ {0}: block 0 already holds the whole sum.
            return Ok(acc);
        }
        let h = eval.hoist(&acc)?;
        let mut out = Ciphertext::transparent_zero_at(eval.params(), acc.level());
        if live[0] == 0 {
            eval.add_assign(&mut out, &acc)?;
        }
        for &step in &rotations {
            eval.rotate_hoisted_into(rotated, &acc, &h, step, keys, scratch)?;
            eval.add_assign(&mut out, rotated)?;
        }
        Ok(out)
    }

    /// One output channel's reduction, under the layer's [`ReducePlan`]:
    /// the doubling ladder is a dependent chain and reuses the shared
    /// rotation buffer; a BSGS plan rotates the *same* base (then the same
    /// inner sum) repeatedly, so each stage's decomposition is hoisted
    /// once for its whole replay set (into the shared digit store). Every
    /// plan computes the identical sum, so the decrypted channel is the
    /// same whichever is chosen.
    fn reduce_channels(
        &self,
        acc: Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        scratch: &mut Scratch,
        rotated: &mut Ciphertext,
        hoisted: &mut HoistedDecomposition,
    ) -> Result<Ciphertext> {
        let w2 = (self.spec.w * self.spec.w) as i64;
        rotate_sum_reduce(
            acc,
            w2,
            self.spec.ci,
            self.reduce_plan,
            eval,
            keys,
            scratch,
            rotated,
            hoisted,
        )
    }

    /// Extracts the output image of channel `o` from a decrypted/decoded
    /// slot vector.
    pub fn decode_output(&self, slots: &[i64]) -> Tensor {
        let w = self.spec.w;
        Tensor::from_data(&[1, w, w], slots[..w * w].to_vec())
    }
}

/// Builds the slot mask for `(output channel o, tap (dy, dx))`.
///
/// * Sched-IA masks are aligned to *output* positions: slot
///   `c·w² + y·w + x` carries `f[o][c][dy][dx]` iff input pixel
///   `(y+dy, x+dx)` is inside the image.
/// * Sched-PA masks are aligned to *input* positions (pre-rotation): slot
///   `c·w² + y'·w + x'` carries the weight iff output pixel
///   `(y'−dy, x'−dx)` is inside the image.
fn build_mask(
    spec: &ConvSpec,
    weights: &Tensor,
    o: usize,
    dy: i64,
    dx: i64,
    schedule: Schedule,
    slots: usize,
) -> Vec<i64> {
    let w = spec.w as i64;
    let r = spec.fw / 2;
    let ky = (dy + r as i64) as usize;
    let kx = (dx + r as i64) as usize;
    let mut mask = vec![0i64; slots];
    for c in 0..spec.ci {
        let f = weights.data()[((o * spec.ci + c) * spec.fw + ky) * spec.fw + kx];
        if f == 0 {
            continue;
        }
        for y in 0..w {
            for x in 0..w {
                let (sy, sx) = match schedule {
                    // valid iff the *source* pixel exists
                    Schedule::InputAligned => (y + dy, x + dx),
                    // valid iff the *destination* pixel exists
                    Schedule::PartialAligned => (y - dy, x - dx),
                };
                if sy < 0 || sy >= w || sx < 0 || sx >= w {
                    continue;
                }
                let slot = c * (w * w) as usize + (y * w + x) as usize;
                mask[slot] = f;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_bfv::{BfvParams, Decryptor, Encryptor, KeyGenerator};
    use cheetah_nn::inference::eval_linear;
    use cheetah_nn::LinearLayer;
    use rand::{Rng, SeedableRng};

    fn spec(w: usize, fw: usize, ci: usize, co: usize) -> ConvSpec {
        ConvSpec {
            name: "test".into(),
            w,
            fw,
            ci,
            co,
            stride: 1,
            pad: fw / 2,
        }
    }

    struct Ctx {
        encoder: BatchEncoder,
        enc: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        keys: GaloisKeys,
    }

    fn ctx(spec: &ConvSpec) -> Ctx {
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 41);
        let pk = kg.public_key().unwrap();
        let keys = kg
            .galois_keys_for_steps(&HomConv2d::required_steps(spec))
            .unwrap();
        Ctx {
            encoder: BatchEncoder::new(params.clone()),
            enc: Encryptor::from_public_key(pk, 42),
            dec: Decryptor::new(kg.secret_key().clone()),
            eval: Evaluator::new(params),
            keys,
        }
    }

    fn random_weights(spec: &ConvSpec, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let len = spec.co * spec.ci * spec.fw * spec.fw;
        Tensor::from_data(
            &[spec.co, spec.ci, spec.fw, spec.fw],
            (0..len).map(|_| rng.random_range(-4..=4)).collect(),
        )
    }

    fn random_input(spec: &ConvSpec, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Tensor::from_data(
            &[spec.ci, spec.w, spec.w],
            (0..spec.ci * spec.w * spec.w)
                .map(|_| rng.random_range(-8..=8))
                .collect(),
        )
    }

    fn check_conv(spec: &ConvSpec, schedule: Schedule) {
        let mut c = ctx(spec);
        let weights = random_weights(spec, 1);
        let input = random_input(spec, 2);
        let expect = eval_linear(&LinearLayer::Conv(spec.clone()), &weights, &input);

        let layer = HomConv2d::new(spec, &weights, &c.encoder, &c.eval, schedule).unwrap();
        let ct = c
            .enc
            .encrypt(&HomConv2d::encode_input(spec, &input, &c.encoder).unwrap())
            .unwrap();
        let outputs = layer.apply(&ct, &c.eval, &c.keys).unwrap();
        assert_eq!(outputs.len(), spec.co);
        for (o, out_ct) in outputs.iter().enumerate() {
            let budget = c.dec.invariant_noise_budget(out_ct).unwrap();
            assert!(budget > 0.0, "channel {o} budget exhausted ({budget:.1})");
            let slots = c.encoder.decode_signed(&c.dec.decrypt(out_ct).unwrap());
            let img = layer.decode_output(&slots);
            for y in 0..spec.w {
                for x in 0..spec.w {
                    assert_eq!(
                        img.at3(0, y, x),
                        expect.at3(o, y, x),
                        "{schedule} mismatch at (o={o}, y={y}, x={x})"
                    );
                }
            }
        }
    }

    #[test]
    fn conv_3x3_single_channel_both_schedules() {
        let s = spec(8, 3, 1, 1);
        check_conv(&s, Schedule::PartialAligned);
        check_conv(&s, Schedule::InputAligned);
    }

    #[test]
    fn conv_1x1_skips_the_hoist() {
        // A 1×1 filter has only the zero-offset tap: the IA path must not
        // pay a hoist (or any rotation) for the tap loop — only the
        // channel reduction rotates.
        let s = spec(8, 1, 2, 2);
        check_conv(&s, Schedule::InputAligned);
        let mut c = ctx(&s);
        let weights = random_weights(&s, 8);
        let input = random_input(&s, 9);
        let layer =
            HomConv2d::new(&s, &weights, &c.encoder, &c.eval, Schedule::InputAligned).unwrap();
        let ct = c
            .enc
            .encrypt(&HomConv2d::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        c.eval.reset_op_counts();
        let _ = layer.apply(&ct, &c.eval, &c.keys).unwrap();
        let counts = c.eval.op_counts();
        let params = c.eval.params();
        let planes = (params.l_ct() as u64 + 1) * params.limbs() as u64;
        // co · log2(ci) ladder rotations, nothing else.
        assert_eq!(counts.rotate, 2);
        assert_eq!(counts.ntt, 2 * planes, "no hoist for a 1×1 tap set");
    }

    #[test]
    fn conv_3x3_multi_channel_power_of_two() {
        let s = spec(8, 3, 4, 2);
        check_conv(&s, Schedule::PartialAligned);
        check_conv(&s, Schedule::InputAligned);
    }

    #[test]
    fn conv_3x3_non_power_of_two_channels() {
        let s = spec(6, 3, 3, 2);
        check_conv(&s, Schedule::PartialAligned);
    }

    #[test]
    fn conv_5x5_filter() {
        let s = spec(8, 5, 2, 1);
        check_conv(&s, Schedule::PartialAligned);
    }

    #[test]
    fn pa_leaves_more_noise_budget_than_ia() {
        let s = spec(8, 3, 2, 1);
        let mut c = ctx(&s);
        let weights = random_weights(&s, 3);
        let input = random_input(&s, 4);
        let ct = c
            .enc
            .encrypt(&HomConv2d::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();

        let pa = HomConv2d::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned)
            .unwrap()
            .apply(&ct, &c.eval, &c.keys)
            .unwrap();
        let ia = HomConv2d::new(&s, &weights, &c.encoder, &c.eval, Schedule::InputAligned)
            .unwrap()
            .apply(&ct, &c.eval, &c.keys)
            .unwrap();
        let pa_budget = c.dec.invariant_noise_budget(&pa[0]).unwrap();
        let ia_budget = c.dec.invariant_noise_budget(&ia[0]).unwrap();
        assert!(
            pa_budget >= ia_budget,
            "PA {pa_budget:.1} bits vs IA {ia_budget:.1} bits"
        );
    }

    #[test]
    fn op_counts_within_factor_of_table_iv_model() {
        // The functional layer computes one output channel per ciphertext;
        // Table IV models the fully packed layout. Counts must agree
        // within a small factor.
        let s = spec(8, 3, 4, 2);
        let mut c = ctx(&s);
        let weights = random_weights(&s, 5);
        let input = random_input(&s, 6);
        let layer =
            HomConv2d::new(&s, &weights, &c.encoder, &c.eval, Schedule::InputAligned).unwrap();
        let ct = c
            .enc
            .encrypt(&HomConv2d::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        c.eval.reset_op_counts();
        let _ = layer.apply(&ct, &c.eval, &c.keys).unwrap();
        let counts = c.eval.op_counts();

        // Compare at the *effective* slot count (slots the layer occupies):
        // Table IV amortizes over cn = n/w² packed channels, while the
        // functional layer packs exactly ci channels.
        let model = crate::ptune::perf::conv_ops(&s, s.ci * s.w * s.w, 1);
        let ratio_mult = counts.mul as f64 / model.he_mult;
        assert!(
            (0.2..5.0).contains(&ratio_mult),
            "functional mults {} vs model {:.1}",
            counts.mul,
            model.he_mult
        );

        // NTT reconciliation against the corrected plane-transform model.
        // Per-rotation the engine would do (l_ct + 1)·limbs transforms;
        // with the tap set hoisted the layer pays exactly one hoist for
        // all fw² taps plus, per output channel, the reduce plan's bill:
        // one full rotation per ladder level, or one hoist per BSGS stage.
        let params = c.eval.params();
        let planes = (params.l_ct() as u64 + 1) * params.limbs() as u64;
        let per_channel = match layer.reduce_plan() {
            crate::linear::ReducePlan::Ladder => s.ci.ilog2() as u64,
            crate::linear::ReducePlan::Bsgs { s: bs, g } => u64::from(bs > 1) + u64::from(g > 1),
        };
        assert_eq!(
            counts.ntt,
            planes * (1 + s.co as u64 * per_channel),
            "hoisted NTT structure under {:?}",
            layer.reduce_plan()
        );
        // The reduce plan must have left the dependent ladder behind for
        // ci = 4: strictly fewer reduction NTTs than the log2(ci) ladder.
        assert!(per_channel < s.ci.ilog2() as u64 + 1);
        // The uncorrected per-rotation accounting would have charged every
        // rotation a full decomposition; hoisting must beat it.
        assert!(
            counts.ntt < counts.rotate * planes,
            "hoisting saved nothing: {} NTT planes for {} rotations",
            counts.ntt,
            counts.rotate
        );
    }

    #[test]
    fn conv_runs_at_reduced_level_with_less_ntt_work() {
        // A modulus-switched input drives the whole layer over its live
        // limbs: same decrypted output, strictly fewer NTT plane
        // transforms than the full-level run — and within the noise bound
        // the per-level model predicts.
        // Three 36-bit limbs: level 1 leaves two live limbs — a 55-bit
        // ceiling, far above the layer's noise, while a single 36-bit limb
        // could not hold a conv layer (the planner knows; this test picks
        // the level by hand, so it picks the safe one).
        let s = spec(8, 3, 2, 2);
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .moduli_bits(&[36, 36, 36])
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 43);
        let pk = kg.public_key().unwrap();
        let keys = kg
            .galois_keys_for_steps(&HomConv2d::required_steps(&s))
            .unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_public_key(pk, 44);
        let dec = Decryptor::new(kg.secret_key().clone());
        let eval = Evaluator::new(params.clone());

        let weights = random_weights(&s, 10);
        let input = random_input(&s, 11);
        let expect = eval_linear(&LinearLayer::Conv(s.clone()), &weights, &input);
        let layer = HomConv2d::new(&s, &weights, &encoder, &eval, Schedule::InputAligned).unwrap();
        let ct = enc
            .encrypt(&HomConv2d::encode_input(&s, &input, &encoder).unwrap())
            .unwrap();

        eval.reset_op_counts();
        let full_out = layer.apply(&ct, &eval, &keys).unwrap();
        let full_counts = eval.op_counts();

        let switched = eval.mod_switch_to_next(&ct).unwrap();
        assert_eq!(switched.level(), 1);
        eval.reset_op_counts();
        let low_out = layer.apply(&switched, &eval, &keys).unwrap();
        let low_counts = eval.op_counts();
        assert!(
            low_counts.ntt < full_counts.ntt,
            "reduced level must do less NTT work: {} vs {}",
            low_counts.ntt,
            full_counts.ntt
        );

        let predicted = layer.noise_after(switched.noise(), &params, 1);
        for (o, (a, b)) in full_out.iter().zip(&low_out).enumerate() {
            assert_eq!(b.level(), 1, "outputs stay at the input's level");
            let da = encoder.decode_signed(&dec.decrypt_checked(a).unwrap());
            let db = encoder.decode_signed(&dec.decrypt_checked(b).unwrap());
            assert_eq!(
                layer.decode_output(&da).data(),
                layer.decode_output(&db).data(),
                "channel {o} diverged at the reduced level"
            );
            assert_eq!(
                layer.decode_output(&db).data(),
                (0..s.w * s.w)
                    .map(|i| expect.data()[o * s.w * s.w + i])
                    .collect::<Vec<_>>(),
                "channel {o} wrong"
            );
            // The engine-tracked noise stays under the planner's model.
            assert!(b.noise().bound_log2 <= predicted.bound_log2 + 1e-9);
        }
    }

    #[test]
    fn sparse_conv_skips_dead_taps_and_channels() {
        // Output 0: only the center tap of channels 0 and 2; output 1:
        // fully dead. Dense evaluation must agree on the output blocks
        // while the sparse layer rotates and multiplies far less.
        let s = spec(8, 3, 4, 2);
        let mut c = ctx(&s);
        let len = s.co * s.ci * s.fw * s.fw;
        let taps = s.fw * s.fw;
        let mut w = vec![0i64; len];
        w[4] = 3; // (o=0, c=0, center tap)
        w[2 * taps + 4] = -5; // (o=0, c=2, center tap)
        let weights = Tensor::from_data(&[s.co, s.ci, s.fw, s.fw], w);
        let input = random_input(&s, 12);
        let expect = eval_linear(&LinearLayer::Conv(s.clone()), &weights, &input);

        let layer =
            HomConv2d::new(&s, &weights, &c.encoder, &c.eval, Schedule::InputAligned).unwrap();
        assert_eq!(
            layer.structure().live_taps(),
            1,
            "only the center tap is live"
        );
        assert_eq!(layer.channel_reduces()[1], ChannelReduce::Zero);
        assert!(matches!(
            layer.channel_reduces()[0],
            ChannelReduce::SparseLive(_) | ChannelReduce::Dense
        ));

        let ct = c
            .enc
            .encrypt(&HomConv2d::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        c.eval.reset_op_counts();
        let outputs = layer.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let counts = c.eval.op_counts();
        // Center tap only: no tap rotation, no hoist for the tap set; the
        // lone live output multiplies once per live channel mask — one
        // mask, two live channels inside it — i.e. exactly 1 mul.
        assert_eq!(counts.mul, 1, "one live (o, tap) mask");
        // Reduction: only output 0 reduces, over channels {0, 2}.
        assert!(
            counts.rotate <= 2,
            "live-channel reduce must beat the dense ladder ({} rotations)",
            counts.rotate
        );
        for (o, out_ct) in outputs.iter().enumerate() {
            let slots = c.encoder.decode_signed(&c.dec.decrypt(out_ct).unwrap());
            let img = layer.decode_output(&slots);
            for y in 0..s.w {
                for x in 0..s.w {
                    assert_eq!(
                        img.at3(0, y, x),
                        expect.at3(o, y, x),
                        "mismatch at (o={o}, y={y}, x={x})"
                    );
                }
            }
        }
        // The dead output decrypts to exact zeros without any work.
        assert_eq!(
            outputs[1].noise().bound_log2,
            f64::NEG_INFINITY,
            "dead output stays transparent"
        );

        // Keys for exactly the layer's sparse steps suffice.
        let params = c.eval.params().clone();
        let mut kg = KeyGenerator::from_seed(params, 41);
        let lean_keys = kg.galois_keys_for_steps(&layer.rotation_steps()).unwrap();
        let lean = layer.apply_threaded(&ct, &c.eval, &lean_keys, 1).unwrap();
        for (a, b) in outputs.iter().zip(&lean) {
            assert_eq!(
                layer
                    .decode_output(&c.encoder.decode_signed(&c.dec.decrypt(a).unwrap()))
                    .data(),
                layer
                    .decode_output(&c.encoder.decode_signed(&c.dec.decrypt(b).unwrap()))
                    .data(),
            );
        }
    }

    #[test]
    fn sparse_conv_matches_dense_evaluation_both_schedules() {
        // Prune channel 1 of each output and the corner taps; outputs must
        // stay bit-identical to the cleartext reference under both
        // schedules.
        let s = spec(6, 3, 3, 2);
        let taps = s.fw * s.fw;
        let mut weights = random_weights(&s, 14);
        {
            let data = weights.data_mut();
            for o in 0..s.co {
                for c in 0..s.ci {
                    for tap in 0..taps {
                        let dead_channel = c == 1;
                        let dead_tap = [0usize, 2, 6, 8].contains(&tap);
                        if dead_channel || dead_tap {
                            data[(o * s.ci + c) * taps + tap] = 0;
                        }
                    }
                }
            }
        }
        for schedule in [Schedule::InputAligned, Schedule::PartialAligned] {
            let mut c = ctx(&s);
            let input = random_input(&s, 15);
            let expect = eval_linear(&LinearLayer::Conv(s.clone()), &weights, &input);
            let layer = HomConv2d::new(&s, &weights, &c.encoder, &c.eval, schedule).unwrap();
            assert_eq!(layer.structure().live_taps(), 5, "corner taps pruned");
            let ct = c
                .enc
                .encrypt(&HomConv2d::encode_input(&s, &input, &c.encoder).unwrap())
                .unwrap();
            let outputs = layer.apply(&ct, &c.eval, &c.keys).unwrap();
            for (o, out_ct) in outputs.iter().enumerate() {
                let slots = c.encoder.decode_signed(&c.dec.decrypt(out_ct).unwrap());
                let img = layer.decode_output(&slots);
                for y in 0..s.w {
                    for x in 0..s.w {
                        assert_eq!(
                            img.at3(0, y, x),
                            expect.at3(o, y, x),
                            "{schedule} mismatch at (o={o}, y={y}, x={x})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_layer_rejected() {
        let s = spec(64, 3, 2, 1); // 2*4096 slots > 2048-row
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(20)
            .cipher_bits(60)
            .build()
            .unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let eval = Evaluator::new(params);
        let weights = random_weights(&s, 7);
        assert!(matches!(
            HomConv2d::new(&s, &weights, &encoder, &eval, Schedule::PartialAligned),
            Err(Error::TooManyValues { .. })
        ));
    }
}
