//! Packed dot products under both schedules — the Fig. 5 experiment on the
//! real BFV engine.
//!
//! * [`dot_partial_aligned`] (Sched-PA): one multiplication on the *fresh*
//!   input, then a rotate-and-sum reduction — the doubling ladder or its
//!   BSGS reshape, whichever the cost model prices cheaper (every plan
//!   computes the identical sum). Noise `≈ ηM·v0 + log(d)·ηA`.
//! * [`dot_input_aligned`] (Sched-IA): rotate the input to align each
//!   element with slot 0, then multiply — every multiplication sees a
//!   rotated (noisier) ciphertext. Noise `≈ d·ηM·(v0 + ηA)`.
//!
//! Both produce the exact dot product in slot 0; the noise gap is what
//! Sched-PA converts into cheaper HE parameters.

use cheetah_bfv::{BatchEncoder, Ciphertext, Evaluator, GaloisKeys, HoistedDecomposition, Result};

use crate::cost::HeCostParams;
use crate::linear::{rotate_sum_reduce, ReducePlan};

/// Shared scratch buffers for the dot-product loops: one rotation target
/// plus a per-call [`cheetah_bfv::Scratch`], so the reductions run on the
/// evaluator's zero-allocation path instead of the allocating wrappers.
struct RotateScratch {
    scratch: cheetah_bfv::Scratch,
    rotated: Ciphertext,
}

impl RotateScratch {
    fn new(eval: &Evaluator) -> Self {
        Self {
            scratch: eval.new_scratch(),
            rotated: Ciphertext::transparent_zero(eval.params()),
        }
    }
}

/// Rotation steps [`dot_partial_aligned`] may need for length-`d` inputs
/// when the parameter set is not known yet: `1..d`, a superset of every
/// reduction plan's steps (ladder strides are the powers of two below
/// `d`; BSGS baby and giant strides are arbitrary multiples below `d`).
/// With the parameter set in hand, [`pa_plan_steps`] returns the exact —
/// `O(log d)` or `O(√d)` — set the chosen plan performs.
pub fn pa_required_steps(d: usize) -> Vec<i64> {
    assert!(d.is_power_of_two(), "dot length must be a power of two");
    (1..d as i64).collect()
}

/// The exact rotation steps [`dot_partial_aligned`] performs for
/// length-`d` inputs under `params`: the reduction plan is chosen
/// deterministically from the parameter set's level-0 cost model, so keys
/// generated for these steps (and nothing more) always suffice.
pub fn pa_plan_steps(d: usize, params: &cheetah_bfv::BfvParams) -> Vec<i64> {
    assert!(d.is_power_of_two(), "dot length must be a power of two");
    ReducePlan::choose(d, &HeCostParams::for_bfv(params, 0)).steps(d, 1)
}

/// Rotation steps [`dot_input_aligned`] needs for length-`d` inputs.
pub fn ia_required_steps(d: usize) -> Vec<i64> {
    (1..d as i64).collect()
}

/// Sched-PA dot product: `multiply, then rotate partials into place`.
///
/// `ct` packs `x[0..d]` in the first `d` row slots (rest zero); `weights`
/// holds `w[0..d]`. The result lands in slot 0.
///
/// # Errors
///
/// Propagates BFV evaluation errors (missing keys, parameter mismatch).
pub fn dot_partial_aligned(
    ct: &Ciphertext,
    weights: &[i64],
    encoder: &BatchEncoder,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<Ciphertext> {
    let d = weights.len();
    assert!(d.is_power_of_two(), "dot length must be a power of two");
    // One multiplication against the fresh input.
    let w_pt = encoder.encode_signed(weights)?;
    let prepared = eval.prepare_plaintext(&w_pt)?;
    let acc = eval.mul_plain(ct, &prepared)?;
    // Rotate-and-sum reduction on the scratch path, under the plan the
    // cost model picks for this parameter set: the doubling ladder is a
    // dependent chain (each rotation reads the fresh accumulator); the
    // BSGS reshape replaces it with two hoistable same-source replay
    // sets. Chosen from the level-0 cost so the step set is deterministic
    // per parameter set ([`pa_plan_steps`]) regardless of the input's
    // current level.
    let plan = ReducePlan::choose(d, &HeCostParams::for_bfv(eval.params(), 0));
    let mut rs = RotateScratch::new(eval);
    let mut hoisted = HoistedDecomposition::empty(eval.params());
    rotate_sum_reduce(
        acc,
        1,
        d,
        plan,
        eval,
        keys,
        &mut rs.scratch,
        &mut rs.rotated,
        &mut hoisted,
    )
}

/// Sched-IA dot product: `rotate the input first, then multiply`
/// (prior-art ordering, Fig. 5 left).
///
/// All `d − 1` rotations act on the same fresh input, so its INTT + digit
/// decomposition is hoisted once for the whole set and each alignment
/// pays only permutations + key-switch multiply-accumulates.
///
/// # Errors
///
/// Propagates BFV evaluation errors (missing keys, parameter mismatch).
pub fn dot_input_aligned(
    ct: &Ciphertext,
    weights: &[i64],
    encoder: &BatchEncoder,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<Ciphertext> {
    let slots = encoder.slots();
    // The accumulator follows the input's level (modulus-switched inputs
    // run the alignment set over their live limbs only).
    let mut acc = Ciphertext::transparent_zero_at(eval.params(), ct.level());
    // Multiply by w placed at slot 0 only, fused into the accumulator.
    let accumulate = |acc: &mut Ciphertext, aligned: &Ciphertext, w: i64| -> Result<()> {
        let mut mask = vec![0i64; slots];
        mask[0] = w;
        let w_pt = encoder.encode_signed(&mask)?;
        let prepared = eval.prepare_plaintext(&w_pt)?;
        eval.mul_plain_accumulate(acc, aligned, &prepared)
    };
    // x[0] is already aligned: no rotation, and no hoist at all when the
    // dot product is a single term.
    accumulate(&mut acc, ct, weights[0])?;
    if weights.len() > 1 {
        let hoisted = eval.hoist(ct)?;
        let mut rs = RotateScratch::new(eval);
        for (i, &w) in weights.iter().enumerate().skip(1) {
            eval.rotate_hoisted_into(
                &mut rs.rotated,
                ct,
                &hoisted,
                i as i64,
                keys,
                &mut rs.scratch,
            )?;
            accumulate(&mut acc, &rs.rotated, w)?;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_bfv::{BfvParams, Decryptor, Encryptor, KeyGenerator};

    struct Ctx {
        encoder: BatchEncoder,
        enc: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        keys: GaloisKeys,
    }

    fn ctx(d: usize) -> Ctx {
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 31);
        let pk = kg.public_key().unwrap();
        let mut steps = pa_required_steps(d);
        steps.extend(ia_required_steps(d));
        let keys = kg.galois_keys_for_steps(&steps).unwrap();
        Ctx {
            encoder: BatchEncoder::new(params.clone()),
            enc: Encryptor::from_public_key(pk, 32),
            dec: Decryptor::new(kg.secret_key().clone()),
            eval: Evaluator::new(params),
            keys,
        }
    }

    #[test]
    fn both_schedules_compute_the_same_dot_product() {
        let d = 16;
        let mut c = ctx(d);
        let x: Vec<i64> = (0..d as i64).map(|i| i - 7).collect();
        let w: Vec<i64> = (0..d as i64).map(|i| 2 * i - 9).collect();
        let expect: i64 = x.iter().zip(&w).map(|(&a, &b)| a * b).sum();

        let ct = c
            .enc
            .encrypt(&c.encoder.encode_signed(&x).unwrap())
            .unwrap();
        let pa = dot_partial_aligned(&ct, &w, &c.encoder, &c.eval, &c.keys).unwrap();
        let ia = dot_input_aligned(&ct, &w, &c.encoder, &c.eval, &c.keys).unwrap();

        let pa_out = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&pa).unwrap());
        let ia_out = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&ia).unwrap());
        assert_eq!(pa_out[0], expect);
        assert_eq!(ia_out[0], expect);
    }

    #[test]
    fn pa_has_measurably_less_noise_than_ia() {
        // The §V-A claim, on real ciphertexts.
        let d = 16;
        let mut c = ctx(d);
        let x: Vec<i64> = (1..=d as i64).collect();
        let w: Vec<i64> = (1..=d as i64).collect();
        let ct = c
            .enc
            .encrypt(&c.encoder.encode_signed(&x).unwrap())
            .unwrap();
        let pa = dot_partial_aligned(&ct, &w, &c.encoder, &c.eval, &c.keys).unwrap();
        let ia = dot_input_aligned(&ct, &w, &c.encoder, &c.eval, &c.keys).unwrap();
        let pa_budget = c.dec.invariant_noise_budget(&pa).unwrap();
        let ia_budget = c.dec.invariant_noise_budget(&ia).unwrap();
        assert!(
            pa_budget > ia_budget + 1.0,
            "PA budget {pa_budget:.1} should beat IA budget {ia_budget:.1} by >1 bit"
        );
        // Model agrees with measurement on the ordering.
        assert!(pa.noise().bound_log2 < ia.noise().bound_log2);
    }

    #[test]
    fn pa_step_helper() {
        // The PA step set is now a plan superset: any ladder stride or
        // BSGS baby/giant stride the cost model may pick lives in [1, d).
        assert_eq!(pa_required_steps(8), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(ia_required_steps(4), vec![1, 2, 3]);
    }

    #[test]
    fn pa_plan_steps_suffice_and_beat_the_superset() {
        // Keys generated for exactly the plan's steps (no superset) must
        // carry a full PA dot product — and stay well below the d − 1
        // superset size.
        let d = 16usize;
        let params = cheetah_bfv::BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let steps = pa_plan_steps(d, &params);
        assert!(
            steps.len() < d - 1,
            "plan steps {steps:?} should undercut the 1..d superset"
        );
        let mut kg = cheetah_bfv::KeyGenerator::from_seed(params.clone(), 61);
        let pk = kg.public_key().unwrap();
        let keys = kg.galois_keys_for_steps(&steps).unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = cheetah_bfv::Encryptor::from_public_key(pk, 62);
        let dec = cheetah_bfv::Decryptor::new(kg.secret_key().clone());
        let eval = Evaluator::new(params);

        let x: Vec<i64> = (0..d as i64).map(|i| i - 5).collect();
        let w: Vec<i64> = (0..d as i64).map(|i| 2 * i - 3).collect();
        let ct = enc.encrypt(&encoder.encode_signed(&x).unwrap()).unwrap();
        let out = dot_partial_aligned(&ct, &w, &encoder, &eval, &keys).unwrap();
        let slots = encoder.decode_signed(&dec.decrypt_checked(&out).unwrap());
        let expect: i64 = x.iter().zip(&w).map(|(&a, &b)| a * b).sum();
        assert_eq!(slots[0], expect);
    }

    #[test]
    fn pa_reduction_plans_agree_with_ladder() {
        // The BSGS reshape of the rotate-and-sum must produce the exact
        // ladder result in every slot, not just slot 0.
        let d = 16;
        let mut c = ctx(d);
        let x: Vec<i64> = (0..d as i64).map(|i| 3 * i - 11).collect();
        let w: Vec<i64> = (0..d as i64).map(|i| i - 4).collect();
        let ct = c
            .enc
            .encrypt(&c.encoder.encode_signed(&x).unwrap())
            .unwrap();
        let prepared = c
            .eval
            .prepare_plaintext(&c.encoder.encode_signed(&w).unwrap())
            .unwrap();
        let prod = c.eval.mul_plain(&ct, &prepared).unwrap();

        let mut results = Vec::new();
        for plan in [
            ReducePlan::Ladder,
            ReducePlan::Bsgs { s: 4, g: 4 },
            ReducePlan::Bsgs { s: 16, g: 1 },
            ReducePlan::Bsgs { s: 2, g: 8 },
        ] {
            let mut rs = RotateScratch::new(&c.eval);
            let mut hoisted = HoistedDecomposition::empty(c.eval.params());
            let out = rotate_sum_reduce(
                prod.clone(),
                1,
                d,
                plan,
                &c.eval,
                &c.keys,
                &mut rs.scratch,
                &mut rs.rotated,
                &mut hoisted,
            )
            .unwrap();
            results.push(
                c.encoder
                    .decode_signed(&c.dec.decrypt_checked(&out).unwrap()),
            );
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0], "reduction plans diverged");
        }
        let expect: i64 = x.iter().zip(&w).map(|(&a, &b)| a * b).sum();
        assert_eq!(results[0][0], expect);
    }
}
