//! Packed dot products under both schedules — the Fig. 5 experiment on the
//! real BFV engine.
//!
//! * [`dot_partial_aligned`] (Sched-PA): one multiplication on the *fresh*
//!   input, then a log-depth rotate-and-sum reduction. Noise
//!   `≈ ηM·v0 + log(d)·ηA`.
//! * [`dot_input_aligned`] (Sched-IA): rotate the input to align each
//!   element with slot 0, then multiply — every multiplication sees a
//!   rotated (noisier) ciphertext. Noise `≈ d·ηM·(v0 + ηA)`.
//!
//! Both produce the exact dot product in slot 0; the noise gap is what
//! Sched-PA converts into cheaper HE parameters.

use cheetah_bfv::{BatchEncoder, Ciphertext, Evaluator, GaloisKeys, Result};

/// Shared scratch buffers for the dot-product loops: one rotation target
/// plus a per-call [`cheetah_bfv::Scratch`], so the reductions run on the
/// evaluator's zero-allocation path instead of the allocating wrappers.
struct RotateScratch {
    scratch: cheetah_bfv::Scratch,
    rotated: Ciphertext,
}

impl RotateScratch {
    fn new(eval: &Evaluator) -> Self {
        Self {
            scratch: eval.new_scratch(),
            rotated: Ciphertext::transparent_zero(eval.params()),
        }
    }
}

/// Rotation steps [`dot_partial_aligned`] needs for length-`d` inputs.
pub fn pa_required_steps(d: usize) -> Vec<i64> {
    assert!(d.is_power_of_two(), "dot length must be a power of two");
    let mut steps = Vec::new();
    let mut s = d / 2;
    while s >= 1 {
        steps.push(s as i64);
        s /= 2;
    }
    steps
}

/// Rotation steps [`dot_input_aligned`] needs for length-`d` inputs.
pub fn ia_required_steps(d: usize) -> Vec<i64> {
    (1..d as i64).collect()
}

/// Sched-PA dot product: `multiply, then rotate partials into place`.
///
/// `ct` packs `x[0..d]` in the first `d` row slots (rest zero); `weights`
/// holds `w[0..d]`. The result lands in slot 0.
///
/// # Errors
///
/// Propagates BFV evaluation errors (missing keys, parameter mismatch).
pub fn dot_partial_aligned(
    ct: &Ciphertext,
    weights: &[i64],
    encoder: &BatchEncoder,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<Ciphertext> {
    let d = weights.len();
    assert!(d.is_power_of_two(), "dot length must be a power of two");
    // One multiplication against the fresh input.
    let w_pt = encoder.encode_signed(weights)?;
    let prepared = eval.prepare_plaintext(&w_pt)?;
    let mut acc = eval.mul_plain(ct, &prepared)?;
    // log2(d) rotate-and-add reduction on the scratch path (a dependent
    // chain: each rotation reads the freshly accumulated ciphertext).
    let mut rs = RotateScratch::new(eval);
    let mut s = d / 2;
    while s >= 1 {
        eval.rotate_rows_into(&mut rs.rotated, &acc, s as i64, keys, &mut rs.scratch)?;
        eval.add_assign(&mut acc, &rs.rotated)?;
        s /= 2;
    }
    Ok(acc)
}

/// Sched-IA dot product: `rotate the input first, then multiply`
/// (prior-art ordering, Fig. 5 left).
///
/// All `d − 1` rotations act on the same fresh input, so its INTT + digit
/// decomposition is hoisted once for the whole set and each alignment
/// pays only permutations + key-switch multiply-accumulates.
///
/// # Errors
///
/// Propagates BFV evaluation errors (missing keys, parameter mismatch).
pub fn dot_input_aligned(
    ct: &Ciphertext,
    weights: &[i64],
    encoder: &BatchEncoder,
    eval: &Evaluator,
    keys: &GaloisKeys,
) -> Result<Ciphertext> {
    let slots = encoder.slots();
    // The accumulator follows the input's level (modulus-switched inputs
    // run the alignment set over their live limbs only).
    let mut acc = Ciphertext::transparent_zero_at(eval.params(), ct.level());
    // Multiply by w placed at slot 0 only, fused into the accumulator.
    let accumulate = |acc: &mut Ciphertext, aligned: &Ciphertext, w: i64| -> Result<()> {
        let mut mask = vec![0i64; slots];
        mask[0] = w;
        let w_pt = encoder.encode_signed(&mask)?;
        let prepared = eval.prepare_plaintext(&w_pt)?;
        eval.mul_plain_accumulate(acc, aligned, &prepared)
    };
    // x[0] is already aligned: no rotation, and no hoist at all when the
    // dot product is a single term.
    accumulate(&mut acc, ct, weights[0])?;
    if weights.len() > 1 {
        let hoisted = eval.hoist(ct)?;
        let mut rs = RotateScratch::new(eval);
        for (i, &w) in weights.iter().enumerate().skip(1) {
            eval.rotate_hoisted_into(
                &mut rs.rotated,
                ct,
                &hoisted,
                i as i64,
                keys,
                &mut rs.scratch,
            )?;
            accumulate(&mut acc, &rs.rotated, w)?;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_bfv::{BfvParams, Decryptor, Encryptor, KeyGenerator};

    struct Ctx {
        encoder: BatchEncoder,
        enc: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        keys: GaloisKeys,
    }

    fn ctx(d: usize) -> Ctx {
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 31);
        let pk = kg.public_key().unwrap();
        let mut steps = pa_required_steps(d);
        steps.extend(ia_required_steps(d));
        let keys = kg.galois_keys_for_steps(&steps).unwrap();
        Ctx {
            encoder: BatchEncoder::new(params.clone()),
            enc: Encryptor::from_public_key(pk, 32),
            dec: Decryptor::new(kg.secret_key().clone()),
            eval: Evaluator::new(params),
            keys,
        }
    }

    #[test]
    fn both_schedules_compute_the_same_dot_product() {
        let d = 16;
        let mut c = ctx(d);
        let x: Vec<i64> = (0..d as i64).map(|i| i - 7).collect();
        let w: Vec<i64> = (0..d as i64).map(|i| 2 * i - 9).collect();
        let expect: i64 = x.iter().zip(&w).map(|(&a, &b)| a * b).sum();

        let ct = c
            .enc
            .encrypt(&c.encoder.encode_signed(&x).unwrap())
            .unwrap();
        let pa = dot_partial_aligned(&ct, &w, &c.encoder, &c.eval, &c.keys).unwrap();
        let ia = dot_input_aligned(&ct, &w, &c.encoder, &c.eval, &c.keys).unwrap();

        let pa_out = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&pa).unwrap());
        let ia_out = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&ia).unwrap());
        assert_eq!(pa_out[0], expect);
        assert_eq!(ia_out[0], expect);
    }

    #[test]
    fn pa_has_measurably_less_noise_than_ia() {
        // The §V-A claim, on real ciphertexts.
        let d = 16;
        let mut c = ctx(d);
        let x: Vec<i64> = (1..=d as i64).collect();
        let w: Vec<i64> = (1..=d as i64).collect();
        let ct = c
            .enc
            .encrypt(&c.encoder.encode_signed(&x).unwrap())
            .unwrap();
        let pa = dot_partial_aligned(&ct, &w, &c.encoder, &c.eval, &c.keys).unwrap();
        let ia = dot_input_aligned(&ct, &w, &c.encoder, &c.eval, &c.keys).unwrap();
        let pa_budget = c.dec.invariant_noise_budget(&pa).unwrap();
        let ia_budget = c.dec.invariant_noise_budget(&ia).unwrap();
        assert!(
            pa_budget > ia_budget + 1.0,
            "PA budget {pa_budget:.1} should beat IA budget {ia_budget:.1} by >1 bit"
        );
        // Model agrees with measurement on the ordering.
        assert!(pa.noise().bound_log2 < ia.noise().bound_log2);
    }

    #[test]
    fn pa_step_helper() {
        assert_eq!(pa_required_steps(8), vec![4, 2, 1]);
        assert_eq!(ia_required_steps(4), vec![1, 2, 3]);
    }
}
