//! Homomorphic fully connected layers via the diagonal method, under
//! either schedule — reshaped into Baby-Step-Giant-Step rotation sets when
//! the cost model says the split wins.
//!
//! The weight matrix `W (n_o × n_i)` is split into `n_i` generalized
//! diagonals `diag_k[j] = W[j mod n_o][(j+k) mod n_i]`; then
//! `y_ext[j] = Σ_k rot(x, k) ⊙ diag_k` satisfies
//! `y_ext[j] = (W·x)[j mod n_o]` — the matrix-vector product materializes
//! replicated across the slots. The input is packed twice
//! (`x ‖ x`) so plain row rotations realize rotations mod `n_i`.
//!
//! # The BSGS reshape
//!
//! Writing `k = u·b + v` (`v < b` baby, `u < g` giant, `b·g ≥ n_i`):
//!
//! ```text
//! y = Σ_u rot( Σ_v rot(x, v) ⊙ rot⁻ᵘᵇ(diag_{ub+v}), u·b )
//! ```
//!
//! The `b − 1` baby rotations all read the *input*, so one hoist
//! ([`Evaluator::hoist_into`]) covers the whole set; the giant-step
//! pre-rotation of each diagonal happens on the plaintext mask at
//! preparation time (free); only the `g − 1` giant rotations of the group
//! inner sums pay full NTT bills. Rotation plane transforms drop from
//! `O(d·l_ct)` (one full rotation per diagonal) to `O(√d·l_ct)` (one hoist
//! plus `g − 1 ≈ √d` rotations). The plan is chosen per layer from
//! [`HeCostParams`]; tiny layers keep the plain diagonal path.
//!
//! Sched-IA rotates `x` then multiplies; Sched-PA multiplies the fresh `x`
//! by pre-shifted diagonals and rotates the partial products (Fig. 5).
//! The BSGS path subsumes both: `b = d` is hoisted Sched-IA, `b = 1` is
//! Sched-PA; its decrypted output is identical to either in every slot.
//!
//! Constraints: `n_i` a power of two, `n_o ≤ n_i`, `2·n_i ≤ n/2`.

use cheetah_bfv::{
    BatchEncoder, Ciphertext, Error, Evaluator, GaloisKeys, HoistedDecomposition, Plaintext,
    PreparedPlaintext, Result,
};
use cheetah_nn::{FcSpec, Tensor};

use crate::cost::HeCostParams;
use crate::linear::parallel::{default_threads, map_chunks, merge_partials};
use crate::linear::BsgsPlan;
use crate::schedule::Schedule;
use crate::sparse::{FcStructure, SparseBsgsPlan};

/// The prepared weight material: either the legacy per-step diagonals or
/// the BSGS group layout with giant-step pre-rotated masks.
#[derive(Debug)]
enum FcKernel {
    /// Legacy diagonal method: `diagonals[k]` multiplies rotation step `k`
    /// in schedule order.
    Diagonal(Vec<PreparedPlaintext>),
    /// BSGS: `groups[u][v]` multiplies baby rotation `v` inside giant
    /// group `u` (diagonal `k = u·b + v`; the last group may be short when
    /// `b·g > d`).
    Bsgs {
        plan: BsgsPlan,
        groups: Vec<Vec<PreparedPlaintext>>,
    },
    /// Sparsity-aware BSGS: only live diagonals carry masks. `groups[i]`
    /// pairs with `plan.live_groups()[i]` and lists `(v, mask)` for the
    /// live diagonals `k = u·b + v` of that group; dead baby steps are
    /// never rotated, dead groups never touched. When `scale_log2 > 0`
    /// every weight was `±2^k` with shared factor `2^scale_log2` pulled
    /// out of the masks and re-applied once after the merge.
    SparseBsgs {
        plan: SparseBsgsPlan,
        groups: Vec<Vec<(usize, PreparedPlaintext)>>,
        scale_log2: u32,
    },
}

/// A prepared homomorphic FC layer.
#[derive(Debug)]
pub struct HomFc {
    spec: FcSpec,
    schedule: Schedule,
    kernel: FcKernel,
}

impl HomFc {
    /// Prepares the layer (encodes and NTT-transforms every diagonal),
    /// choosing the rotation plan from the parameter set's cost model:
    /// a [`BsgsPlan`] where the hoisted split beats the diagonal path,
    /// the plain diagonal method otherwise (tiny `n_i`).
    ///
    /// `weights` has shape `(no, ni)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `2·n_i` exceeds the row size.
    ///
    /// # Panics
    ///
    /// Panics unless `n_i` is a power of two and `n_o ≤ n_i`, or on a
    /// weight-shape mismatch.
    pub fn new(
        spec: &FcSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
    ) -> Result<Self> {
        Self::new_at_level(spec, weights, encoder, eval, schedule, 0)
    }

    /// [`HomFc::new`] with the level the layer is planned to run at: the
    /// cost model prices rotations over the limbs actually live there, so
    /// a deep chain position can pick a different BSGS split than level 0.
    ///
    /// When the weights have dead diagonals the layer is prepared under a
    /// [`SparseBsgsPlan`] covering only the live ones — skipped rotations,
    /// multiplies, and Galois steps, bit-identical output (the skipped
    /// terms are zero polynomials). Fully-live weights keep the classic
    /// dense path verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `2·n_i` exceeds the row size.
    ///
    /// # Panics
    ///
    /// Panics on the [`HomFc::new`] conditions.
    pub fn new_at_level(
        spec: &FcSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
        level: usize,
    ) -> Result<Self> {
        let cost = HeCostParams::for_bfv(eval.params(), level);
        let structure = FcStructure::analyze_tensor(weights, spec);
        if structure.fully_live() {
            let plan = BsgsPlan::choose(spec.ni, &cost);
            Self::with_plan(spec, weights, encoder, eval, schedule, plan)
        } else {
            let plan = SparseBsgsPlan::choose(&structure, &cost);
            Self::from_sparse(spec, weights, encoder, eval, schedule, &structure, plan)
        }
    }

    /// Forces a sparse plan with baby width `baby` (liveness is always
    /// recomputed from the weights, so the plan and the prepared masks
    /// agree exactly). Test/benchmark hook; [`HomFc::new_at_level`] picks
    /// the width from the cost model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `2·n_i` exceeds the row size.
    ///
    /// # Panics
    ///
    /// Panics on the [`HomFc::new`] conditions or `baby == 0`.
    pub fn with_sparse_plan(
        spec: &FcSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
        baby: usize,
    ) -> Result<Self> {
        let structure = FcStructure::analyze_tensor(weights, spec);
        let plan = SparseBsgsPlan::for_structure(&structure, baby);
        Self::from_sparse(spec, weights, encoder, eval, schedule, &structure, plan)
    }

    /// Prepares the sparse kernel: one giant-step pre-rotated mask per
    /// *live* diagonal, carrying `w / 2^m` when the structure factors a
    /// shared pow2 scale `m` out (re-applied once after the merge, exact
    /// mod `t`).
    fn from_sparse(
        spec: &FcSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
        structure: &FcStructure,
        plan: SparseBsgsPlan,
    ) -> Result<Self> {
        assert!(spec.ni.is_power_of_two(), "n_i must be a power of two");
        assert!(spec.no <= spec.ni, "n_o must not exceed n_i");
        assert_eq!(
            weights.shape(),
            &[spec.no, spec.ni],
            "weight shape mismatch"
        );
        if 2 * spec.ni > encoder.row_size() {
            return Err(Error::TooManyValues {
                given: 2 * spec.ni,
                slots: encoder.row_size(),
            });
        }
        let slots = encoder.slots();
        let scale_log2 = structure.pow2_scale_log2().unwrap_or(0);
        let mut groups = Vec::with_capacity(plan.live_groups().len());
        for &u in plan.live_groups() {
            let shift = u * plan.b;
            let width = plan.b.min(spec.ni - shift);
            let mut per_group = Vec::new();
            for v in 0..width {
                if !structure.is_live(shift + v) {
                    continue;
                }
                // Same giant-step pre-rotated layout as the dense path
                // (support [shift, shift + ni)), divided by the shared
                // pow2 factor — exact, every weight is a multiple of it.
                let mut mask = vec![0i64; slots];
                for (off, slot) in mask[shift..shift + spec.ni].iter_mut().enumerate() {
                    *slot = weights.data()[(off % spec.no) * spec.ni + (off + shift + v) % spec.ni]
                        >> scale_log2;
                }
                let pt = encoder.encode_signed(&mask)?;
                per_group.push((v, eval.prepare_plaintext(&pt)?));
            }
            groups.push(per_group);
        }
        Ok(Self {
            spec: spec.clone(),
            schedule,
            kernel: FcKernel::SparseBsgs {
                plan,
                groups,
                scale_log2,
            },
        })
    }

    /// [`HomFc::new`] with an explicit rotation plan: `Some(plan)` forces
    /// the BSGS split (`plan.b·plan.g ≥ n_i`; padded tail diagonals are
    /// skipped), `None` forces the legacy schedule-ordered diagonal path.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `2·n_i` exceeds the row size.
    ///
    /// # Panics
    ///
    /// Panics on the [`HomFc::new`] conditions, or when a forced plan does
    /// not cover every diagonal (`b·g < n_i`) or has a zero dimension.
    pub fn with_plan(
        spec: &FcSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
        plan: Option<BsgsPlan>,
    ) -> Result<Self> {
        assert!(spec.ni.is_power_of_two(), "n_i must be a power of two");
        assert!(spec.no <= spec.ni, "n_o must not exceed n_i");
        assert_eq!(
            weights.shape(),
            &[spec.no, spec.ni],
            "weight shape mismatch"
        );
        if 2 * spec.ni > encoder.row_size() {
            return Err(Error::TooManyValues {
                given: 2 * spec.ni,
                slots: encoder.row_size(),
            });
        }
        let slots = encoder.slots();
        let kernel = match plan {
            None => {
                let mut diagonals = Vec::with_capacity(spec.ni);
                for k in 0..spec.ni {
                    let mut mask = vec![0i64; slots];
                    match schedule {
                        Schedule::InputAligned => {
                            // Aligned to post-rotation positions j in [0, ni).
                            for (j, slot) in mask.iter_mut().enumerate().take(spec.ni) {
                                *slot = weights.data()[(j % spec.no) * spec.ni + (j + k) % spec.ni];
                            }
                        }
                        Schedule::PartialAligned => {
                            // Aligned to pre-rotation positions m in [k, ni + k):
                            // after rotating left by k, position j reads m = j + k.
                            for (j, slot) in mask[k..spec.ni + k].iter_mut().enumerate() {
                                *slot = weights.data()[(j % spec.no) * spec.ni + (j + k) % spec.ni];
                            }
                        }
                    }
                    let pt = encoder.encode_signed(&mask)?;
                    diagonals.push(eval.prepare_plaintext(&pt)?);
                }
                FcKernel::Diagonal(diagonals)
            }
            Some(plan) => {
                assert!(plan.b >= 1 && plan.g >= 1, "degenerate BSGS plan");
                assert!(
                    plan.b * plan.g >= spec.ni,
                    "plan ({}, {}) does not cover {} diagonals",
                    plan.b,
                    plan.g,
                    spec.ni
                );
                let mut groups = Vec::with_capacity(plan.g);
                for u in 0..plan.g {
                    let shift = u * plan.b;
                    if shift >= spec.ni {
                        break; // fully padded trailing group
                    }
                    let width = plan.b.min(spec.ni - shift);
                    let mut per_group = Vec::with_capacity(width);
                    for v in 0..width {
                        // Diagonal k = u·b + v, pre-rotated right by the
                        // giant step: support [shift, shift + ni), aligned
                        // so that after the giant rotation by `shift` the
                        // output position j reads weight row j mod no and
                        // the baby-rotated input slot (p + v) mod ni.
                        let mut mask = vec![0i64; slots];
                        for (off, slot) in mask[shift..shift + spec.ni].iter_mut().enumerate() {
                            *slot = weights.data()
                                [(off % spec.no) * spec.ni + (off + shift + v) % spec.ni];
                        }
                        let pt = encoder.encode_signed(&mask)?;
                        per_group.push(eval.prepare_plaintext(&pt)?);
                    }
                    groups.push(per_group);
                }
                FcKernel::Bsgs { plan, groups }
            }
        };
        Ok(Self {
            spec: spec.clone(),
            schedule,
            kernel,
        })
    }

    /// The layer spec.
    pub fn spec(&self) -> &FcSpec {
        &self.spec
    }

    /// The dense BSGS plan in use, or `None` on the legacy diagonal path
    /// and on the sparse path (see [`HomFc::sparse_plan`]).
    pub fn plan(&self) -> Option<BsgsPlan> {
        match &self.kernel {
            FcKernel::Diagonal(_) | FcKernel::SparseBsgs { .. } => None,
            FcKernel::Bsgs { plan, .. } => Some(*plan),
        }
    }

    /// The sparse plan in use, when the layer was prepared sparsity-aware.
    pub fn sparse_plan(&self) -> Option<&SparseBsgsPlan> {
        match &self.kernel {
            FcKernel::SparseBsgs { plan, .. } => Some(plan),
            _ => None,
        }
    }

    /// The pow2 factor (as `log2`) pulled out of the sparse masks, if any.
    pub fn pow2_scale_log2(&self) -> u32 {
        match &self.kernel {
            FcKernel::SparseBsgs { scale_log2, .. } => *scale_log2,
            _ => 0,
        }
    }

    /// Worst prepared-mask infinity norm (drives the noise model).
    fn max_norm(&self) -> u64 {
        let it: Box<dyn Iterator<Item = &PreparedPlaintext>> = match &self.kernel {
            FcKernel::Diagonal(d) => Box::new(d.iter()),
            FcKernel::Bsgs { groups, .. } => Box::new(groups.iter().flatten()),
            FcKernel::SparseBsgs { groups, .. } => {
                Box::new(groups.iter().flatten().map(|(_, m)| m))
            }
        };
        it.map(PreparedPlaintext::inf_norm)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Conservative Table-III prediction of the layer's output noise at
    /// `level` (see `HomConv2d::noise_after`). On the diagonal path: `n_i`
    /// terms, each charged the worst diagonal norm and one rotation in
    /// schedule order. On the BSGS path:
    /// [`cheetah_bfv::NoiseEstimate::bsgs_matvec_at`] — `g` groups of `b`
    /// rotate-mul inner terms plus one giant rotation each, **not** `n_i`
    /// sequential rotate-adds. Upper-bounds the engine-tracked estimate of
    /// [`HomFc::apply`].
    pub fn noise_after(
        &self,
        input: &cheetah_bfv::NoiseEstimate,
        params: &cheetah_bfv::BfvParams,
        level: usize,
    ) -> cheetah_bfv::NoiseEstimate {
        let max_norm = self.max_norm();
        match &self.kernel {
            FcKernel::Diagonal(diagonals) => crate::linear::accumulated_term_noise(
                input,
                params,
                level,
                self.schedule,
                max_norm,
                diagonals.len(),
            ),
            FcKernel::Bsgs { plan, .. } => {
                input.bsgs_matvec_at(params, level, plan.b, plan.g, 2 * max_norm)
            }
            FcKernel::SparseBsgs {
                groups, scale_log2, ..
            } => {
                if groups.is_empty() {
                    return cheetah_bfv::NoiseEstimate::zero();
                }
                // Only live work accumulates noise: the widest live group
                // bounds the inner terms, dead groups never rotate.
                let live_b = groups.iter().map(Vec::len).max().unwrap_or(1);
                let est = input.bsgs_matvec_at(params, level, live_b, groups.len(), 2 * max_norm);
                if *scale_log2 > 0 {
                    est.mul_plain_at(params, level, 1, 2 * (1u64 << scale_log2))
                } else {
                    est
                }
            }
        }
    }

    /// Rotation steps the evaluation may need: `1..n_i`. A superset of
    /// every plan's steps (baby steps `1..b` and giant steps `u·b` are all
    /// below `n_i`); use [`HomFc::rotation_steps`] on a prepared layer for
    /// the exact plan-specific set.
    pub fn required_steps(spec: &FcSpec) -> Vec<i64> {
        (1..spec.ni as i64).collect()
    }

    /// The exact rotation steps this prepared layer performs: every
    /// nonzero diagonal step on the legacy path, baby steps `1..b` plus
    /// giant steps `b, 2b, …` under a BSGS plan.
    pub fn rotation_steps(&self) -> Vec<i64> {
        match &self.kernel {
            FcKernel::Diagonal(diagonals) => (1..diagonals.len() as i64).collect(),
            FcKernel::Bsgs { plan, groups } => {
                let mut steps: Vec<i64> = (1..plan.b as i64).collect();
                steps.extend((1..groups.len() as i64).map(|u| u * plan.b as i64));
                steps
            }
            FcKernel::SparseBsgs { plan, .. } => plan.rotation_steps(),
        }
    }

    /// Packs an input vector replicated twice (`x ‖ x`) so row rotations
    /// act as rotations mod `n_i`.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches the spec.
    pub fn encode_input(
        spec: &FcSpec,
        input: &Tensor,
        encoder: &BatchEncoder,
    ) -> Result<Plaintext> {
        assert_eq!(input.len(), spec.ni, "input length mismatch");
        let mut doubled = Vec::with_capacity(2 * spec.ni);
        doubled.extend_from_slice(input.data());
        doubled.extend_from_slice(input.data());
        encoder.encode_signed(&doubled)
    }

    /// Applies the layer; the output vector lands in slots `[0, n_o)`.
    ///
    /// Runs the rotation + mul-accumulate loop across [`default_threads`]
    /// worker threads; see [`HomFc::apply_threaded`] for an explicit count.
    ///
    /// # Errors
    ///
    /// Propagates BFV evaluation errors.
    pub fn apply(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext> {
        self.apply_threaded(input, eval, keys, default_threads())
    }

    /// [`HomFc::apply`] with an explicit worker-thread count
    /// (`threads <= 1` runs fully inline). The work range — diagonal steps
    /// on the legacy path, giant-step groups under a BSGS plan — is split
    /// into contiguous chunks, one scratch-owning worker per chunk;
    /// per-chunk partial sums merge in chunk order, so residues — and the
    /// decrypted output — are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates BFV evaluation errors.
    pub fn apply_threaded(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Ciphertext> {
        // The scratch-reuse hot path copies the input into evaluator-owned
        // buffers, so foreign ciphertexts must be rejected up front.
        eval.params().check_same(input.params())?;
        match &self.kernel {
            FcKernel::Diagonal(diagonals) => {
                self.apply_diagonal(diagonals, input, eval, keys, threads)
            }
            FcKernel::Bsgs { plan, groups } => {
                self.apply_bsgs(*plan, groups, input, eval, keys, threads)
            }
            FcKernel::SparseBsgs {
                plan,
                groups,
                scale_log2,
            } => self.apply_sparse(plan, groups, *scale_log2, input, eval, keys, threads),
        }
    }

    fn apply_diagonal(
        &self,
        diagonals: &[PreparedPlaintext],
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Ciphertext> {
        let level = input.level();
        // Accumulators follow the input's level: a modulus-switched input
        // runs the whole layer over its live limbs only.
        let partials = map_chunks(diagonals.len(), threads, |range| {
            let mut scratch = eval.new_scratch();
            let mut acc = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut tmp = Ciphertext::transparent_zero_at(eval.params(), level);
            match self.schedule {
                Schedule::InputAligned => {
                    for (k, diag) in range.clone().zip(&diagonals[range]) {
                        // Rotate the input into alignment, then fuse the
                        // multiply into the accumulator.
                        eval.rotate_rows_into(&mut tmp, input, k as i64, keys, &mut scratch)?;
                        eval.mul_plain_accumulate(&mut acc, &tmp, diag)?;
                    }
                }
                Schedule::PartialAligned => {
                    let mut prod = Ciphertext::transparent_zero_at(eval.params(), level);
                    for (k, diag) in range.clone().zip(&diagonals[range]) {
                        // Multiply the *fresh* input, then rotate the
                        // partial product into alignment.
                        prod.copy_from(input);
                        eval.mul_plain_assign(&mut prod, diag)?;
                        eval.rotate_rows_into(&mut tmp, &prod, k as i64, keys, &mut scratch)?;
                        eval.add_assign(&mut acc, &tmp)?;
                    }
                }
            }
            Ok(acc)
        })?;
        merge_partials(partials, eval)
    }

    /// The BSGS evaluation: hoist the input once, replay the `b − 1` baby
    /// rotations into a shared read-only set, then fan the giant-step
    /// groups across workers — each group fuses its inner sum from the
    /// baby set and pays exactly one direct rotation.
    fn apply_bsgs(
        &self,
        plan: BsgsPlan,
        groups: &[Vec<PreparedPlaintext>],
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Ciphertext> {
        let level = input.level();
        // Baby set: babies[v] = rot(input, v). One hoist serves the whole
        // set; the step-0 replay degenerates to a copy of the input.
        let mut scratch = eval.new_scratch();
        let mut babies: Vec<Ciphertext> = Vec::new();
        if plan.b > 1 {
            let steps: Vec<i64> = (0..plan.b as i64).collect();
            let mut hoisted = HoistedDecomposition::empty(eval.params());
            eval.rotate_set_hoisted_into(
                &mut babies,
                input,
                &steps,
                keys,
                &mut hoisted,
                &mut scratch,
            )?;
        } else {
            babies.push(input.clone());
        }
        let babies = &babies;
        let partials = map_chunks(groups.len(), threads, |range| {
            let mut scratch = eval.new_scratch();
            let mut acc = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut rotated = scratch.take_ct(eval.params(), level);
            for (u, masks) in range.clone().zip(&groups[range]) {
                // Group accumulator leased (zeroed) from the per-level
                // pool and returned after its sum folds into the partial,
                // so every group past the first recycles the same buffer.
                // (An early error drops the worker-local pool wholesale,
                // so the lease needs no cleanup on that path.)
                let mut inner = scratch.take_ct(eval.params(), level);
                for (baby, mask) in babies.iter().zip(masks) {
                    eval.mul_plain_accumulate(&mut inner, baby, mask)?;
                }
                if u == 0 {
                    eval.add_assign(&mut acc, &inner)?;
                } else {
                    eval.rotate_rows_into(
                        &mut rotated,
                        &inner,
                        (u * plan.b) as i64,
                        keys,
                        &mut scratch,
                    )?;
                    eval.add_assign(&mut acc, &rotated)?;
                }
                scratch.put_ct(inner);
            }
            scratch.put_ct(rotated);
            Ok(acc)
        })?;
        merge_partials(partials, eval)
    }

    /// The sparse BSGS evaluation: hoist the input once and replay only
    /// the *live* baby steps, fan only the *live* giant groups across
    /// workers. An all-zero layer returns a transparent zero without a
    /// single rotation or multiply. The pulled-out pow2 factor (if any)
    /// is re-applied with one scalar multiply after the merge.
    #[allow(clippy::too_many_arguments)]
    fn apply_sparse(
        &self,
        plan: &SparseBsgsPlan,
        groups: &[Vec<(usize, PreparedPlaintext)>],
        scale_log2: u32,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Ciphertext> {
        let level = input.level();
        if groups.is_empty() {
            return Ok(Ciphertext::transparent_zero_at(eval.params(), level));
        }
        // Baby set, live steps only: baby_at[v] indexes into `babies` for
        // v in plan.baby_steps(); v = 0 reads the unrotated input.
        let mut scratch = eval.new_scratch();
        let mut babies: Vec<Ciphertext> = Vec::new();
        let mut baby_at = vec![usize::MAX; plan.b];
        if !plan.baby_steps().is_empty() {
            let steps: Vec<i64> = plan.baby_steps().iter().map(|&v| v as i64).collect();
            for (i, &v) in plan.baby_steps().iter().enumerate() {
                baby_at[v] = i;
            }
            let mut hoisted = HoistedDecomposition::empty(eval.params());
            eval.rotate_set_hoisted_into(
                &mut babies,
                input,
                &steps,
                keys,
                &mut hoisted,
                &mut scratch,
            )?;
        }
        let babies = &babies;
        let baby_at = &baby_at;
        let live_groups = plan.live_groups();
        let partials = map_chunks(groups.len(), threads, |range| {
            let mut scratch = eval.new_scratch();
            let mut acc = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut rotated = scratch.take_ct(eval.params(), level);
            for (i, masks) in range.clone().zip(&groups[range]) {
                let u = live_groups[i];
                let mut inner = scratch.take_ct(eval.params(), level);
                for (v, mask) in masks {
                    let src = if *v == 0 { input } else { &babies[baby_at[*v]] };
                    eval.mul_plain_accumulate(&mut inner, src, mask)?;
                }
                if u == 0 {
                    eval.add_assign(&mut acc, &inner)?;
                } else {
                    eval.rotate_rows_into(
                        &mut rotated,
                        &inner,
                        (u * plan.b) as i64,
                        keys,
                        &mut scratch,
                    )?;
                    eval.add_assign(&mut acc, &rotated)?;
                }
                scratch.put_ct(inner);
            }
            scratch.put_ct(rotated);
            Ok(acc)
        })?;
        let mut out = merge_partials(partials, eval)?;
        if scale_log2 > 0 {
            eval.mul_scalar_assign(&mut out, 1u64 << scale_log2)?;
        }
        Ok(out)
    }

    /// Extracts the output vector from decoded slots.
    pub fn decode_output(&self, slots: &[i64]) -> Tensor {
        Tensor::from_data(&[self.spec.no], slots[..self.spec.no].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_bfv::{BfvParams, Decryptor, Encryptor, KeyGenerator};
    use cheetah_nn::inference::eval_linear;
    use cheetah_nn::LinearLayer;
    use rand::{Rng, SeedableRng};

    fn spec(ni: usize, no: usize) -> FcSpec {
        FcSpec {
            name: "fc".into(),
            ni,
            no,
        }
    }

    struct Ctx {
        encoder: BatchEncoder,
        enc: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        keys: GaloisKeys,
    }

    fn ctx(spec: &FcSpec) -> Ctx {
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 51);
        let pk = kg.public_key().unwrap();
        let keys = kg
            .galois_keys_for_steps(&HomFc::required_steps(spec))
            .unwrap();
        Ctx {
            encoder: BatchEncoder::new(params.clone()),
            enc: Encryptor::from_public_key(pk, 52),
            dec: Decryptor::new(kg.secret_key().clone()),
            eval: Evaluator::new(params),
            keys,
        }
    }

    fn check_fc(spec: &FcSpec, schedule: Schedule) {
        let mut c = ctx(spec);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let weights = Tensor::from_data(
            &[spec.no, spec.ni],
            (0..spec.no * spec.ni)
                .map(|_| rng.random_range(-5..=5))
                .collect(),
        );
        let input = Tensor::from_data(
            &[spec.ni],
            (0..spec.ni).map(|_| rng.random_range(-9..=9)).collect(),
        );
        let expect = eval_linear(&LinearLayer::Fc(spec.clone()), &weights, &input);

        let layer = HomFc::new(spec, &weights, &c.encoder, &c.eval, schedule).unwrap();
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(spec, &input, &c.encoder).unwrap())
            .unwrap();
        let out_ct = layer.apply(&ct, &c.eval, &c.keys).unwrap();
        let budget = c.dec.invariant_noise_budget(&out_ct).unwrap();
        assert!(budget > 0.0, "{schedule}: budget exhausted");
        let slots = c.encoder.decode_signed(&c.dec.decrypt(&out_ct).unwrap());
        assert_eq!(
            layer.decode_output(&slots).data(),
            expect.data(),
            "{schedule} FC mismatch for ({}, {})",
            spec.ni,
            spec.no
        );
    }

    #[test]
    fn fc_square_both_schedules() {
        check_fc(&spec(16, 16), Schedule::PartialAligned);
        check_fc(&spec(16, 16), Schedule::InputAligned);
    }

    #[test]
    fn fc_rectangular() {
        check_fc(&spec(32, 10), Schedule::PartialAligned);
        check_fc(&spec(32, 10), Schedule::InputAligned);
    }

    #[test]
    fn fc_single_output() {
        check_fc(&spec(8, 1), Schedule::PartialAligned);
    }

    #[test]
    fn bsgs_plan_is_chosen_and_reduces_rotation_ntts() {
        // d = 32 diagonals: the auto-chosen plan must split, perform
        // b + g − 2 rotations, and pay NTT planes for one hoist plus the
        // g − 1 giant steps only — the O(√d) plane-transform headline,
        // pinned against OpCounts.
        let s = spec(32, 8);
        let mut c = ctx(&s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let weights = Tensor::from_data(
            &[s.no, s.ni],
            (0..s.no * s.ni).map(|_| rng.random_range(-5..=5)).collect(),
        );
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();

        let bsgs = HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned).unwrap();
        let plan = bsgs.plan().expect("d = 32 must pick a BSGS plan");
        assert!(plan.b > 1 && plan.g > 1, "√d split expected, got {plan:?}");

        let params = c.eval.params();
        let planes = (params.l_ct() as u64 + 1) * params.limbs() as u64;
        c.eval.reset_op_counts();
        let out = bsgs.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let counts = c.eval.op_counts();
        assert_eq!(counts.rotate as usize, plan.rotations());
        assert_eq!(
            counts.ntt,
            planes * plan.g as u64,
            "one hoist + (g−1) giant rotations worth of plane transforms"
        );

        // The legacy diagonal path pays a full rotation per diagonal.
        let diag = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::InputAligned,
            None,
        )
        .unwrap();
        c.eval.reset_op_counts();
        let out_diag = diag.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let diag_counts = c.eval.op_counts();
        assert_eq!(diag_counts.ntt, planes * (s.ni as u64 - 1));
        assert!(counts.ntt < diag_counts.ntt / 4, "BSGS must slash NTT work");

        // And both decrypt to identical slots.
        let a = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&out).unwrap());
        let b = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&out_diag).unwrap());
        assert_eq!(a, b, "BSGS and diagonal outputs diverged");
    }

    #[test]
    fn forced_padding_plan_matches_diagonal_path() {
        // b·g = 15 > d = 8: the padded tail group is skipped; output must
        // still match the legacy path slot for slot.
        let s = spec(8, 4);
        let mut c = ctx(&s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let weights = Tensor::from_data(
            &[s.no, s.ni],
            (0..s.no * s.ni).map(|_| rng.random_range(-5..=5)).collect(),
        );
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).map(|i| i - 3).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let forced = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::PartialAligned,
            Some(BsgsPlan { b: 3, g: 5 }),
        )
        .unwrap();
        let legacy = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::PartialAligned,
            None,
        )
        .unwrap();
        let a = forced.apply(&ct, &c.eval, &c.keys).unwrap();
        let b = legacy.apply(&ct, &c.eval, &c.keys).unwrap();
        assert_eq!(
            c.encoder.decode_signed(&c.dec.decrypt_checked(&a).unwrap()),
            c.encoder.decode_signed(&c.dec.decrypt_checked(&b).unwrap())
        );
        // The padded plan performs (b−1) + (groups−1) rotations with
        // groups = ceil(d/b) = 3 live groups.
        assert_eq!(forced.rotation_steps(), vec![1, 2, 3, 6]);
    }

    #[test]
    fn pa_noise_budget_at_least_ia() {
        let s = spec(32, 8);
        let mut c = ctx(&s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let weights = Tensor::from_data(
            &[s.no, s.ni],
            (0..s.no * s.ni).map(|_| rng.random_range(-5..=5)).collect(),
        );
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let pa = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::PartialAligned,
            None,
        )
        .unwrap()
        .apply(&ct, &c.eval, &c.keys)
        .unwrap();
        let ia = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::InputAligned,
            None,
        )
        .unwrap()
        .apply(&ct, &c.eval, &c.keys)
        .unwrap();
        let pa_budget = c.dec.invariant_noise_budget(&pa).unwrap();
        let ia_budget = c.dec.invariant_noise_budget(&ia).unwrap();
        assert!(
            pa_budget >= ia_budget,
            "PA {pa_budget:.1} vs IA {ia_budget:.1}"
        );
    }

    /// Square weights (diagonals independent) with exactly `live`
    /// diagonals populated from `rng`.
    fn sparse_square_weights(ni: usize, live: &[usize], rng: &mut rand::rngs::StdRng) -> Tensor {
        let mut w = vec![0i64; ni * ni];
        for &k in live {
            for off in 0..ni {
                let mut v = 0;
                while v == 0 {
                    v = rng.random_range(-5..=5);
                }
                w[(off % ni) * ni + (off + k) % ni] = v;
            }
        }
        Tensor::from_data(&[ni, ni], w)
    }

    #[test]
    fn sparse_fc_matches_dense_and_skips_dead_rotations() {
        let s = spec(32, 32);
        let mut c = ctx(&s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let weights = sparse_square_weights(s.ni, &[0, 5, 11, 19, 30], &mut rng);
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).map(|i| i - 16).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();

        let sparse =
            HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned).unwrap();
        let plan = sparse
            .sparse_plan()
            .expect("dead diagonals force the sparse path");
        let dense = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::PartialAligned,
            BsgsPlan::choose(s.ni, &HeCostParams::for_bfv(c.eval.params(), 0)),
        )
        .unwrap();

        c.eval.reset_op_counts();
        let out_sparse = sparse.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let sparse_counts = c.eval.op_counts();
        c.eval.reset_op_counts();
        let out_dense = dense.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let dense_counts = c.eval.op_counts();

        // Skipped terms are zero polynomials: the FULL ciphertext matches.
        assert_eq!(
            c.encoder
                .decode_signed(&c.dec.decrypt_checked(&out_sparse).unwrap()),
            c.encoder
                .decode_signed(&c.dec.decrypt_checked(&out_dense).unwrap()),
            "sparse and dense outputs diverged"
        );
        assert_eq!(sparse_counts.rotate as usize, plan.rotations());
        assert!(
            sparse_counts.rotate < dense_counts.rotate,
            "sparse {} vs dense {} rotations",
            sparse_counts.rotate,
            dense_counts.rotate
        );
        assert!(
            sparse_counts.mul < dense_counts.mul,
            "5 live of 32 diagonals"
        );
        assert!(sparse_counts.ntt < dense_counts.ntt);

        // Keys for exactly the sparse steps suffice.
        let params = c.eval.params().clone();
        let mut kg = KeyGenerator::from_seed(params, 51);
        let lean_keys = kg.galois_keys_for_steps(&sparse.rotation_steps()).unwrap();
        let out_lean = sparse.apply_threaded(&ct, &c.eval, &lean_keys, 1).unwrap();
        assert_eq!(
            c.encoder
                .decode_signed(&c.dec.decrypt_checked(&out_lean).unwrap()),
            c.encoder
                .decode_signed(&c.dec.decrypt_checked(&out_dense).unwrap())
        );
    }

    #[test]
    fn all_zero_fc_is_transparent_and_rotation_free() {
        let s = spec(16, 16);
        let mut c = ctx(&s);
        let weights = Tensor::zeros(&[s.ni, s.ni]);
        let input = Tensor::from_data(&[s.ni], (1..=s.ni as i64).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let layer =
            HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned).unwrap();
        assert!(layer.sparse_plan().unwrap().is_empty());
        assert!(layer.rotation_steps().is_empty());
        c.eval.reset_op_counts();
        let out = layer.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let counts = c.eval.op_counts();
        assert_eq!(counts.rotate, 0, "all-zero layer must not rotate");
        assert_eq!(counts.mul, 0);
        assert_eq!(
            out.noise().bound_log2,
            f64::NEG_INFINITY,
            "all-zero layer outputs transparent zero"
        );
        let slots = c.encoder.decode_signed(&c.dec.decrypt(&out).unwrap());
        assert!(slots.iter().all(|&v| v == 0));
    }

    #[test]
    fn pow2_sparse_fc_factors_the_scale_and_stays_exact() {
        let s = spec(16, 16);
        let mut c = ctx(&s);
        // Live diagonals carry only ±4 and ±8: shared factor 2².
        let mut w = vec![0i64; s.ni * s.ni];
        for (i, &k) in [0usize, 3, 7, 12].iter().enumerate() {
            for off in 0..s.ni {
                let v = if (off + i) % 2 == 0 { 4 } else { -8 };
                w[(off % s.ni) * s.ni + (off + k) % s.ni] = v;
            }
        }
        let weights = Tensor::from_data(&[s.ni, s.ni], w);
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).map(|i| 7 - i).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let layer =
            HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned).unwrap();
        assert_eq!(layer.pow2_scale_log2(), 2, "shared ±4/±8 factor is 2²");
        let out = layer.apply(&ct, &c.eval, &c.keys).unwrap();
        let expect = eval_linear(&LinearLayer::Fc(s.clone()), &weights, &input);
        let slots = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&out).unwrap());
        assert_eq!(layer.decode_output(&slots).data(), expect.data());
    }

    #[test]
    fn oversized_input_rejected() {
        let s = spec(1024, 10); // 2*1024 = row size of n=2048? row=1024 -> too big
        let params = BfvParams::builder()
            .degree(2048)
            .plain_bits(20)
            .cipher_bits(54)
            .build()
            .unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let eval = Evaluator::new(params);
        let weights = Tensor::zeros(&[10, 1024]);
        assert!(matches!(
            HomFc::new(&s, &weights, &encoder, &eval, Schedule::PartialAligned),
            Err(Error::TooManyValues { .. })
        ));
    }
}
