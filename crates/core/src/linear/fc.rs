//! Homomorphic fully connected layers via the diagonal method, under
//! either schedule.
//!
//! The weight matrix `W (n_o × n_i)` is split into `n_i` generalized
//! diagonals `diag_k[j] = W[j mod n_o][(j+k) mod n_i]`; then
//! `y_ext[j] = Σ_k rot(x, k) ⊙ diag_k` satisfies
//! `y_ext[j] = (W·x)[j mod n_o]` — the matrix-vector product materializes
//! replicated across the slots. The input is packed twice
//! (`x ‖ x`) so plain row rotations realize rotations mod `n_i`.
//!
//! Sched-IA rotates `x` then multiplies; Sched-PA multiplies the fresh `x`
//! by pre-shifted diagonals and rotates the partial products (Fig. 5).
//!
//! Constraints: `n_i` a power of two, `n_o ≤ n_i`, `2·n_i ≤ n/2`.

use cheetah_bfv::{
    BatchEncoder, Ciphertext, Error, Evaluator, GaloisKeys, Plaintext, PreparedPlaintext, Result,
};
use cheetah_nn::{FcSpec, Tensor};

use crate::linear::parallel::{default_threads, map_chunks, merge_partials};
use crate::schedule::Schedule;

/// A prepared homomorphic FC layer.
#[derive(Debug)]
pub struct HomFc {
    spec: FcSpec,
    schedule: Schedule,
    /// Prepared diagonal plaintexts, index = rotation step `k`.
    diagonals: Vec<PreparedPlaintext>,
}

impl HomFc {
    /// Prepares the layer (encodes and NTT-transforms every diagonal).
    ///
    /// `weights` has shape `(no, ni)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `2·n_i` exceeds the row size.
    ///
    /// # Panics
    ///
    /// Panics unless `n_i` is a power of two and `n_o ≤ n_i`, or on a
    /// weight-shape mismatch.
    pub fn new(
        spec: &FcSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
    ) -> Result<Self> {
        assert!(spec.ni.is_power_of_two(), "n_i must be a power of two");
        assert!(spec.no <= spec.ni, "n_o must not exceed n_i");
        assert_eq!(
            weights.shape(),
            &[spec.no, spec.ni],
            "weight shape mismatch"
        );
        if 2 * spec.ni > encoder.row_size() {
            return Err(Error::TooManyValues {
                given: 2 * spec.ni,
                slots: encoder.row_size(),
            });
        }
        let slots = encoder.slots();
        let mut diagonals = Vec::with_capacity(spec.ni);
        for k in 0..spec.ni {
            let mut mask = vec![0i64; slots];
            match schedule {
                Schedule::InputAligned => {
                    // Aligned to post-rotation positions j in [0, ni).
                    for (j, slot) in mask.iter_mut().enumerate().take(spec.ni) {
                        *slot = weights.data()[(j % spec.no) * spec.ni + (j + k) % spec.ni];
                    }
                }
                Schedule::PartialAligned => {
                    // Aligned to pre-rotation positions m in [k, ni + k):
                    // after rotating left by k, position j reads m = j + k.
                    for (j, slot) in mask[k..spec.ni + k].iter_mut().enumerate() {
                        *slot = weights.data()[(j % spec.no) * spec.ni + (j + k) % spec.ni];
                    }
                }
            }
            let pt = encoder.encode_signed(&mask)?;
            diagonals.push(eval.prepare_plaintext(&pt)?);
        }
        Ok(Self {
            spec: spec.clone(),
            schedule,
            diagonals,
        })
    }

    /// The layer spec.
    pub fn spec(&self) -> &FcSpec {
        &self.spec
    }

    /// Conservative Table-III prediction of the layer's output noise at
    /// `level` (see `HomConv2d::noise_after`): `n_i` diagonal terms, each
    /// charged the worst diagonal norm and one rotation in schedule order.
    /// Upper-bounds the engine-tracked estimate of [`HomFc::apply`].
    pub fn noise_after(
        &self,
        input: &cheetah_bfv::NoiseEstimate,
        params: &cheetah_bfv::BfvParams,
        level: usize,
    ) -> cheetah_bfv::NoiseEstimate {
        let max_norm = self
            .diagonals
            .iter()
            .map(PreparedPlaintext::inf_norm)
            .max()
            .unwrap_or(1)
            .max(1);
        crate::linear::accumulated_term_noise(
            input,
            params,
            level,
            self.schedule,
            max_norm,
            self.diagonals.len(),
        )
    }

    /// Rotation steps the evaluation needs: `1..n_i`.
    pub fn required_steps(spec: &FcSpec) -> Vec<i64> {
        (1..spec.ni as i64).collect()
    }

    /// Packs an input vector replicated twice (`x ‖ x`) so row rotations
    /// act as rotations mod `n_i`.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches the spec.
    pub fn encode_input(
        spec: &FcSpec,
        input: &Tensor,
        encoder: &BatchEncoder,
    ) -> Result<Plaintext> {
        assert_eq!(input.len(), spec.ni, "input length mismatch");
        let mut doubled = Vec::with_capacity(2 * spec.ni);
        doubled.extend_from_slice(input.data());
        doubled.extend_from_slice(input.data());
        encoder.encode_signed(&doubled)
    }

    /// Applies the layer; the output vector lands in slots `[0, n_o)`.
    ///
    /// Runs the rotation + mul-accumulate loop across [`default_threads`]
    /// worker threads; see [`HomFc::apply_threaded`] for an explicit count.
    ///
    /// # Errors
    ///
    /// Propagates BFV evaluation errors.
    pub fn apply(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext> {
        self.apply_threaded(input, eval, keys, default_threads())
    }

    /// [`HomFc::apply`] with an explicit worker-thread count
    /// (`threads <= 1` runs fully inline). The diagonal index range is
    /// split into contiguous chunks, one scratch-owning worker per chunk;
    /// per-chunk partial sums merge in chunk order, so residues — and the
    /// decrypted output — are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates BFV evaluation errors.
    pub fn apply_threaded(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Ciphertext> {
        // The scratch-reuse hot path copies the input into evaluator-owned
        // buffers, so foreign ciphertexts must be rejected up front.
        eval.params().check_same(input.params())?;
        let level = input.level();
        // Accumulators follow the input's level: a modulus-switched input
        // runs the whole layer over its live limbs only.
        let partials = map_chunks(self.diagonals.len(), threads, |range| {
            let mut scratch = eval.new_scratch();
            let mut acc = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut tmp = Ciphertext::transparent_zero_at(eval.params(), level);
            match self.schedule {
                Schedule::InputAligned => {
                    for (k, diag) in range.clone().zip(&self.diagonals[range]) {
                        // Rotate the input into alignment, then fuse the
                        // multiply into the accumulator.
                        eval.rotate_rows_into(&mut tmp, input, k as i64, keys, &mut scratch)?;
                        eval.mul_plain_accumulate(&mut acc, &tmp, diag)?;
                    }
                }
                Schedule::PartialAligned => {
                    let mut prod = Ciphertext::transparent_zero_at(eval.params(), level);
                    for (k, diag) in range.clone().zip(&self.diagonals[range]) {
                        // Multiply the *fresh* input, then rotate the
                        // partial product into alignment.
                        prod.copy_from(input);
                        eval.mul_plain_assign(&mut prod, diag)?;
                        eval.rotate_rows_into(&mut tmp, &prod, k as i64, keys, &mut scratch)?;
                        eval.add_assign(&mut acc, &tmp)?;
                    }
                }
            }
            Ok(acc)
        })?;
        merge_partials(partials, eval)
    }

    /// Extracts the output vector from decoded slots.
    pub fn decode_output(&self, slots: &[i64]) -> Tensor {
        Tensor::from_data(&[self.spec.no], slots[..self.spec.no].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_bfv::{BfvParams, Decryptor, Encryptor, KeyGenerator};
    use cheetah_nn::inference::eval_linear;
    use cheetah_nn::LinearLayer;
    use rand::{Rng, SeedableRng};

    fn spec(ni: usize, no: usize) -> FcSpec {
        FcSpec {
            name: "fc".into(),
            ni,
            no,
        }
    }

    struct Ctx {
        encoder: BatchEncoder,
        enc: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        keys: GaloisKeys,
    }

    fn ctx(spec: &FcSpec) -> Ctx {
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 51);
        let pk = kg.public_key().unwrap();
        let keys = kg
            .galois_keys_for_steps(&HomFc::required_steps(spec))
            .unwrap();
        Ctx {
            encoder: BatchEncoder::new(params.clone()),
            enc: Encryptor::from_public_key(pk, 52),
            dec: Decryptor::new(kg.secret_key().clone()),
            eval: Evaluator::new(params),
            keys,
        }
    }

    fn check_fc(spec: &FcSpec, schedule: Schedule) {
        let mut c = ctx(spec);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let weights = Tensor::from_data(
            &[spec.no, spec.ni],
            (0..spec.no * spec.ni)
                .map(|_| rng.random_range(-5..=5))
                .collect(),
        );
        let input = Tensor::from_data(
            &[spec.ni],
            (0..spec.ni).map(|_| rng.random_range(-9..=9)).collect(),
        );
        let expect = eval_linear(&LinearLayer::Fc(spec.clone()), &weights, &input);

        let layer = HomFc::new(spec, &weights, &c.encoder, &c.eval, schedule).unwrap();
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(spec, &input, &c.encoder).unwrap())
            .unwrap();
        let out_ct = layer.apply(&ct, &c.eval, &c.keys).unwrap();
        let budget = c.dec.invariant_noise_budget(&out_ct).unwrap();
        assert!(budget > 0.0, "{schedule}: budget exhausted");
        let slots = c.encoder.decode_signed(&c.dec.decrypt(&out_ct).unwrap());
        assert_eq!(
            layer.decode_output(&slots).data(),
            expect.data(),
            "{schedule} FC mismatch for ({}, {})",
            spec.ni,
            spec.no
        );
    }

    #[test]
    fn fc_square_both_schedules() {
        check_fc(&spec(16, 16), Schedule::PartialAligned);
        check_fc(&spec(16, 16), Schedule::InputAligned);
    }

    #[test]
    fn fc_rectangular() {
        check_fc(&spec(32, 10), Schedule::PartialAligned);
        check_fc(&spec(32, 10), Schedule::InputAligned);
    }

    #[test]
    fn fc_single_output() {
        check_fc(&spec(8, 1), Schedule::PartialAligned);
    }

    #[test]
    fn pa_noise_budget_at_least_ia() {
        let s = spec(32, 8);
        let mut c = ctx(&s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let weights = Tensor::from_data(
            &[s.no, s.ni],
            (0..s.no * s.ni).map(|_| rng.random_range(-5..=5)).collect(),
        );
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let pa = HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned)
            .unwrap()
            .apply(&ct, &c.eval, &c.keys)
            .unwrap();
        let ia = HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::InputAligned)
            .unwrap()
            .apply(&ct, &c.eval, &c.keys)
            .unwrap();
        let pa_budget = c.dec.invariant_noise_budget(&pa).unwrap();
        let ia_budget = c.dec.invariant_noise_budget(&ia).unwrap();
        assert!(
            pa_budget >= ia_budget,
            "PA {pa_budget:.1} vs IA {ia_budget:.1}"
        );
    }

    #[test]
    fn oversized_input_rejected() {
        let s = spec(1024, 10); // 2*1024 = row size of n=2048? row=1024 -> too big
        let params = BfvParams::builder()
            .degree(2048)
            .plain_bits(20)
            .cipher_bits(54)
            .build()
            .unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let eval = Evaluator::new(params);
        let weights = Tensor::zeros(&[10, 1024]);
        assert!(matches!(
            HomFc::new(&s, &weights, &encoder, &eval, Schedule::PartialAligned),
            Err(Error::TooManyValues { .. })
        ));
    }
}
