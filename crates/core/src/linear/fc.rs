//! Homomorphic fully connected layers via the diagonal method, under
//! either schedule — reshaped into Baby-Step-Giant-Step rotation sets when
//! the cost model says the split wins.
//!
//! The weight matrix `W (n_o × n_i)` is split into `n_i` generalized
//! diagonals `diag_k[j] = W[j mod n_o][(j+k) mod n_i]`; then
//! `y_ext[j] = Σ_k rot(x, k) ⊙ diag_k` satisfies
//! `y_ext[j] = (W·x)[j mod n_o]` — the matrix-vector product materializes
//! replicated across the slots. The input is packed twice
//! (`x ‖ x`) so plain row rotations realize rotations mod `n_i`.
//!
//! # The BSGS reshape
//!
//! Writing `k = u·b + v` (`v < b` baby, `u < g` giant, `b·g ≥ n_i`):
//!
//! ```text
//! y = Σ_u rot( Σ_v rot(x, v) ⊙ rot⁻ᵘᵇ(diag_{ub+v}), u·b )
//! ```
//!
//! The `b − 1` baby rotations all read the *input*, so one hoist
//! ([`Evaluator::hoist_into`]) covers the whole set; the giant-step
//! pre-rotation of each diagonal happens on the plaintext mask at
//! preparation time (free); only the `g − 1` giant rotations of the group
//! inner sums pay full NTT bills. Rotation plane transforms drop from
//! `O(d·l_ct)` (one full rotation per diagonal) to `O(√d·l_ct)` (one hoist
//! plus `g − 1 ≈ √d` rotations). The plan is chosen per layer from
//! [`HeCostParams`]; tiny layers keep the plain diagonal path.
//!
//! Sched-IA rotates `x` then multiplies; Sched-PA multiplies the fresh `x`
//! by pre-shifted diagonals and rotates the partial products (Fig. 5).
//! The BSGS path subsumes both: `b = d` is hoisted Sched-IA, `b = 1` is
//! Sched-PA; its decrypted output is identical to either in every slot.
//!
//! Constraints: `n_i` a power of two, `n_o ≤ n_i`, `2·n_i ≤ n/2`.

use cheetah_bfv::{
    BatchEncoder, Ciphertext, Error, Evaluator, GaloisKeys, HoistedDecomposition, Plaintext,
    PreparedPlaintext, Result,
};
use cheetah_nn::{FcSpec, Tensor};

use crate::cost::HeCostParams;
use crate::linear::parallel::{default_threads, map_chunks, merge_partials};
use crate::linear::BsgsPlan;
use crate::schedule::Schedule;

/// The prepared weight material: either the legacy per-step diagonals or
/// the BSGS group layout with giant-step pre-rotated masks.
#[derive(Debug)]
enum FcKernel {
    /// Legacy diagonal method: `diagonals[k]` multiplies rotation step `k`
    /// in schedule order.
    Diagonal(Vec<PreparedPlaintext>),
    /// BSGS: `groups[u][v]` multiplies baby rotation `v` inside giant
    /// group `u` (diagonal `k = u·b + v`; the last group may be short when
    /// `b·g > d`).
    Bsgs {
        plan: BsgsPlan,
        groups: Vec<Vec<PreparedPlaintext>>,
    },
}

/// A prepared homomorphic FC layer.
#[derive(Debug)]
pub struct HomFc {
    spec: FcSpec,
    schedule: Schedule,
    kernel: FcKernel,
}

impl HomFc {
    /// Prepares the layer (encodes and NTT-transforms every diagonal),
    /// choosing the rotation plan from the parameter set's cost model:
    /// a [`BsgsPlan`] where the hoisted split beats the diagonal path,
    /// the plain diagonal method otherwise (tiny `n_i`).
    ///
    /// `weights` has shape `(no, ni)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `2·n_i` exceeds the row size.
    ///
    /// # Panics
    ///
    /// Panics unless `n_i` is a power of two and `n_o ≤ n_i`, or on a
    /// weight-shape mismatch.
    pub fn new(
        spec: &FcSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
    ) -> Result<Self> {
        let plan = BsgsPlan::choose(spec.ni, &HeCostParams::for_bfv(eval.params(), 0));
        Self::with_plan(spec, weights, encoder, eval, schedule, plan)
    }

    /// [`HomFc::new`] with an explicit rotation plan: `Some(plan)` forces
    /// the BSGS split (`plan.b·plan.g ≥ n_i`; padded tail diagonals are
    /// skipped), `None` forces the legacy schedule-ordered diagonal path.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] when `2·n_i` exceeds the row size.
    ///
    /// # Panics
    ///
    /// Panics on the [`HomFc::new`] conditions, or when a forced plan does
    /// not cover every diagonal (`b·g < n_i`) or has a zero dimension.
    pub fn with_plan(
        spec: &FcSpec,
        weights: &Tensor,
        encoder: &BatchEncoder,
        eval: &Evaluator,
        schedule: Schedule,
        plan: Option<BsgsPlan>,
    ) -> Result<Self> {
        assert!(spec.ni.is_power_of_two(), "n_i must be a power of two");
        assert!(spec.no <= spec.ni, "n_o must not exceed n_i");
        assert_eq!(
            weights.shape(),
            &[spec.no, spec.ni],
            "weight shape mismatch"
        );
        if 2 * spec.ni > encoder.row_size() {
            return Err(Error::TooManyValues {
                given: 2 * spec.ni,
                slots: encoder.row_size(),
            });
        }
        let slots = encoder.slots();
        let kernel = match plan {
            None => {
                let mut diagonals = Vec::with_capacity(spec.ni);
                for k in 0..spec.ni {
                    let mut mask = vec![0i64; slots];
                    match schedule {
                        Schedule::InputAligned => {
                            // Aligned to post-rotation positions j in [0, ni).
                            for (j, slot) in mask.iter_mut().enumerate().take(spec.ni) {
                                *slot = weights.data()[(j % spec.no) * spec.ni + (j + k) % spec.ni];
                            }
                        }
                        Schedule::PartialAligned => {
                            // Aligned to pre-rotation positions m in [k, ni + k):
                            // after rotating left by k, position j reads m = j + k.
                            for (j, slot) in mask[k..spec.ni + k].iter_mut().enumerate() {
                                *slot = weights.data()[(j % spec.no) * spec.ni + (j + k) % spec.ni];
                            }
                        }
                    }
                    let pt = encoder.encode_signed(&mask)?;
                    diagonals.push(eval.prepare_plaintext(&pt)?);
                }
                FcKernel::Diagonal(diagonals)
            }
            Some(plan) => {
                assert!(plan.b >= 1 && plan.g >= 1, "degenerate BSGS plan");
                assert!(
                    plan.b * plan.g >= spec.ni,
                    "plan ({}, {}) does not cover {} diagonals",
                    plan.b,
                    plan.g,
                    spec.ni
                );
                let mut groups = Vec::with_capacity(plan.g);
                for u in 0..plan.g {
                    let shift = u * plan.b;
                    if shift >= spec.ni {
                        break; // fully padded trailing group
                    }
                    let width = plan.b.min(spec.ni - shift);
                    let mut per_group = Vec::with_capacity(width);
                    for v in 0..width {
                        // Diagonal k = u·b + v, pre-rotated right by the
                        // giant step: support [shift, shift + ni), aligned
                        // so that after the giant rotation by `shift` the
                        // output position j reads weight row j mod no and
                        // the baby-rotated input slot (p + v) mod ni.
                        let mut mask = vec![0i64; slots];
                        for (off, slot) in mask[shift..shift + spec.ni].iter_mut().enumerate() {
                            *slot = weights.data()
                                [(off % spec.no) * spec.ni + (off + shift + v) % spec.ni];
                        }
                        let pt = encoder.encode_signed(&mask)?;
                        per_group.push(eval.prepare_plaintext(&pt)?);
                    }
                    groups.push(per_group);
                }
                FcKernel::Bsgs { plan, groups }
            }
        };
        Ok(Self {
            spec: spec.clone(),
            schedule,
            kernel,
        })
    }

    /// The layer spec.
    pub fn spec(&self) -> &FcSpec {
        &self.spec
    }

    /// The BSGS plan in use, or `None` on the legacy diagonal path.
    pub fn plan(&self) -> Option<BsgsPlan> {
        match &self.kernel {
            FcKernel::Diagonal(_) => None,
            FcKernel::Bsgs { plan, .. } => Some(*plan),
        }
    }

    /// Worst prepared-mask infinity norm (drives the noise model).
    fn max_norm(&self) -> u64 {
        let it: Box<dyn Iterator<Item = &PreparedPlaintext>> = match &self.kernel {
            FcKernel::Diagonal(d) => Box::new(d.iter()),
            FcKernel::Bsgs { groups, .. } => Box::new(groups.iter().flatten()),
        };
        it.map(PreparedPlaintext::inf_norm)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Conservative Table-III prediction of the layer's output noise at
    /// `level` (see `HomConv2d::noise_after`). On the diagonal path: `n_i`
    /// terms, each charged the worst diagonal norm and one rotation in
    /// schedule order. On the BSGS path:
    /// [`cheetah_bfv::NoiseEstimate::bsgs_matvec_at`] — `g` groups of `b`
    /// rotate-mul inner terms plus one giant rotation each, **not** `n_i`
    /// sequential rotate-adds. Upper-bounds the engine-tracked estimate of
    /// [`HomFc::apply`].
    pub fn noise_after(
        &self,
        input: &cheetah_bfv::NoiseEstimate,
        params: &cheetah_bfv::BfvParams,
        level: usize,
    ) -> cheetah_bfv::NoiseEstimate {
        let max_norm = self.max_norm();
        match &self.kernel {
            FcKernel::Diagonal(diagonals) => crate::linear::accumulated_term_noise(
                input,
                params,
                level,
                self.schedule,
                max_norm,
                diagonals.len(),
            ),
            FcKernel::Bsgs { plan, .. } => {
                input.bsgs_matvec_at(params, level, plan.b, plan.g, 2 * max_norm)
            }
        }
    }

    /// Rotation steps the evaluation may need: `1..n_i`. A superset of
    /// every plan's steps (baby steps `1..b` and giant steps `u·b` are all
    /// below `n_i`); use [`HomFc::rotation_steps`] on a prepared layer for
    /// the exact plan-specific set.
    pub fn required_steps(spec: &FcSpec) -> Vec<i64> {
        (1..spec.ni as i64).collect()
    }

    /// The exact rotation steps this prepared layer performs: every
    /// nonzero diagonal step on the legacy path, baby steps `1..b` plus
    /// giant steps `b, 2b, …` under a BSGS plan.
    pub fn rotation_steps(&self) -> Vec<i64> {
        match &self.kernel {
            FcKernel::Diagonal(diagonals) => (1..diagonals.len() as i64).collect(),
            FcKernel::Bsgs { plan, groups } => {
                let mut steps: Vec<i64> = (1..plan.b as i64).collect();
                steps.extend((1..groups.len() as i64).map(|u| u * plan.b as i64));
                steps
            }
        }
    }

    /// Packs an input vector replicated twice (`x ‖ x`) so row rotations
    /// act as rotations mod `n_i`.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches the spec.
    pub fn encode_input(
        spec: &FcSpec,
        input: &Tensor,
        encoder: &BatchEncoder,
    ) -> Result<Plaintext> {
        assert_eq!(input.len(), spec.ni, "input length mismatch");
        let mut doubled = Vec::with_capacity(2 * spec.ni);
        doubled.extend_from_slice(input.data());
        doubled.extend_from_slice(input.data());
        encoder.encode_signed(&doubled)
    }

    /// Applies the layer; the output vector lands in slots `[0, n_o)`.
    ///
    /// Runs the rotation + mul-accumulate loop across [`default_threads`]
    /// worker threads; see [`HomFc::apply_threaded`] for an explicit count.
    ///
    /// # Errors
    ///
    /// Propagates BFV evaluation errors.
    pub fn apply(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext> {
        self.apply_threaded(input, eval, keys, default_threads())
    }

    /// [`HomFc::apply`] with an explicit worker-thread count
    /// (`threads <= 1` runs fully inline). The work range — diagonal steps
    /// on the legacy path, giant-step groups under a BSGS plan — is split
    /// into contiguous chunks, one scratch-owning worker per chunk;
    /// per-chunk partial sums merge in chunk order, so residues — and the
    /// decrypted output — are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates BFV evaluation errors.
    pub fn apply_threaded(
        &self,
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Ciphertext> {
        // The scratch-reuse hot path copies the input into evaluator-owned
        // buffers, so foreign ciphertexts must be rejected up front.
        eval.params().check_same(input.params())?;
        match &self.kernel {
            FcKernel::Diagonal(diagonals) => {
                self.apply_diagonal(diagonals, input, eval, keys, threads)
            }
            FcKernel::Bsgs { plan, groups } => {
                self.apply_bsgs(*plan, groups, input, eval, keys, threads)
            }
        }
    }

    fn apply_diagonal(
        &self,
        diagonals: &[PreparedPlaintext],
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Ciphertext> {
        let level = input.level();
        // Accumulators follow the input's level: a modulus-switched input
        // runs the whole layer over its live limbs only.
        let partials = map_chunks(diagonals.len(), threads, |range| {
            let mut scratch = eval.new_scratch();
            let mut acc = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut tmp = Ciphertext::transparent_zero_at(eval.params(), level);
            match self.schedule {
                Schedule::InputAligned => {
                    for (k, diag) in range.clone().zip(&diagonals[range]) {
                        // Rotate the input into alignment, then fuse the
                        // multiply into the accumulator.
                        eval.rotate_rows_into(&mut tmp, input, k as i64, keys, &mut scratch)?;
                        eval.mul_plain_accumulate(&mut acc, &tmp, diag)?;
                    }
                }
                Schedule::PartialAligned => {
                    let mut prod = Ciphertext::transparent_zero_at(eval.params(), level);
                    for (k, diag) in range.clone().zip(&diagonals[range]) {
                        // Multiply the *fresh* input, then rotate the
                        // partial product into alignment.
                        prod.copy_from(input);
                        eval.mul_plain_assign(&mut prod, diag)?;
                        eval.rotate_rows_into(&mut tmp, &prod, k as i64, keys, &mut scratch)?;
                        eval.add_assign(&mut acc, &tmp)?;
                    }
                }
            }
            Ok(acc)
        })?;
        merge_partials(partials, eval)
    }

    /// The BSGS evaluation: hoist the input once, replay the `b − 1` baby
    /// rotations into a shared read-only set, then fan the giant-step
    /// groups across workers — each group fuses its inner sum from the
    /// baby set and pays exactly one direct rotation.
    fn apply_bsgs(
        &self,
        plan: BsgsPlan,
        groups: &[Vec<PreparedPlaintext>],
        input: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
        threads: usize,
    ) -> Result<Ciphertext> {
        let level = input.level();
        // Baby set: babies[v] = rot(input, v). One hoist serves the whole
        // set; the step-0 replay degenerates to a copy of the input.
        let mut scratch = eval.new_scratch();
        let mut babies: Vec<Ciphertext> = Vec::new();
        if plan.b > 1 {
            let steps: Vec<i64> = (0..plan.b as i64).collect();
            let mut hoisted = HoistedDecomposition::empty(eval.params());
            eval.rotate_set_hoisted_into(
                &mut babies,
                input,
                &steps,
                keys,
                &mut hoisted,
                &mut scratch,
            )?;
        } else {
            babies.push(input.clone());
        }
        let babies = &babies;
        let partials = map_chunks(groups.len(), threads, |range| {
            let mut scratch = eval.new_scratch();
            let mut acc = Ciphertext::transparent_zero_at(eval.params(), level);
            let mut rotated = scratch.take_ct(eval.params(), level);
            for (u, masks) in range.clone().zip(&groups[range]) {
                // Group accumulator leased (zeroed) from the per-level
                // pool and returned after its sum folds into the partial,
                // so every group past the first recycles the same buffer.
                // (An early error drops the worker-local pool wholesale,
                // so the lease needs no cleanup on that path.)
                let mut inner = scratch.take_ct(eval.params(), level);
                for (baby, mask) in babies.iter().zip(masks) {
                    eval.mul_plain_accumulate(&mut inner, baby, mask)?;
                }
                if u == 0 {
                    eval.add_assign(&mut acc, &inner)?;
                } else {
                    eval.rotate_rows_into(
                        &mut rotated,
                        &inner,
                        (u * plan.b) as i64,
                        keys,
                        &mut scratch,
                    )?;
                    eval.add_assign(&mut acc, &rotated)?;
                }
                scratch.put_ct(inner);
            }
            scratch.put_ct(rotated);
            Ok(acc)
        })?;
        merge_partials(partials, eval)
    }

    /// Extracts the output vector from decoded slots.
    pub fn decode_output(&self, slots: &[i64]) -> Tensor {
        Tensor::from_data(&[self.spec.no], slots[..self.spec.no].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_bfv::{BfvParams, Decryptor, Encryptor, KeyGenerator};
    use cheetah_nn::inference::eval_linear;
    use cheetah_nn::LinearLayer;
    use rand::{Rng, SeedableRng};

    fn spec(ni: usize, no: usize) -> FcSpec {
        FcSpec {
            name: "fc".into(),
            ni,
            no,
        }
    }

    struct Ctx {
        encoder: BatchEncoder,
        enc: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        keys: GaloisKeys,
    }

    fn ctx(spec: &FcSpec) -> Ctx {
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let mut kg = KeyGenerator::from_seed(params.clone(), 51);
        let pk = kg.public_key().unwrap();
        let keys = kg
            .galois_keys_for_steps(&HomFc::required_steps(spec))
            .unwrap();
        Ctx {
            encoder: BatchEncoder::new(params.clone()),
            enc: Encryptor::from_public_key(pk, 52),
            dec: Decryptor::new(kg.secret_key().clone()),
            eval: Evaluator::new(params),
            keys,
        }
    }

    fn check_fc(spec: &FcSpec, schedule: Schedule) {
        let mut c = ctx(spec);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let weights = Tensor::from_data(
            &[spec.no, spec.ni],
            (0..spec.no * spec.ni)
                .map(|_| rng.random_range(-5..=5))
                .collect(),
        );
        let input = Tensor::from_data(
            &[spec.ni],
            (0..spec.ni).map(|_| rng.random_range(-9..=9)).collect(),
        );
        let expect = eval_linear(&LinearLayer::Fc(spec.clone()), &weights, &input);

        let layer = HomFc::new(spec, &weights, &c.encoder, &c.eval, schedule).unwrap();
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(spec, &input, &c.encoder).unwrap())
            .unwrap();
        let out_ct = layer.apply(&ct, &c.eval, &c.keys).unwrap();
        let budget = c.dec.invariant_noise_budget(&out_ct).unwrap();
        assert!(budget > 0.0, "{schedule}: budget exhausted");
        let slots = c.encoder.decode_signed(&c.dec.decrypt(&out_ct).unwrap());
        assert_eq!(
            layer.decode_output(&slots).data(),
            expect.data(),
            "{schedule} FC mismatch for ({}, {})",
            spec.ni,
            spec.no
        );
    }

    #[test]
    fn fc_square_both_schedules() {
        check_fc(&spec(16, 16), Schedule::PartialAligned);
        check_fc(&spec(16, 16), Schedule::InputAligned);
    }

    #[test]
    fn fc_rectangular() {
        check_fc(&spec(32, 10), Schedule::PartialAligned);
        check_fc(&spec(32, 10), Schedule::InputAligned);
    }

    #[test]
    fn fc_single_output() {
        check_fc(&spec(8, 1), Schedule::PartialAligned);
    }

    #[test]
    fn bsgs_plan_is_chosen_and_reduces_rotation_ntts() {
        // d = 32 diagonals: the auto-chosen plan must split, perform
        // b + g − 2 rotations, and pay NTT planes for one hoist plus the
        // g − 1 giant steps only — the O(√d) plane-transform headline,
        // pinned against OpCounts.
        let s = spec(32, 8);
        let mut c = ctx(&s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let weights = Tensor::from_data(
            &[s.no, s.ni],
            (0..s.no * s.ni).map(|_| rng.random_range(-5..=5)).collect(),
        );
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();

        let bsgs = HomFc::new(&s, &weights, &c.encoder, &c.eval, Schedule::PartialAligned).unwrap();
        let plan = bsgs.plan().expect("d = 32 must pick a BSGS plan");
        assert!(plan.b > 1 && plan.g > 1, "√d split expected, got {plan:?}");

        let params = c.eval.params();
        let planes = (params.l_ct() as u64 + 1) * params.limbs() as u64;
        c.eval.reset_op_counts();
        let out = bsgs.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let counts = c.eval.op_counts();
        assert_eq!(counts.rotate as usize, plan.rotations());
        assert_eq!(
            counts.ntt,
            planes * plan.g as u64,
            "one hoist + (g−1) giant rotations worth of plane transforms"
        );

        // The legacy diagonal path pays a full rotation per diagonal.
        let diag = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::InputAligned,
            None,
        )
        .unwrap();
        c.eval.reset_op_counts();
        let out_diag = diag.apply_threaded(&ct, &c.eval, &c.keys, 1).unwrap();
        let diag_counts = c.eval.op_counts();
        assert_eq!(diag_counts.ntt, planes * (s.ni as u64 - 1));
        assert!(counts.ntt < diag_counts.ntt / 4, "BSGS must slash NTT work");

        // And both decrypt to identical slots.
        let a = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&out).unwrap());
        let b = c
            .encoder
            .decode_signed(&c.dec.decrypt_checked(&out_diag).unwrap());
        assert_eq!(a, b, "BSGS and diagonal outputs diverged");
    }

    #[test]
    fn forced_padding_plan_matches_diagonal_path() {
        // b·g = 15 > d = 8: the padded tail group is skipped; output must
        // still match the legacy path slot for slot.
        let s = spec(8, 4);
        let mut c = ctx(&s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let weights = Tensor::from_data(
            &[s.no, s.ni],
            (0..s.no * s.ni).map(|_| rng.random_range(-5..=5)).collect(),
        );
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).map(|i| i - 3).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let forced = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::PartialAligned,
            Some(BsgsPlan { b: 3, g: 5 }),
        )
        .unwrap();
        let legacy = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::PartialAligned,
            None,
        )
        .unwrap();
        let a = forced.apply(&ct, &c.eval, &c.keys).unwrap();
        let b = legacy.apply(&ct, &c.eval, &c.keys).unwrap();
        assert_eq!(
            c.encoder.decode_signed(&c.dec.decrypt_checked(&a).unwrap()),
            c.encoder.decode_signed(&c.dec.decrypt_checked(&b).unwrap())
        );
        // The padded plan performs (b−1) + (groups−1) rotations with
        // groups = ceil(d/b) = 3 live groups.
        assert_eq!(forced.rotation_steps(), vec![1, 2, 3, 6]);
    }

    #[test]
    fn pa_noise_budget_at_least_ia() {
        let s = spec(32, 8);
        let mut c = ctx(&s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let weights = Tensor::from_data(
            &[s.no, s.ni],
            (0..s.no * s.ni).map(|_| rng.random_range(-5..=5)).collect(),
        );
        let input = Tensor::from_data(&[s.ni], (0..s.ni as i64).collect());
        let ct = c
            .enc
            .encrypt(&HomFc::encode_input(&s, &input, &c.encoder).unwrap())
            .unwrap();
        let pa = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::PartialAligned,
            None,
        )
        .unwrap()
        .apply(&ct, &c.eval, &c.keys)
        .unwrap();
        let ia = HomFc::with_plan(
            &s,
            &weights,
            &c.encoder,
            &c.eval,
            Schedule::InputAligned,
            None,
        )
        .unwrap()
        .apply(&ct, &c.eval, &c.keys)
        .unwrap();
        let pa_budget = c.dec.invariant_noise_budget(&pa).unwrap();
        let ia_budget = c.dec.invariant_noise_budget(&ia).unwrap();
        assert!(
            pa_budget >= ia_budget,
            "PA {pa_budget:.1} vs IA {ia_budget:.1}"
        );
    }

    #[test]
    fn oversized_input_rejected() {
        let s = spec(1024, 10); // 2*1024 = row size of n=2048? row=1024 -> too big
        let params = BfvParams::builder()
            .degree(2048)
            .plain_bits(20)
            .cipher_bits(54)
            .build()
            .unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let eval = Evaluator::new(params);
        let weights = Tensor::zeros(&[10, 1024]);
        assert!(matches!(
            HomFc::new(&s, &weights, &encoder, &eval, Schedule::PartialAligned),
            Err(Error::TooManyValues { .. })
        ));
    }
}
