//! Functional homomorphic linear layers on the real BFV engine: packed
//! convolution (Fig. 4), FC via the diagonal method, and bare dot products
//! under both schedules (Fig. 5).

pub mod conv;
pub mod dot;
pub mod fc;
pub mod parallel;

pub use conv::HomConv2d;
pub use dot::{dot_input_aligned, dot_partial_aligned};
pub use fc::HomFc;
