//! Functional homomorphic linear layers on the real BFV engine: packed
//! convolution (Fig. 4), FC via the diagonal method, and bare dot products
//! under both schedules (Fig. 5).

pub mod conv;
pub mod dot;
pub mod fc;
pub mod parallel;

pub use conv::HomConv2d;
pub use dot::{dot_input_aligned, dot_partial_aligned};
pub use fc::HomFc;

use crate::schedule::Schedule;
use cheetah_bfv::{BfvParams, NoiseEstimate};

/// The shared core of the layers' `noise_after` planning models: one
/// rotate-mul term per rotation step in schedule order (§V — IA rotates
/// the input first and multiplies the noisier result, PA multiplies fresh
/// and rotates the partial), charged the layer's worst plaintext norm and
/// accumulated `terms` times. Zero-step terms skip their rotation in the
/// engine; the rotated term bounds them, keeping the model conservative.
pub(crate) fn accumulated_term_noise(
    input: &NoiseEstimate,
    params: &BfvParams,
    level: usize,
    schedule: Schedule,
    max_norm: u64,
    terms: usize,
) -> NoiseEstimate {
    let term = match schedule {
        Schedule::InputAligned => {
            input
                .rotate_at(params, level)
                .mul_plain_at(params, level, 1, 2 * max_norm)
        }
        Schedule::PartialAligned => input
            .mul_plain_at(params, level, 1, 2 * max_norm)
            .rotate_at(params, level),
    };
    let mut acc = term;
    for _ in 1..terms {
        acc = acc.add(&term);
    }
    acc
}
