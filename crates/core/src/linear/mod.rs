//! Functional homomorphic linear layers on the real BFV engine: packed
//! convolution (Fig. 4), FC via the diagonal method — reshaped into
//! Baby-Step-Giant-Step rotation sets where the cost model says so — and
//! bare dot products under both schedules (Fig. 5).

pub mod conv;
pub mod dot;
pub mod fc;
pub mod parallel;

pub use conv::HomConv2d;
pub use dot::{dot_input_aligned, dot_partial_aligned};
pub use fc::HomFc;

use crate::cost::HeCostParams;
use crate::schedule::Schedule;
use cheetah_bfv::{
    BfvParams, Ciphertext, Evaluator, GaloisKeys, HoistedDecomposition, NoiseEstimate, Result,
    Scratch,
};

/// A Baby-Step-Giant-Step split of `d` matrix diagonals into `g` groups of
/// `b` baby steps (`b·g ≥ d`; absent diagonals of a padded last group are
/// simply skipped).
///
/// The diagonal method's `d − 1` rotation steps all read either the input
/// (Sched-IA) or a fresh partial product (Sched-PA); the BSGS reshape
/// turns them into `b − 1` **hoistable** baby rotations of the input (one
/// shared INTT + digit decomposition for the whole set) plus `g − 1` giant
/// rotations of the per-group inner sums — `b + g − 2` rotations, of which
/// only the giant steps pay NTT plane transforms. With `b ≈ √d` the FC
/// rotation transform bill drops from `O(d·l_ct)` to `O(√d·l_ct)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsgsPlan {
    /// Baby steps per group: the input is rotated by `0..b` once, hoisted.
    pub b: usize,
    /// Giant-step groups: group `u` is rotated by `u·b` after its inner sum.
    pub g: usize,
}

impl BsgsPlan {
    /// Picks the cheapest split for `d` diagonals under the hoisted/direct
    /// rotation pricing of `cost`, or `None` when no split beats the plain
    /// diagonal path (tiny `d`): minimizes
    /// [`HeCostParams::bsgs_rotation_mults`] over `b ∈ 1..=d` with
    /// `g = ⌈d/b⌉`, where `b = 1` *is* the diagonal path (every rotation
    /// direct, nothing hoistable).
    pub fn choose(d: usize, cost: &HeCostParams) -> Option<BsgsPlan> {
        if d < 2 {
            return None;
        }
        let mut best_b = 1usize;
        let mut best_cost = cost.bsgs_rotation_mults(1, d);
        for b in 2..=d {
            let g = d.div_ceil(b);
            let c = cost.bsgs_rotation_mults(b, g);
            if c < best_cost {
                best_cost = c;
                best_b = b;
            }
        }
        (best_b > 1).then(|| BsgsPlan {
            b: best_b,
            g: d.div_ceil(best_b),
        })
    }

    /// Total rotations the plan performs: `b − 1` hoisted baby replays plus
    /// `g − 1` direct giant steps (baby step 0 and group 0 are free).
    ///
    /// Exact for plans whose every group is live — `(g − 1)·b < d`, which
    /// [`BsgsPlan::choose`] always produces. A hand-forced plan with
    /// fully-padded trailing groups (`(g − 1)·b ≥ d`) skips those groups
    /// at evaluation, so it performs *fewer* rotations than this reports;
    /// `HomFc::rotation_steps()` on the prepared layer is the ground
    /// truth for key generation and op accounting.
    pub fn rotations(&self) -> usize {
        self.b + self.g - 2
    }
}

/// How a rotate-and-sum reduction `Σ_{c=0}^{count−1} rot(x, c·stride)`
/// is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducePlan {
    /// The power-of-two doubling ladder: `log2(count)` rotations, but each
    /// reads the freshly accumulated ciphertext — a dependent chain that
    /// cannot hoist (only valid for power-of-two `count`).
    Ladder,
    /// BSGS reshape with `s·g = count`: hoist `x` once for the `s − 1`
    /// baby replays, sum, hoist the inner sum once for the `g − 1` giant
    /// replays. `s + g − 2` rotations, every one a hoisted replay; the two
    /// hoists are the only NTT work. `s = count, g = 1` is the flat
    /// hoisted sum.
    Bsgs {
        /// Baby strides `0..s`.
        s: usize,
        /// Giant strides `0, s, 2s, …`.
        g: usize,
    },
}

impl ReducePlan {
    /// Picks the cheapest evaluation of a `count`-term rotate-and-sum
    /// under `cost`: the doubling ladder (power-of-two `count` only)
    /// versus every BSGS factorization `s·g = count`. Ties prefer the
    /// ladder (fewer total operations at equal multiplication cost).
    pub fn choose(count: usize, cost: &HeCostParams) -> ReducePlan {
        if count <= 1 {
            return ReducePlan::Ladder;
        }
        let replay = cost.he_rotate_hoisted_mults();
        let hoist = cost.hoist_mults();
        let bsgs_cost = |s: usize, g: usize| -> u64 {
            (if s > 1 { hoist } else { 0 })
                + (s as u64 - 1) * replay
                + (if g > 1 { hoist } else { 0 })
                + (g as u64 - 1) * replay
        };
        let mut best = None::<(u64, ReducePlan)>;
        if count.is_power_of_two() {
            let ladder = count.ilog2() as u64 * cost.he_rotate_mults();
            best = Some((ladder, ReducePlan::Ladder));
        }
        for s in (1..=count).filter(|&s| count.is_multiple_of(s)) {
            let g = count / s;
            if s == 1 && g > 1 {
                // g − 1 replays of an unhoisted source is not a real plan.
                continue;
            }
            let c = bsgs_cost(s, g);
            if best.is_none_or(|(bc, _)| c < bc) {
                best = Some((c, ReducePlan::Bsgs { s, g }));
            }
        }
        best.expect("count >= 2 always yields the flat plan").1
    }

    /// Rotations the plan performs for a `count`-term reduction.
    pub fn rotations(&self, count: usize) -> usize {
        match self {
            ReducePlan::Ladder => count.ilog2() as usize,
            ReducePlan::Bsgs { s, g } => s + g - 2,
        }
    }

    /// The exact rotation steps a `count`-term reduction with this plan
    /// performs at the given slot `stride` — generate Galois keys for
    /// these (and nothing more).
    pub fn steps(&self, count: usize, stride: i64) -> Vec<i64> {
        match self {
            ReducePlan::Ladder => {
                let mut steps = Vec::new();
                let mut half = count as i64 / 2;
                while half >= 1 {
                    steps.push(half * stride);
                    half /= 2;
                }
                steps
            }
            ReducePlan::Bsgs { s, g } => {
                let mut steps: Vec<i64> = (1..*s as i64).map(|v| v * stride).collect();
                steps.extend((1..*g as i64).map(|j| j * *s as i64 * stride));
                steps
            }
        }
    }
}

/// Evaluates `acc ← Σ_{c=0}^{count−1} rot(acc, c·stride)` under `plan` on
/// the scratch path. Every plan computes the same mathematical sum, so the
/// result decrypts identically whichever is chosen; only the
/// rotation/hoist structure (and therefore the NTT bill) differs.
///
/// # Errors
///
/// Propagates evaluator errors (missing Galois keys for the plan's
/// strides, parameter mismatches).
///
/// # Panics
///
/// Panics when `plan` is [`ReducePlan::Ladder`] and `count` is not a
/// power of two, or when a BSGS plan does not factor `count` exactly.
#[allow(clippy::too_many_arguments)] // the three trailing buffers are the shared scratch set
pub(crate) fn rotate_sum_reduce(
    mut acc: Ciphertext,
    stride: i64,
    count: usize,
    plan: ReducePlan,
    eval: &Evaluator,
    keys: &GaloisKeys,
    scratch: &mut Scratch,
    rotated: &mut Ciphertext,
    hoisted: &mut HoistedDecomposition,
) -> Result<Ciphertext> {
    if count <= 1 {
        return Ok(acc);
    }
    match plan {
        ReducePlan::Ladder => {
            assert!(count.is_power_of_two(), "ladder needs a power of two");
            let mut half = count as i64 / 2;
            while half >= 1 {
                eval.rotate_rows_into(rotated, &acc, half * stride, keys, scratch)?;
                eval.add_assign(&mut acc, rotated)?;
                half /= 2;
            }
        }
        ReducePlan::Bsgs { s, g } => {
            assert_eq!(s * g, count, "BSGS reduce plan must factor the count");
            if s > 1 {
                let base = acc.clone();
                eval.hoist_into(hoisted, &base, scratch)?;
                for v in 1..s as i64 {
                    eval.rotate_hoisted_into(rotated, &base, hoisted, v * stride, keys, scratch)?;
                    eval.add_assign(&mut acc, rotated)?;
                }
            }
            if g > 1 {
                let inner = acc.clone();
                eval.hoist_into(hoisted, &inner, scratch)?;
                for j in 1..g as i64 {
                    eval.rotate_hoisted_into(
                        rotated,
                        &inner,
                        hoisted,
                        j * s as i64 * stride,
                        keys,
                        scratch,
                    )?;
                    eval.add_assign(&mut acc, rotated)?;
                }
            }
        }
    }
    Ok(acc)
}

/// Noise model of [`rotate_sum_reduce`]: the plan's transition applied to
/// the accumulator estimate (unrotated terms are bounded by their rotated
/// counterparts, keeping the bound conservative — same convention as
/// [`accumulated_term_noise`]).
pub(crate) fn rotate_sum_noise(
    acc: &NoiseEstimate,
    params: &BfvParams,
    level: usize,
    count: usize,
    plan: ReducePlan,
) -> NoiseEstimate {
    if count <= 1 {
        return *acc;
    }
    match plan {
        ReducePlan::Ladder => {
            let mut est = *acc;
            let mut half = count / 2;
            while half >= 1 {
                est = est.add(&est.rotate_at(params, level));
                half /= 2;
            }
            est
        }
        ReducePlan::Bsgs { s, g } => {
            let term = acc.rotate_at(params, level);
            let mut inner = term;
            for _ in 1..s {
                inner = inner.add(&term);
            }
            let group = inner.rotate_at(params, level);
            let mut est = group;
            for _ in 1..g {
                est = est.add(&group);
            }
            est
        }
    }
}

/// The shared core of the layers' `noise_after` planning models: one
/// rotate-mul term per rotation step in schedule order (§V — IA rotates
/// the input first and multiplies the noisier result, PA multiplies fresh
/// and rotates the partial), charged the layer's worst plaintext norm and
/// accumulated `terms` times. Zero-step terms skip their rotation in the
/// engine; the rotated term bounds them, keeping the model conservative.
pub(crate) fn accumulated_term_noise(
    input: &NoiseEstimate,
    params: &BfvParams,
    level: usize,
    schedule: Schedule,
    max_norm: u64,
    terms: usize,
) -> NoiseEstimate {
    let term = match schedule {
        Schedule::InputAligned => {
            input
                .rotate_at(params, level)
                .mul_plain_at(params, level, 1, 2 * max_norm)
        }
        Schedule::PartialAligned => input
            .mul_plain_at(params, level, 1, 2 * max_norm)
            .rotate_at(params, level),
    };
    let mut acc = term;
    for _ in 1..terms {
        acc = acc.add(&term);
    }
    acc
}

#[cfg(test)]
mod plan_tests {
    use super::*;

    fn cost(l_ct: usize, limbs: usize) -> HeCostParams {
        HeCostParams {
            n: 4096,
            l_pt: 1,
            l_ct,
            limbs,
            hybrid: false,
        }
    }

    #[test]
    fn bsgs_plan_tiny_d_keeps_the_diagonal_path() {
        let c = cost(10, 1);
        assert_eq!(BsgsPlan::choose(1, &c), None);
        assert_eq!(BsgsPlan::choose(2, &c), None);
    }

    #[test]
    fn bsgs_plan_scales_like_sqrt_d() {
        let c = cost(10, 1);
        for d in [16usize, 32, 64, 256, 1024] {
            let plan = BsgsPlan::choose(d, &c).expect("nontrivial d must split");
            assert!(plan.b * plan.g >= d, "b·g must cover every diagonal");
            assert!(
                plan.rotations() < d - 1,
                "d={d}: {} rotations must beat the {} diagonal rotations",
                plan.rotations(),
                d - 1
            );
            // The chosen split stays within a constant factor of √d on
            // both sides — the O(√d) headline.
            let sqrt = (d as f64).sqrt();
            assert!((plan.b as f64) <= 8.0 * sqrt && (plan.g as f64) <= 8.0 * sqrt);
        }
    }

    #[test]
    fn bsgs_plan_cost_is_minimal_over_candidates() {
        let c = cost(6, 3);
        let d = 48;
        let plan = BsgsPlan::choose(d, &c).unwrap();
        let chosen = c.bsgs_rotation_mults(plan.b, plan.g);
        for b in 1..=d {
            assert!(
                chosen <= c.bsgs_rotation_mults(b, d.div_ceil(b)),
                "b={b} beats the chosen ({}, {})",
                plan.b,
                plan.g
            );
        }
    }

    #[test]
    fn reduce_plan_prefers_ladder_for_two_and_hoists_beyond() {
        let c = cost(10, 1);
        // count = 2: ladder (one direct rotation) ties the flat hoist and
        // wins the tie.
        assert_eq!(ReducePlan::choose(2, &c), ReducePlan::Ladder);
        // Mid-size power-of-two counts hoist; very large counts may fall
        // back to the O(log)-rotation ladder, which eventually beats the
        // O(√count) replay bill in the integer-mult model.
        for count in [4usize, 8, 16] {
            let plan = ReducePlan::choose(count, &c);
            assert!(
                matches!(plan, ReducePlan::Bsgs { s, g } if s * g == count),
                "count={count} chose {plan:?}"
            );
        }
        // Non-power-of-two counts always have the flat plan available.
        let plan = ReducePlan::choose(6, &c);
        assert!(matches!(plan, ReducePlan::Bsgs { s, g } if s * g == 6));
    }
}
