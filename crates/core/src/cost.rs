//! The integer-multiplication cost model of §IV-A.
//!
//! "HE-PTune's performance model analytically derives the total number of
//! underlying integer multiplications per layer." Every HE operator reduces
//! to modular multiplications and NTT butterflies:
//!
//! * a modular multiplication = 1 product + 5 Barrett-reduction
//!   multiplications ([`MULTS_PER_MODMUL`]);
//! * a Harvey butterfly = 3 multiplications ([`MULTS_PER_BUTTERFLY`]);
//! * an `n`-point NTT = `(n/2)·log2 n` butterflies;
//! * `HE_Mult` = 2 element-wise polynomial multiplications per plaintext
//!   digit, each spanning every limb plane (`2n·l_limbs` modmuls × `l_pt`);
//! * `HE_Rotate` = `2·l_ct` polynomial multiplications +
//!   `(l_ct + 1)·l_limbs` NTT **plane transforms** — an RNS polynomial
//!   transform runs one `n`-point NTT per limb, so multi-limb chains do
//!   `l_limbs×` the NTT work the seed-era model charged.
//!
//! Hybrid (special-prime `P·Q`) key switching prices differently: one
//! digit per live limb, each lifted to `live + 1` key-switch planes, so a
//! direct rotation pays `live² + 6·live + 2` plane transforms and
//! `2·live` pointwise multiplications over `live + 1` planes. The
//! [`HeCostParams::hybrid`] flag dispatches every accessor between the
//! two regimes so plan choosers ([`crate::linear::BsgsPlan`],
//! [`crate::linear::ReducePlan`]) price whichever path the chain runs.
//!
//! These constants match the real engine: `cheetah-bfv`'s Barrett reduction
//! performs exactly four partial products plus the `t·q` product, its NTT
//! uses three-multiplication Shoup butterflies, and its `OpCounts::ntt`
//! counter tallies the same plane transforms this model predicts.

/// Integer multiplications per modular multiplication
/// (1 operand product + 5 for Barrett reduction).
pub const MULTS_PER_MODMUL: u64 = 6;

/// Integer multiplications per NTT butterfly (Harvey).
pub const MULTS_PER_BUTTERFLY: u64 = 3;

/// Parameters the cost model needs from an HE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeCostParams {
    /// Polynomial degree `n`.
    pub n: usize,
    /// Plaintext decomposition levels `l_pt` (1 = no decomposition).
    pub l_pt: usize,
    /// Ciphertext decomposition levels `l_ct` (total per-limb digits
    /// `Σ_i ceil(log_A q_i)` for an RNS chain).
    pub l_ct: usize,
    /// RNS limb count `l_limbs` of the ciphertext modulus (1 for the
    /// classic single-word `q`). Every polynomial transform and pointwise
    /// multiplication spans this many planes.
    pub limbs: usize,
    /// Whether key switching runs the hybrid special-prime path: one digit
    /// per live limb over `limbs + 1` key-switch planes (the `P` plane)
    /// instead of `l_ct` base-`A` digits over `limbs` planes.
    pub hybrid: bool,
}

impl HeCostParams {
    /// Cost parameters of a real parameter set **at a level** of its
    /// modulus chain: `level` limbs dropped leaves `limbs - level` live
    /// planes and the live digit count `l_ct(level)`. Level 0 reproduces
    /// the full-chain costs; deeper levels are how the model prices the
    /// cheaper tail of a leveled circuit (every entry below scales with
    /// the live counts).
    ///
    /// # Panics
    ///
    /// Panics for a level past the chain's deepest.
    pub fn for_bfv(params: &cheetah_bfv::BfvParams, level: usize) -> Self {
        Self {
            n: params.degree(),
            l_pt: params.l_pt(),
            l_ct: params.l_ct_at(level),
            limbs: params.live_limbs_at(level),
            hybrid: params.has_special(),
        }
    }

    /// Digits per key switch on the path this chain actually runs: `l_ct`
    /// base-`A` digits on the decomposition path, one per live limb on the
    /// hybrid path.
    pub fn ks_digits(&self) -> usize {
        if self.hybrid {
            self.limbs
        } else {
            self.l_ct
        }
    }

    /// Planes each key-switch pointwise product spans: the live limbs,
    /// plus the special `P` plane on the hybrid path.
    pub fn ks_planes(&self) -> usize {
        self.limbs + usize::from(self.hybrid)
    }

    /// Integer multiplications in one `n`-point NTT plane transform:
    /// `3 · (n/2) · log2(n)`.
    pub fn ntt_mults(&self) -> u64 {
        let n = self.n as u64;
        MULTS_PER_BUTTERFLY * (n / 2) * n.ilog2() as u64
    }

    /// Integer multiplications in one `HE_Mult` (pt-ct with `l_pt` digits):
    /// `l_pt · 2n · l_limbs` modular multiplications (pointwise products
    /// run on every limb plane). No NTTs — Cheetah keeps operands in the
    /// evaluation domain.
    pub fn he_mult_mults(&self) -> u64 {
        self.l_pt as u64 * 2 * self.n as u64 * self.limbs as u64 * MULTS_PER_MODMUL
    }

    /// Pointwise modular multiplications in one key switch: `2·digits`
    /// polynomial products, each spanning every key-switch plane.
    fn ks_pointwise_mults(&self) -> u64 {
        2 * self.ks_digits() as u64 * self.n as u64 * self.ks_planes() as u64 * MULTS_PER_MODMUL
    }

    /// Integer multiplications in one `HE_Rotate`: the key-switch
    /// pointwise products plus [`HeCostParams::ntts_per_rotate`] NTT
    /// plane transforms.
    pub fn he_rotate_mults(&self) -> u64 {
        self.ks_pointwise_mults() + self.ntts_per_rotate() * self.ntt_mults()
    }

    /// NTT plane transforms per `HE_Rotate`: `(l_ct + 1)·l_limbs` on the
    /// decomposition path, [`HeCostParams::ntts_per_rotate_hybrid`] on the
    /// hybrid path. The seed-era model charged `l_ct + 1` regardless of
    /// the chain length, under-counting multi-limb NTT work by a factor
    /// of `l_limbs` (each digit's forward transform and the `c1` inverse
    /// transform touch every limb plane).
    ///
    /// This is the **direct** (non-hoisted) price. A rotation *set* over
    /// one source ciphertext pays [`HeCostParams::ntts_per_hoist`] once
    /// and [`HeCostParams::ntts_per_rotate_hoisted`] per step — the split
    /// that makes BSGS layers priceable.
    pub fn ntts_per_rotate(&self) -> u64 {
        if self.hybrid {
            self.ntts_per_rotate_hybrid()
        } else {
            (self.l_ct as u64 + 1) * self.limbs as u64
        }
    }

    /// NTT plane transforms per hybrid `HE_Rotate`, matching the engine's
    /// `OpCounts::ntt` tally exactly: the `c1` INTT over `live` planes,
    /// `live` digit forward transforms over `live + 1` key-switch planes
    /// each, the two accumulator INTTs off the key-switch chain
    /// (`2·(live + 1)`) and their re-entry NTTs after the `P`-rescale
    /// (`2·live`) — `live² + 6·live + 2` in total.
    pub fn ntts_per_rotate_hybrid(&self) -> u64 {
        let live = self.limbs as u64;
        live * live + 6 * live + 2
    }

    /// NTT plane transforms in one hoist (`Evaluator::hoist`): the digit
    /// decomposition's transform bill, paid **once** for an entire
    /// same-source rotation set. Decomposition path: `(l_ct + 1)·l_limbs`
    /// (identical to one direct rotation — the replay is then free of
    /// NTTs). Hybrid path: `live² + 2·live` (the per-step `P`-rescale
    /// transforms stay in the replay).
    pub fn ntts_per_hoist(&self) -> u64 {
        if self.hybrid {
            let live = self.limbs as u64;
            live * live + 2 * live
        } else {
            (self.l_ct as u64 + 1) * self.limbs as u64
        }
    }

    /// NTT plane transforms in one hoisted replay
    /// (`Evaluator::rotate_hoisted_into`): zero on the decomposition path
    /// (only slot permutations and the key-switch inner products remain);
    /// `4·live + 2` on the hybrid path, whose exact `P`-rescale must run
    /// per step (two accumulator INTTs over `live + 1` planes, two
    /// re-entry NTTs over `live`).
    pub fn ntts_per_rotate_hoisted(&self) -> u64 {
        if self.hybrid {
            4 * self.limbs as u64 + 2
        } else {
            0
        }
    }

    /// Integer multiplications in one **hoisted** `HE_Rotate` replay: the
    /// key-switch pointwise products plus (hybrid only) the per-step
    /// rescale transforms.
    pub fn he_rotate_hoisted_mults(&self) -> u64 {
        self.ks_pointwise_mults() + self.ntts_per_rotate_hoisted() * self.ntt_mults()
    }

    /// Integer multiplications in one hoist: pure NTT plane-transform work.
    pub fn hoist_mults(&self) -> u64 {
        self.ntts_per_hoist() * self.ntt_mults()
    }

    /// Rotation-side integer multiplications of a BSGS rotation set with
    /// `baby` hoisted baby steps and `giant` direct giant steps: one hoist
    /// (when any baby step rotates), `baby − 1` replays (step 0 is free),
    /// and `giant − 1` direct rotations (group 0 is unrotated). This is
    /// what [`crate::linear::BsgsPlan::choose`] minimizes.
    pub fn bsgs_rotation_mults(&self, baby: usize, giant: usize) -> u64 {
        let hoist = if baby > 1 { self.hoist_mults() } else { 0 };
        hoist
            + (baby as u64).saturating_sub(1) * self.he_rotate_hoisted_mults()
            + (giant as u64).saturating_sub(1) * self.he_rotate_mults()
    }

    /// Rotation-side integer multiplications of a **sparse** flat hoisted
    /// reduction over `live_rotations` nonzero strides: one hoist plus one
    /// replay per live stride (zero when nothing rotates). The sparse
    /// counterpart of a [`crate::linear::ReducePlan`]'s bill — a layer
    /// with mostly-dead channels sums only the live blocks, beating every
    /// dense factorization once enough strides die.
    pub fn sparse_reduce_mults(&self, live_rotations: usize) -> u64 {
        if live_rotations == 0 {
            return 0;
        }
        self.hoist_mults() + live_rotations as u64 * self.he_rotate_hoisted_mults()
    }

    /// Integer multiplications of a dense [`crate::linear::ReducePlan`]'s
    /// rotation schedule — the bill [`crate::linear::ReducePlan::choose`]
    /// minimizes, exposed so sparse channel reductions can be priced
    /// against it.
    pub fn reduce_plan_mults(&self, plan: crate::linear::ReducePlan, count: usize) -> u64 {
        if count <= 1 {
            return 0;
        }
        match plan {
            crate::linear::ReducePlan::Ladder => count.ilog2() as u64 * self.he_rotate_mults(),
            crate::linear::ReducePlan::Bsgs { s, g } => {
                let hoists = u64::from(s > 1) + u64::from(g > 1);
                hoists * self.hoist_mults()
                    + ((s as u64 - 1) + (g as u64 - 1)) * self.he_rotate_hoisted_mults()
            }
        }
    }
}

/// Kernel-level cost decomposition of a layer (or network): how many times
/// each hot kernel of Fig. 7 runs, and the implied integer-mult totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTally {
    /// `HE_Mult` operator invocations.
    pub he_mult: f64,
    /// `HE_Rotate` operator invocations.
    pub he_rotate: f64,
    /// `HE_Add` operator invocations (no multiplications; tracked for the
    /// Fig. 7 breakdown).
    pub he_add: f64,
    /// NTT plane transforms (all inside rotations in the Cheetah
    /// dataflow): [`HeCostParams::ntts_per_rotate`] per rotation.
    pub ntt: f64,
}

impl KernelTally {
    /// Adds another tally.
    pub fn accumulate(&mut self, other: &KernelTally) {
        self.he_mult += other.he_mult;
        self.he_rotate += other.he_rotate;
        self.he_add += other.he_add;
        self.ntt += other.ntt;
    }

    /// Total integer multiplications under the given HE parameters,
    /// split by kernel: `(mult_kernel, rotate_kernel_excluding_ntt, ntt)`.
    pub fn int_mults_by_kernel(&self, p: &HeCostParams) -> KernelMults {
        let mult = self.he_mult * p.he_mult_mults() as f64;
        let rotate_poly = self.he_rotate * p.ks_pointwise_mults() as f64;
        let ntt = self.ntt * p.ntt_mults() as f64;
        KernelMults {
            he_mult: mult,
            he_rotate: rotate_poly,
            ntt,
        }
    }

    /// Total integer multiplications under the given HE parameters.
    pub fn total_int_mults(&self, p: &HeCostParams) -> f64 {
        let k = self.int_mults_by_kernel(p);
        k.he_mult + k.he_rotate + k.ntt
    }
}

/// Integer-multiplication totals per kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelMults {
    /// Inside `HE_Mult` (element-wise modular multiplication).
    pub he_mult: f64,
    /// Inside `HE_Rotate`, excluding its NTTs (key-switch inner products).
    pub he_rotate: f64,
    /// Inside NTTs.
    pub ntt: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntt_mults_formula() {
        let p = HeCostParams {
            n: 4096,
            l_pt: 1,
            l_ct: 3,
            limbs: 1,
            hybrid: false,
        };
        assert_eq!(p.ntt_mults(), 3 * 2048 * 12);
    }

    #[test]
    fn he_mult_scales_with_l_pt() {
        let base = HeCostParams {
            n: 4096,
            l_pt: 1,
            l_ct: 3,
            limbs: 1,
            hybrid: false,
        };
        let windowed = HeCostParams { l_pt: 3, ..base };
        assert_eq!(windowed.he_mult_mults(), 3 * base.he_mult_mults());
        assert_eq!(base.he_mult_mults(), 2 * 4096 * 6);
    }

    #[test]
    fn rotate_cost_structure() {
        let p = HeCostParams {
            n: 4096,
            l_pt: 1,
            l_ct: 3,
            limbs: 1,
            hybrid: false,
        };
        let expect = 2 * 3 * 4096 * 6 + 4 * p.ntt_mults();
        assert_eq!(p.he_rotate_mults(), expect);
        assert_eq!(p.ntts_per_rotate(), 4);
    }

    #[test]
    fn multi_limb_chains_scale_plane_counts() {
        // The op-count bugfix: each digit NTT and the c1 INTT transform
        // every limb plane, so a 3-limb chain does 3x the plane
        // transforms (and 3x the pointwise work) of a 1-limb chain with
        // the same digit count.
        let single = HeCostParams {
            n: 4096,
            l_pt: 1,
            l_ct: 6,
            limbs: 1,
            hybrid: false,
        };
        let three = HeCostParams { limbs: 3, ..single };
        assert_eq!(three.ntts_per_rotate(), 3 * single.ntts_per_rotate());
        assert_eq!(three.he_rotate_mults(), 3 * single.he_rotate_mults());
        assert_eq!(three.he_mult_mults(), 3 * single.he_mult_mults());
        // The per-plane transform cost itself is limb-independent.
        assert_eq!(three.ntt_mults(), single.ntt_mults());
    }

    #[test]
    fn per_level_accounting_matches_live_counts() {
        // Level 1 of the 3x36 preset: two live limbs, the live digit
        // prefix — strictly cheaper rotations than level 0, and exactly
        // the counts the engine's OpCounts reports at that level.
        let params = cheetah_bfv::BfvParams::preset_rns_3x36(4096).unwrap();
        let full = HeCostParams::for_bfv(&params, 0);
        let lvl1 = HeCostParams::for_bfv(&params, 1);
        assert_eq!(full.limbs, 3);
        assert_eq!(full.l_ct, params.l_ct());
        assert_eq!(lvl1.limbs, 2);
        assert_eq!(lvl1.l_ct, params.l_ct_at(1));
        assert!(lvl1.ntts_per_rotate() < full.ntts_per_rotate());
        assert!(lvl1.he_rotate_mults() < full.he_rotate_mults());
        assert!(lvl1.he_mult_mults() < full.he_mult_mults());
        // Deepest level: one live limb.
        let bottom = HeCostParams::for_bfv(&params, params.max_level());
        assert_eq!(bottom.limbs, 1);
    }

    #[test]
    fn hoisted_direct_split_prices_bsgs_sets() {
        let p = HeCostParams {
            n: 4096,
            l_pt: 1,
            l_ct: 10,
            limbs: 2,
            hybrid: false,
        };
        // The hoist costs exactly one direct rotation's transform bill;
        // replays cost its pointwise bill and zero NTTs.
        assert_eq!(p.ntts_per_hoist(), p.ntts_per_rotate());
        assert_eq!(p.ntts_per_rotate_hoisted(), 0);
        assert_eq!(
            p.hoist_mults() + p.he_rotate_hoisted_mults(),
            p.he_rotate_mults()
        );
        // A √d × √d BSGS set is strictly cheaper than d direct rotations
        // for any nontrivial d.
        let d = 64;
        let direct = (d as u64 - 1) * p.he_rotate_mults();
        let bsgs = p.bsgs_rotation_mults(8, 8);
        assert!(bsgs < direct, "BSGS {bsgs} must beat direct {direct}");
        // Degenerate plans price as their non-BSGS equivalents.
        assert_eq!(
            p.bsgs_rotation_mults(1, d),
            (d as u64 - 1) * p.he_rotate_mults()
        );
        assert_eq!(
            p.bsgs_rotation_mults(d, 1),
            p.hoist_mults() + (d as u64 - 1) * p.he_rotate_hoisted_mults()
        );
    }

    #[test]
    fn hybrid_pricing_matches_engine_bills() {
        // hybrid_2x36-shaped point: 2 live data limbs plus the P plane.
        let h = HeCostParams {
            n: 4096,
            l_pt: 1,
            l_ct: 4,
            limbs: 2,
            hybrid: true,
        };
        assert_eq!(h.ks_digits(), 2);
        assert_eq!(h.ks_planes(), 3);
        assert_eq!(h.ntts_per_rotate(), 2 * 2 + 6 * 2 + 2);
        assert_eq!(h.ntts_per_hoist(), 2 * 2 + 2 * 2);
        assert_eq!(h.ntts_per_rotate_hoisted(), 4 * 2 + 2);
        // Hoist + replay = direct, in transforms and in total mults —
        // the same conservation the digit path satisfies, with the
        // per-step P-rescale transforms living in the replay.
        assert_eq!(
            h.ntts_per_hoist() + h.ntts_per_rotate_hoisted(),
            h.ntts_per_rotate()
        );
        assert_eq!(
            h.hoist_mults() + h.he_rotate_hoisted_mults(),
            h.he_rotate_mults()
        );
        // Against the equal-total-plane digit preset (3 data limbs,
        // rns_3x36's l_ct = 6), the hybrid transform bill wins.
        let d = HeCostParams {
            l_ct: 6,
            limbs: 3,
            hybrid: false,
            ..h
        };
        assert!(h.ntts_per_rotate() < d.ntts_per_rotate());
    }

    #[test]
    fn for_bfv_flags_hybrid_chains() {
        let params = cheetah_bfv::BfvParams::preset_hybrid_2x36(4096).unwrap();
        let full = HeCostParams::for_bfv(&params, 0);
        assert!(full.hybrid);
        assert_eq!(full.limbs, 2);
        assert_eq!(full.ntts_per_rotate(), 18);
        let lvl1 = HeCostParams::for_bfv(&params, 1);
        assert_eq!(lvl1.ntts_per_rotate(), 9);
        // Hybrid replays are NOT transform-free — BSGS pricing must see
        // the per-step rescale or it will over-hoist.
        assert!(full.ntts_per_rotate_hoisted() > 0);
        let digit =
            HeCostParams::for_bfv(&cheetah_bfv::BfvParams::preset_rns_3x36(4096).unwrap(), 0);
        assert!(!digit.hybrid);
        assert!(full.ntts_per_rotate() < digit.ntts_per_rotate());
    }

    #[test]
    fn ntt_dominates_rotate_cost() {
        // The Fig. 7 observation: NTT is the bottleneck inside rotations.
        let p = HeCostParams {
            n: 8192,
            l_pt: 1,
            l_ct: 3,
            limbs: 1,
            hybrid: false,
        };
        let ntts = (p.l_ct as u64 + 1) * p.ntt_mults();
        let poly = p.he_rotate_mults() - ntts;
        assert!(ntts > poly, "NTT {ntts} should exceed pointwise {poly}");
    }

    #[test]
    fn tally_accumulation_and_totals() {
        let p = HeCostParams {
            n: 2048,
            l_pt: 1,
            l_ct: 2,
            limbs: 1,
            hybrid: false,
        };
        let mut t = KernelTally {
            he_mult: 10.0,
            he_rotate: 5.0,
            he_add: 15.0,
            ntt: 5.0 * p.ntts_per_rotate() as f64,
        };
        let t2 = t;
        t.accumulate(&t2);
        assert_eq!(t.he_mult, 20.0);
        let k = t.int_mults_by_kernel(&p);
        assert!(k.ntt > 0.0 && k.he_mult > 0.0 && k.he_rotate > 0.0);
        assert!((t.total_int_mults(&p) - (k.he_mult + k.he_rotate + k.ntt)).abs() < 1e-9);
    }
}
