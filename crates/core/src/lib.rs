//! # cheetah-core — HE-PTune and Sched-PA
//!
//! The primary contribution of the Cheetah paper (HPCA 2021), built on the
//! [`cheetah_bfv`] engine and the [`cheetah_nn`] model zoo:
//!
//! * [`ptune`] — the analytical performance model (Table IV: HE-operator
//!   counts reduced to integer multiplications) and noise model (Tables III
//!   and V, worst-case and statistical regimes), plus the per-layer
//!   parameter design-space exploration of §IV-C;
//! * [`schedule`] / [`linear`] — the partial-aligned dot-product schedule
//!   (Sched-PA, §V) and its input-aligned prior-art counterpart, both as
//!   analytical noise shapes and as functional layers on real ciphertexts
//!   (packed convolution, diagonal-method FC, bare dot products);
//! * [`baseline`] / [`speedup`] — the Gazelle baseline (one global
//!   parameter set + Sched-IA) and the Fig. 6 speedup pipeline.
//!
//! ## Tuning one layer
//!
//! ```
//! use cheetah_core::ptune::{tune_layer, NoiseRegime, TuneSpace};
//! use cheetah_core::schedule::Schedule;
//! use cheetah_nn::{ConvSpec, LinearLayer};
//!
//! let layer = LinearLayer::Conv(ConvSpec {
//!     name: "conv1".into(),
//!     w: 28, fw: 3, ci: 32, co: 32, stride: 1, pad: 1,
//! });
//! let outcome = tune_layer(
//!     &layer,
//!     18, // plaintext precision (bits) this layer needs
//!     Schedule::PartialAligned,
//!     NoiseRegime::Statistical,
//!     &TuneSpace::default(),
//! );
//! let best = outcome.best.expect("a feasible configuration exists");
//! assert!(best.budget_bits >= 0.0);
//! ```

pub mod baseline;
pub mod cost;
pub mod linear;
pub mod ptune;
pub mod quant;
pub mod schedule;
pub mod sparse;
pub mod speedup;

pub use cost::{HeCostParams, KernelMults, KernelTally};
pub use linear::{BsgsPlan, ReducePlan};
pub use ptune::{DesignPoint, NoiseRegime, TuneSpace};
pub use quant::{QuantSpec, WeightMode};
pub use schedule::Schedule;
pub use sparse::{ConvStructure, FcStructure, LayerStructure, MaskClass, SparseBsgsPlan};
pub use speedup::{evaluate_model, harmonic_mean, ModelSpeedup};
