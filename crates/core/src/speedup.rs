//! The Fig. 6 evaluation pipeline: per-benchmark speedups of HE-PTune and
//! HE-PTune + Sched-PA over the Gazelle baseline.

use cheetah_nn::{LinearLayer, Network};

use crate::baseline::{gazelle_config, GlobalConfig};
use crate::ptune::noise::NoiseRegime;
use crate::ptune::tuner::{tune_network, DesignPoint, TuneSpace};
use crate::quant::QuantSpec;
use crate::schedule::Schedule;

/// Per-model comparison of the three configurations in Fig. 6.
#[derive(Debug, Clone)]
pub struct ModelSpeedup {
    /// Model name.
    pub model: String,
    /// Gazelle baseline: global parameters + Sched-IA.
    pub gazelle: GlobalConfig,
    /// HE-PTune alone: per-layer parameters, still Sched-IA.
    pub ptune: Vec<(LinearLayer, DesignPoint)>,
    /// HE-PTune + Sched-PA: per-layer parameters, partial-aligned schedule.
    pub ptune_pa: Vec<(LinearLayer, DesignPoint)>,
}

impl ModelSpeedup {
    /// Total baseline cost (integer multiplications).
    pub fn gazelle_cost(&self) -> f64 {
        self.gazelle.total_cost()
    }

    /// Total cost with HE-PTune alone.
    pub fn ptune_cost(&self) -> f64 {
        self.ptune.iter().map(|(_, p)| p.int_mults).sum()
    }

    /// Total cost with HE-PTune + Sched-PA.
    pub fn ptune_pa_cost(&self) -> f64 {
        self.ptune_pa.iter().map(|(_, p)| p.int_mults).sum()
    }

    /// Speedup of HE-PTune over Gazelle.
    pub fn speedup_ptune(&self) -> f64 {
        self.gazelle_cost() / self.ptune_cost()
    }

    /// Speedup of HE-PTune + Sched-PA over Gazelle (the full Cheetah
    /// software stack).
    pub fn speedup_combined(&self) -> f64 {
        self.gazelle_cost() / self.ptune_pa_cost()
    }

    /// Per-layer speedups (combined vs baseline) — the Fig. 3(c) bars.
    pub fn per_layer_speedups(&self) -> Vec<(String, f64)> {
        self.gazelle
            .layer_costs
            .iter()
            .zip(&self.ptune_pa)
            .map(|(&g, (layer, p))| (layer.name().to_owned(), g / p.int_mults))
            .collect()
    }
}

/// Runs the full Fig. 6 comparison for one network.
///
/// # Panics
///
/// Panics if the space has no feasible configuration for some layer (the
/// default space always does for the paper's five benchmarks).
pub fn evaluate_model(net: &Network, quant: &QuantSpec, space: &TuneSpace) -> ModelSpeedup {
    let layers = net.linear_layers();
    let t_global = quant.statistical_plain_bits_network(&layers);
    let t_bits: Vec<u32> = layers
        .iter()
        .map(|l| quant.statistical_plain_bits(l))
        .collect();

    let gazelle = gazelle_config(&layers, t_global, space.sigma)
        .unwrap_or_else(|| panic!("no Gazelle baseline config for {}", net.name));

    let ptune = tune_network(
        &layers,
        &t_bits,
        Schedule::InputAligned,
        NoiseRegime::Statistical,
        space,
    )
    .unwrap_or_else(|e| panic!("{}: {e}", net.name));
    let ptune_pa = tune_network(
        &layers,
        &t_bits,
        Schedule::PartialAligned,
        NoiseRegime::Statistical,
        space,
    )
    .unwrap_or_else(|e| panic!("{}: {e}", net.name));
    ModelSpeedup {
        model: net.name.clone(),
        gazelle,
        ptune,
        ptune_pa,
    }
}

/// Harmonic mean (the paper's summary statistic for Fig. 6).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_nn::models;

    #[test]
    fn harmonic_mean_known_values() {
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 6.0]) - 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn lenet5_speedups_exceed_one() {
        let s = evaluate_model(
            &models::lenet5(),
            &QuantSpec::default(),
            &TuneSpace::default(),
        );
        assert!(s.speedup_ptune() >= 1.0, "ptune {}", s.speedup_ptune());
        assert!(
            s.speedup_combined() >= s.speedup_ptune(),
            "combined {} vs ptune {}",
            s.speedup_combined(),
            s.speedup_ptune()
        );
    }

    #[test]
    fn alexnet_combined_speedup_is_large() {
        // The paper's ImageNet models see the biggest wins (Fig. 6 shows
        // 10-80x). Shape check: combined speedup well above 2x.
        let s = evaluate_model(
            &models::alexnet(),
            &QuantSpec::default(),
            &TuneSpace::default(),
        );
        assert!(
            s.speedup_combined() > 2.0,
            "combined speedup only {:.2}",
            s.speedup_combined()
        );
        let per_layer = s.per_layer_speedups();
        assert_eq!(per_layer.len(), 8);
        assert!(per_layer.iter().all(|(_, v)| *v >= 0.99));
    }
}
