//! HE-PTune: analytical performance and noise models plus the per-layer
//! parameter tuner (§IV of the paper).

pub mod noise;
pub mod perf;
pub mod solver;
pub mod tuner;

pub use noise::{layer_noise, HeNoiseParams, LayerNoise, NoiseRegime};
pub use perf::{conv_ops, fc_ops, layer_ops, OpModel};
pub use solver::{chain_candidates, layer_noise_on_chain, solve_chain_plan, ChainPlan, LayerPlan};
pub use tuner::{
    tune_layer, tune_network, DesignPoint, InfeasibleLayer, TuneOutcome, TuneSpace, NO_WINDOW,
};
