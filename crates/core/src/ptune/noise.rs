//! HE-PTune noise model — Tables III and V of the paper, for both
//! dot-product schedules and both estimation regimes.
//!
//! The worst-case regime applies the Table III bounds verbatim. The
//! statistical regime is the paper's §IV-B contribution: encryption noise
//! is independent bounded discrete Gaussian (IBDG), every HE operator is a
//! linear map, so output noise is IBDG with an exactly propagated variance,
//! and provisioning `q/(2t) ≥ c·σ_Y` with `c = sqrt(ln(2·10^10)) ≈ 4.87`
//! bounds the decryption-failure rate below 10⁻¹⁰ — far below DNN
//! misclassification rates, and several bits cheaper than the worst case.

use cheetah_nn::{ConvSpec, FcSpec, LinearLayer};

use crate::schedule::Schedule;

pub use cheetah_bfv::noise::{FAILURE_SCALE, TARGET_FAILURE_RATE};

/// Which noise estimate drives parameter selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NoiseRegime {
    /// Table III worst-case bounds (what prior work provisions for).
    WorstCase,
    /// Cheetah's statistical IBDG model with failure rate ≤ 1e-10.
    #[default]
    Statistical,
}

/// HE parameters the noise model reads (a superset of the cost params).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeNoiseParams {
    /// Polynomial degree / slot count `n`.
    pub n: usize,
    /// Plaintext modulus bits (the model only needs magnitude).
    pub t_bits: u32,
    /// Ciphertext modulus bits.
    pub q_bits: u32,
    /// Plaintext decomposition base `W_dcmp` (`>= 2^t_bits` disables).
    pub w_dcmp: u64,
    /// Ciphertext decomposition base `A_dcmp`.
    pub a_dcmp: u64,
    /// Encryption noise std-dev σ.
    pub sigma: f64,
}

impl HeNoiseParams {
    /// `l_pt` implied by `W_dcmp` and `t`.
    pub fn l_pt(&self) -> usize {
        let w_bits = 63 - self.w_dcmp.leading_zeros() as u64;
        if w_bits as u32 >= self.t_bits {
            1
        } else {
            self.t_bits.div_ceil(w_bits as u32) as usize
        }
    }

    /// `l_ct` implied by `A_dcmp` and `q`.
    pub fn l_ct(&self) -> usize {
        let a_bits = 63 - self.a_dcmp.leading_zeros() as u64;
        self.q_bits.div_ceil(a_bits as u32) as usize
    }

    /// Noise bound per fresh sample, `B = 6σ`.
    pub fn b(&self) -> f64 {
        6.0 * self.sigma
    }

    /// Fresh ciphertext noise `v0 = 2nB²` (Table III).
    pub fn v0_bound(&self) -> f64 {
        2.0 * self.n as f64 * self.b() * self.b()
    }

    /// Fresh ciphertext noise variance (IBDG model).
    pub fn v0_variance(&self) -> f64 {
        self.sigma * self.sigma * (1.0 + 4.0 * self.n as f64 / 3.0)
    }

    /// Multiplicative `HE_Mult` factor `ηM ≤ n·l_pt·W/2` (bound regime).
    ///
    /// With no decomposition, the effective digit magnitude is the full
    /// centered plaintext (`W/2 = t/2`), matching Table III with `W = t`.
    pub fn eta_m_bound(&self) -> f64 {
        let w = if self.l_pt() == 1 {
            (self.t_bits as f64).exp2()
        } else {
            self.w_dcmp as f64
        };
        self.n as f64 * self.l_pt() as f64 * w / 2.0
    }

    /// Variance multiplier for `HE_Mult`.
    ///
    /// Undecomposed plaintext coefficients are ~uniform centered mod `t`
    /// (`E[p²] = t²/12`); decomposition digits are uniform in `[0, W)`
    /// (`E[d²] = W²/3`).
    pub fn eta_m_variance(&self) -> f64 {
        if self.l_pt() == 1 {
            let t = (self.t_bits as f64).exp2();
            self.n as f64 * t * t / 12.0
        } else {
            let w = self.w_dcmp as f64;
            self.n as f64 * self.l_pt() as f64 * w * w / 3.0
        }
    }

    /// Additive `HE_Rotate` noise `ηA = l_ct·A·B·n/2` (Table III).
    pub fn eta_a_bound(&self) -> f64 {
        self.l_ct() as f64 * self.a_dcmp as f64 * self.b() * self.n as f64 / 2.0
    }

    /// Variance of the rotate key-switch noise.
    pub fn eta_a_variance(&self) -> f64 {
        let a = self.a_dcmp as f64;
        self.l_ct() as f64 * self.n as f64 * (a * a / 12.0) * self.sigma * self.sigma
    }

    /// The decryption ceiling `log2(q/2t)`.
    pub fn ceiling_bits(&self) -> f64 {
        self.q_bits as f64 - (self.t_bits as f64 + 1.0)
    }
}

/// Output noise of one layer in log2 magnitude, plus the remaining budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerNoise {
    /// log2 of the effective output-noise magnitude the regime provisions
    /// for (worst-case bound, or `c·σ_Y` statistically).
    pub noise_log2: f64,
    /// Remaining noise budget in bits (`ceiling − noise`); negative means
    /// decryption fails (worst case) or fails with probability > 1e-10
    /// (statistical).
    pub budget_bits: f64,
}

/// Noise-accumulation coefficients for a layer: output noise
/// `= mult_terms·ηM·v0 + rot_terms·ηA` (Sched-PA, Table V) or
/// `= mult_terms·ηM·(v0 + ηA·ia_pre_rot) + rot_terms·ηA` (Sched-IA, the
/// Fig. 5 rotate-then-multiply penalty).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseShape {
    /// Coefficient on the multiplied input noise (`f_w²·c_i`, `n_i`, …).
    pub mult_terms: f64,
    /// Coefficient on additive rotation noise.
    pub rot_terms: f64,
}

/// Table V coefficients for a CNN layer.
pub fn conv_noise_shape(c: &ConvSpec, n: usize) -> NoiseShape {
    let w2 = (c.w * c.w) as f64;
    let fw = c.fw as f64;
    let fw2 = fw * fw;
    let ci = c.ci as f64;
    let nf = n as f64;
    if nf >= w2 {
        let cn = (nf / w2).floor().max(1.0);
        NoiseShape {
            mult_terms: fw2 * ci,
            rot_terms: ci * (fw2 - 1.0 + (cn - 1.0) / cn),
        }
    } else {
        NoiseShape {
            mult_terms: (2.0 * fw - 1.0) * fw * ci,
            rot_terms: ci * (2.0 * fw + 1.0) * (fw - 1.0),
        }
    }
}

/// Table V coefficients for an FC layer.
pub fn fc_noise_shape(f: &FcSpec, n: usize) -> NoiseShape {
    let ni = f.ni as f64;
    let nf = n as f64;
    if nf >= ni {
        NoiseShape {
            mult_terms: ni,
            rot_terms: (ni - 1.0).max(0.0),
        }
    } else {
        NoiseShape {
            mult_terms: ni,
            rot_terms: ni * (nf - 1.0) / nf,
        }
    }
}

/// Dispatch on layer kind.
pub fn layer_noise_shape(layer: &LinearLayer, n: usize) -> NoiseShape {
    match layer {
        LinearLayer::Conv(c) => conv_noise_shape(c, n),
        LinearLayer::Fc(f) => fc_noise_shape(f, n),
    }
}

/// Evaluates layer output noise under the given schedule and regime.
pub fn layer_noise(
    layer: &LinearLayer,
    p: &HeNoiseParams,
    schedule: Schedule,
    regime: NoiseRegime,
) -> LayerNoise {
    let shape = layer_noise_shape(layer, p.n);
    let noise_log2 = match regime {
        NoiseRegime::WorstCase => {
            let v0 = p.v0_bound();
            let eta_m = p.eta_m_bound();
            let eta_a = p.eta_a_bound();
            let input = match schedule {
                Schedule::PartialAligned => v0,
                // Sched-IA multiplies post-rotation ciphertexts: Fig. 5.
                Schedule::InputAligned => v0 + eta_a,
            };
            (shape.mult_terms * eta_m * input + shape.rot_terms * eta_a).log2()
        }
        NoiseRegime::Statistical => {
            let v0 = p.v0_variance();
            let eta_m = p.eta_m_variance();
            let eta_a = p.eta_a_variance();
            let input = match schedule {
                Schedule::PartialAligned => v0,
                Schedule::InputAligned => v0 + eta_a,
            };
            let variance = shape.mult_terms * eta_m * input + shape.rot_terms * eta_a;
            // Provision for c·σ_Y.
            variance.log2() / 2.0 + FAILURE_SCALE.log2()
        }
    };
    LayerNoise {
        noise_log2,
        budget_bits: p.ceiling_bits() - noise_log2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HeNoiseParams {
        HeNoiseParams {
            n: 4096,
            t_bits: 20,
            q_bits: 60,
            w_dcmp: 1 << 20, // no plaintext decomposition
            a_dcmp: 1 << 20,
            sigma: 3.2,
        }
    }

    fn conv() -> LinearLayer {
        LinearLayer::Conv(ConvSpec {
            name: "c".into(),
            w: 32,
            fw: 3,
            ci: 16,
            co: 32,
            stride: 1,
            pad: 1,
        })
    }

    #[test]
    fn l_pt_l_ct_derivation() {
        let p = params();
        assert_eq!(p.l_pt(), 1);
        assert_eq!(p.l_ct(), 3);
        let p2 = HeNoiseParams {
            w_dcmp: 1 << 7,
            ..params()
        };
        assert_eq!(p2.l_pt(), 3); // ceil(20/7)
    }

    #[test]
    fn sched_pa_strictly_beats_sched_ia() {
        let p = params();
        let layer = conv();
        for regime in [NoiseRegime::WorstCase, NoiseRegime::Statistical] {
            let pa = layer_noise(&layer, &p, Schedule::PartialAligned, regime);
            let ia = layer_noise(&layer, &p, Schedule::InputAligned, regime);
            assert!(
                ia.noise_log2 > pa.noise_log2,
                "{regime:?}: IA {} <= PA {}",
                ia.noise_log2,
                pa.noise_log2
            );
        }
    }

    #[test]
    fn statistical_regime_saves_bits() {
        let p = params();
        let layer = conv();
        let wc = layer_noise(&layer, &p, Schedule::PartialAligned, NoiseRegime::WorstCase);
        let st = layer_noise(
            &layer,
            &p,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
        );
        assert!(
            st.budget_bits > wc.budget_bits + 3.0,
            "statistical {} vs worst {}",
            st.budget_bits,
            wc.budget_bits
        );
    }

    #[test]
    fn smaller_a_dcmp_less_rotate_noise() {
        let coarse = params(); // A = 2^20, l_ct = 3
        let fine = HeNoiseParams {
            a_dcmp: 1 << 6, // l_ct = 10
            ..params()
        };
        assert!(fine.eta_a_bound() < coarse.eta_a_bound());
    }

    #[test]
    fn plaintext_windowing_cuts_mult_noise() {
        let plain = params();
        let windowed = HeNoiseParams {
            w_dcmp: 1 << 7,
            ..params()
        };
        // t/(l_pt·W) = 2^20/(3·2^7) ≈ 2^11.6 reduction factor.
        assert!(windowed.eta_m_bound() < plain.eta_m_bound() / 1000.0);
    }

    #[test]
    fn budget_moves_with_q() {
        let p = params();
        let layer = conv();
        let wide = layer_noise(
            &layer,
            &p,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
        );
        let narrow = layer_noise(
            &layer,
            &HeNoiseParams { q_bits: 40, ..p },
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
        );
        // Note: l_ct changes too, but a 20-bit q cut dominates.
        assert!(wide.budget_bits > narrow.budget_bits + 15.0);
    }

    #[test]
    fn table_v_small_n_case_selected() {
        let big_image = LinearLayer::Conv(ConvSpec {
            name: "c".into(),
            w: 224,
            fw: 3,
            ci: 3,
            co: 64,
            stride: 1,
            pad: 1,
        });
        let shape = layer_noise_shape(&big_image, 4096);
        // (2fw-1)*fw*ci = 5*3*3 = 45
        assert!((shape.mult_terms - 45.0).abs() < 1e-9);
        // ci*(2fw+1)*(fw-1) = 3*7*2 = 42
        assert!((shape.rot_terms - 42.0).abs() < 1e-9);
    }

    #[test]
    fn fc_noise_shapes() {
        let f = FcSpec {
            name: "f".into(),
            ni: 2048,
            no: 100,
        };
        let s = fc_noise_shape(&f, 4096);
        assert!((s.mult_terms - 2048.0).abs() < 1e-9);
        assert!((s.rot_terms - 2047.0).abs() < 1e-9);
        let s2 = fc_noise_shape(&f, 1024);
        assert!((s2.rot_terms - 2048.0 * 1023.0 / 1024.0).abs() < 1e-9);
    }
}
